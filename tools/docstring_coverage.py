"""Docstring coverage report for the repro source tree.

Walks Python sources with :mod:`ast` (no imports, so it works on any
tree regardless of dependency state) and counts docstrings on every
*public* definition: modules, classes, functions, and methods.  Names
with a leading underscore, ``__init__``/dunders, and test files are
exempt — the target is the API surface a reader meets first.

Usage::

    python tools/docstring_coverage.py [--missing] [--fail-under PCT]
                                       [paths...]

Default paths: ``src/repro``.  ``--missing`` lists every undocumented
definition as ``path:line kind name``.  ``--fail-under`` turns the
report into a gate (exit 1 below the threshold); CI runs it without
one, as a non-blocking report.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from typing import Iterator, List, NamedTuple, Tuple

DEFAULT_PATHS = ("src/repro",)

KIND_MODULE = "module"
KIND_CLASS = "class"
KIND_FUNCTION = "function"
KIND_METHOD = "method"


class Definition(NamedTuple):
    """One public definition that ought to carry a docstring."""

    path: str
    line: int
    kind: str
    name: str
    documented: bool


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def iter_definitions(path: str, tree: ast.Module) -> Iterator[Definition]:
    """Every public definition in one parsed module, module included."""
    module_name = os.path.splitext(os.path.basename(path))[0]
    yield Definition(path, 1, KIND_MODULE, module_name,
                     ast.get_docstring(tree) is not None)
    yield from _walk_body(path, tree.body, prefix="", in_class=False)


def _walk_body(path: str, body, prefix: str,
               in_class: bool) -> Iterator[Definition]:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not _is_public(node.name):
                continue
            kind = KIND_METHOD if in_class else KIND_FUNCTION
            yield Definition(path, node.lineno, kind,
                             prefix + node.name,
                             ast.get_docstring(node) is not None)
            # nested defs are implementation detail: skip
        elif isinstance(node, ast.ClassDef):
            if not _is_public(node.name):
                continue
            yield Definition(path, node.lineno, KIND_CLASS, node.name,
                             ast.get_docstring(node) is not None)
            yield from _walk_body(path, node.body,
                                  prefix=node.name + ".",
                                  in_class=True)


def python_files(paths) -> List[str]:
    """All .py files under the given files/directories, sorted."""
    found = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if d not in ("__pycache__",))
            for name in sorted(files):
                if name.endswith(".py"):
                    found.append(os.path.join(root, name))
    return found


def scan(paths) -> Tuple[List[Definition], List[str]]:
    """Collect definitions from all files; returns (defs, errors)."""
    definitions: List[Definition] = []
    errors: List[str] = []
    for path in python_files(paths):
        try:
            with open(path, "r") as stream:
                tree = ast.parse(stream.read(), filename=path)
        except (OSError, SyntaxError) as exc:
            errors.append("%s: %s" % (path, exc))
            continue
        definitions.extend(iter_definitions(path, tree))
    return definitions, errors


def group_key(definition: Definition) -> str:
    """The reporting bucket of one definition: its package dir."""
    return os.path.dirname(definition.path) or "."


def report(definitions: List[Definition], show_missing: bool) -> float:
    """Print the per-package table; returns overall coverage in %."""
    by_group = {}
    for definition in definitions:
        by_group.setdefault(group_key(definition), []).append(definition)

    width = max(len(group) for group in by_group) if by_group else 10
    print("%-*s  %9s  %8s" % (width, "package", "have/want", "coverage"))
    total = done = 0
    for group in sorted(by_group):
        defs = by_group[group]
        have = sum(1 for d in defs if d.documented)
        total += len(defs)
        done += have
        print("%-*s  %4d/%-4d  %7.1f%%"
              % (width, group, have, len(defs),
                 100.0 * have / len(defs)))
    overall = 100.0 * done / total if total else 100.0
    print("%-*s  %4d/%-4d  %7.1f%%"
          % (width, "TOTAL", done, total, overall))

    if show_missing:
        missing = [d for d in definitions if not d.documented]
        if missing:
            print("\nundocumented definitions:")
        for definition in missing:
            print("%s:%d %s %s" % (definition.path, definition.line,
                                   definition.kind, definition.name))
    return overall


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="AST-based docstring coverage report")
    parser.add_argument("paths", nargs="*", default=list(DEFAULT_PATHS),
                        help="files or directories to scan "
                             "(default: %s)" % (DEFAULT_PATHS,))
    parser.add_argument("--missing", action="store_true",
                        help="list every undocumented definition")
    parser.add_argument("--fail-under", type=float, default=None,
                        metavar="PCT",
                        help="exit 1 if overall coverage is below PCT")
    args = parser.parse_args(argv)

    definitions, errors = scan(args.paths)
    for error in errors:
        print("unparseable: %s" % error, file=sys.stderr)
    overall = report(definitions, show_missing=args.missing)
    if args.fail_under is not None and overall < args.fail_under:
        print("coverage %.1f%% is below --fail-under %.1f%%"
              % (overall, args.fail_under), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
