import pytest

from repro.library import GateKind, GateSize, GateType, PinDirection, PinSpec
from repro.library.types import AREA_UNIT, C_UNIT, R_UNIT, ROW_HEIGHT, TAU


def make_inv():
    return GateType(
        "INV", GateKind.COMBINATIONAL,
        (PinSpec("A", PinDirection.INPUT),
         PinSpec("Z", PinDirection.OUTPUT)),
        logical_effort=1.0, parasitic=1.0,
    )


class TestGateType:
    def test_pin_lookup(self):
        inv = make_inv()
        assert inv.pin("A").direction is PinDirection.INPUT
        with pytest.raises(KeyError):
            inv.pin("nope")

    def test_output_pin(self):
        inv = make_inv()
        assert inv.output_pin.name == "Z"
        assert inv.num_inputs == 1

    def test_no_output_raises(self):
        with pytest.raises(ValueError):
            GateType("BAD", GateKind.COMBINATIONAL,
                     (PinSpec("A", PinDirection.INPUT),),
                     logical_effort=1.0, parasitic=1.0)

    def test_nonpositive_effort_raises(self):
        with pytest.raises(ValueError):
            GateType("BAD", GateKind.COMBINATIONAL,
                     (PinSpec("Z", PinDirection.OUTPUT),),
                     logical_effort=0.0, parasitic=1.0)

    def test_swap_groups(self):
        nand = GateType(
            "NAND2", GateKind.COMBINATIONAL,
            (PinSpec("A", PinDirection.INPUT, swap_group=0),
             PinSpec("B", PinDirection.INPUT, swap_group=0),
             PinSpec("Z", PinDirection.OUTPUT)),
            logical_effort=4 / 3, parasitic=2.0,
        )
        groups = nand.swap_groups()
        assert list(groups) == [0]
        assert [p.name for p in groups[0]] == ["A", "B"]

    def test_singleton_swap_group_dropped(self):
        g = GateType(
            "G", GateKind.COMBINATIONAL,
            (PinSpec("A", PinDirection.INPUT, swap_group=0),
             PinSpec("B", PinDirection.INPUT, swap_group=1),
             PinSpec("Z", PinDirection.OUTPUT)),
            logical_effort=1.0, parasitic=1.0,
        )
        assert g.swap_groups() == {}


class TestGateSize:
    def test_unit_inverter_electrical(self):
        s = GateSize(make_inv(), 1.0, "FP0")
        assert s.input_cap() == C_UNIT
        assert s.drive_resistance == R_UNIT
        assert s.intrinsic_delay == TAU
        assert s.area == AREA_UNIT
        assert s.height == ROW_HEIGHT
        assert s.width == AREA_UNIT / ROW_HEIGHT

    def test_scaling_with_x(self):
        s1 = GateSize(make_inv(), 1.0, "FP0")
        s4 = GateSize(make_inv(), 4.0, "FP1")
        assert s4.input_cap() == 4 * s1.input_cap()
        assert s4.drive_resistance == s1.drive_resistance / 4
        assert s4.device_area == 4 * s1.device_area
        # intrinsic delay is size-independent
        assert s4.intrinsic_delay == s1.intrinsic_delay

    def test_delay_model(self):
        s = GateSize(make_inv(), 2.0, "FP0")
        load = 10.0
        assert s.delay(load) == pytest.approx(
            s.intrinsic_delay + s.drive_resistance * load)

    def test_gain_for_load(self):
        s = GateSize(make_inv(), 1.0, "FP0")
        assert s.gain_for_load(4.0) == pytest.approx(4.0)

    def test_footprint_area_override(self):
        s = GateSize(make_inv(), 1.0, "FP0", footprint_area=99.0)
        assert s.area == 99.0
        assert s.device_area == AREA_UNIT

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            GateSize(make_inv(), 0.0, "FP0")

    def test_name(self):
        assert GateSize(make_inv(), 2.0, "FP0").name == "INV_X2"

    def test_pin_cap_factor(self):
        dff = GateType(
            "DFF", GateKind.SEQUENTIAL,
            (PinSpec("D", PinDirection.INPUT),
             PinSpec("CK", PinDirection.INPUT, is_clock=True, cap_factor=0.5),
             PinSpec("Q", PinDirection.OUTPUT)),
            logical_effort=2.0, parasitic=4.0,
        )
        s = GateSize(dff, 1.0, "FP")
        assert s.input_cap("CK") == pytest.approx(0.5 * s.input_cap("D"))
