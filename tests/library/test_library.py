import pytest

from repro.library import Library, analyze_library, default_library
from repro.library.types import GateKind, GateType, PinDirection, PinSpec


def simple_type(name, effort=1.0, kind=GateKind.COMBINATIONAL):
    return GateType(
        name, kind,
        (PinSpec("A", PinDirection.INPUT),
         PinSpec("Z", PinDirection.OUTPUT)),
        logical_effort=effort, parasitic=1.0,
    )


class TestLibrary:
    def test_add_and_lookup(self):
        lib = Library()
        lib.add_type(simple_type("INV"), [1, 2, 4])
        assert lib.has_type("INV")
        assert "INV" in lib
        assert len(lib) == 1
        assert [s.x for s in lib.sizes("INV")] == [1, 2, 4]

    def test_duplicate_type_raises(self):
        lib = Library()
        lib.add_type(simple_type("INV"), [1])
        with pytest.raises(ValueError):
            lib.add_type(simple_type("INV"), [1])

    def test_empty_sizes_raises(self):
        lib = Library()
        with pytest.raises(ValueError):
            lib.add_type(simple_type("INV"), [])

    def test_unknown_lookups_raise(self):
        lib = Library()
        with pytest.raises(KeyError):
            lib.type("X")
        with pytest.raises(KeyError):
            lib.sizes("X")

    def test_size_exact(self):
        lib = Library()
        lib.add_type(simple_type("INV"), [1, 2])
        assert lib.size("INV", 2).x == 2
        with pytest.raises(KeyError):
            lib.size("INV", 3)

    def test_smallest_largest(self):
        lib = Library()
        lib.add_type(simple_type("INV"), [4, 1, 2])
        assert lib.smallest("INV").x == 1
        assert lib.largest("INV").x == 4

    def test_discretize_picks_best_cin_match(self):
        lib = Library()
        lib.add_type(simple_type("INV"), [1, 2, 4, 8])
        # INV effort 1 -> cin == x * C_UNIT
        assert lib.discretize("INV", 3.2).x == 4
        assert lib.discretize("INV", 1.4).x == 1
        assert lib.discretize("INV", 100).x == 8

    def test_footprint_pairs_share_outline(self):
        lib = Library()
        lib.add_type(simple_type("INV"), [1, 2, 4, 8])
        s1, s2, s4, s8 = lib.sizes("INV")
        assert s1.footprint == s2.footprint
        assert s4.footprint == s8.footprint
        assert s1.footprint != s4.footprint
        # shared outline = largest member's device area
        assert s1.area == s2.area == s2.device_area
        assert s4.area == s8.area == s8.device_area

    def test_footprint_siblings(self):
        lib = Library()
        lib.add_type(simple_type("INV"), [1, 2, 4])
        sibs = lib.footprint_siblings(lib.size("INV", 1))
        assert sorted(s.x for s in sibs) == [1, 2]


class TestAnalyzeLibrary:
    def test_efforts_and_max(self):
        lib = Library()
        lib.add_type(simple_type("INV", effort=1.0), [1])
        lib.add_type(simple_type("XOR2", effort=4.0), [1])
        analysis = analyze_library(lib)
        assert analysis.efforts["XOR2"] == 4.0
        assert analysis.max_effort == 4.0
        assert analysis.normalized("INV") == pytest.approx(0.25)
        assert analysis.normalized("XOR2") == pytest.approx(1.0)

    def test_unknown_type_normalizes_to_default(self):
        lib = Library()
        lib.add_type(simple_type("INV"), [1])
        analysis = analyze_library(lib)
        assert analysis.normalized("MISSING") == pytest.approx(1.0)

    def test_default_library_analysis(self):
        analysis = analyze_library(default_library())
        assert analysis.efforts["INV"] == 1.0
        assert analysis.max_effort == 4.0  # XOR2/XNOR2
        assert analysis.normalized("NAND2") == pytest.approx((4 / 3) / 4)
