import pytest

from repro.library import GateKind, default_library


class TestDefaultLibrary:
    def test_expected_types_present(self, library):
        for name in ["INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2",
                     "NOR3", "AND2", "OR2", "AOI21", "OAI21", "XOR2",
                     "XNOR2", "MUX2", "DFF", "SDFF", "CLKBUF"]:
            assert library.has_type(name), name

    def test_canonical_logical_efforts(self, library):
        assert library.type("INV").logical_effort == 1.0
        assert library.type("NAND2").logical_effort == pytest.approx(4 / 3)
        assert library.type("NOR2").logical_effort == pytest.approx(5 / 3)
        assert library.type("XOR2").logical_effort == 4.0

    def test_clock_buffer_is_large(self, library):
        # "clock blocks are typically much larger than registers":
        # compare at matched drive (x4 vs x4)
        clkbuf = library.size("CLKBUF", 4.0)
        dff = library.size("DFF", 4.0)
        assert clkbuf.area > dff.area / 2
        assert library.largest("CLKBUF").area > library.largest("INV").area

    def test_clock_buffer_footprints_unique(self, library):
        """Clock cells are never swapped by in-footprint sizing."""
        for size in library.sizes("CLKBUF"):
            assert library.footprint_siblings(size) == [size]

    def test_sequential_kinds(self, library):
        assert library.type("DFF").kind is GateKind.SEQUENTIAL
        assert library.type("SDFF").kind is GateKind.SEQUENTIAL
        assert library.type("CLKBUF").kind is GateKind.CLOCK_BUFFER

    def test_dff_pins(self, library):
        dff = library.type("DFF")
        assert dff.pin("CK").is_clock
        assert not dff.pin("D").is_clock
        assert dff.output_pin.name == "Q"

    def test_sdff_scan_pin(self, library):
        sdff = library.type("SDFF")
        assert sdff.pin("SI").is_scan
        assert not sdff.pin("D").is_scan

    def test_nand2_inputs_swappable(self, library):
        groups = library.type("NAND2").swap_groups()
        assert len(groups) == 1

    def test_aoi21_c_not_swappable(self, library):
        groups = library.type("AOI21").swap_groups()
        names = {p.name for ps in groups.values() for p in ps}
        assert names == {"A", "B"}

    def test_mux2_nothing_swappable(self, library):
        assert library.type("MUX2").swap_groups() == {}

    def test_every_type_has_ascending_sizes(self, library):
        for t in library.types():
            xs = [s.x for s in library.sizes(t.name)]
            assert xs == sorted(xs)
            assert len(xs) >= 3

    def test_size_ladder_monotone_electrically(self, library):
        for t in library.types():
            ladder = library.sizes(t.name)
            caps = [s.input_cap() for s in ladder]
            res = [s.drive_resistance for s in ladder]
            assert caps == sorted(caps)
            assert res == sorted(res, reverse=True)
