import pytest

from repro.analysis import (
    NoiseAnalyzer,
    PowerAnalyzer,
    congestion_report,
)
from repro.placement import Partitioner, legalize_rows
from repro.routing import GlobalRouter
from repro.workloads import ProcessorParams, make_design, processor_partition


@pytest.fixture(scope="module")
def routed_design(library):
    params = ProcessorParams(n_stages=2, regs_per_stage=10,
                             gates_per_stage=150, seed=5)
    netlist = processor_partition(params, library)
    design = make_design(netlist, library, cycle_time=1500.0)
    Partitioner(design, seed=3).run_to(100)
    legalize_rows(design)
    GlobalRouter(design).route()
    return design


class TestNoiseAnalyzer:
    def test_report_covers_multi_pin_nets(self, routed_design):
        report = NoiseAnalyzer(routed_design).analyze()
        multi = [n for n in routed_design.netlist.nets() if n.degree >= 2]
        assert len(report.per_net) == len(multi)

    def test_noise_bounded(self, routed_design):
        report = NoiseAnalyzer(routed_design).analyze()
        for v in report.per_net.values():
            assert 0.0 <= v <= 1.0

    def test_longer_nets_noisier(self, routed_design):
        analyzer = NoiseAnalyzer(routed_design)
        nets = sorted(routed_design.netlist.nets(),
                      key=lambda n: routed_design.steiner.length(n))
        shortest = [n for n in nets if n.degree >= 2][0]
        longest = nets[-1]
        assert analyzer.net_noise(longest) > analyzer.net_noise(shortest)

    def test_strong_driver_quieter(self, routed_design, library):
        analyzer = NoiseAnalyzer(routed_design)
        net = max((n for n in routed_design.netlist.nets()
                   if n.driver() is not None
                   and n.driver().cell.type_name == "INV"),
                  key=lambda n: routed_design.steiner.length(n))
        cell = net.driver().cell
        weak = analyzer.net_noise(net)
        routed_design.netlist.resize_cell(cell, library.largest("INV"))
        strong = analyzer.net_noise(net)
        assert strong < weak

    def test_worst_and_violations(self, routed_design):
        report = NoiseAnalyzer(routed_design, margin=0.0).analyze()
        name, value = report.worst
        assert name in report.per_net
        noisy = [n for n, v in report.per_net.items() if v > 0]
        assert set(report.violations()) == set(noisy)


class TestPowerAnalyzer:
    def test_total_is_sum(self, routed_design):
        report = PowerAnalyzer(routed_design).analyze()
        assert report.total == pytest.approx(sum(report.per_net.values()))
        assert report.total > 0

    def test_clock_fraction(self, routed_design):
        report = PowerAnalyzer(routed_design).analyze()
        assert 0.0 < report.clock_fraction < 1.0

    def test_clock_nets_full_activity(self, routed_design):
        analyzer = PowerAnalyzer(routed_design, activity=0.1)
        clk = next(n for n in routed_design.netlist.nets()
                   if n.is_clock and n.driver() is not None)
        cap = routed_design.timing.net_electrical(clk).total_cap
        data = next(n for n in routed_design.netlist.nets()
                    if not n.is_clock and n.driver() is not None)
        ratio = analyzer.net_power(clk) / cap
        data_cap = routed_design.timing.net_electrical(data).total_cap
        data_ratio = analyzer.net_power(data) / data_cap
        assert ratio == pytest.approx(10 * data_ratio)

    def test_faster_clock_more_power(self, routed_design):
        lo = PowerAnalyzer(routed_design).analyze().total
        routed_design.constraints.cycle_time /= 2
        hi = PowerAnalyzer(routed_design).analyze().total
        routed_design.constraints.cycle_time *= 2
        assert hi == pytest.approx(2 * lo)


class TestCongestionReport:
    def test_report_after_routing(self, routed_design):
        report = congestion_report(routed_design)
        assert report.max_congestion > 0
        assert report.avg_congestion <= report.max_congestion
        for ix, iy, c in report.hotspots:
            assert c > 0.9

    def test_hotspots_sorted(self, routed_design):
        report = congestion_report(routed_design, hotspot_threshold=0.0)
        values = [c for _ix, _iy, c in report.hotspots]
        assert values == sorted(values, reverse=True)


class TestYieldAnalyzer:
    def test_yield_in_unit_interval(self, routed_design):
        from repro.analysis import YieldAnalyzer
        report = YieldAnalyzer(routed_design).analyze()
        assert 0.0 < report.yield_estimate <= 1.0
        assert report.total_critical_area > 0

    def test_more_defects_less_yield(self, routed_design):
        from repro.analysis import YieldAnalyzer
        lo = YieldAnalyzer(routed_design, defect_density=0.1).analyze()
        hi = YieldAnalyzer(routed_design, defect_density=2.0).analyze()
        assert hi.yield_estimate < lo.yield_estimate

    def test_worst_bins_sorted(self, routed_design):
        from repro.analysis import YieldAnalyzer
        report = YieldAnalyzer(routed_design).analyze()
        values = [v for _i, _j, v in report.worst_bins]
        assert values == sorted(values, reverse=True)

    def test_open_area_tracks_wirelength(self, routed_design):
        from repro.analysis import YieldAnalyzer
        report = YieldAnalyzer(routed_design, defect_size=1.0).analyze()
        assert report.open_critical_area == pytest.approx(
            routed_design.total_wirelength())
