import pytest

from repro.analysis import extract_path, report_timing
from repro.placement import Partitioner
from repro.transforms.sizing import GateSizing
from repro.workloads import ProcessorParams, make_design, processor_partition


@pytest.fixture(scope="module")
def design(library):
    params = ProcessorParams(n_stages=2, regs_per_stage=8,
                             gates_per_stage=100, seed=23)
    netlist = processor_partition(params, library)
    d = make_design(netlist, library, cycle_time=1200.0)
    GateSizing().assign_gains(d)
    Partitioner(d, seed=4).run_to(100)
    GateSizing().link_cells(d)
    return d


class TestExtractPath:
    def test_path_arrives_consistently(self, design):
        engine = design.timing
        worst = min(engine.endpoints(), key=lambda p: engine.slack(p))
        path = extract_path(design, worst)
        assert path.endpoint == worst.full_name
        assert path.slack == pytest.approx(engine.slack(worst))
        # stage delays sum (plus launch offset) to the arrival
        total = sum(s.delay for s in path.stages)
        launch = path.arrival - total
        assert launch >= -1e-6  # clock/boundary offset is non-negative
        assert path.stages  # non-trivial

    def test_arrivals_monotonic(self, design):
        engine = design.timing
        worst = min(engine.endpoints(), key=lambda p: engine.slack(p))
        path = extract_path(design, worst)
        arrivals = [s.arrival for s in path.stages]
        assert arrivals == sorted(arrivals)

    def test_alternating_kinds(self, design):
        engine = design.timing
        worst = min(engine.endpoints(), key=lambda p: engine.slack(p))
        path = extract_path(design, worst)
        for a, b in zip(path.stages, path.stages[1:]):
            assert (a.kind, b.kind) in (("net", "cell"), ("cell", "net"))


class TestReportTiming:
    def test_report_structure(self, design):
        text = report_timing(design, n_paths=2)
        assert "Timing report" in text
        assert text.count("Endpoint ") == 2
        assert "net " in text

    def test_report_orders_by_slack(self, design):
        text = report_timing(design, n_paths=3)
        slacks = [float(line.split("slack")[1].split("ps")[0])
                  for line in text.splitlines()
                  if line.startswith("Endpoint")]
        assert slacks == sorted(slacks)


class TestHistogramAndQor:
    def test_histogram_counts_everything(self, design):
        from repro.analysis import slack_histogram
        h = slack_histogram(design, buckets=8)
        engine = design.timing
        finite = [engine.slack(p) for p in engine.endpoints()
                  if engine.slack(p) < float("inf")]
        assert sum(h.counts) == len(finite)
        assert h.worst == pytest.approx(min(finite))
        assert "slack histogram" in h.format()

    def test_qor_summary_consistent(self, design):
        from repro.analysis import qor_summary
        q = qor_summary(design)
        assert q.wns == pytest.approx(design.timing.worst_slack())
        assert q.tns == pytest.approx(
            design.timing.total_negative_slack())
        assert q.icells == design.icell_count()
        assert "WNS" in q.row()

    def test_histogram_empty_design(self, library):
        from repro.analysis import slack_histogram
        from repro.netlist import Netlist
        from repro.geometry import Rect
        from repro.design import Design
        from repro.timing import TimingConstraints
        d = Design(Netlist(), library, Rect(0, 0, 10, 10),
                   TimingConstraints(cycle_time=10.0))
        h = slack_histogram(d)
        assert sum(h.counts) == 0
