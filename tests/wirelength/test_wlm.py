import pytest

from repro.geometry import Point
from repro.netlist import Netlist
from repro.wirelength import SteinerCache
from repro.wirelength.wlm import WireLoadModel


@pytest.fixture
def fanout_net(library):
    nl = Netlist()
    drv = nl.add_cell("d", library.smallest("INV"), position=Point(0, 0))
    net = nl.add_net("n")
    nl.connect(drv.pin("Z"), net)
    sinks = []
    for i in range(3):
        s = nl.add_cell("s%d" % i, library.smallest("INV"),
                        position=Point(100.0 * (i + 1), 0))
        nl.connect(s.pin("A"), net)
        sinks.append(s)
    return nl, net, sinks


class TestWireLoadModel:
    def test_cap_from_fanout_only(self, fanout_net):
        nl, net, sinks = fanout_net
        wlm = WireLoadModel(SteinerCache(nl), base_cap=2.0,
                            cap_per_fanout=6.0)
        e = wlm.analyze(net)
        assert e.total_cap == pytest.approx(net.pin_load() + 2.0 + 18.0)
        assert e.model == "wlm"

    def test_placement_blind(self, fanout_net):
        """Moving cells changes nothing — the WLM has no positions."""
        nl, net, sinks = fanout_net
        wlm = WireLoadModel(SteinerCache(nl))
        before = wlm.analyze(net).total_cap
        nl.move_cell(sinks[0], Point(9999, 9999))
        assert wlm.analyze(net).total_cap == pytest.approx(before)

    def test_no_wire_delay(self, fanout_net):
        nl, net, sinks = fanout_net
        wlm = WireLoadModel(SteinerCache(nl))
        e = wlm.analyze(net)
        for s in sinks:
            assert e.delay_to("%s/A" % s.name) == 0.0

    def test_undriven_zero_wire(self, library):
        nl = Netlist()
        s = nl.add_cell("s", library.smallest("INV"))
        net = nl.add_net("n")
        nl.connect(s.pin("A"), net)
        # fanout counts sinks; an undriven net still models its sinks
        wlm = WireLoadModel(SteinerCache(nl))
        assert wlm.analyze(net).total_cap >= net.pin_load()

    def test_grows_with_fanout(self, fanout_net, library):
        nl, net, sinks = fanout_net
        wlm = WireLoadModel(SteinerCache(nl))
        before = wlm.analyze(net).total_cap
        extra = nl.add_cell("s9", library.smallest("INV"))
        nl.connect(extra.pin("A"), net)
        assert wlm.analyze(net).total_cap > before
