import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point, Rect
from repro.wirelength import (
    build_steiner,
    hanan_points,
    iterated_one_steiner,
    prim_rmst,
)

coords = st.integers(min_value=0, max_value=200)
point_sets = st.lists(
    st.builds(Point, coords.map(float), coords.map(float)),
    min_size=1, max_size=10, unique=True,
)


def mst_length(points):
    return sum(points[i].manhattan_to(points[j])
               for i, j in prim_rmst(points))


class TestPrimRMST:
    def test_empty_and_single(self):
        assert prim_rmst([]) == []
        assert prim_rmst([Point(0, 0)]) == []

    def test_two_points(self):
        pts = [Point(0, 0), Point(3, 4)]
        assert prim_rmst(pts) == [(0, 1)]
        assert mst_length(pts) == 7

    def test_collinear(self):
        pts = [Point(0, 0), Point(10, 0), Point(5, 0)]
        assert mst_length(pts) == 10

    def test_square(self):
        pts = [Point(0, 0), Point(10, 0), Point(0, 10), Point(10, 10)]
        assert mst_length(pts) == 30

    @given(point_sets)
    @settings(max_examples=50)
    def test_is_spanning_tree(self, pts):
        edges = prim_rmst(pts)
        assert len(edges) == len(pts) - 1
        # connectivity via union-find
        parent = list(range(len(pts)))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i, j in edges:
            parent[find(i)] = find(j)
        assert len({find(i) for i in range(len(pts))}) == 1


class TestHananPoints:
    def test_l_shape(self):
        pts = [Point(0, 0), Point(10, 10)]
        assert set(hanan_points(pts)) == {Point(0, 10), Point(10, 0)}

    def test_excludes_terminals(self):
        pts = [Point(0, 0), Point(0, 10), Point(10, 0), Point(10, 10)]
        assert hanan_points(pts) == []


class TestSteinerConstruction:
    def test_three_pin_median(self):
        # T shape: median point at (5, 0) saves over MST
        pts = [Point(0, 0), Point(10, 0), Point(5, 8)]
        tree = build_steiner(pts)
        assert tree.length == pytest.approx(18.0)  # 10 + 8
        tree.validate()

    def test_three_pin_median_is_terminal(self):
        pts = [Point(0, 0), Point(5, 0), Point(10, 0)]
        tree = build_steiner(pts)
        assert tree.length == pytest.approx(10.0)
        assert len(tree.points) == 3  # no extra Steiner point
        tree.validate()

    def test_four_corner_cross(self):
        # Plus-sign terminals: Steiner point in the middle wins.
        pts = [Point(5, 0), Point(5, 10), Point(0, 5), Point(10, 5)]
        tree = build_steiner(pts)
        assert tree.length == pytest.approx(20.0)
        assert mst_length(pts) == 30.0
        tree.validate()

    def test_duplicate_points_deduped(self):
        pts = [Point(0, 0), Point(0, 0), Point(5, 0)]
        tree = build_steiner(pts)
        assert tree.num_terminals == 2
        assert tree.length == pytest.approx(5.0)

    def test_single_point(self):
        tree = build_steiner([Point(1, 1)])
        assert tree.length == 0.0
        assert tree.edges == []

    def test_empty(self):
        tree = build_steiner([])
        assert tree.length == 0.0

    def test_large_net_uses_rmst(self):
        pts = [Point(float(i * 7 % 40), float(i * 13 % 40))
               for i in range(20)]
        tree = build_steiner(pts)
        assert len(tree.points) == tree.num_terminals  # no Steiner pts
        tree.validate()

    @given(point_sets)
    @settings(max_examples=40, deadline=None)
    def test_steiner_never_longer_than_mst(self, pts):
        tree = build_steiner(pts)
        assert tree.length <= mst_length(pts) + 1e-9
        tree.validate()

    @given(point_sets)
    @settings(max_examples=40, deadline=None)
    def test_steiner_at_least_half_perimeter(self, pts):
        # RSMT lower bound: half-perimeter of the bounding box.
        tree = build_steiner(pts)
        if len(pts) >= 2:
            hp = Rect.bounding(pts).half_perimeter()
            assert tree.length >= hp - 1e-9

    @given(point_sets)
    @settings(max_examples=40, deadline=None)
    def test_no_leaf_steiner_points(self, pts):
        tree = build_steiner(pts)
        degree = {}
        for i, j in tree.edges:
            degree[i] = degree.get(i, 0) + 1
            degree[j] = degree.get(j, 0) + 1
        for i in range(tree.num_terminals, len(tree.points)):
            assert degree.get(i, 0) >= 2


class TestIteratedOneSteiner:
    def test_improves_on_mst(self):
        pts = [Point(0, 0), Point(10, 0), Point(0, 10), Point(10, 10),
               Point(5, 5)]
        tree = iterated_one_steiner(pts)
        assert tree.length <= mst_length(pts)
        tree.validate()
