import pytest

from repro.geometry import Point
from repro.library.parasitics import WireParasitics
from repro.netlist import Netlist
from repro.wirelength import RentEstimator, SteinerCache, WireModel


@pytest.fixture
def chain(library):
    """drv INV at (0,0) driving two NAND2 sinks at (100,0), (100,50)."""
    nl = Netlist()
    drv = nl.add_cell("drv", library.size("INV", 4.0), position=Point(0, 0))
    s1 = nl.add_cell("s1", library.smallest("NAND2"), position=Point(100, 0))
    s2 = nl.add_cell("s2", library.smallest("NAND2"), position=Point(100, 50))
    net = nl.add_net("n")
    nl.connect(drv.pin("Z"), net)
    nl.connect(s1.pin("A"), net)
    nl.connect(s2.pin("A"), net)
    return nl, drv, s1, s2, net


class TestSteinerCache:
    def test_length_and_caching(self, chain):
        nl, drv, s1, s2, net = chain
        cache = SteinerCache(nl)
        assert cache.length(net) == pytest.approx(150.0)
        cache.length(net)
        assert cache.stats["misses"] == 1
        assert cache.stats["hits"] >= 1

    def test_move_invalidates(self, chain):
        nl, drv, s1, s2, net = chain
        cache = SteinerCache(nl)
        before = cache.length(net)
        nl.move_cell(s2, Point(100, 0))
        after = cache.length(net)
        assert after == pytest.approx(100.0)
        assert after != before

    def test_connect_invalidates(self, chain, library):
        nl, drv, s1, s2, net = chain
        cache = SteinerCache(nl)
        cache.length(net)
        s3 = nl.add_cell("s3", library.smallest("NAND2"),
                         position=Point(0, 50))
        nl.connect(s3.pin("A"), net)
        assert cache.length(net) == pytest.approx(200.0)

    def test_disconnect_invalidates(self, chain):
        nl, drv, s1, s2, net = chain
        cache = SteinerCache(nl)
        cache.length(net)
        nl.disconnect(s2.pin("A"))
        assert cache.length(net) == pytest.approx(100.0)

    def test_unplaced_pins_ignored(self, chain, library):
        nl, drv, s1, s2, net = chain
        cache = SteinerCache(nl)
        s4 = nl.add_cell("s4", library.smallest("NAND2"))
        nl.connect(s4.pin("A"), net)
        assert cache.length(net) == pytest.approx(150.0)

    def test_total_length(self, chain):
        nl, *_ = chain
        cache = SteinerCache(nl)
        assert cache.total_length() == pytest.approx(150.0)

    def test_rent_correction_for_colocated_pins(self, library):
        nl = Netlist()
        drv = nl.add_cell("d", library.smallest("INV"), position=Point(5, 5))
        s = nl.add_cell("s", library.smallest("INV"), position=Point(5, 5))
        net = nl.add_net("n")
        nl.connect(drv.pin("Z"), net)
        nl.connect(s.pin("A"), net)
        cache = SteinerCache(nl, rent=RentEstimator())
        assert cache.length(net) == 0.0  # no bin side configured
        cache.set_bin_side(40.0)
        cache.invalidate_all()
        assert cache.length(net) > 0.0


class TestRentEstimator:
    def test_single_pin_zero(self):
        assert RentEstimator().intrabin_length(100, 1) == 0.0

    def test_scales_with_bin_and_pins(self):
        r = RentEstimator()
        assert r.intrabin_length(100, 3) == pytest.approx(
            2 * r.intrabin_length(100, 2))
        assert r.intrabin_length(200, 2) == pytest.approx(
            2 * r.intrabin_length(100, 2))

    def test_alpha_grows_with_rent_exponent(self):
        lo = RentEstimator(rent_exponent=0.5)
        hi = RentEstimator(rent_exponent=0.7)
        assert hi.alpha > lo.alpha


class TestWireModel:
    def test_short_net_lumped(self, chain):
        nl, drv, s1, s2, net = chain
        cache = SteinerCache(nl)
        par = WireParasitics(rc_threshold=1000.0)
        model = WireModel(cache, par)
        e = model.analyze(net)
        assert e.model == "lumped"
        expected_cap = par.wire_cap(150.0) + net.pin_load()
        assert e.total_cap == pytest.approx(expected_cap)
        assert e.delay_to("s1/A") == 0.0

    def test_long_net_elmore(self, chain):
        nl, drv, s1, s2, net = chain
        cache = SteinerCache(nl)
        par = WireParasitics(rc_threshold=50.0)
        model = WireModel(cache, par)
        e = model.analyze(net)
        assert e.model == "elmore"
        # s2 is further downstream than s1 along the tree
        assert e.delay_to("s2/A") > e.delay_to("s1/A") > 0.0

    def test_elmore_two_pin_formula(self, library):
        nl = Netlist()
        drv = nl.add_cell("d", library.size("INV", 4.0), position=Point(0, 0))
        snk = nl.add_cell("s", library.smallest("INV"),
                          position=Point(100, 0))
        net = nl.add_net("n")
        nl.connect(drv.pin("Z"), net)
        nl.connect(snk.pin("A"), net)
        par = WireParasitics(rc_threshold=10.0)
        model = WireModel(SteinerCache(nl), par)
        e = model.analyze(net)
        r = par.wire_res(100.0)
        c = par.wire_cap(100.0)
        expected = r * (c / 2.0 + snk.pin("A").input_cap())
        assert e.delay_to("s/A") == pytest.approx(expected)

    def test_undriven_net(self, library):
        nl = Netlist()
        s = nl.add_cell("s", library.smallest("INV"), position=Point(0, 0))
        net = nl.add_net("n")
        nl.connect(s.pin("A"), net)
        e = WireModel(SteinerCache(nl)).analyze(net)
        assert e.model == "lumped"
        assert e.total_cap == pytest.approx(s.pin("A").input_cap())

    def test_longer_wire_more_cap(self, chain):
        nl, drv, s1, s2, net = chain
        cache = SteinerCache(nl)
        model = WireModel(cache)
        before = model.analyze(net).total_cap
        nl.move_cell(s2, Point(300, 300))
        after = model.analyze(net).total_cap
        assert after > before
