"""Unit tests for the journaled job store and the worker pool's
settlement logic (no HTTP, no real flows)."""

import time

import pytest

from repro.serve import CANCELLED, DONE, FAILED, JobStore, QUEUED, RUNNING
from repro.serve.jobs import JobSpecError
from repro.serve.lease import Heartbeat
from repro.serve.pool import WorkerPool

from tests.serve.conftest import small_spec


def fast_store(tmp_path, **kwargs):
    """A store with no retry backoff, so requeued jobs are instantly
    claimable again (the unit tests exercise transitions, not time)."""
    kwargs.setdefault("backoff_base", 0.0)
    return JobStore(str(tmp_path), **kwargs)


class TestStore:
    def test_submit_assigns_sequential_ids(self, tmp_path):
        store = fast_store(tmp_path)
        first = store.submit(small_spec())
        second = store.submit(small_spec())
        assert [first.job_id, second.job_id] == ["job-0001", "job-0002"]
        assert first.state == QUEUED

    def test_submit_rejects_bad_spec_and_counts_it(self, tmp_path):
        store = fast_store(tmp_path)
        with pytest.raises(JobSpecError):
            store.submit({"design": {"kind": "nope"}})
        assert store.counters()["jobs_rejected"] == 1
        assert store.counters()["jobs_submitted"] == 0

    def test_claim_next_is_fifo_and_leases(self, tmp_path):
        store = fast_store(tmp_path)
        store.submit(small_spec())
        store.submit(small_spec())
        first = store.claim_next(worker="w1")
        assert first.job_id == "job-0001"
        assert (first.state, first.worker, first.token) \
            == (RUNNING, "w1", 1)
        assert store.claim_next(worker="w1").job_id == "job-0002"
        assert store.claim_next(worker="w1") is None

    def test_requeue_counts_resume_release_does_not(self, tmp_path):
        store = fast_store(tmp_path)
        store.submit(small_spec())
        job = store.claim_next(worker="w1")
        assert store.requeue(job, exit_code=17, token=job.token)
        # claim_next returns a detached snapshot: the live job moved,
        # the claimer's copy did not
        assert job.state == RUNNING
        live = store.get(job.job_id)
        assert (live.state, live.resumes) == (QUEUED, 1)
        job = store.claim_next(worker="w1")
        assert job.token == 2  # every lease advances the fence
        assert store.release(job, token=job.token)
        live = store.get(job.job_id)
        assert (live.state, live.resumes) == (QUEUED, 1)
        assert store.counters()["job_resumes"] == 1

    def test_replay_restores_table_and_leases(self, tmp_path):
        store = fast_store(tmp_path)
        store.submit(small_spec())           # stays queued
        done = store.claim_next(worker="w1")
        store.finish(done, DONE, exit_code=0, token=done.token)
        store.submit(small_spec())
        crashed = store.claim_next(worker="w1")
        store.requeue(crashed, exit_code=17, token=crashed.token)
        running = store.claim_next(worker="w1")
        assert running.state == RUNNING      # the worker "dies" here

        replayed = fast_store(tmp_path)
        jobs = {job.job_id: job for job in replayed.jobs()}
        assert jobs["job-0001"].state == DONE
        # the mid-flight lease survives replay — a worker elsewhere
        # may still legitimately hold it; only the reaper may decide
        assert jobs["job-0002"].state == RUNNING
        assert jobs["job-0002"].token == running.token
        assert replayed.counters()["jobs_done"] == 1
        # ...and with its heartbeat long silent, the reaper requeues
        replayed.reap_expired(now=time.time()
                              + replayed.lease_ttl + 1.0)
        assert replayed.get("job-0002").state == QUEUED
        assert replayed.get("job-0002").resumes == 2
        # new submissions continue the id sequence
        assert replayed.submit(small_spec()).job_id == "job-0003"

    def test_fresh_heartbeat_blocks_replay_reap(self, tmp_path):
        """A restarted server must not steal a job a live worker on
        another host is still running."""
        store = fast_store(tmp_path)
        store.submit(small_spec())
        job = store.claim_next(worker="agent@other:1")
        Heartbeat(str(tmp_path), "agent@other:1",
                  interval=0.0).write(jobs=[job.job_id], force=True)
        replayed = fast_store(tmp_path)
        assert replayed.get(job.job_id).state == RUNNING
        assert replayed.reap_expired() == []
        assert replayed.get(job.job_id).state == RUNNING


class TestPoolSettlement:
    """Exercise the exit-code → job-state translation without
    spawning processes (the pool thread is never started)."""

    def make(self, tmp_path, **kwargs):
        store = fast_store(tmp_path,
                           default_max_attempts=kwargs.pop(
                               "max_attempts", 3))
        return store, WorkerPool(store, **kwargs)

    def test_exit_zero_is_done(self, tmp_path):
        store, pool = self.make(tmp_path)
        store.submit(small_spec())
        job = store.claim_next(worker=pool.worker_id)
        pool._settle(job.job_id, 0, job.token)
        assert store.get(job.job_id).state == DONE

    def test_crash_requeues_until_max_attempts(self, tmp_path):
        store, pool = self.make(tmp_path, max_attempts=2)
        store.submit(small_spec())
        job = store.claim_next(worker=pool.worker_id)
        pool._settle(job.job_id, 17, job.token)
        assert store.get(job.job_id).state == QUEUED
        job = store.claim_next(worker=pool.worker_id)
        assert job.attempts == 2
        pool._settle(job.job_id, 17, job.token)
        assert store.get(job.job_id).state == FAILED
        assert "final attempt" in store.get(job.job_id).error

    def test_spec_retries_override_pool_default(self, tmp_path):
        store, pool = self.make(tmp_path, max_attempts=3)
        store.submit(small_spec(retries=0))
        job = store.claim_next(worker=pool.worker_id)
        pool._settle(job.job_id, 17, job.token)
        assert store.get(job.job_id).state == FAILED

    def test_bad_job_exit_fails_without_retry(self, tmp_path):
        store, pool = self.make(tmp_path)
        store.submit(small_spec())
        job = store.claim_next(worker=pool.worker_id)
        pool._settle(job.job_id, 3, job.token)
        assert store.get(job.job_id).state == FAILED
        assert store.get(job.job_id).resumes == 0

    def test_stale_settle_is_fenced(self, tmp_path):
        """A pool that stalls past its lease cannot double-commit:
        its late settle carries a superseded token."""
        store, pool = self.make(tmp_path)
        store.submit(small_spec())
        job = store.claim_next(worker=pool.worker_id)
        stale_token = job.token
        future = time.time() + store.lease_ttl + 1.0
        store.reap_expired(now=future)
        fresh = store.claim_next(worker="agent@other:1",
                                 now=future + 0.1)
        pool._settle(job.job_id, 0, stale_token)
        assert store.get(job.job_id).state == RUNNING
        assert store.get(job.job_id).worker == "agent@other:1"
        assert store.counters()["writes_fenced"] == 1
        assert store.finish(fresh, DONE, token=fresh.token)

    def test_cancel_queued_job(self, tmp_path):
        store, pool = self.make(tmp_path)
        job = store.submit(small_spec())
        assert pool.cancel(job) is True
        assert store.get(job.job_id).state == CANCELLED
