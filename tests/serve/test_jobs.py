"""Unit tests for the journaled job store and the worker pool's
settlement logic (no HTTP, no real flows)."""

import pytest

from repro.serve import CANCELLED, DONE, FAILED, JobStore, QUEUED, RUNNING
from repro.serve.jobs import JobSpecError
from repro.serve.pool import WorkerPool

from tests.serve.conftest import small_spec


class TestStore:
    def test_submit_assigns_sequential_ids(self, tmp_path):
        store = JobStore(str(tmp_path))
        first = store.submit(small_spec())
        second = store.submit(small_spec())
        assert [first.job_id, second.job_id] == ["job-0001", "job-0002"]
        assert first.state == QUEUED

    def test_submit_rejects_bad_spec_and_counts_it(self, tmp_path):
        store = JobStore(str(tmp_path))
        with pytest.raises(JobSpecError):
            store.submit({"design": {"kind": "nope"}})
        assert store.counters()["jobs_rejected"] == 1
        assert store.counters()["jobs_submitted"] == 0

    def test_claim_next_is_fifo(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.submit(small_spec())
        store.submit(small_spec())
        assert store.claim_next().job_id == "job-0001"
        assert store.claim_next().job_id == "job-0002"
        assert store.claim_next() is None

    def test_requeue_counts_resume_release_does_not(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.submit(small_spec())
        job = store.claim_next()
        store.requeue(job, exit_code=17)     # crash → resume
        assert (job.state, job.resumes) == (QUEUED, 1)
        job = store.claim_next()
        store.release(job)                   # graceful shutdown
        assert (job.state, job.resumes) == (QUEUED, 1)
        assert store.counters()["job_resumes"] == 1

    def test_replay_restores_table_and_requeues_running(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.submit(small_spec())           # stays queued
        done = store.claim_next()
        store.finish(done, DONE, exit_code=0)
        store.submit(small_spec())
        crashed = store.claim_next()
        store.requeue(crashed, exit_code=17)
        running = store.claim_next()
        assert running.state == RUNNING      # server "dies" here

        replayed = JobStore(str(tmp_path))
        jobs = {job.job_id: job for job in replayed.jobs()}
        assert jobs["job-0001"].state == DONE
        # the job that was mid-flight goes back in line on replay
        assert jobs["job-0002"].state == QUEUED
        assert jobs["job-0002"].resumes == 1
        assert replayed.counters()["jobs_done"] == 1
        # new submissions continue the id sequence
        assert replayed.submit(small_spec()).job_id == "job-0003"


class TestPoolSettlement:
    """Exercise the exit-code → job-state translation without
    spawning processes (the pool thread is never started)."""

    def make(self, tmp_path, **kwargs):
        store = JobStore(str(tmp_path))
        return store, WorkerPool(store, **kwargs)

    def test_exit_zero_is_done(self, tmp_path):
        store, pool = self.make(tmp_path)
        store.submit(small_spec())
        job = store.claim_next()
        pool._settle(job.job_id, 0)
        assert store.get(job.job_id).state == DONE

    def test_crash_requeues_until_max_attempts(self, tmp_path):
        store, pool = self.make(tmp_path, max_attempts=2)
        store.submit(small_spec())
        job = store.claim_next()
        pool._settle(job.job_id, 17)
        assert store.get(job.job_id).state == QUEUED
        job = store.claim_next()
        assert job.attempts == 2
        pool._settle(job.job_id, 17)
        assert store.get(job.job_id).state == FAILED
        assert "final attempt" in store.get(job.job_id).error

    def test_bad_job_exit_fails_without_retry(self, tmp_path):
        store, pool = self.make(tmp_path)
        store.submit(small_spec())
        job = store.claim_next()
        pool._settle(job.job_id, 3)
        assert store.get(job.job_id).state == FAILED
        assert store.get(job.job_id).resumes == 0

    def test_cancel_queued_job(self, tmp_path):
        store, pool = self.make(tmp_path)
        job = store.submit(small_spec())
        assert pool.cancel(job) is True
        assert store.get(job.job_id).state == CANCELLED
