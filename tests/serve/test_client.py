"""Unit tests for the client's resilience: connection retries, 429
``Retry-After`` honoring, and the capped-backoff ``wait`` poll — all
against a scripted stdlib HTTP stub, no FlowServer."""

import http.server
import json
import socket
import threading
import time

import pytest

from repro.serve import client
from repro.serve.client import ServiceError, _retryable


class ScriptedServer:
    """An HTTP server that plays back a list of (status, headers,
    body) responses in order, repeating the last one forever."""

    def __init__(self, responses, port=0):
        self.responses = list(responses)
        self.requests = []
        outer = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def _play(self):
                outer.requests.append((self.command, self.path))
                index = min(len(outer.requests) - 1,
                            len(outer.responses) - 1)
                status, headers, body = outer.responses[index]
                payload = json.dumps(body).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                for name, value in headers.items():
                    self.send_header(name, value)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            do_GET = do_POST = _play

            def log_message(self, *args):
                pass

        self.httpd = http.server.ThreadingHTTPServer(
            ("127.0.0.1", port), Handler)
        self.url = "http://127.0.0.1:%d" % self.httpd.server_port
        self.thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True)
        self.thread.start()

    def close(self):
        self.httpd.shutdown()
        self.httpd.server_close()


@pytest.fixture
def scripted():
    servers = []

    def make(responses):
        server = ScriptedServer(responses)
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.close()


class TestBackpressureRetry:
    def test_429_retry_after_is_honored(self, scripted):
        server = scripted([
            (429, {"Retry-After": "0"}, {"error": "queue full"}),
            (200, {}, {"job_id": "job-0001"}),
        ])
        job_id = client.submit(server.url, {"design": {"name": "D"}})
        assert job_id == "job-0001"
        assert [method for method, _ in server.requests] \
            == ["POST", "POST"]

    def test_429_exhaustion_raises_with_retry_after(self, scripted):
        server = scripted([
            (429, {"Retry-After": "7"}, {"error": "queue full"}),
        ])
        with pytest.raises(ServiceError) as exc:
            client.submit(server.url, {"design": {"name": "D"}},
                          retries=0)
        assert exc.value.code == 429
        assert exc.value.retry_after == 7.0
        assert exc.value.message == "queue full"
        assert len(server.requests) == 1

    def test_429_budget_bounds_the_retries(self, scripted):
        server = scripted([
            (429, {"Retry-After": "0"}, {"error": "queue full"}),
        ])
        with pytest.raises(ServiceError):
            client.request(server.url, "/jobs", payload={},
                           retries=2)
        assert len(server.requests) == 3  # first try + 2 retries


class TestConnectionRetry:
    def test_refused_post_retries_until_server_appears(self):
        # reserve a port, listen on it only after a beat — the first
        # attempts are genuinely refused
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        url = "http://127.0.0.1:%d" % port
        server_box = {}

        def come_up_late():
            time.sleep(0.4)
            server_box["server"] = ScriptedServer(
                [(200, {}, {"job_id": "job-0001"})], port=port)

        threading.Thread(target=come_up_late, daemon=True).start()
        try:
            answer = client.request(url, "/jobs", payload={},
                                    retries=6, backoff=0.1)
            assert answer["job_id"] == "job-0001"
        finally:
            server = server_box.get("server")
            if server is not None:
                server.close()

    def test_retryable_classification(self):
        refused = ConnectionRefusedError()
        reset = ConnectionResetError()
        # refused never reached a server: always safe
        assert _retryable(refused, idempotent=False)
        assert _retryable(refused, idempotent=True)
        # reset may have landed: only body-less requests retry
        assert not _retryable(reset, idempotent=False)
        assert _retryable(reset, idempotent=True)
        assert not _retryable(OSError("weird"), idempotent=True)


class TestWaitBackoff:
    def test_wait_polls_until_terminal(self, scripted):
        running = (200, {}, {"state": "running"})
        server = scripted([running, running, running,
                           (200, {}, {"state": "done"})])
        state = client.wait(server.url, "job-0001", timeout=30.0,
                            poll=0.01, poll_cap=0.05)
        assert state["state"] == "done"
        assert len(server.requests) == 4

    def test_wait_times_out(self, scripted):
        server = scripted([(200, {}, {"state": "running"})])
        with pytest.raises(TimeoutError):
            client.wait(server.url, "job-0001", timeout=0.2,
                        poll=0.01, poll_cap=0.05)
