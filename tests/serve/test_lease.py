"""Unit tests for the fleet contract: leases, heartbeats, fencing
tokens, retry budgets, priorities, and admission control — all
against real journals on disk, no HTTP, no real flows."""

import time

import pytest

from repro.persist import (
    FlowPersist,
    Journal,
    PersistConfig,
    RunDir,
    RunFencedError,
)
from repro.serve import DONE, FAILED, JobStore, QUEUED, QueueFull, RUNNING
from repro.serve.lease import (
    Heartbeat,
    backoff_delay,
    fence_guard,
    live_workers,
    read_fence,
    read_heartbeat_docs,
    read_heartbeats,
    worker_identity,
    write_fence,
)

from tests.serve.conftest import small_spec


def store_at(tmp_path, **kwargs):
    kwargs.setdefault("lease_ttl", 5.0)
    return JobStore(str(tmp_path), **kwargs)


class TestLeasePrimitives:
    def test_worker_identity_is_kind_host_pid(self):
        ident = worker_identity("agent")
        assert ident.startswith("agent@")
        assert ident.rsplit(":", 1)[1].isdigit()

    def test_backoff_is_exponential_and_capped(self):
        assert backoff_delay(0, base=0.5, cap=30.0) == 0.5
        assert backoff_delay(2, base=0.5, cap=30.0) == 2.0
        assert backoff_delay(10, base=0.5, cap=30.0) == 30.0
        assert backoff_delay(3, base=0.0) == 0.0

    def test_heartbeat_roundtrip_and_liveness(self, tmp_path):
        hb = Heartbeat(str(tmp_path), "agent@host:7", interval=0.0)
        assert hb.write(jobs=["job-0001"], force=True)
        beats = read_heartbeats(str(tmp_path))
        assert "agent@host:7" in beats
        assert live_workers(str(tmp_path), ttl=60.0) \
            == ["agent@host:7"]
        assert live_workers(str(tmp_path), ttl=60.0,
                            now=time.time() + 120.0) == []
        hb.remove()
        assert read_heartbeats(str(tmp_path)) == {}

    def test_heartbeat_rate_limits_itself(self, tmp_path):
        hb = Heartbeat(str(tmp_path), "w", interval=3600.0)
        assert hb.write(force=True)
        assert not hb.write()
        assert hb.write(force=True)

    def test_foreign_files_are_ignored(self, tmp_path):
        workers = tmp_path / "workers"
        workers.mkdir()
        (workers / "junk.json").write_text("{not json")
        (workers / "alien.json").write_text('{"no": "worker"}')
        assert read_heartbeats(str(tmp_path)) == {}


class TestLeasing:
    def test_tokens_increase_monotonically_per_job(self, tmp_path):
        store = store_at(tmp_path, backoff_base=0.0)
        store.submit(small_spec())
        tokens = []
        for _ in range(3):
            job = store.claim_next(worker="w")
            tokens.append(job.token)
            store.requeue(job, exit_code=1, token=job.token)
        assert tokens == [1, 2, 3]

    def test_expired_lease_is_reaped_and_resumed(self, tmp_path):
        store = store_at(tmp_path, backoff_base=0.0)
        store.submit(small_spec())
        job = store.claim_next(worker="dead@host:1")
        # within the TTL nothing happens...
        assert store.reap_expired(now=job.leased_at + 1.0) == []
        assert store.get(job.job_id).state == RUNNING
        # ...past it (and with no heartbeat) the job goes back in line
        future = job.leased_at + store.lease_ttl + 0.1
        reaped = store.reap_expired(now=future)
        assert [j.job_id for j in reaped] == [job.job_id]
        fresh = store.get(job.job_id)
        assert (fresh.state, fresh.resumes) == (QUEUED, 1)
        assert store.counters()["leases_expired"] == 1

    def test_heartbeat_keeps_a_slow_lease_alive(self, tmp_path):
        store = store_at(tmp_path)
        store.submit(small_spec())
        moment = time.time()
        # grant time is ancient (past the TTL grace)...
        job = store.claim_next(worker="slow@host:1",
                               now=moment - 3 * store.lease_ttl)
        # ...but the heartbeat is fresh and lists the job
        hb = Heartbeat(str(tmp_path), "slow@host:1", interval=0.0)
        hb.write(jobs=[job.job_id], force=True)
        assert store.reap_expired(now=moment) == []
        assert store.get(job.job_id).state == RUNNING

    def test_restarted_worker_does_not_shield_orphaned_lease(
            self, tmp_path):
        """A worker that crashed and came back under the same fixed
        --worker-id heartbeats freshly but no longer lists the job —
        freshness alone must not keep the orphan RUNNING forever."""
        store = store_at(tmp_path, backoff_base=0.0)
        store.submit(small_spec())
        moment = time.time()
        job = store.claim_next(worker="fixed-id@host:1",
                               now=moment - store.lease_ttl - 1.0)
        # the restarted process beats the same id, running nothing
        hb = Heartbeat(str(tmp_path), "fixed-id@host:1", interval=0.0)
        hb.write(jobs=[], force=True)
        assert read_heartbeat_docs(str(tmp_path))[
            "fixed-id@host:1"]["jobs"] == []
        # fresh heartbeat, stale grant, job unlisted: reaped
        reaped = store.reap_expired(now=moment)
        assert [j.job_id for j in reaped] == [job.job_id]
        assert store.get(job.job_id).state == QUEUED

    def test_claim_returns_detached_snapshot(self, tmp_path):
        """The claimer's token is captured under the store lock; a
        foreign expire+re-lease cannot mutate it afterwards."""
        store = store_at(tmp_path, backoff_base=0.0)
        store.submit(small_spec())
        mine = store.claim_next(worker="w1")
        store.reap_expired(now=time.time() + store.lease_ttl + 1.0)
        theirs = store.claim_next(worker="w2",
                                  now=time.time() + store.lease_ttl
                                  + 2.0)
        assert (mine.token, theirs.token) == (1, 2)
        assert mine.worker == "w1"

    def test_requeue_gates_the_next_claim_behind_backoff(self, tmp_path):
        store = store_at(tmp_path, backoff_base=10.0, backoff_cap=60.0)
        store.submit(small_spec())
        job = store.claim_next(worker="w")
        moment = time.time()
        store.requeue(job, exit_code=9, token=job.token, now=moment)
        assert store.get(job.job_id).not_before \
            == pytest.approx(moment + 10.0)
        assert store.claim_next(worker="w", now=moment + 5.0) is None
        assert store.claim_next(worker="w", now=moment + 10.5) \
            .job_id == job.job_id

    def test_release_skips_backoff_and_resume_count(self, tmp_path):
        store = store_at(tmp_path, backoff_base=10.0)
        store.submit(small_spec())
        job = store.claim_next(worker="w")
        store.release(job, token=job.token)
        fresh = store.get(job.job_id)
        assert (fresh.resumes, fresh.not_before) == (0, time.time()
                                                     + 0.0) \
            or fresh.not_before <= time.time()
        assert store.claim_next(worker="w") is not None


class TestFencing:
    def test_stale_finish_is_rejected_and_journaled(self, tmp_path):
        store = store_at(tmp_path, backoff_base=0.0)
        store.submit(small_spec())
        zombie = store.claim_next(worker="zombie@host:1")
        stale = zombie.token
        future = time.time() + store.lease_ttl + 1.0
        store.reap_expired(now=future)
        healthy = store.claim_next(worker="healthy@host:2",
                                   now=future + 0.1)
        assert healthy.token == stale + 1
        # the zombie revives and tries to double-commit
        assert store.finish(zombie, DONE, token=stale,
                            worker="zombie@host:1") is False
        assert store.get(zombie.job_id).state == RUNNING
        assert store.get(zombie.job_id).worker == "healthy@host:2"
        fenced = store.journal.last_of_type("fenced")
        assert fenced is not None
        assert (fenced["op"], fenced["token"], fenced["current"]) \
            == ("finish", stale, stale + 1)
        assert fenced["worker"] == "zombie@host:1"
        assert store.counters()["writes_fenced"] == 1

    def test_stale_requeue_is_rejected(self, tmp_path):
        store = store_at(tmp_path, backoff_base=0.0)
        store.submit(small_spec())
        zombie = store.claim_next(worker="z")
        stale = zombie.token
        future = time.time() + store.lease_ttl + 1.0
        store.reap_expired(now=future)
        store.claim_next(worker="h", now=future + 0.1)
        assert store.requeue(zombie, exit_code=1, token=stale,
                             worker="z") is False
        assert store.get(zombie.job_id).state == RUNNING

    def test_late_write_after_terminal_is_fenced(self, tmp_path):
        store = store_at(tmp_path, backoff_base=0.0)
        store.submit(small_spec())
        job = store.claim_next(worker="w")
        assert store.finish(job, DONE, token=job.token)
        assert store.finish(job, FAILED, token=job.token) is False
        assert store.get(job.job_id).state == DONE
        assert store.counters()["writes_fenced"] == 1

    def test_finish_exit_survives_replay(self, tmp_path):
        """The finish record carries the worker's exit code, so a
        replayed table agrees with the process that wrote it."""
        store = store_at(tmp_path, backoff_base=0.0)
        store.submit(small_spec())
        job = store.claim_next(worker="w")
        store.finish(job, FAILED, exit_code=9, token=job.token,
                     error="boom")
        assert store.get(job.job_id).last_exit == 9
        replayed = store_at(tmp_path)
        assert replayed.get(job.job_id).last_exit == 9

    def test_fence_counts_survive_replay(self, tmp_path):
        store = store_at(tmp_path, backoff_base=0.0)
        store.submit(small_spec())
        job = store.claim_next(worker="w")
        store.finish(job, DONE, token=job.token)
        store.finish(job, DONE, token=job.token)  # fenced
        replayed = store_at(tmp_path)
        assert replayed.counters()["writes_fenced"] == 1
        assert replayed.counters()["jobs_done"] == 1


class TestRunDirFence:
    """The fencing token extends into the run directory: a zombie's
    flow must abort before its next durable write, not just have its
    final settle rejected."""

    def test_claim_stamps_the_fence(self, tmp_path):
        store = store_at(tmp_path, backoff_base=0.0)
        store.submit(small_spec())
        job = store.claim_next(worker="w1")
        assert read_fence(store.run_path(job.job_id)) == job.token == 1
        store.reap_expired(now=time.time() + store.lease_ttl + 1.0)
        store.claim_next(worker="w2",
                         now=time.time() + store.lease_ttl + 2.0)
        assert read_fence(store.run_path(job.job_id)) == 2

    def test_guard_passes_holder_blocks_zombie(self, tmp_path):
        run = str(tmp_path / "run")
        write_fence(run, 1, "w1")
        fence_guard(run, 1)()                 # current holder: fine
        write_fence(run, 2, "w2")             # the lease moved on
        with pytest.raises(RunFencedError):
            fence_guard(run, 1)()
        fence_guard(run, 2)()                 # the new holder: fine
        # an unfenced run dir (CLI --run-dir, no lease) never trips
        fence_guard(str(tmp_path / "bare"), 7)()

    def test_fenced_persist_aborts_before_the_write(self, tmp_path):
        """A FlowPersist whose lease was superseded raises before
        appending, leaving the journal exactly as the new holder
        expects to find it."""
        run = str(tmp_path / "run")
        rundir = RunDir.create(run, {})
        journal = Journal.create(rundir.journal_path)
        write_fence(run, 1, "w1")
        persist = FlowPersist(rundir, journal, PersistConfig(), None,
                              fence=fence_guard(run, 1))
        persist.phase(0)                      # holder writes freely
        write_fence(run, 2, "w2")             # re-leased elsewhere
        with pytest.raises(RunFencedError):
            persist.phase(10)
        assert len(Journal.open(rundir.journal_path)) == 1


class TestRetryBudget:
    def test_expiry_past_budget_fails_the_job(self, tmp_path):
        store = store_at(tmp_path, backoff_base=0.0,
                         default_max_attempts=2)
        store.submit(small_spec())
        moment = time.time()
        store.claim_next(worker="w1", now=moment)
        store.reap_expired(now=moment + store.lease_ttl + 1.0)
        job = store.claim_next(worker="w2",
                               now=moment + store.lease_ttl + 2.0)
        assert job.attempts == 2
        store.reap_expired(now=moment + 2 * store.lease_ttl + 3.0)
        final = store.get(job.job_id)
        assert final.state == FAILED
        assert "final attempt 2/2" in final.error

    def test_spec_retries_beats_store_default(self, tmp_path):
        store = store_at(tmp_path, backoff_base=0.0,
                         default_max_attempts=5)
        store.submit(small_spec(retries=0))
        moment = time.time()
        store.claim_next(worker="w", now=moment)
        store.reap_expired(now=moment + store.lease_ttl + 1.0)
        assert store.get("job-0001").state == FAILED


class TestSchedulingPolicy:
    def test_priority_beats_fifo(self, tmp_path):
        store = store_at(tmp_path)
        store.submit(small_spec())
        store.submit(small_spec(priority=10))
        store.submit(small_spec(priority=10))
        order = [store.claim_next(worker="w").job_id for _ in range(3)]
        # highest priority first, FIFO within a priority
        assert order == ["job-0002", "job-0003", "job-0001"]

    def test_queue_classes_filter_claims(self, tmp_path):
        store = store_at(tmp_path)
        store.submit(small_spec(queue="bulk"))
        store.submit(small_spec(queue="fast"))
        fast_only = store.claim_next(worker="w", queues={"fast"})
        assert fast_only.job_id == "job-0002"
        assert store.claim_next(worker="w", queues={"fast"}) is None
        assert store.claim_next(worker="w").job_id == "job-0001"


class TestAdmissionControl:
    def test_queue_cap_throttles_submissions(self, tmp_path):
        store = store_at(tmp_path, queue_cap=2)
        store.submit(small_spec())
        store.submit(small_spec())
        with pytest.raises(QueueFull) as exc:
            store.submit(small_spec())
        assert exc.value.retry_after > 0
        assert store.counters()["jobs_throttled"] == 1
        assert store.counters()["jobs_submitted"] == 2
        # leasing one out makes room again
        store.claim_next(worker="w")
        assert store.submit(small_spec()).job_id == "job-0003"


class TestCrossProcessView:
    """Two JobStore instances on one state dir — the same contract
    the server pool and a remote agent share."""

    def test_second_store_sees_submissions_and_finishes(self, tmp_path):
        a = store_at(tmp_path)
        b = store_at(tmp_path, backoff_base=0.0)
        a.submit(small_spec())
        job = b.claim_next(worker="b")   # b refreshed and leased
        assert job is not None
        assert a.get(job.job_id).state == RUNNING
        assert b.finish(job, DONE, token=job.token)
        assert a.get(job.job_id).state == DONE
        assert a.counters()["jobs_done"] == 1

    def test_id_sequence_is_shared(self, tmp_path):
        a = store_at(tmp_path)
        b = store_at(tmp_path)
        assert a.submit(small_spec()).job_id == "job-0001"
        assert b.submit(small_spec()).job_id == "job-0002"
        assert a.submit(small_spec()).job_id == "job-0003"

    def test_double_claim_is_impossible(self, tmp_path):
        a = store_at(tmp_path)
        b = store_at(tmp_path)
        a.submit(small_spec())
        first = a.claim_next(worker="a")
        second = b.claim_next(worker="b")
        assert first is not None and second is None
