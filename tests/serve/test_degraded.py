"""Degraded-mode service: dead disk → read-only, alive, honest.

The contract under test: when the state dir stops taking durable
writes the server (a) reports ``degraded`` on the very next
``/healthz`` scrape, (b) refuses submits with 503 + ``Retry-After``,
(c) keeps serving status, results, and ``/metrics`` from what is
already on disk, and (d) recovers by itself once the disk does.
Workers translate a fatal storage failure into ``IO_EXIT_CODE`` (5),
which the supervisor requeues like any transient crash.
"""

import json
import shutil
import urllib.error
import urllib.request

import pytest

from repro.persist import IO_EXIT_CODE, IoPolicy
from repro.persist import io as storage
from repro.serve.worker import run_job

from tests.serve.conftest import small_spec


@pytest.fixture(autouse=True)
def clean_shim():
    storage.clear_fault_hook()
    storage.reset_counters()
    old = storage.get_policy()
    storage.set_policy(IoPolicy(retries=2, sleep=lambda _s: None))
    yield
    storage.set_policy(old)
    storage.clear_fault_hook()
    storage.reset_counters()


def http_get(url, path):
    with urllib.request.urlopen(url + path) as response:
        body = response.read()
    if path == "/metrics":
        return response.status, body.decode()
    return response.status, json.loads(body)


def http_post(url, path, payload):
    request = urllib.request.Request(
        url + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), \
                json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), \
            json.loads(error.read())


def dead_disk_hook(op, path):
    """Every durable write into the state dir hits ENOSPC."""
    return "disk-full"


class TestDegradedMode:
    def test_flip_503_reads_survive_and_recover(self, serve_factory):
        server = serve_factory(workers=0)
        url = server.url

        status, health = http_get(url, "/healthz")
        assert status == 200
        assert health["degraded"] is False
        assert health["degraded_reason"] is None

        storage.set_fault_hook(dead_disk_hook)
        # (a) visible within one scrape
        _, health = http_get(url, "/healthz")
        assert health["degraded"] is True
        assert "unwritable" in health["degraded_reason"]
        # (b) submits refused with backpressure semantics
        code, headers, body = http_post(url, "/jobs", small_spec())
        assert code == 503
        assert headers.get("Retry-After")
        assert body["degraded"] is True
        # (c) the read surface stays up
        status, listing = http_get(url, "/jobs")
        assert status == 200 and listing == {"jobs": []}
        status, metrics = http_get(url, "/metrics")
        assert status == 200
        assert "repro_storage_degraded 1" in metrics
        # (d) the disk comes back; no restart needed
        storage.clear_fault_hook()
        _, health = http_get(url, "/healthz")
        assert health["degraded"] is False
        status, metrics = http_get(url, "/metrics")
        assert "repro_storage_degraded 0" in metrics

    def test_startup_fsck_report_and_gauges(self, serve_factory):
        server = serve_factory(workers=0)
        report = server.fsck_report
        assert report is not None
        assert report["format"] == "repro-fsck-report"
        assert report["unrepaired"] == 0
        _, metrics = http_get(server.url, "/metrics")
        assert "repro_storage_fsck_unrepaired 0" in metrics
        assert "repro_storage_io_retries" in metrics
        assert "repro_storage_io_faults_fatal" in metrics

    def test_fsck_degraded_clears_after_operator_repair(
            self, tmp_path, serve_factory):
        """Degraded mode latched on unrepaired fsck findings must
        lift once the operator repairs: a successful probe re-scrubs
        (detect-only) instead of trusting the startup snapshot."""
        # an unrepairable finding: a run dir with no journal at all
        bogus = tmp_path / "state" / "runs" / "job-0999"
        bogus.mkdir(parents=True)
        server = serve_factory(workers=0)
        server.fsck_rescrub_interval = 0.0
        assert server.fsck_report["unrepaired"] > 0
        _, health = http_get(server.url, "/healthz")
        assert health["degraded"] is True
        assert "fsck" in health["degraded_reason"]
        code, _, _ = http_post(server.url, "/jobs", small_spec())
        assert code == 503
        # the operator repairs (here: removes the foreign debris);
        # the next probe re-scrubs and lifts the flag, no restart
        shutil.rmtree(str(bogus))
        _, health = http_get(server.url, "/healthz")
        assert health["degraded"] is False
        assert health["fsck_unrepaired"] == 0
        code, _, body = http_post(server.url, "/jobs", small_spec())
        assert code == 202
        assert body["job_id"]

    def test_submit_accepted_after_recovery(self, serve_factory):
        server = serve_factory(workers=0)
        storage.set_fault_hook(dead_disk_hook)
        code, _, _ = http_post(server.url, "/jobs", small_spec())
        assert code == 503
        storage.clear_fault_hook()
        code, _, body = http_post(server.url, "/jobs", small_spec())
        assert code == 202
        assert body["job_id"]


class TestWorkerStorageFailure:
    def test_fatal_io_maps_to_documented_exit_code(self, tmp_path):
        # io_rate=1.0 faults every storage op; the transient kinds
        # exhaust the retry budget on the very first durable write
        spec = small_spec(chaos={"seed": 3, "rate": 0.0,
                                 "io_rate": 1.0})
        code = run_job("job-x", spec, str(tmp_path / "run"))
        assert code == IO_EXIT_CODE
        assert storage.counters()["io_faults_fatal"] >= 1
        # the armed hook must not leak out of the worker path
        assert storage._fault_hook is None

    def test_io_chaos_does_not_arm_on_resume(self, tmp_path,
                                             monkeypatch):
        armed = []
        from repro.guard import FaultInjector
        monkeypatch.setattr(
            FaultInjector, "arm_io",
            lambda self: armed.append(True))
        monkeypatch.setattr(
            "repro.serve.worker._resumable", lambda path: True)
        spec = small_spec(chaos={"seed": 3, "rate": 0.0,
                                 "io_rate": 1.0})
        # the resume leg fails fast on the empty dir; what matters
        # is that io chaos stayed disarmed for a resumed attempt
        run_job("job-x", spec, str(tmp_path / "run"))
        assert armed == []
