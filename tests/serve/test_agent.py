"""Fleet chaos tests: real ``python -m repro worker`` agent
processes on one shared state dir, killed and suspended for real.

These are the fleet-level acceptance scenarios:

* two agents, ``kill -9`` the one holding a job mid-transform — the
  survivor's reaper expires the lease and the job *resumes* on the
  survivor, ending with a report field-identical to an uninterrupted
  run of the same spec;
* an agent suspended past its lease (SIGSTOP) becomes a zombie: the
  job finishes elsewhere, and on revival (SIGCONT) the zombie's late
  settle carries a superseded fencing token — rejected and journaled,
  never applied.
"""

import json
import os
import signal
import subprocess
import sys
import time

import repro
from repro.persist import RunDir
from repro.serve import DONE, JobStore, RUNNING

from tests.serve.conftest import small_spec

#: generous bound for one tiny flow run (matches test_server.py)
JOB_TIMEOUT = 180.0

#: short enough that chaos tests converge fast, long enough that a
#: healthy agent (heartbeating at TTL/4) never looks dead under load
LEASE_TTL = 2.0

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(
    repro.__file__)))


def spawn_agent(state_dir, worker_id, log_path):
    """One standalone worker agent process attached to ``state_dir``."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep \
        + env.get("PYTHONPATH", "")
    log = open(log_path, "wb")
    proc = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro", "worker",
         "--state-dir", str(state_dir),
         "--worker-id", worker_id,
         "--lease-ttl", str(LEASE_TTL)],
        env=env, stdout=log, stderr=subprocess.STDOUT)
    proc._log = log  # keep the handle alive with the process
    return proc


def kill_all(*procs):
    for proc in procs:
        if proc.poll() is None:
            try:
                os.kill(proc.pid, signal.SIGCONT)  # in case suspended
            except OSError:
                pass
            proc.kill()
        proc.wait()
        proc._log.close()


def read_sink(state_dir, job_id):
    path = os.path.join(str(state_dir), "runs", job_id, "metrics.json")
    try:
        with open(path) as stream:
            return json.load(stream)
    except (OSError, ValueError):
        return None


def wait_for(predicate, timeout, message, poll=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise AssertionError("timed out: %s" % message)


def read_report(store, job_id):
    return RunDir.open(store.run_path(job_id)).read_report()


class TestKillNine:
    def test_killed_agent_job_resumes_on_survivor(self, tmp_path):
        """kill -9 mid-transform → the other agent resumes the job
        from its last snapshot and the report is bit-identical."""
        state = tmp_path / "state"
        store = JobStore(str(state), lease_ttl=LEASE_TTL)
        persist = {"snapshot_mode": "delta", "compact_every": 8}
        reference = store.submit(small_spec(persist=persist)).job_id
        victim = store.submit(small_spec(persist=persist)).job_id

        agents = {
            "agent-a@chaos:1": spawn_agent(state, "agent-a@chaos:1",
                                           tmp_path / "agent-a.log"),
            "agent-b@chaos:2": spawn_agent(state, "agent-b@chaos:2",
                                           tmp_path / "agent-b.log"),
        }
        try:
            # wait for the victim job to be leased AND visibly inside
            # the flow (its counter sink reports a live cut status)
            def mid_transform():
                job = store.get(victim)
                if job.state != RUNNING:
                    return None
                sink = read_sink(state, victim)
                if sink is None or sink.get("status") is None:
                    return None
                if sink.get("final") or sink["status"] >= 100:
                    return None
                return job

            job = wait_for(mid_transform, JOB_TIMEOUT,
                           "victim job never reached mid-transform")
            holder = job.worker
            assert holder in agents, "unexpected worker %r" % holder
            os.kill(agents[holder].pid, signal.SIGKILL)
            agents[holder].wait()

            # the survivor reaps the silent lease and resumes the job;
            # both jobs must complete fleet-wide
            for job_id in (reference, victim):
                wait_for(lambda j=job_id:
                         store.get(j).state == DONE,
                         JOB_TIMEOUT,
                         "%s did not complete after the kill" % job_id,
                         poll=0.05)

            final = store.get(victim)
            assert final.attempts >= 2, \
                "the kill must have cost the victim an attempt"
            assert final.resumes >= 1
            assert final.worker != holder, \
                "the job must have finished on the *other* agent"
            assert store.counters()["leases_expired"] >= 1

            ref_report = read_report(store, reference)
            kill_report = read_report(store, victim)
            different = [key for key in ref_report
                         if ref_report[key] != kill_report.get(key)]
            assert different == [], \
                "resumed report diverges in %s" % different
            assert ref_report["state_signature"] \
                == kill_report["state_signature"]

            # graceful drain: SIGTERM the survivor, it must exit 0
            survivor = [p for wid, p in agents.items()
                        if wid != holder][0]
            survivor.terminate()
            assert survivor.wait(timeout=30.0) == 0
        finally:
            kill_all(*agents.values())


class TestZombieFencing:
    def test_revived_zombie_write_is_fenced(self, tmp_path):
        """SIGSTOP an agent past its lease; the job finishes elsewhere;
        on SIGCONT the zombie's late settle is rejected and the
        rejection is journaled."""
        state = tmp_path / "state"
        store = JobStore(str(state), lease_ttl=LEASE_TTL)
        job_id = store.submit(small_spec()).job_id

        zombie = spawn_agent(state, "zombie@chaos:1",
                             tmp_path / "zombie.log")
        try:
            def leased_and_running():
                job = store.get(job_id)
                sink = read_sink(state, job_id)
                return (job.state == RUNNING and sink is not None
                        and sink.get("status") is not None)

            wait_for(leased_and_running, JOB_TIMEOUT,
                     "zombie never started the job")
            stale_token = store.get(job_id).token
            os.kill(zombie.pid, signal.SIGSTOP)

            # a healthy in-process agent takes over: its reaper expires
            # the silent lease, re-leases, and finishes the flow
            from repro.serve import WorkerAgent
            healthy = WorkerAgent(str(state),
                                  worker_id="healthy@chaos:2",
                                  lease_ttl=LEASE_TTL, poll=0.05,
                                  max_jobs=1)
            assert healthy.run_forever() == 0
            finished = store.get(job_id)
            assert finished.state == DONE
            assert finished.worker == "healthy@chaos:2"
            assert finished.token > stale_token
            report_before = read_report(store, job_id)

            # revive the zombie: its flow run ends (or dies on the
            # mutated run dir) and its settle carries the stale token
            os.kill(zombie.pid, signal.SIGCONT)
            wait_for(lambda: store.counters()["writes_fenced"] >= 1,
                     JOB_TIMEOUT, "the zombie's late write was never "
                     "fenced", poll=0.1)

            fenced = store.journal.last_of_type("fenced")
            assert fenced["job_id"] == job_id
            assert fenced["token"] == stale_token
            assert fenced["worker"] == "zombie@chaos:1"
            # the fenced write changed nothing
            final = store.get(job_id)
            assert (final.state, final.worker) \
                == (DONE, "healthy@chaos:2")
            assert read_report(store, job_id) == report_before

            zombie.terminate()
            assert zombie.wait(timeout=30.0) == 0
            with open(tmp_path / "zombie.log") as log:
                assert "fenced: stale token" in log.read()
        finally:
            kill_all(zombie)
