"""Unit tests for the Prometheus text rendering of /metrics."""

from repro.serve import prometheus_metrics
from repro.serve.metrics import escape_label, metric_name


def sink_doc(job="job-0001", status=70, final=False):
    return {
        "format": "repro-counter-sink",
        "labels": {"job": job, "flow": "TPS"},
        "status": status,
        "final": final,
        "counters": {"timing.arrival_recomputes": 12,
                     "guard.faults": 0,
                     "not_an_int": "skipped"},
        "spans": {"total": 9, "seconds": 1.5,
                  "by_kind": {"transform": 7, "snapshot": 2}},
    }


class TestNames:
    def test_metric_name_sanitises(self):
        assert metric_name("timing.arrival-recomputes") \
            == "timing_arrival_recomputes"
        assert metric_name("0weird") == "_0weird"

    def test_escape_label(self):
        assert escape_label('a"b\nc\\d') == 'a\\"b\\nc\\\\d'


class TestRendering:
    def test_server_counters_keep_their_prefix(self):
        text = prometheus_metrics(
            {"server.jobs_done": 2, "pool.workers_busy": 1}, [])
        assert "repro_server_jobs_done 2" in text
        assert "repro_pool_workers_busy 1" in text
        assert "# TYPE repro_server_jobs_done counter" in text
        assert "# TYPE repro_pool_workers_busy gauge" in text

    def test_sink_counters_are_labeled(self):
        text = prometheus_metrics({}, [sink_doc()])
        assert ('repro_flow_timing_arrival_recomputes'
                '{flow="TPS",job="job-0001"} 12') in text
        assert 'repro_flow_spans_total{flow="TPS",job="job-0001"} 9' \
            in text
        assert ('repro_flow_spans_by_kind'
                '{flow="TPS",job="job-0001",kind="transform"} 7') in text
        assert 'repro_flow_cut_status{flow="TPS",job="job-0001"} 70' \
            in text
        assert "not_an_int" not in text

    def test_one_type_header_per_family(self):
        text = prometheus_metrics({}, [sink_doc("job-0001"),
                                       sink_doc("job-0002")])
        headers = [line for line in text.splitlines()
                   if line.startswith("# TYPE repro_flow_spans_total")]
        assert len(headers) == 1
        samples = [line for line in text.splitlines()
                   if line.startswith("repro_flow_spans_total{")]
        assert len(samples) == 2

    def test_empty_inputs_render_empty(self):
        assert prometheus_metrics({}, []) == "\n"

    def test_none_documents_are_skipped(self):
        text = prometheus_metrics({"server.jobs_done": 0}, [None, {}])
        assert "repro_server_jobs_done 0" in text


class TestHistogramRendering:
    def _hist(self, *values):
        from repro.obs.hist import LatencyHistogram
        hist = LatencyHistogram(bounds=(0.1, 1.0, 10.0))
        for value in values:
            hist.observe(value)
        return hist

    def test_histogram_family_is_prometheus_shaped(self):
        text = prometheus_metrics({}, [], {"job_run":
                                           self._hist(0.05, 5.0)})
        assert "# TYPE repro_latency_job_run_seconds histogram" in text
        assert 'repro_latency_job_run_seconds_bucket{le="0.1"} 1' \
            in text
        assert 'repro_latency_job_run_seconds_bucket{le="10.0"} 2' \
            in text
        assert 'repro_latency_job_run_seconds_bucket{le="+Inf"} 2' \
            in text
        assert "repro_latency_job_run_seconds_count 2" in text

    def test_buckets_are_cumulative(self):
        text = prometheus_metrics({}, [], {"s": self._hist(0.05, 0.5,
                                                           100.0)})
        assert 'repro_latency_s_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_latency_s_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_latency_s_seconds_bucket{le="10.0"} 2' in text
        assert 'repro_latency_s_seconds_bucket{le="+Inf"} 3' in text

    def test_empty_histograms_still_render(self):
        # dashboards rely on the series existing from scrape one
        text = prometheus_metrics({}, [], {"submit_to_lease":
                                           self._hist()})
        assert "repro_latency_submit_to_lease_seconds_count 0" in text
