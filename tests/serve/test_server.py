"""Integration tests: real FlowServer, real worker processes, tiny
real flows.

These are the service-level acceptance scenarios:

* submit → complete, with the stored report served over HTTP;
* a worker killed mid-job (``die_at_status``) is detected and the job
  *resumed* — the final report is identical to an uninterrupted run;
* graceful shutdown leaves queued/interrupted jobs journaled, and a
  new server on the same state dir finishes them;
* ``/metrics`` carries live per-job flow counters while a worker runs.
"""

import time

import pytest

from repro.serve import client
from repro.serve.client import ServiceError

from tests.serve.conftest import small_spec

#: generous bound for one tiny flow run inside a spawned worker
JOB_TIMEOUT = 180.0


class TestLifecycle:
    def test_submit_complete_result_and_errors(self, serve_factory):
        server = serve_factory(workers=1)
        url = server.url

        health = client.request(url, "/healthz")
        assert health["ok"] is True

        # errors first: unknown job, malformed spec
        with pytest.raises(ServiceError) as exc:
            client.status(url, "job-9999")
        assert exc.value.code == 404
        with pytest.raises(ServiceError) as exc:
            client.submit(url, {"design": {"kind": "nope"}})
        assert exc.value.code == 400

        job_id = client.submit(url, small_spec())
        assert job_id == "job-0001"

        # result before completion is a 409, not an empty body
        state = client.status(url, job_id)
        if state["state"] in ("queued", "running"):
            with pytest.raises(ServiceError) as exc:
                client.result(url, job_id)
            assert exc.value.code == 409

        # watch the run: the worker's counter sink must surface live
        # flow metrics through /metrics while the job is running
        live_metrics = None
        deadline = time.monotonic() + JOB_TIMEOUT
        while time.monotonic() < deadline:
            state = client.status(url, job_id)
            if (state["state"] == "running"
                    and state.get("cut_status") is not None):
                live_metrics = client.metrics(url)
                break
            if state["state"] in ("done", "failed", "cancelled"):
                break
            time.sleep(0.05)
        if live_metrics is not None:
            assert "repro_flow_spans_total{" in live_metrics
            assert 'job="job-0001"' in live_metrics

        state = client.wait(url, job_id, timeout=JOB_TIMEOUT)
        assert state["state"] == "done"
        assert state["attempts"] == 1
        assert state["resumes"] == 0

        report = client.result(url, job_id)
        assert report["flow"] == "TPS"
        assert "worst_slack" in report

        listing = client.request(url, "/jobs")
        assert [job["job_id"] for job in listing["jobs"]] == [job_id]

        text = client.metrics(url)
        assert "# TYPE repro_server_jobs_done counter" in text
        assert "repro_server_jobs_done 1" in text
        assert "repro_pool_workers_spawned 1" in text
        # finished jobs keep their labeled flow series
        assert 'repro_flow_spans_total{flow="TPS",job="job-0001"}' \
            in text
        assert 'repro_flow_cut_status{flow="TPS",job="job-0001"} 100' \
            in text


class TestCrashResume:
    def test_killed_worker_resumes_with_identical_report(
            self, serve_factory):
        """The acceptance bar: a die_at_status kill mid-flow must end
        in a *resumed* (not restarted) job whose FlowReport is
        field-identical to an uninterrupted run of the same spec."""
        server = serve_factory(workers=2)
        persist = {"snapshot_mode": "delta", "compact_every": 8}
        reference = client.submit(
            server.url, small_spec(persist=persist))
        killed = client.submit(
            server.url, small_spec(persist=persist, die_at_status=50))

        ref_state = client.wait(server.url, reference,
                                timeout=JOB_TIMEOUT)
        kill_state = client.wait(server.url, killed,
                                 timeout=JOB_TIMEOUT)

        assert ref_state["state"] == "done"
        assert ref_state["attempts"] == 1

        assert kill_state["state"] == "done"
        assert kill_state["attempts"] == 2, \
            "the kill point must have fired and cost one attempt"
        assert kill_state["resumes"] == 1

        ref_report = client.result(server.url, reference)
        kill_report = client.result(server.url, killed)
        different = [key for key in ref_report
                     if ref_report[key] != kill_report.get(key)]
        assert different == [], \
            "resumed report diverges in %s" % different
        assert ref_report["state_signature"] \
            == kill_report["state_signature"]

        text = client.metrics(server.url)
        assert "repro_pool_worker_crashes 1" in text
        assert "repro_server_job_resumes 1" in text


class TestRestart:
    def test_shutdown_requeues_and_restart_finishes(self, serve_factory):
        """Stopping a server with work in flight must lose nothing: the
        interrupted job and the still-queued job both complete on a new
        server pointed at the same state dir."""
        first = serve_factory("state", workers=1)
        running = client.submit(first.url, small_spec())
        queued = client.submit(first.url, small_spec(
            config={"seed": 2}))

        # let the first worker actually start before pulling the plug
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.status(first.url, running)["state"] == "running":
                break
            time.sleep(0.05)
        first.shutdown()

        # a post-shutdown submit must be refused, not silently dropped
        with pytest.raises((ServiceError, OSError)):
            client.submit(first.url, small_spec())

        second = serve_factory("state", workers=2)
        for job_id in (running, queued):
            state = client.wait(second.url, job_id, timeout=JOB_TIMEOUT)
            assert state["state"] == "done", \
                "%s did not survive the restart: %s" % (job_id, state)
        # the interrupted job needed a second worker process
        assert client.status(second.url, running)["attempts"] == 2


class TestBackpressure:
    def test_queue_cap_429_health_and_drain(self, serve_factory):
        """A full queue answers 429 + Retry-After; /healthz exposes
        the fleet gauges; /drain stops the pool claiming."""
        server = serve_factory(workers=0, queue_cap=1)
        url = server.url

        client.submit(url, small_spec())   # fills the only slot
        with pytest.raises(ServiceError) as exc:
            client.submit(url, small_spec(), retries=0)
        assert exc.value.code == 429
        assert exc.value.retry_after is not None
        assert exc.value.retry_after >= 1.0

        health = client.request(url, "/healthz")
        assert health["ok"] is True
        assert health["queue_depth"] == 1
        assert health["queue_cap"] == 1
        assert health["leases_active"] == 0
        assert health["draining"] is False
        # the pool front end heartbeats even with zero workers
        assert health["workers_live"] >= 1

        text = client.metrics(url)
        assert "repro_server_jobs_throttled 1" in text
        assert "# TYPE repro_server_jobs_queued gauge" in text
        assert "repro_server_jobs_queued 1" in text
        assert "repro_server_queue_cap 1" in text
        assert "repro_server_workers_live" in text

        answer = client.request(url, "/drain", payload={})
        assert answer["draining"] is True
        assert client.request(url, "/healthz")["draining"] is True


class TestCancel:
    def test_cancel_running_job(self, serve_factory):
        server = serve_factory(workers=1)
        job_id = client.submit(server.url, small_spec())
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if client.status(server.url, job_id)["state"] == "running":
                break
            time.sleep(0.05)
        answer = client.request(server.url,
                                "/jobs/%s/cancel" % job_id, payload={})
        assert answer["cancelling"] is True
        state = client.wait(server.url, job_id, timeout=60.0)
        assert state["state"] == "cancelled"
        # cancelling a terminal job is a conflict
        with pytest.raises(ServiceError) as exc:
            client.request(server.url, "/jobs/%s/cancel" % job_id,
                           payload={})
        assert exc.value.code == 409
