"""fleet-report aggregation: jobs + latency + merged payoff tables."""

import os

from repro.serve.fleet import fleet_lines, fleet_report, merge_reports
from repro.serve.jobs import JobStore
from repro.obs.analyze import analyze_trace

from tests.obs.test_analyze import span, write_trace


def spec():
    return {"flow": "TPS", "design": {"name": "Des1", "scale": 0.05}}


def _settled_job(store, records=None):
    """Submit → lease → finish one job; optionally drop a trace in
    its run dir."""
    job = store.submit(spec())
    leased = store.claim_next(worker="w1")
    store.finish(leased, "done", token=leased.token, exit_code=0,
                 worker="w1")
    if records is not None:
        run_path = store.run_path(job.job_id)
        os.makedirs(run_path, exist_ok=True)
        write_trace(os.path.join(run_path, "trace.jsonl"), records)
    return job


class TestMergeReports:
    def test_rows_sum_across_jobs(self):
        a = analyze_trace([span(name="reflow", dt=1.0,
                                counters={"x": 5})])
        b = analyze_trace([span(name="reflow", dt=2.0,
                                counters={"x": 7}),
                           span(name="sizing", seq=2)])
        rows = {r.name: r for r in merge_reports([a, b])}
        assert rows["reflow"].invocations == 2
        assert rows["reflow"].seconds == 3.0
        assert rows["reflow"].counters["x"] == 12
        assert rows["sizing"].invocations == 1


class TestFleetReport:
    def test_aggregates_jobs_latency_and_transforms(self, tmp_path):
        store = JobStore(str(tmp_path))
        _settled_job(store, [span(name="reflow", dt=0.5)])
        _settled_job(store, [span(name="reflow", dt=0.5),
                             span(name="sizing", seq=2)])
        _settled_job(store)  # untraced
        store.close()

        report = fleet_report(str(tmp_path))
        assert report["jobs"]["total"] == 3
        assert report["jobs"]["by_state"] == {"done": 3}
        assert report["latency"]["submit_to_lease"]["count"] == 3
        assert report["latency"]["job_run"]["count"] == 3
        assert report["traced_jobs"] == 2
        assert report["spans"] == 3
        rows = {r["name"]: r for r in report["transforms"]}
        assert rows["reflow"]["invocations"] == 2
        assert rows["sizing"]["invocations"] == 1
        assert len(report["per_job"]) == 3
        traced = [e for e in report["per_job"] if "spans" in e]
        assert len(traced) == 2

    def test_lines_are_renderable(self, tmp_path):
        store = JobStore(str(tmp_path))
        _settled_job(store, [span(name="reflow", dt=0.5)])
        store.close()
        lines = fleet_lines(fleet_report(str(tmp_path)))
        assert any("jobs: 1" in line for line in lines)
        assert any("reflow" in line for line in lines)
