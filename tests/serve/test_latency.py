"""Fleet latency histograms: store wiring, replay, and the HTTP
surface (/healthz p50/p99 gauges, /metrics histogram families)."""

import time

from repro.serve import client
from repro.serve.jobs import JobStore

from tests.serve.conftest import small_spec


def spec():
    return {"flow": "TPS", "design": {"name": "Des1", "scale": 0.05}}


class TestStoreHistograms:
    def test_lease_and_finish_observe_latencies(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.submit(spec())
        time.sleep(0.01)
        job = store.claim_next(worker="w1")
        time.sleep(0.01)
        store.finish(job, "done", token=job.token, exit_code=0,
                     worker="w1")
        assert store.histograms["submit_to_lease"].total == 1
        assert store.histograms["job_run"].total == 1
        assert store.histograms["submit_to_lease"].sum >= 0.01
        store.close()

    def test_replay_rebuilds_the_same_histograms(self, tmp_path):
        store = JobStore(str(tmp_path))
        for _ in range(3):
            store.submit(spec())
        for _ in range(3):
            job = store.claim_next(worker="w1")
            store.finish(job, "done", token=job.token, exit_code=0,
                         worker="w1")
        fresh = JobStore(str(tmp_path))
        for stage in ("submit_to_lease", "job_run"):
            assert fresh.histograms[stage].total == 3
            assert fresh.histograms[stage].counts \
                == store.histograms[stage].counts
        store.close()
        fresh.close()

    def test_requeue_restarts_the_queue_wait(self, tmp_path):
        store = JobStore(str(tmp_path), backoff_base=0.0)
        store.submit(spec())
        job = store.claim_next(worker="w1")
        store.requeue(job, 1, token=job.token, cause="crash",
                      worker="w1")
        requeued = store.get(job.job_id)
        # the wait clock restarted at the requeue, not at submit
        assert requeued.queued_at >= job.leased_at
        job2 = store.claim_next(worker="w1")
        assert job2 is not None
        hist = store.histograms["submit_to_lease"]
        assert hist.total == 2
        # the second wait measures from the requeue: well under the
        # whole submit→now span it would wrongly cover otherwise
        assert hist.sum < 10.0
        store.close()

    def test_cancelling_a_queued_job_observes_no_run(self, tmp_path):
        store = JobStore(str(tmp_path))
        job = store.submit(spec())
        store.finish(job, "cancelled")
        assert store.histograms["job_run"].total == 0
        store.close()


class TestHttpSurface:
    def test_healthz_and_metrics_expose_latency(self, serve_factory):
        server = serve_factory(workers=1)
        job_id = client.submit(server.url, small_spec())
        state = client.wait(server.url, job_id, timeout=120.0)
        assert state["state"] == "done"

        health = client.request(server.url, "/healthz")
        latency = health["latency"]
        for stage in ("submit_to_lease", "lease_to_start", "job_run"):
            assert latency["%s_p50" % stage] >= 0.0
            assert latency["%s_p99" % stage] \
                >= latency["%s_p50" % stage]

        text = client.metrics(server.url)
        for stage in ("submit_to_lease", "lease_to_start", "job_run"):
            family = "repro_latency_%s_seconds" % stage
            assert "# TYPE %s histogram" % family in text
            assert '%s_bucket{le="+Inf"} 1' % family in text
            assert "%s_count 1" % family in text

    def test_empty_fleet_has_series_but_no_gauges(self, serve_factory):
        server = serve_factory(workers=0)
        health = client.request(server.url, "/healthz")
        assert health["latency"] == {}
        text = client.metrics(server.url)
        assert "repro_latency_job_run_seconds_count 0" in text
