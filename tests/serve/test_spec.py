"""Unit tests for job-spec validation and canonicalisation."""

import pytest

from repro.serve import JobSpecError, build_job_design, job_flow_config, normalize_spec

from tests.serve.conftest import small_spec


class TestNormalize:
    def test_minimal_preset_defaults(self):
        spec = normalize_spec({"design": {"name": "Des1"}})
        assert spec["flow"] == "TPS"
        assert spec["design"] == {"kind": "preset", "name": "Des1",
                                  "scale": 0.2}
        assert spec["config"] == {}
        assert spec["persist"] == {}

    def test_processor_design_canonicalised(self):
        spec = normalize_spec(small_spec())
        design = spec["design"]
        assert design["kind"] == "processor"
        assert design["gates"] == 30
        assert design["cycle"] == 1500.0

    def test_chaos_and_kill_points(self):
        spec = normalize_spec(small_spec(
            chaos={"seed": 7}, die_at_status=50))
        assert spec["chaos"] == {"seed": 7, "rate": 0.05}
        assert spec["die_at_status"] == 50

    def test_config_overrides_validated(self):
        spec = normalize_spec(small_spec(config={"seed": 3}))
        assert spec["config"] == {"seed": 3}
        with pytest.raises(JobSpecError, match="unknown config"):
            normalize_spec(small_spec(config={"no_such_knob": 1}))

    def test_persist_overrides_validated(self):
        spec = normalize_spec(small_spec(
            persist={"snapshot_mode": "delta", "compact_every": 8}))
        assert spec["persist"]["snapshot_mode"] == "delta"
        with pytest.raises(JobSpecError, match="unknown persist"):
            normalize_spec(small_spec(persist={"die_at_status": 50}))

    def test_scheduling_keys_canonicalised(self):
        spec = normalize_spec(small_spec(priority=5, queue="bulk",
                                         retries=2))
        assert spec["priority"] == 5
        assert spec["queue"] == "bulk"
        assert spec["retries"] == 2

    def test_scheduling_keys_default_to_absent(self):
        spec = normalize_spec(small_spec())
        assert "priority" not in spec
        assert "queue" not in spec
        assert "retries" not in spec

    @pytest.mark.parametrize("bad", [
        "not an object",
        {"flow": "XYZ", "design": {"name": "Des1"}},
        {"design": {"kind": "nope"}},
        {"design": {"name": "Des99"}},
        {"design": {"kind": "verilog"}},
        {"design": {"name": "Des1"}, "mystery": 1},
        {"design": {"name": "Des1"}, "chaos": {"rate": 0.5}},
        {"design": {"name": "Des1"}, "priority": True},
        {"design": {"name": "Des1"}, "priority": "high"},
        {"design": {"name": "Des1"}, "queue": ""},
        {"design": {"name": "Des1"}, "queue": 3},
        {"design": {"name": "Des1"}, "retries": -1},
        {"design": {"name": "Des1"}, "retries": True},
    ])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(JobSpecError):
            normalize_spec(bad)


class TestBuild:
    def test_processor_design_builds(self, library):
        spec = normalize_spec(small_spec())
        design = build_job_design(spec, library)
        assert design.constraints.cycle_time == 1500.0
        assert design.netlist.num_cells > 0

    def test_flow_config_applies_overrides(self):
        config = job_flow_config(normalize_spec(small_spec(
            config={"seed": 42})))
        assert config.seed == 42

    def test_spr_flow_config(self):
        config = job_flow_config(normalize_spec(
            {"flow": "SPR", "design": {"name": "Des1"}}))
        assert type(config).__name__ == "SPRConfig"
