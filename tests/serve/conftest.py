"""Fixtures for the flow-service tests.

The integration tests run real (tiny) flows through real worker
processes, so the design here is deliberately small: a 2-stage
processor partition with 30 gates finishes a full TPS run in a few
seconds, which keeps the crash/resume scenarios affordable.
"""

import pytest

from repro.serve import FlowServer

#: the cheapest design that still exercises a full TPS flow
SMALL_DESIGN = {"kind": "processor", "stages": 2, "regs": 4,
                "gates": 30, "seed": 5, "cycle": 1500.0}


def small_spec(**overrides):
    """A fast TPS job spec; keyword arguments override top-level keys."""
    spec = {"flow": "TPS", "design": dict(SMALL_DESIGN),
            "config": {"seed": 1}}
    spec.update(overrides)
    return spec


@pytest.fixture
def serve_factory(tmp_path):
    """Start FlowServers on subdirectories of tmp_path; shut all down
    at teardown (idempotent, so tests may shut down early)."""
    servers = []

    def make(subdir="state", **kwargs):
        server = FlowServer(str(tmp_path / subdir), **kwargs)
        server.start()
        servers.append(server)
        return server

    yield make
    for server in servers:
        server.shutdown()
