"""Shared fixtures for the TPS test suite."""

import pytest

from repro.library import default_library


@pytest.fixture(scope="session")
def library():
    """The default technology library (immutable; session-scoped)."""
    return default_library()
