"""DesignCheckpoint: snapshot/restore must be bit-identical."""

import pytest

from repro.geometry import Point
from repro.guard import DesignCheckpoint, state_signature
from repro.netlist import ops
from repro.transforms import BufferInsertion, Cloning, RedundancyCleanup
from repro.transforms.sizing import GateSizing


def prepared(design):
    """Assign gains so sizing transforms can run."""
    sizing = GateSizing(default_gain=4.0)
    sizing.assign_gains(design)
    return sizing


class TestRoundtrip:
    def test_noop_restore_is_identity(self, design):
        sig = state_signature(design)
        ck = DesignCheckpoint(design)
        ck.restore()
        assert state_signature(design) == sig
        assert ck.verify() is None
        design.check()

    def test_restores_moves_and_resizes(self, design):
        sizing = prepared(design)
        sig = state_signature(design)
        slack = design.timing.worst_slack()
        ck = DesignCheckpoint(design)

        for cell in design.netlist.movable_cells()[:20]:
            design.netlist.move_cell(cell, Point(1.0, 2.0))
        sizing.link_cells(design)  # resizes + flips timing mode
        assert state_signature(design) != sig

        ck.restore()
        assert state_signature(design) == sig
        assert design.timing.worst_slack() == slack
        design.check()

    def test_restores_topology_additions(self, design):
        """Cells/nets created by cloning+buffering are removed again."""
        prepared(design)
        sig = state_signature(design)
        n_cells = design.netlist.num_cells
        ck = DesignCheckpoint(design)

        BufferInsertion().run(design)
        Cloning().run(design)

        ck.restore()
        assert design.netlist.num_cells == n_cells
        assert state_signature(design) == sig
        design.check()

    def test_restores_topology_removals(self, design):
        """Cells removed after the checkpoint come back — the same
        objects, with their connectivity."""
        prepared(design)
        buf = ops.insert_buffer(
            design.netlist, design.library,
            max(design.netlist.nets(), key=lambda n: len(n.sinks())),
            max(design.netlist.nets(),
                key=lambda n: len(n.sinks())).sinks()[:1],
            position=Point(4.0, 4.0))
        sig = state_signature(design)
        ck = DesignCheckpoint(design)

        ops.remove_buffer(design.netlist, buf)
        assert not design.netlist.has_cell(buf.name)

        ck.restore()
        assert design.netlist.cell(buf.name) is buf
        assert state_signature(design) == sig
        design.check()

    def test_restores_cleanup_churn(self, design):
        """RedundancyCleanup mixes removals, resizes and reconnects."""
        prepared(design)
        BufferInsertion().run(design)
        Cloning().run(design)
        sig = state_signature(design)
        ck = DesignCheckpoint(design)
        RedundancyCleanup().run(design)
        ck.restore()
        assert state_signature(design) == sig
        design.check()

    def test_restores_net_weights_and_status(self, design):
        sig = state_signature(design)
        ck = DesignCheckpoint(design)
        for net in design.netlist.nets():
            net.weight = net.weight * 3.0 + 1.0
        design.status = 55
        ck.restore()
        assert state_signature(design) == sig
        assert design.status == 0

    def test_restores_grid_resolution(self, design):
        sig = state_signature(design)
        ck = DesignCheckpoint(design)
        design.grid.refine(2)
        ck.restore()
        assert (design.grid.nx, design.grid.ny) != (0, 0)
        assert state_signature(design) == sig
        design.grid.check_occupancy()

    def test_repairs_direct_position_corruption(self, design):
        """A position assigned behind the event bus is healed."""
        sig = state_signature(design)
        ck = DesignCheckpoint(design)
        victim = design.netlist.movable_cells()[0]
        die = design.die
        # mirror across the die: guaranteed to land in another bin
        victim.position = Point(die.xlo + die.xhi - victim.position.x,
                                die.ylo + die.yhi - victim.position.y)
        with pytest.raises(AssertionError):
            design.grid.check_occupancy()
        ck.restore()
        assert state_signature(design) == sig
        design.grid.check_occupancy()

    def test_repairs_occupancy_corruption(self, design):
        sig = state_signature(design)
        ck = DesignCheckpoint(design)
        next(iter(design.grid.bins())).area_used += 42.0
        ck.restore()
        assert state_signature(design) == sig
        design.grid.check_occupancy()

    def test_verify_reports_divergence(self, design):
        ck = DesignCheckpoint(design)
        design.status = 99
        assert ck.verify() is not None
        ck.restore()
        assert ck.verify() is None

    def test_rng_state_restored(self, design):
        ck = DesignCheckpoint(design)
        before = design.rng.random()
        design.rng.random()
        ck.restore()
        assert design.rng.random() == before


class TestSignature:
    def test_sensitive_to_position(self, design):
        sig = state_signature(design)
        cell = design.netlist.movable_cells()[0]
        design.netlist.move_cell(cell, Point(cell.position.x + 1.0,
                                             cell.position.y))
        assert state_signature(design) != sig

    def test_sensitive_to_connectivity(self, design):
        sig = state_signature(design)
        net = max(design.netlist.nets(), key=lambda n: len(n.sinks()))
        design.netlist.disconnect(net.sinks()[0])
        assert state_signature(design) != sig

    def test_deterministic(self, design):
        assert state_signature(design) == state_signature(design)
