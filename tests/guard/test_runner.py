"""GuardedRunner: isolation, rollback, budgets, quarantine, health."""

import time

import pytest

from repro.geometry import Point
from repro.guard import (
    FaultInjector,
    FaultKind,
    GuardConfig,
    GuardedRunner,
    state_signature,
)


def runner_for(design, **kw):
    kw.setdefault("budget_seconds", None)
    return GuardedRunner(design, GuardConfig(**kw))


class TestHappyPath:
    def test_passthrough_result(self, design):
        runner = runner_for(design)
        assert runner.call("t", lambda: 42) == 42
        health = runner.health["t"]
        assert health.runs == 1 and health.failures == 0
        assert not health.quarantined

    def test_successful_mutation_is_kept(self, design):
        runner = runner_for(design)
        cell = design.netlist.movable_cells()[0]

        def move():
            design.netlist.move_cell(cell, Point(3.0, 3.0))
            return "ok"

        assert runner.call("mover", move) == "ok"
        assert cell.position == Point(3.0, 3.0)
        design.check()


class TestExceptionIsolation:
    def test_exception_rolls_back(self, design):
        runner = runner_for(design)
        sig = state_signature(design)
        cell = design.netlist.movable_cells()[0]

        def crash():
            design.netlist.move_cell(cell, Point(9.0, 9.0))
            raise RuntimeError("mid-transform crash")

        assert runner.call("crasher", crash) is None
        assert state_signature(design) == sig
        health = runner.health["crasher"]
        assert health.failures == 1 and health.rollbacks == 1
        assert health.failures_by_kind == {"exception": 1}
        assert "mid-transform crash" in str(health.errors[0])

    def test_keyboard_interrupt_propagates(self, design):
        runner = runner_for(design)

        def interrupt():
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            runner.call("t", interrupt)


class TestInvariantEnforcement:
    def test_corrupting_transform_rolled_back(self, design):
        runner = runner_for(design)
        sig = state_signature(design)
        cell = design.netlist.movable_cells()[0]

        die = design.die

        def corrupt():
            # bypasses the event bus: image goes stale
            cell.position = Point(die.xlo + die.xhi - cell.position.x,
                                  die.ylo + die.yhi - cell.position.y)
            return "done"

        assert runner.call("corruptor", corrupt) is None
        assert state_signature(design) == sig
        design.grid.check_occupancy()
        health = runner.health["corruptor"]
        assert health.failures_by_kind == {"invariant": 1}

    def test_invariant_checks_can_be_disabled(self, design):
        runner = GuardedRunner(design, GuardConfig(
            budget_seconds=None, check_invariants=False,
            verify_restore=False))
        cell = design.netlist.movable_cells()[0]
        die = design.die

        def corrupt():
            cell.position = Point(die.xlo + die.xhi - cell.position.x,
                                  die.ylo + die.yhi - cell.position.y)

        runner.call("corruptor", corrupt)
        assert runner.health["corruptor"].failures == 0


class TestBudget:
    def test_overrun_is_rolled_back(self, design):
        runner = GuardedRunner(design, GuardConfig(
            budget_seconds=0.01, quarantine_after=99))
        sig = state_signature(design)
        cell = design.netlist.movable_cells()[0]

        def slow():
            design.netlist.move_cell(cell, Point(6.0, 6.0))
            time.sleep(0.03)
            return "late"

        assert runner.call("slowpoke", slow) is None
        assert state_signature(design) == sig
        assert runner.health["slowpoke"].failures_by_kind == \
            {"budget": 1}

    def test_none_budget_never_trips(self, design):
        runner = runner_for(design)
        assert runner.call("t", lambda: time.sleep(0.01) or "x") == "x"


class TestQuarantine:
    def test_quarantine_after_k_consecutive(self, design):
        runner = GuardedRunner(design, GuardConfig(
            budget_seconds=None, quarantine_after=3))

        def crash():
            raise ValueError("always broken")

        for _ in range(3):
            runner.call("broken", crash)
        health = runner.health["broken"]
        assert health.quarantined
        assert runner.quarantined == ["broken"]
        # further calls are skipped without executing the body
        calls = []
        runner.call("broken", lambda: calls.append(1))
        assert calls == [] and health.skipped == 1

    def test_success_resets_the_streak(self, design):
        runner = GuardedRunner(design, GuardConfig(
            budget_seconds=None, quarantine_after=3))

        def crash():
            raise ValueError("flaky")

        runner.call("flaky", crash)
        runner.call("flaky", crash)
        runner.call("flaky", lambda: "ok")
        runner.call("flaky", crash)
        runner.call("flaky", crash)
        assert not runner.health["flaky"].quarantined
        assert runner.health["flaky"].failures == 4

    def test_quarantine_is_per_transform(self, design):
        runner = GuardedRunner(design, GuardConfig(
            budget_seconds=None, quarantine_after=1))
        runner.call("bad", lambda: 1 / 0)
        assert runner.call("good", lambda: "fine") == "fine"
        assert runner.quarantined == ["bad"]


class TestFaultInjection:
    def test_injected_exception_counts_as_failure(self, design):
        injector = FaultInjector(seed=1)
        injector.inject("t", FaultKind.EXCEPTION, invocation=1)
        runner = GuardedRunner(design, GuardConfig(budget_seconds=None),
                               injector=injector)
        assert runner.call("t", lambda: "a") == "a"
        assert runner.call("t", lambda: "b") is None  # faulted
        assert runner.call("t", lambda: "c") == "c"
        assert [str(f) for f in injector.fired()] == ["exception@t#1"]

    def test_injected_corruption_detected_and_healed(self, design):
        injector = FaultInjector(seed=2)
        injector.inject("t", FaultKind.CORRUPT_OCCUPANCY, invocation=0)
        runner = GuardedRunner(design, GuardConfig(budget_seconds=None),
                               injector=injector)
        sig = state_signature(design)
        assert runner.call("t", lambda: "x") is None
        assert state_signature(design) == sig
        design.grid.check_occupancy()
        assert runner.health["t"].failures_by_kind == {"invariant": 1}

    def test_injected_slowdown_trips_budget(self, design):
        injector = FaultInjector(seed=3)
        injector.inject("t", FaultKind.SLOWDOWN, invocation=0,
                        sleep_seconds=0.03)
        runner = GuardedRunner(design, GuardConfig(budget_seconds=0.01),
                               injector=injector)
        assert runner.call("t", lambda: "x") is None
        assert runner.health["t"].failures_by_kind == {"budget": 1}

    def test_random_mode_is_deterministic(self, design):
        def fire_sequence(seed):
            injector = FaultInjector(seed=seed, rate=0.6,
                                     kinds=[FaultKind.EXCEPTION])
            runner = GuardedRunner(
                design, GuardConfig(budget_seconds=None,
                                    quarantine_after=99),
                injector=injector)
            return [runner.call("t", lambda: "ok") for _ in range(12)]

        assert fire_sequence(7) == fire_sequence(7)
        assert fire_sequence(7) != fire_sequence(8)


class TestHealthReporting:
    def test_summary_lines(self, design):
        runner = runner_for(design)
        runner.call("alpha", lambda: "ok")
        runner.call("beta", lambda: 1 / 0)
        lines = runner.health_lines()
        assert len(lines) == 2
        assert lines[0].startswith("alpha: 1 ok")
        assert "exception=1" in lines[1]

    def test_guard_seconds_accumulates(self, design):
        runner = runner_for(design)
        runner.call("t", lambda: "ok")
        assert runner.guard_seconds > 0.0
