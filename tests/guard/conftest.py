"""Shared fixtures for the guard test suite."""

import pytest

from repro.workloads import ProcessorParams, make_design, processor_partition


def build_design(library, seed=5, cycle=1500.0, stages=2, regs=8,
                 gates=110):
    params = ProcessorParams(n_stages=stages, regs_per_stage=regs,
                             gates_per_stage=gates, seed=seed)
    netlist = processor_partition(params, library)
    return make_design(netlist, library, cycle_time=cycle,
                       with_blockage=True)


@pytest.fixture
def design(library):
    """A fresh small processor-partition design per test, with every
    movable cell placed (scattered deterministically) so position and
    occupancy corruptions have real state to corrupt."""
    design = build_design(library)
    rng = __import__("random").Random(42)
    die = design.die
    for cell in design.netlist.movable_cells():
        from repro.geometry import Point
        design.netlist.move_cell(cell, Point(
            die.xlo + rng.random() * die.width,
            die.ylo + rng.random() * die.height))
    # refine the image past its 1x1 seed resolution so cross-bin
    # corruption is observable
    design.grid.resize(8, 8)
    return design
