"""Each invariant catches the corruption class it is named for."""

import pytest

from repro.geometry import Point
from repro.guard.invariants import (
    BinOccupancyConservation,
    FunctionInvariant,
    InvariantSuite,
    NetlistConsistency,
    NoDanglingPins,
    TimingNetlistSync,
    default_invariants,
)


class TestCleanDesign:
    def test_default_suite_passes(self, design):
        assert InvariantSuite().violations(design) == []

    def test_design_check_uses_suite(self, design):
        design.check()  # must not raise

    def test_custom_suite(self, design):
        suite = InvariantSuite([FunctionInvariant(
            "always_fails", lambda d: "nope")])
        assert suite.violations(design) == ["always_fails: nope"]
        with pytest.raises(AssertionError, match="always_fails"):
            design.check(suite)


class TestBinOccupancy:
    def test_catches_scribbled_bin(self, design):
        next(iter(design.grid.bins())).area_used += 5.0
        assert BinOccupancyConservation().check(design) is not None

    def test_catches_silent_teleport(self, design):
        cell = design.netlist.movable_cells()[0]
        die = design.die
        cell.position = Point(die.xlo + die.xhi - cell.position.x,
                              die.ylo + die.yhi - cell.position.y)
        assert BinOccupancyConservation().check(design) is not None


class TestNoDanglingPins:
    def test_catches_undriven_sinks(self, design):
        net = max((n for n in design.netlist.nets()
                   if n.driver() is not None and n.sinks()),
                  key=lambda n: len(n.sinks()))
        design.netlist.disconnect(net.driver())
        message = NoDanglingPins().check(design)
        assert message is not None and net.name in message


class TestNetlistConsistency:
    def test_catches_broken_backref(self, design):
        net = max(design.netlist.nets(), key=lambda n: n.degree)
        pin = net.pins()[0]
        pin.net = None  # break the back-reference directly
        assert NetlistConsistency().check(design) is not None


class TestTimingSync:
    def test_detects_foreign_netlist(self, design):
        from repro.netlist import Netlist
        design.netlist = Netlist("other")
        assert TimingNetlistSync().check(design) is not None

    def test_passes_after_queries(self, design):
        design.timing.worst_slack()  # builds the graph
        assert TimingNetlistSync().check(design) is None


class TestSuiteMechanics:
    def test_crashing_check_is_a_violation(self, design):
        def boom(d):
            raise RuntimeError("kaput")
        suite = InvariantSuite([FunctionInvariant("boom", boom)])
        found = suite.first_violation(design)
        assert found is not None and "kaput" in found[1]

    def test_default_suite_composition(self):
        names = [inv.name for inv in default_invariants()]
        assert names == ["netlist_consistency", "no_dangling_pins",
                         "bin_occupancy", "timing_sync"]
