"""Chaos suite: full flows must survive injected faults.

The acceptance contract: with faults injected into >= 3 distinct
transforms covering exception, timeout, and corruption classes,
``TPSScenario.run()`` completes, every rollback restores a
state-identical checkpoint (``verify_restore`` raises RestoreMismatch
otherwise — it stays on here), quarantine triggers after K consecutive
failures, and the ``FlowReport`` carries per-transform health stats.
"""

import pytest

from repro.guard import FaultInjector, FaultKind, GuardConfig
from repro.placement.legalize import check_legal
from repro.scenario import SPRConfig, SPRFlow, TPSConfig, TPSScenario

from tests.guard.conftest import build_design


@pytest.fixture(scope="module")
def chaos_run(library):
    """One TPS run with faults in five distinct transforms covering
    exception / timeout / three corruption classes."""
    design = build_design(library)
    injector = FaultInjector(seed=3)
    # K=3 consecutive exceptions -> cloning must end up quarantined
    injector.inject("cloning", FaultKind.EXCEPTION, invocation=0)
    injector.inject("cloning", FaultKind.EXCEPTION, invocation=1)
    injector.inject("cloning", FaultKind.EXCEPTION, invocation=2)
    injector.inject("buffer_insertion", FaultKind.SLOWDOWN,
                    invocation=1)
    injector.inject("gate_sizing_for_speed",
                    FaultKind.CORRUPT_POSITION, invocation=2)
    injector.inject("pin_swapping", FaultKind.CORRUPT_OCCUPANCY,
                    invocation=0)
    injector.inject("circuit_migration",
                    FaultKind.CORRUPT_CONNECTIVITY, invocation=1)
    config = TPSConfig(seed=1, guard=GuardConfig(
        budget_seconds=2.0, quarantine_after=3, verify_restore=True))
    scenario = TPSScenario(design, config, injector=injector)
    report = scenario.run()
    return design, report, injector


class TestTPSChaos:
    def test_flow_completes(self, chaos_run):
        design, report, _ = chaos_run
        assert report.flow == "TPS"
        assert report.cuts is not None
        assert check_legal(design) == []

    def test_all_fault_classes_fired(self, chaos_run):
        _, _, injector = chaos_run
        kinds = {f.kind for f in injector.fired()}
        assert FaultKind.EXCEPTION in kinds
        assert FaultKind.SLOWDOWN in kinds
        assert kinds & {FaultKind.CORRUPT_POSITION,
                        FaultKind.CORRUPT_OCCUPANCY,
                        FaultKind.CORRUPT_CONNECTIVITY}
        faulted = {f.transform for f in injector.fired()}
        assert len(faulted) >= 3

    def test_every_failure_was_rolled_back(self, chaos_run):
        _, report, injector = chaos_run
        assert report.total_failures == len(injector.fired())
        assert report.total_rollbacks == report.total_failures
        # verify_restore=True: any non-identical restore would have
        # raised RestoreMismatch and aborted the run

    def test_quarantine_triggered_after_k(self, chaos_run):
        _, report, _ = chaos_run
        assert report.quarantined == ["cloning"]
        health = report.health["cloning"]
        assert health.failures == 3 and health.quarantined
        assert health.skipped > 0  # later windows skipped it

    def test_report_carries_health_stats(self, chaos_run):
        _, report, _ = chaos_run
        assert report.health
        for name in ("cloning", "buffer_insertion",
                     "gate_sizing_for_speed", "pin_swapping"):
            assert name in report.health
        by_kind = {}
        for health in report.health.values():
            for kind, count in health.failures_by_kind.items():
                by_kind[kind] = by_kind.get(kind, 0) + count
        assert by_kind.get("exception") == 3
        assert by_kind.get("budget") == 1
        assert by_kind.get("invariant") == 3
        assert report.guard_seconds > 0.0
        assert any("health:" in line for line in report.trace_lines())

    def test_design_consistent_after_chaos(self, chaos_run):
        design, _, _ = chaos_run
        design.check()


class TestSPRChaos:
    def test_spr_survives_faults(self, library):
        design = build_design(library, seed=6)
        injector = FaultInjector(seed=11)
        injector.inject("buffer_insertion", FaultKind.EXCEPTION,
                        invocation=0)
        injector.inject("pin_swapping", FaultKind.CORRUPT_OCCUPANCY,
                        invocation=0)
        flow = SPRFlow(design, SPRConfig(seed=1, guard=GuardConfig(
            budget_seconds=None)), injector=injector)
        report = flow.run()
        assert report.flow == "SPR"
        assert report.total_failures == len(injector.fired()) >= 2
        assert report.total_rollbacks == report.total_failures
        design.check()


class TestGuardedEqualsUnguarded:
    def test_no_faults_same_result(self, library):
        """Guards without faults must not change the flow outcome."""
        bare = TPSScenario(
            build_design(library, seed=8),
            TPSConfig(seed=2)).run()
        guarded = TPSScenario(
            build_design(library, seed=8),
            TPSConfig(seed=2, guard=GuardConfig())).run()
        assert guarded.worst_slack == bare.worst_slack
        assert guarded.wirelength == bare.wirelength
        assert guarded.icells == bare.icells
        assert guarded.total_failures == 0
        assert guarded.quarantined == []
        assert guarded.guard_seconds > 0.0


class TestProcessKillChaos:
    """FaultKind.PROCESS_KILL: the injected kill escapes the guard like
    a real SIGINT, and the run directory it leaves behind is resumable
    with the killed transform quarantined."""

    def test_kill_escapes_guard_and_run_is_resumable(self, library,
                                                     tmp_path):
        from repro.guard import DesignCheckpoint
        from repro.persist import (
            FlowPersist,
            Journal,
            PersistConfig,
            RunDir,
            read_snapshot,
            rebuild_design,
            scan_resume,
        )

        config = TPSConfig(seed=1)
        pconfig = PersistConfig(snapshot_every=10)
        rundir = RunDir.create(
            str(tmp_path), {"flow": "TPS", "config": config.to_state(),
                            "persist": pconfig.to_state()})
        journal = Journal.create(rundir.journal_path)
        design = build_design(library)
        injector = FaultInjector(seed=11)
        injector.inject("cloning", FaultKind.PROCESS_KILL, invocation=1)
        persist = FlowPersist(rundir, journal, pconfig, design)
        scenario = TPSScenario(design, config, injector=injector,
                               persist=persist)
        with pytest.raises(KeyboardInterrupt):
            scenario.run()

        # the run directory is resumable: a snapshot exists and the
        # journal names the killed transform as in flight
        journal = Journal.open(rundir.journal_path)
        state = scan_resume(journal)
        assert not state["completed"]
        assert state["snapshot"] is not None
        assert "cloning" in state["in_flight"]

        # resume in a "fresh process": rebuilt from disk alone
        record = state["snapshot"]
        payload = read_snapshot(rundir.snapshot_path(
            record["file"][:-len(".snap.gz")]))
        design2 = rebuild_design(payload, library)
        assert (DesignCheckpoint.state_signature(design2)
                == record["signature"])
        quarantined = rundir.note_crashes(
            state["in_flight"], pconfig.crash_quarantine_after)
        assert "cloning" in quarantined
        persist2 = FlowPersist(rundir, journal, pconfig, design2,
                               resumed=True)
        persist2.seed_snapshot(record, record["status"])
        persist2.note_resumed(record["seq"], record["status"],
                              state["in_flight"])
        resume_state = dict(payload.get("extras", {}))
        resume_state["quarantine"] = quarantined
        injector2 = FaultInjector(seed=11)
        report = TPSScenario(design2, TPSConfig.from_state(
            rundir.meta["config"]), injector=injector2,
            persist=persist2, resume_state=resume_state).run()

        # the killed transform was skipped, not re-run into the kill
        assert "cloning" in report.quarantined
        assert report.health["cloning"].skipped > 0
        assert report.resumed
        design2.check()
        assert scan_resume(Journal.open(rundir.journal_path))["completed"]
