import pytest

from repro.geometry import Rect
from repro.image import Bin, Blockage


class TestBin:
    def test_capacity_from_utilization(self):
        b = Bin(0, 0, Rect(0, 0, 10, 10), target_utilization=0.8)
        assert b.area_capacity == pytest.approx(80.0)
        assert b.free_area == pytest.approx(80.0)
        assert b.can_fit(80.0)
        assert not b.can_fit(80.1)

    def test_blockage_reduces_effective_capacity(self):
        b = Bin(0, 0, Rect(0, 0, 10, 10), target_utilization=1.0)
        b.blocked_area = 40.0
        assert b.effective_capacity == pytest.approx(60.0)
        b.area_used = 70.0
        assert b.overfilled
        assert b.utilization == pytest.approx(70 / 60)

    def test_fully_blocked_bin(self):
        b = Bin(0, 0, Rect(0, 0, 10, 10), target_utilization=1.0)
        b.blocked_area = 200.0
        assert b.effective_capacity == 0.0
        assert b.utilization == 1.0  # empty
        b.area_used = 1.0
        assert b.utilization == float("inf")

    def test_wire_capacity_scales_with_span(self):
        b = Bin(0, 0, Rect(0, 0, 20, 10), tracks_per_unit=2.0)
        assert b.wire_capacity_h == pytest.approx(20.0)  # height*2
        assert b.wire_capacity_v == pytest.approx(40.0)  # width*2

    def test_wire_overflow_and_congestion(self):
        b = Bin(0, 0, Rect(0, 0, 10, 10))
        b.wire_used_h = 15.0
        b.wire_used_v = 5.0
        assert b.wire_overflow == pytest.approx(5.0)
        assert b.congestion == pytest.approx(1.5)


class TestBlockage:
    def test_blocked_area_in(self):
        blk = Blockage(Rect(0, 0, 10, 10))
        assert blk.blocked_area_in(Rect(5, 5, 15, 15)) == pytest.approx(25.0)
        assert blk.blocked_area_in(Rect(20, 20, 30, 30)) == 0.0
