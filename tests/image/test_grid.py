import pytest

from repro.geometry import Point, Rect
from repro.image import BinGrid, Blockage
from repro.netlist import Netlist


@pytest.fixture
def design(library):
    nl = Netlist()
    cells = []
    for i in range(4):
        c = nl.add_cell("u%d" % i, library.smallest("INV"),
                        position=Point(10 + 20 * i, 10))
        cells.append(c)
    return nl, cells


class TestGridGeometry:
    def test_bin_layout(self):
        g = BinGrid(Rect(0, 0, 100, 50), nx=4, ny=2)
        assert g.bin(0, 0).rect == Rect(0, 0, 25, 25)
        assert g.bin(3, 1).rect == Rect(75, 25, 100, 50)
        assert len(list(g.bins())) == 8

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            BinGrid(Rect(0, 0, 10, 10), nx=0)

    def test_index_at_clamps(self):
        g = BinGrid(Rect(0, 0, 100, 100), nx=2, ny=2)
        assert g.index_at(Point(-5, -5)) == (0, 0)
        assert g.index_at(Point(500, 500)) == (1, 1)
        assert g.index_at(Point(100, 100)) == (1, 1)  # upper edge

    def test_bin_out_of_range(self):
        g = BinGrid(Rect(0, 0, 10, 10), nx=2, ny=2)
        with pytest.raises(IndexError):
            g.bin(2, 0)

    def test_neighbors(self):
        g = BinGrid(Rect(0, 0, 30, 30), nx=3, ny=3)
        corner = g.bin(0, 0)
        middle = g.bin(1, 1)
        assert len(g.neighbors(corner)) == 2
        assert len(g.neighbors(middle)) == 4

    def test_bins_in_region(self):
        g = BinGrid(Rect(0, 0, 100, 100), nx=4, ny=4)
        hit = g.bins_in(Rect(0, 0, 49, 49))
        assert len(hit) == 4


class TestOccupancyTracking:
    def test_attach_populates(self, design):
        nl, cells = design
        g = BinGrid(Rect(0, 0, 100, 20), nx=5, ny=1)
        g.attach(nl)
        assert g.bin_of(cells[0]).ix == 0
        assert g.bin(0, 0).area_used == pytest.approx(cells[0].area)
        g.check_occupancy()

    def test_move_updates_bins(self, design):
        nl, cells = design
        g = BinGrid(Rect(0, 0, 100, 20), nx=5, ny=1)
        g.attach(nl)
        nl.move_cell(cells[0], Point(90, 10))
        assert g.bin_of(cells[0]).ix == 4
        assert g.bin(0, 0).area_used == pytest.approx(0.0)
        g.check_occupancy()

    def test_unplace_evicts(self, design):
        nl, cells = design
        g = BinGrid(Rect(0, 0, 100, 20), nx=5, ny=1)
        g.attach(nl)
        nl.move_cell(cells[0], None)
        assert g.bin_of(cells[0]) is None
        g.check_occupancy()

    def test_add_remove_cell(self, design, library):
        nl, _ = design
        g = BinGrid(Rect(0, 0, 100, 20), nx=5, ny=1)
        g.attach(nl)
        c = nl.add_cell("new", library.smallest("NAND2"),
                        position=Point(50, 10))
        assert c in g.bin_of(c).cells
        nl.remove_cell(c)
        assert all(c not in b.cells for b in g.bins())
        g.check_occupancy()

    def test_resize_updates_area(self, design, library):
        nl, cells = design
        g = BinGrid(Rect(0, 0, 100, 20), nx=5, ny=1)
        g.attach(nl)
        before = g.bin_of(cells[0]).area_used
        nl.resize_cell(cells[0], library.size("INV", 8.0))
        after = g.bin_of(cells[0]).area_used
        assert after > before
        g.check_occupancy()

    def test_refine_preserves_occupancy(self, design):
        nl, cells = design
        g = BinGrid(Rect(0, 0, 100, 20), nx=1, ny=1)
        g.attach(nl)
        total = sum(b.area_used for b in g.bins())
        g.refine()
        assert g.nx == 2 and g.ny == 2
        assert sum(b.area_used for b in g.bins()) == pytest.approx(total)
        g.check_occupancy()

    def test_refine_requires_factor_ge_2(self, design):
        g = BinGrid(Rect(0, 0, 10, 10))
        with pytest.raises(ValueError):
            g.refine(1)

    def test_detach_stops_updates(self, design):
        nl, cells = design
        g = BinGrid(Rect(0, 0, 100, 20), nx=5, ny=1)
        g.attach(nl)
        g.detach()
        nl.move_cell(cells[0], Point(90, 10))
        # stale but not crashed: cell not re-tracked
        assert g.bin_of(cells[0]).ix == 0


class TestBlockagesAndAggregates:
    def test_blockage_split_across_bins(self):
        blk = Blockage(Rect(0, 0, 50, 100), wiring_factor=1.0)
        g = BinGrid(Rect(0, 0, 100, 100), nx=2, ny=1,
                    blockages=[blk], target_utilization=1.0)
        left, right = g.bin(0, 0), g.bin(1, 0)
        assert left.blocked_area == pytest.approx(5000.0)
        assert right.blocked_area == 0.0
        assert left.wire_capacity_h == pytest.approx(0.0)
        assert right.wire_capacity_h > 0

    def test_total_overflow(self, design, library):
        nl, cells = design
        g = BinGrid(Rect(0, 0, 100, 20), nx=5, ny=1,
                    target_utilization=0.0001)
        g.attach(nl)
        assert g.total_overflow() > 0
        assert g.max_utilization() > 1.0

    def test_reset_wire_usage(self):
        g = BinGrid(Rect(0, 0, 10, 10))
        b = g.bin(0, 0)
        b.wire_used_h = 5
        g.reset_wire_usage()
        assert b.wire_used_h == 0
