import pytest

from repro.geometry import Point, Rect
from repro.placement import Partitioner, Reflow
from repro.placement.regions import RegionGrid


class TestRegionGrid:
    def test_seed_and_split(self, tiny_design):
        rg = RegionGrid(tiny_design.die)
        rg.seed(tiny_design.netlist)
        assert len(rg.regions()) == 1
        root = rg.region(0, 0)
        assert len(root.cells) == len(tiny_design.netlist.movable_cells())
        rg.split("x")
        assert rg.nx == 2 and rg.ny == 1
        rg.check(tiny_design.netlist)

    def test_assign_moves_cell(self, tiny_design):
        rg = RegionGrid(tiny_design.die)
        rg.seed(tiny_design.netlist)
        rg.split("x")
        cell = tiny_design.netlist.movable_cells()[0]
        right = rg.region(1, 0)
        rg.assign(tiny_design.netlist, cell, right)
        assert rg.region_of(cell) is right
        assert cell.position == right.center
        rg.check(tiny_design.netlist)

    def test_split_axis_validation(self, tiny_design):
        rg = RegionGrid(tiny_design.die)
        with pytest.raises(ValueError):
            rg.split("z")

    def test_seed_requires_unsplit(self, tiny_design):
        rg = RegionGrid(tiny_design.die)
        rg.split("x")
        with pytest.raises(ValueError):
            rg.seed(tiny_design.netlist)


class TestPartitioner:
    def test_status_progression(self, tiny_design):
        part = Partitioner(tiny_design, seed=0)
        assert part.status == 0
        part.cut()
        assert 0 < part.status <= 100
        final = part.run_to(100)
        assert final == 100
        assert part.done

    def test_run_to_intermediate(self, tiny_design):
        part = Partitioner(tiny_design, seed=0)
        status = part.run_to(50)
        assert status >= 50
        assert not part.done or part.total_cuts <= 2

    def test_wirelength_improves_hugely(self, small_design):
        part = Partitioner(small_design, seed=1)
        before = small_design.total_wirelength()
        part.run_to(100)
        after = small_design.total_wirelength()
        assert after < before * 0.6

    def test_grid_follows_regions(self, tiny_design):
        part = Partitioner(tiny_design, seed=0)
        part.run_to(100)
        assert tiny_design.grid.nx == part.regions.nx
        assert tiny_design.grid.ny == part.regions.ny
        assert tiny_design.status == 100

    def test_every_cell_in_some_region(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        part.regions.check(small_design.netlist)
        small_design.check()

    def test_cells_inside_die(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(60)
        for c in small_design.netlist.movable_cells():
            assert small_design.die.contains(c.require_position())

    def test_blockage_region_underused(self, small_design):
        """The blockaged corner must not receive its area share."""
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        blk = small_design.blockages[0].rect
        area_in_blk = sum(
            c.area for c in small_design.netlist.movable_cells()
            if blk.contains(c.require_position()))
        cap_in_blk = small_design.effective_capacity(blk)
        total = small_design.total_cell_area()
        # blockage rect is 1/16 of die but has ~0 capacity
        assert area_in_blk <= max(0.12 * total, cap_in_blk * 2 + 1000)

    def test_balance_roughly_even(self, small_design):
        part = Partitioner(small_design, seed=1, tolerance=0.1)
        part.cut()
        halves = [0.0, 0.0]
        mid = small_design.die.center.x
        for c in small_design.netlist.movable_cells():
            halves[0 if c.require_position().x < mid else 1] += c.area
        ratio = halves[0] / sum(halves)
        assert 0.3 <= ratio <= 0.7

    def test_adopts_new_cells(self, tiny_design, library):
        part = Partitioner(tiny_design, seed=0)
        part.run_to(50)
        c = tiny_design.netlist.add_cell(
            "late", library.smallest("INV"),
            position=Point(1.0, 1.0))
        part.sync()
        assert part.regions.region_of(c) is not None
        assert c.position == Point(1.0, 1.0)  # kept its exact spot
        part.cut()
        part.regions.check(tiny_design.netlist)

    def test_drops_removed_cells(self, tiny_design):
        part = Partitioner(tiny_design, seed=0)
        part.run_to(50)
        victim = tiny_design.netlist.movable_cells()[0]
        tiny_design.netlist.remove_cell(victim)
        part.cut()
        part.regions.check(tiny_design.netlist)


class TestReflow:
    def test_reflow_does_not_hurt_wirelength(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        before = small_design.total_wirelength()
        moved = Reflow(part).run()
        after = small_design.total_wirelength()
        assert after <= before * 1.02
        assert moved >= 0

    def test_reflow_converges(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        reflow = Reflow(part)
        first = reflow.run()
        for _ in range(4):
            last = reflow.run()
        assert last <= max(first, 5)

    def test_interleaved_beats_partition_only(self, small_design, library):
        from repro.workloads import (ProcessorParams, make_design,
                                     processor_partition)
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        Reflow(part).run()
        wl_plain = small_design.total_wirelength()

        params = ProcessorParams(n_stages=3, regs_per_stage=15,
                                 gates_per_stage=250, seed=2)
        nl2 = processor_partition(params, library)
        d2 = make_design(nl2, library, cycle_time=300.0,
                         with_blockage=True)
        part2 = Partitioner(d2, seed=1)
        reflow2 = Reflow(part2)
        while not part2.done:
            part2.cut()
            reflow2.run()
        assert d2.total_wirelength() <= wl_plain * 1.05

    def test_regions_consistent_after_reflow(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        Reflow(part).run()
        part.regions.check(small_design.netlist)
        small_design.check()
