import pytest

from repro.workloads import (
    ProcessorParams,
    make_design,
    processor_partition,
    random_logic,
)


@pytest.fixture
def small_design(library):
    """A ~950-cell processor partition on a blockaged die."""
    params = ProcessorParams(n_stages=3, regs_per_stage=15,
                             gates_per_stage=250, seed=2)
    netlist = processor_partition(params, library)
    return make_design(netlist, library, cycle_time=300.0,
                       with_blockage=True)


@pytest.fixture
def tiny_design(library):
    """A ~120-cell combinational design (fast tests)."""
    netlist = random_logic("tiny", library, 100, n_inputs=8,
                           n_outputs=8, seed=7)
    return make_design(netlist, library, cycle_time=200.0)
