import pytest

from repro.geometry import Point
from repro.placement import CircuitRelocation, Partitioner


class TestCircuitRelocation:
    def _overfill_a_bin(self, design):
        """Cram many cells into one corner bin; return it."""
        part = Partitioner(design, seed=1)
        part.run_to(100)
        grid = design.grid
        target = grid.bin(0, 0)
        movers = [c for c in design.netlist.movable_cells()][:40]
        for c in movers:
            design.netlist.move_cell(c, target.center)
        return target

    def test_makes_space(self, small_design):
        target = self._overfill_a_bin(small_design)
        assert target.free_area < 0  # overfilled
        reloc = CircuitRelocation(small_design)
        need = target.rect.area * 0.3
        ok = reloc.make_space(target, need)
        assert ok
        assert target.free_area >= need - 1e-6
        small_design.check()

    def test_noop_when_space_exists(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        grid = small_design.grid
        empty = min(grid.bins(), key=lambda b: b.area_used)
        positions = {c.name: c.position
                     for c in small_design.netlist.movable_cells()}
        ok = CircuitRelocation(small_design).make_space(empty, 1.0)
        assert ok
        # nothing moved
        for c in small_design.netlist.movable_cells():
            assert c.position == positions[c.name]

    def test_protected_cells_stay(self, small_design):
        target = self._overfill_a_bin(small_design)
        protect = {c.name for c in list(target.cells)[:5] if c.is_movable}
        before = {name: small_design.netlist.cell(name).position
                  for name in protect}
        CircuitRelocation(small_design).make_space(
            target, target.rect.area * 0.2, protect=protect)
        for name in protect:
            assert small_design.netlist.cell(name).position == before[name]

    def test_impossible_request_fails_gracefully(self, tiny_design):
        part = Partitioner(tiny_design, seed=0)
        part.run_to(100)
        target = tiny_design.grid.bin(0, 0)
        huge = tiny_design.die.area * 10
        ok = CircuitRelocation(tiny_design).make_space(target, huge)
        assert not ok
        tiny_design.check()

    def test_cells_move_to_adjacent_bins_first(self, small_design):
        target = self._overfill_a_bin(small_design)
        grid = small_design.grid
        moved_names = {c.name for c in target.cells if c.is_movable}
        CircuitRelocation(small_design).make_space(
            target, target.rect.area * 0.2)
        # displaced cells should be near the source bin, not far away
        displaced = [small_design.netlist.cell(n) for n in moved_names
                     if grid.bin_of(small_design.netlist.cell(n)) is not target]
        assert displaced
        for c in displaced:
            b = grid.bin_of(c)
            hops = abs(b.ix - target.ix) + abs(b.iy - target.iy)
            assert hops <= max(grid.nx, grid.ny) // 2 + 2
