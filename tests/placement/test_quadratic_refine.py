import pytest

from repro.geometry import Point
from repro.placement import Partitioner, QuadraticRefine
from repro.placement.quadratic_refine import QuadraticRefine as QR


class TestQuadraticRefine:
    def test_never_lengthens_wirelength(self, small_design):
        part = Partitioner(small_design, seed=1, total_cuts=6)
        part.run_to(100)  # coarse stop: several cells per bin
        before = small_design.total_wirelength()
        accepted = QuadraticRefine().run(small_design)
        after = small_design.total_wirelength()
        assert after <= before + 1e-6
        assert accepted >= 0

    def test_cells_stay_in_their_bins(self, small_design):
        part = Partitioner(small_design, seed=1, total_cuts=6)
        part.run_to(100)
        owner_before = {c.name: small_design.grid.bin_of(c)
                        for c in small_design.netlist.movable_cells()}
        QuadraticRefine().run(small_design)
        for c in small_design.netlist.movable_cells():
            assert small_design.grid.bin_of(c) is owner_before[c.name]
        small_design.check()

    def test_spreads_colocated_cells(self, small_design):
        part = Partitioner(small_design, seed=1, total_cuts=6)
        part.run_to(100)
        accepted = QuadraticRefine().run(small_design)
        if accepted:
            positions = {c.position
                         for c in small_design.netlist.movable_cells()}
            # refined bins no longer have everything on one point
            assert len(positions) > small_design.grid.nx * \
                small_design.grid.ny * 0.5

    def test_group_size_bounds(self, small_design):
        part = Partitioner(small_design, seed=1, total_cuts=6)
        part.run_to(100)
        # impossible window -> nothing refined
        assert QuadraticRefine(min_cells=1000).run(small_design) == 0
