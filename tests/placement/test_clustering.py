import pytest

from repro.placement import Partitioner
from repro.placement.clustering import cluster_cells
from repro.netlist import Netlist


class TestClusterCells:
    def test_partition_property(self, small_design):
        cells = small_design.netlist.movable_cells()
        clusters = cluster_cells(cells, max_cluster_cells=4)
        flat = [c for g in clusters for c in g]
        assert sorted(c.name for c in flat) == \
            sorted(c.name for c in cells)
        assert all(1 <= len(g) <= 4 for g in clusters)

    def test_connected_cells_cluster_together(self, library):
        """A tight 3-cell chain plus isolated cells: the chain groups."""
        nl = Netlist()
        chain = []
        prev = None
        for i in range(3):
            c = nl.add_cell("ch%d" % i, library.smallest("INV"))
            if prev is not None:
                net = nl.add_net("cn%d" % i)
                nl.connect(prev.pin("Z"), net)
                nl.connect(c.pin("A"), net)
            chain.append(c)
            prev = c
        loners = [nl.add_cell("lone%d" % i, library.smallest("INV"))
                  for i in range(3)]
        clusters = cluster_cells(chain + loners, max_cluster_cells=4)
        by_cell = {}
        for gi, g in enumerate(clusters):
            for c in g:
                by_cell[c.name] = gi
        assert by_cell["ch0"] == by_cell["ch1"] == by_cell["ch2"]
        for lone in loners:
            assert [by_cell[lone.name]] and \
                len(clusters[by_cell[lone.name]]) == 1

    def test_area_cap(self, small_design):
        cells = small_design.netlist.movable_cells()
        biggest = max(c.area for c in cells)
        clusters = cluster_cells(cells, max_cluster_cells=8,
                                 max_cluster_area=biggest * 1.5)
        for g in clusters:
            if len(g) > 1:
                assert sum(c.area for c in g) <= biggest * 1.5 + 1e-9


class TestClusteredPartitioner:
    def test_cluster_mode_places_everything(self, small_design):
        part = Partitioner(small_design, seed=1, cluster_first_cuts=3)
        part.run_to(100)
        part.regions.check(small_design.netlist)
        small_design.check()

    def test_quality_comparable(self, small_design, library):
        from repro.workloads import (ProcessorParams, make_design,
                                     processor_partition)
        part = Partitioner(small_design, seed=1, cluster_first_cuts=3)
        part.run_to(100)
        wl_clustered = small_design.total_wirelength()

        params = ProcessorParams(n_stages=3, regs_per_stage=15,
                                 gates_per_stage=250, seed=2)
        nl2 = processor_partition(params, library)
        d2 = make_design(nl2, library, cycle_time=300.0,
                         with_blockage=True)
        part2 = Partitioner(d2, seed=1)
        part2.run_to(100)
        assert wl_clustered <= d2.total_wirelength() * 1.3
