"""Property tests: the legalizer's contract under random placements."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import Design
from repro.geometry import Point, Rect
from repro.netlist import Netlist
from repro.placement import legalize_rows
from repro.placement.legalize import check_legal
from repro.timing import TimingConstraints


def build_design(library, positions, sizes):
    nl = Netlist()
    for i, (pos, x) in enumerate(zip(positions, sizes)):
        nl.add_cell("c%d" % i, library.size("INV", x),
                    position=Point(float(pos[0]), float(pos[1])))
    return Design(nl, library, Rect(0, 0, 160, 160),
                  TimingConstraints(cycle_time=100.0))


coords = st.tuples(st.integers(0, 160), st.integers(0, 160))
inv_sizes = st.sampled_from([1.0, 2.0, 4.0, 8.0])


class TestLegalizeProperties:
    @given(st.lists(coords, min_size=1, max_size=40),
           st.data())
    @settings(max_examples=25, deadline=None)
    def test_always_legal_and_on_die(self, library, positions, data):
        sizes = [data.draw(inv_sizes) for _ in positions]
        design = build_design(library, positions, sizes)
        result = legalize_rows(design)
        assert result.failed == 0  # plenty of space on this die
        assert check_legal(design) == []
        for cell in design.netlist.movable_cells():
            assert design.die.contains_rect(cell.outline())

    @given(st.lists(coords, min_size=2, max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_idempotent(self, library, positions):
        design = build_design(library, positions,
                              [1.0] * len(positions))
        legalize_rows(design)
        first = {c.name: c.position
                 for c in design.netlist.movable_cells()}
        second = legalize_rows(design)
        assert second.failed == 0
        assert second.total_displacement == pytest.approx(0.0)
        for c in design.netlist.movable_cells():
            assert c.position == first[c.name]

    @given(st.lists(coords, min_size=1, max_size=25))
    @settings(max_examples=15, deadline=None)
    def test_grid_bookkeeping_survives(self, library, positions):
        design = build_design(library, positions,
                              [2.0] * len(positions))
        legalize_rows(design)
        design.grid.check_occupancy()
        design.netlist.check_consistency()
