import pytest

from repro.geometry import Point, Rect
from repro.placement import (
    DetailedPlaceOpt,
    Partitioner,
    QuadraticPlacer,
    legalize_rows,
)
from repro.placement.legalize import check_legal


class TestDetailedPlaceOpt:
    def test_improves_or_keeps_wirelength(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        before = small_design.total_wirelength()
        opt = DetailedPlaceOpt(small_design, seed=3)
        accepted = opt.run()
        after = small_design.total_wirelength()
        assert after <= before + 1e-6
        assert accepted >= 0

    def test_untangles_obvious_swap(self, library):
        """Two crossed cells between their ports must be swapped."""
        from repro.netlist import Netlist
        from repro.workloads import make_design
        nl = Netlist()
        pa = nl.add_input_port("pa")
        pb = nl.add_input_port("pb")
        qa = nl.add_output_port("qa")
        qb = nl.add_output_port("qb")
        a = nl.add_cell("a", library.smallest("INV"))
        b = nl.add_cell("b", library.smallest("INV"))
        for (src, cell, dst, tag) in ((pa, a, qa, "a"), (pb, b, qb, "b")):
            n1 = nl.add_net("ni_" + tag)
            n2 = nl.add_net("no_" + tag)
            nl.connect(src.pin("Z"), n1)
            nl.connect(cell.pin("A"), n1)
            nl.connect(cell.pin("Z"), n2)
            nl.connect(dst.pin("A"), n2)
        d = make_design(nl, library, cycle_time=100.0)
        # ports: pa near (0, y1), pb near (0, y2) etc. Cross the cells.
        nl.move_cell(pa, Point(0, 10))
        nl.move_cell(qa, Point(d.die.xhi, 10))
        nl.move_cell(pb, Point(0, 40))
        nl.move_cell(qb, Point(d.die.xhi, 40))
        nl.move_cell(a, Point(20, 40))   # a belongs at y=10
        nl.move_cell(b, Point(20, 10))   # b belongs at y=40
        before = d.total_wirelength()
        opt = DetailedPlaceOpt(d, window_cells=2, seed=0)
        accepted = opt.run()
        assert accepted >= 1
        assert d.total_wirelength() < before
        assert a.position == Point(20, 10)
        assert b.position == Point(20, 40)

    def test_timing_weight_mode_runs(self, tiny_design):
        part = Partitioner(tiny_design, seed=0)
        part.run_to(100)
        opt = DetailedPlaceOpt(tiny_design, timing_weight=1.0, seed=0)
        opt.run()
        tiny_design.check()


class TestLegalize:
    def test_legal_after_partition(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        result = legalize_rows(small_design)
        assert result.failed == 0
        assert check_legal(small_design) == []

    def test_displacement_is_bounded(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        result = legalize_rows(small_design)
        bin_side = small_design.die.width / small_design.grid.nx
        assert result.mean_displacement < 6 * bin_side

    def test_rows_aligned(self, small_design):
        from repro.library.types import ROW_HEIGHT
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        legalize_rows(small_design)
        for c in small_design.netlist.movable_cells():
            y = c.require_position().y
            assert (y - small_design.die.ylo) % ROW_HEIGHT == pytest.approx(0.0)

    def test_avoids_blockage(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        legalize_rows(small_design)
        blk = small_design.blockages[0].rect
        for c in small_design.netlist.movable_cells():
            if c.area == 0:
                continue
            overlap = c.outline().intersection(blk)
            assert overlap is None or overlap.area == pytest.approx(0.0)

    def test_idempotent_when_legal(self, small_design):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        legalize_rows(small_design)
        second = legalize_rows(small_design)
        assert second.failed == 0
        assert check_legal(small_design) == []


class TestQuadraticPlacer:
    def test_places_everything_inside_die(self, small_design):
        QuadraticPlacer(small_design, seed=0).run()
        for c in small_design.netlist.movable_cells():
            assert small_design.die.contains(c.require_position())

    def test_beats_center_clump(self, small_design):
        small_design.spread_all_to_center()
        # center clump wirelength counts port spokes only
        QuadraticPlacer(small_design, seed=0).run()
        after = small_design.total_wirelength()
        # sanity: finite and the cells are spread (not one point)
        positions = {c.require_position()
                     for c in small_design.netlist.movable_cells()}
        assert len(positions) > 10
        assert after > 0

    def test_connected_cells_near_each_other(self, library):
        """A cell wired between two fixed ports lands between them."""
        from repro.netlist import Netlist
        from repro.workloads import make_design
        nl = Netlist()
        pa = nl.add_input_port("pa")
        qa = nl.add_output_port("qa")
        mid = nl.add_cell("mid", library.smallest("INV"))
        n1, n2 = nl.add_net("n1"), nl.add_net("n2")
        nl.connect(pa.pin("Z"), n1)
        nl.connect(mid.pin("A"), n1)
        nl.connect(mid.pin("Z"), n2)
        nl.connect(qa.pin("A"), n2)
        d = make_design(nl, library, cycle_time=100.0)
        nl.move_cell(pa, Point(0, 0))
        nl.move_cell(qa, Point(d.die.xhi, d.die.yhi))
        QuadraticPlacer(d, min_region_cells=1, seed=0).run()
        pos = mid.require_position()
        assert 0 < pos.x < d.die.xhi
        assert 0 < pos.y < d.die.yhi


class TestIncrementalLegalize:
    def test_respects_existing_cells(self, small_design, library):
        from repro.geometry import Point
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        legalize_rows(small_design)
        assert check_legal(small_design) == []
        # drop two new cells onto occupied spots
        anchor = next(c for c in small_design.netlist.movable_cells()
                      if c.placed)
        new = []
        for i in range(2):
            c = small_design.netlist.add_cell(
                "late%d" % i, library.size("INV", 4.0),
                position=anchor.position)
            new.append(c)
        result = legalize_rows(small_design, cells=new,
                               respect_existing=True)
        assert result.failed == 0
        assert check_legal(small_design) == []

    def test_existing_cells_unmoved(self, small_design, library):
        part = Partitioner(small_design, seed=1)
        part.run_to(100)
        legalize_rows(small_design)
        before = {c.name: c.position
                  for c in small_design.netlist.movable_cells()}
        c = small_design.netlist.add_cell(
            "late", library.smallest("NAND2"),
            position=small_design.die.center)
        legalize_rows(small_design, cells=[c], respect_existing=True)
        for name, pos in before.items():
            assert small_design.netlist.cell(name).position == pos
