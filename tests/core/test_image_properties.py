"""Hypothesis properties of the structure-of-arrays core.

Three invariants pin the :class:`repro.core.image.CoreImage` contract
(see its module docstring) under arbitrary edit sequences:

* **round trip** — netlist -> arrays -> netlist is the identity, down
  to iteration order and the unique-name counter, checked through
  ``netlist_to_state`` (the same flattening persistence relies on);
* **CSR partition** — the per-cell pin spans partition the pin set,
  and the per-net spans list exactly each net's pins in pin-list
  order, with ``pin_net`` consistent in both directions;
* **incremental array STA == object STA == full recompute** — after
  any edit sequence, the array kernel's lazily re-propagated values
  are bit-identical to the object engine's on a twin design, and both
  match a from-scratch engine to float tolerance.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CoreImage
from repro.geometry import Point
from repro.library.parasitics import WireParasitics
from repro.netlist import ops
from repro.netlist.serialize import netlist_to_state
from repro.timing import DelayMode, TimingConstraints, TimingEngine
from repro.wirelength import SteinerCache, WireModel
from repro.workloads import random_logic


def build(library, seed=3):
    nl = random_logic("p", library, 60, n_inputs=6, n_outputs=6,
                      seed=seed)
    for i, cell in enumerate(nl.cells()):
        nl.move_cell(cell, Point(float((i * 37) % 200),
                                 float((i * 53) % 200)))
    return nl


def fresh_engine(nl, kernel="object"):
    cache = SteinerCache(nl)
    model = WireModel(cache, WireParasitics(rc_threshold=120.0))
    return TimingEngine(nl, model,
                        TimingConstraints(cycle_time=500.0),
                        mode=DelayMode.LOAD, kernel=kernel)


def apply_edit(nl, library, kind, a, b):
    """One deterministic edit; identical twins stay identical."""
    cells = [c for c in nl.cells() if c.is_movable]
    nets = [n for n in nl.nets() if n.driver() is not None]
    if not cells or not nets:
        return
    cell = cells[a % len(cells)]
    net = nets[b % len(nets)]
    if kind == "move":
        nl.move_cell(cell, Point(float(a % 200), float(b % 200)))
    elif kind == "unplace":
        nl.move_cell(cell, None)
    elif kind == "resize":
        ladder = library.sizes(cell.type_name) \
            if library.has_type(cell.type_name) else []
        if ladder:
            nl.resize_cell(cell, ladder[a % len(ladder)])
    elif kind == "buffer":
        sinks = net.sinks()
        if sinks:
            ops.insert_buffer(nl, library, net,
                              sinks[:1 + a % len(sinks)],
                              position=Point(float(a % 200),
                                             float(b % 200)))
    elif kind == "swap":
        groups = cell.gate_type.swap_groups()
        if groups:
            pins = list(groups.values())[0]
            ops.swap_pins(nl, cell, pins[0].name, pins[1].name)
    elif kind == "clone":
        driver = net.driver()
        if (driver is not None and not driver.cell.is_port
                and len(net.sinks()) >= 2):
            ops.clone_cell(nl, driver.cell, net.sinks()[:1],
                           position=cell.position)


# an edit is (kind, int, int); ints index cells/nets/positions
edits = st.lists(
    st.tuples(st.sampled_from(["move", "resize", "buffer", "swap",
                               "clone", "unplace"]),
              st.integers(0, 10_000), st.integers(0, 10_000)),
    min_size=1, max_size=12,
)


class TestRoundTrip:
    @given(edits, st.integers(0, 2**20))
    @settings(max_examples=25, deadline=None)
    def test_netlist_arrays_netlist_identity(self, library, sequence,
                                             seed):
        nl = build(library, seed=1 + seed % 7)
        image = CoreImage(nl)
        image.sync()
        for kind, a, b in sequence:
            apply_edit(nl, library, kind, a, b)
        rebuilt = image.to_netlist(library)
        assert netlist_to_state(rebuilt) == netlist_to_state(nl)

    def test_roundtrip_covers_unplaced_and_fixed(self, library):
        nl = build(library)
        movable = nl.movable_cells()
        nl.move_cell(movable[0], None)
        movable[1].fixed = True  # direct write, no event — the
        # round trip must still see it (gathered live on rebuild)
        image = CoreImage(nl)
        assert netlist_to_state(image.to_netlist(library)) \
            == netlist_to_state(nl)


class TestCsrPartition:
    @given(edits)
    @settings(max_examples=25, deadline=None)
    def test_pin_spans_partition_the_pin_set(self, library, sequence):
        nl = build(library)
        image = CoreImage(nl)
        for kind, a, b in sequence:
            apply_edit(nl, library, kind, a, b)
        image.sync()

        # cell spans cover 0..npins exactly once, in cell.pins() order
        npins = len(image.pins)
        assert image.cell_pin_start[0] == 0
        assert image.cell_pin_start[-1] == npins
        seen = []
        for i, cell in enumerate(image.cells):
            s, e = image.cell_pin_start[i], image.cell_pin_start[i + 1]
            span = image.pins[s:e]
            assert span == cell.pins()
            assert all(image.pin_cell[k] == i for k in range(s, e))
            seen.extend(id(p) for p in span)
        assert len(seen) == npins
        assert set(seen) == set(id(p) for p in image.pins)

        # net spans list exactly each net's pins, in pin-list order,
        # and pin_net agrees in both directions
        connected = set()
        for j, net in enumerate(image.nets):
            s, e = image.net_pin_start[j], image.net_pin_start[j + 1]
            span = [image.pins[k] for k in image.net_pin[s:e]]
            assert span == list(net._pins)
            for k in image.net_pin[s:e]:
                assert image.pin_net[k] == j
                connected.add(int(k))
        for k in range(npins):
            if k not in connected:
                assert image.pin_net[k] == -1
                assert image.pins[k].net is None


class TestArrayStaEqualsObjectSta:
    @given(edits)
    @settings(max_examples=20, deadline=None)
    def test_incremental_twins_stay_bit_identical(self, library,
                                                  sequence):
        """Twin designs, twin edit streams, one per kernel: every
        query along the way must agree bit-for-bit, and the final
        state must match a from-scratch recompute."""
        nl_obj = build(library)
        nl_arr = build(library)
        eng_obj = fresh_engine(nl_obj, kernel="object")
        eng_arr = fresh_engine(nl_arr, kernel="array")
        assert eng_arr.worst_slack() == eng_obj.worst_slack()

        for step, (kind, a, b) in enumerate(sequence):
            apply_edit(nl_obj, library, kind, a, b)
            apply_edit(nl_arr, library, kind, a, b)
            if step % 3 == 1:  # interleave queries so the array
                # kernel sweeps real frontiers, not full rebuilds
                assert eng_arr.worst_slack() == eng_obj.worst_slack()
                assert eng_arr.total_negative_slack() \
                    == eng_obj.total_negative_slack()

        assert eng_arr.worst_slack() == eng_obj.worst_slack()
        assert eng_arr.total_negative_slack() \
            == eng_obj.total_negative_slack()
        for cell_o, cell_a in zip(nl_obj.cells(), nl_arr.cells()):
            for pin_o, pin_a in zip(cell_o.pins(), cell_a.pins()):
                assert eng_arr.arrival(pin_a) \
                    == eng_obj.arrival(pin_o), pin_o.full_name
                assert eng_arr.slack(pin_a) \
                    == eng_obj.slack(pin_o), pin_o.full_name

        # and both equal a full recompute, to float tolerance
        reference = fresh_engine(nl_arr, kernel="object")
        assert eng_arr.worst_slack() == pytest.approx(
            reference.worst_slack(), abs=1e-6)

    @given(st.integers(0, 2**30))
    @settings(max_examples=10, deadline=None)
    def test_array_incremental_equals_full_recompute(self, library,
                                                     seed):
        nl = build(library, seed=5)
        engine = fresh_engine(nl, kernel="array")
        engine.worst_slack()
        movable = nl.movable_cells()
        for i, cell in enumerate(movable[:10]):
            nl.move_cell(cell, Point(float((seed + i * 31) % 200),
                                     float((seed + i * 17) % 200)))
        reference = fresh_engine(nl, kernel="array")
        for cell in nl.cells():
            for pin in cell.pins():
                assert engine.arrival(pin) == pytest.approx(
                    reference.arrival(pin), abs=1e-6), pin.full_name
                assert engine.slack(pin) == pytest.approx(
                    reference.slack(pin), abs=1e-6), pin.full_name
