"""The object-vs-array differential harness.

The acceptance contract of the array core: on every Des preset, both
full flows (TPS and SPR) produce **bit-identical** results under
``core="object"`` and ``core="array"`` — the same ``report_state``
fields, the same final placement of every cell, the same traced span
sequence, and the same trace counter totals (the array core's own
``core.*`` counters excluded, since the object run does not have
them).

The fast tier (one preset per flow) runs in the default test pass;
the full five-preset matrix is ``slow``-marked and runs in the
nightly/CI differential job::

    PYTHONPATH=src python -m pytest tests/core/test_differential.py \
        -m slow -q
"""

import pytest

from repro.obs import Tracer, comparable
from repro.scenario import SPRConfig, SPRFlow, TPSConfig, TPSScenario
from repro.scenario.report import report_state
from repro.workloads.presets import DES_PRESETS, build_des_design

SCALE = 0.05
CORES = ("object", "array")


def _strip_core(counters):
    """Counter keys minus the array core's own namespaces and the
    wall-clock ``profile.*`` kernel timers (per-kernel split differs
    between cores by design — e.g. quad.assemble vs quad.dense mix)."""
    return {k: v for k, v in counters.items()
            if not k.startswith(("core.", "core_", "profile."))}


def run_flow(flow, preset, core, library, scale=SCALE):
    """One traced flow run; returns every comparison surface."""
    design = build_des_design(preset, library, scale=scale, core=core)
    tracer = Tracer(design)
    if flow == "TPS":
        scenario = TPSScenario(design, TPSConfig(seed=1),
                               tracer=tracer)
    else:
        scenario = SPRFlow(design, SPRConfig(seed=1, max_iterations=2),
                           tracer=tracer)
    report = scenario.run()
    placement = {
        cell.name: (None if cell.position is None
                    else (cell.position.x, cell.position.y))
        for cell in design.netlist.cells()
    }
    spans = []
    for record in tracer.records():
        record = comparable(record)
        record["counters"] = _strip_core(record["counters"])
        spans.append(record)
    return {
        "report": report_state(report),
        "placement": placement,
        "counters": _strip_core(tracer.counters.snapshot()),
        "spans": spans,
    }


def assert_runs_identical(flow, preset, library, scale=SCALE):
    obj = run_flow(flow, preset, "object", library, scale)
    arr = run_flow(flow, preset, "array", library, scale)
    where = "%s on %s" % (flow, preset)
    assert arr["report"] == obj["report"], where
    assert arr["placement"] == obj["placement"], where
    assert arr["counters"] == obj["counters"], where
    assert arr["spans"] == obj["spans"], where


class TestFastTier:
    """One preset per flow — runs in the default (tier-1) pass."""

    def test_tps_des1(self, library):
        assert_runs_identical("TPS", "Des1", library)

    def test_spr_des2(self, library):
        assert_runs_identical("SPR", "Des2", library)


@pytest.mark.slow
class TestFullMatrix:
    """Every flow x every Des preset, both cores."""

    @pytest.mark.parametrize("preset", sorted(DES_PRESETS))
    def test_tps(self, library, preset):
        assert_runs_identical("TPS", preset, library)

    @pytest.mark.parametrize("preset", sorted(DES_PRESETS))
    def test_spr(self, library, preset):
        assert_runs_identical("SPR", preset, library)


def test_array_core_actually_ran(library):
    """Guard against the differential silently comparing object to
    object: the array run must report array-kernel sweep work."""
    arr = run_flow("TPS", "Des1", "object", library)
    design = build_des_design("Des1", library, scale=SCALE,
                              core="array")
    tracer = Tracer(design)
    TPSScenario(design, TPSConfig(seed=1), tracer=tracer).run()
    totals = tracer.counters.snapshot()
    assert totals.get("core.rebuilds", 0) > 0
    assert totals.get("core.sta.sweeps", 0) > 0
    assert arr["counters"]  # and the object run had no core.* keys
    assert not any(k.startswith("core.") for k in arr["counters"])
