"""Kill-and-resume under the array core.

Extends the crash matrix (``tests/persist/test_crash_matrix.py``) to
``core="array"``: a TPS run killed at a milestone snapshot and resumed
through the production path — ``load_resume``, which reads the run's
recorded core choice from ``run.json`` and rebuilds an array-core
design — must land on a report and final state signature bit-identical
to an uninterrupted run, which is itself bit-identical to an
uninterrupted *object*-core run (the differential closes end to end).

The fast tier kills once mid-chain; the ``slow`` tier replays the
chain protocol, dying at **every** milestone of the schedule exactly
once.
"""

import pytest

from repro.guard import DesignCheckpoint
from repro.persist import (
    DIE_EXIT_CODE,
    FlowPersist,
    Journal,
    PersistConfig,
    RunDir,
    load_resume,
    scan_resume,
)
from repro.scenario import TPSConfig, TPSScenario
from repro.scenario.report import report_state
from repro.workloads.presets import build_des_design

SCALE = 0.05


def _design(library, core):
    return build_des_design("Des1", library, scale=SCALE, core=core)


def _pconfig(die_at_snapshot=None, compact_every=0):
    return PersistConfig(snapshot_every=20, snapshot_mode="delta",
                         full_every=4, compact_every=compact_every,
                         die_at_snapshot=die_at_snapshot)


def fresh_array_run(path, library, pconfig):
    """A persisted array-core TPS scenario, recording the core choice
    in run.json exactly as ``python -m repro tps --core=array`` does."""
    design = _design(library, "array")
    config = TPSConfig(seed=1)
    meta = {"flow": "TPS", "config": config.to_state(),
            "persist": pconfig.to_state(),
            "design": {"core": "array"}}
    rundir = RunDir.create(str(path), meta)
    journal = Journal.create(rundir.journal_path)
    persist = FlowPersist(rundir, journal, pconfig, design)
    return design, TPSScenario(design, config, persist=persist)


def resume_array_run(path, library, die_at_snapshot=None):
    """Resume through the production ``load_resume`` path; the core
    choice must come from the run directory, not the caller."""
    run = load_resume(str(path), library,
                      die_at_snapshot=die_at_snapshot)
    assert run.design.core == "array"
    assert run.design.core_image is not None
    config = TPSConfig.from_state(run.meta["config"])
    scenario = TPSScenario(run.design, config, persist=run.persist,
                           resume_state=run.resume_state)
    return run.design, scenario.run()


@pytest.fixture(scope="module")
def references(library, tmp_path_factory):
    """Uninterrupted reference runs, one per core."""
    refs = {}
    for core in ("object", "array"):
        path = tmp_path_factory.mktemp("ref-%s" % core)
        design = _design(library, core)
        config = TPSConfig(seed=1)
        meta = {"flow": "TPS", "config": config.to_state(),
                "persist": _pconfig().to_state(),
                "design": {"core": core}}
        rundir = RunDir.create(str(path), meta)
        journal = Journal.create(rundir.journal_path)
        persist = FlowPersist(rundir, journal, _pconfig(), design)
        report = TPSScenario(design, config, persist=persist).run()
        written = [r for r in journal if r["type"] == "snapshot"
                   and r.get("milestone")]
        refs[core] = {
            "report": report_state(report),
            "signature": DesignCheckpoint.state_signature(design),
            "kill_points": len(written) + persist.stats["deduped"],
        }
    return refs


def test_cores_agree_uninterrupted(references):
    """The cross-core differential must hold before any kill."""
    assert references["array"]["report"] \
        == references["object"]["report"]
    assert references["array"]["signature"] \
        == references["object"]["signature"]


def test_kill_once_and_resume(references, library, tmp_path):
    """Fast tier: one mid-chain kill; the resumed array run must
    match both uninterrupted references field-by-field."""
    ref = references["array"]
    path = tmp_path / "killed"
    # kill point 11 sits mid-delta-chain with full_every=4, so the
    # restore walks delta links back to a full root
    _, scenario = fresh_array_run(
        path, library, _pconfig(die_at_snapshot=11, compact_every=5))
    with pytest.raises(SystemExit) as death:
        scenario.run()
    assert death.value.code == DIE_EXIT_CODE
    design, report = resume_array_run(path, library)
    assert report_state(report) == ref["report"]
    assert DesignCheckpoint.state_signature(design) == ref["signature"]
    journal = Journal.open(RunDir.open(str(path)).journal_path)
    assert scan_resume(journal)["completed"]


@pytest.mark.slow
def test_kill_chain_covers_every_milestone(references, library,
                                           tmp_path):
    """Die at every milestone of one array run; the survivor must
    match the uninterrupted references (chain protocol as in
    ``tests/persist/test_crash_matrix.py``)."""
    ref = references["array"]
    path = tmp_path / "chain"
    _, scenario = fresh_array_run(
        path, library, _pconfig(die_at_snapshot=1, compact_every=6))
    with pytest.raises(SystemExit) as death:
        scenario.run()
    assert death.value.code == DIE_EXIT_CODE
    deaths = 1
    die_at = 1
    prev_tag = None
    design = report = None
    while deaths <= 400:  # far above any milestone count
        journal = Journal.open(RunDir.open(str(path)).journal_path)
        record = scan_resume(journal)["snapshot"]
        if record.get("tag") == prev_tag:
            die_at += 1  # last death re-hit the same schedule point
        else:
            die_at = 1
        prev_tag = record.get("tag")
        try:
            design, report = resume_array_run(
                path, library, die_at_snapshot=die_at)
            break
        except SystemExit as death:
            assert death.code == DIE_EXIT_CODE
            deaths += 1
    else:
        pytest.fail("kill chain never completed after %d deaths"
                    % deaths)
    where = "after %d deaths" % deaths
    assert deaths >= ref["kill_points"], where
    assert report_state(report) == ref["report"], where
    assert (DesignCheckpoint.state_signature(design)
            == ref["signature"]), where
    assert (report_state(report)
            == references["object"]["report"]), where
