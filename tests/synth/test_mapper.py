import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth import Aig, MapperOptions, balance, synthesize, technology_map
from repro.synth.aig import lit_not
from repro.synth.flow import evaluate_netlist
from repro.workloads.unmapped import random_aig


def equivalent(aig, netlist, seeds=range(6)):
    for seed in seeds:
        rng = random.Random(seed)
        vectors = {n: rng.getrandbits(64) for n in aig.inputs}
        if aig.simulate(vectors) != evaluate_netlist(netlist, vectors):
            return False
    return True


class TestBalance:
    def test_chain_depth_reduced(self):
        aig = Aig()
        inputs = [aig.add_input("i%d" % k) for k in range(8)]
        acc = inputs[0]
        for x in inputs[1:]:
            acc = aig.add_and(acc, x)
        aig.add_output("f", acc)
        assert aig.depth() == 7
        bal = balance(aig)
        assert bal.depth() == 3  # log2(8)

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_balance_preserves_function(self, seed):
        aig = random_aig(n_inputs=6, n_nodes=80, n_outputs=6, seed=seed)
        bal = balance(aig)
        rng = random.Random(seed + 1)
        vectors = {n: rng.getrandbits(64) for n in aig.inputs}
        assert aig.simulate(vectors) == bal.simulate(vectors)

    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_balance_never_deepens(self, seed):
        aig = random_aig(n_inputs=6, n_nodes=80, n_outputs=6, seed=seed)
        assert balance(aig).depth() <= aig.depth()


class TestTechnologyMap:
    def test_single_gate_functions(self, library):
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        aig.add_output("nand", lit_not(aig.add_and(a, b)))
        aig.add_output("xor", aig.add_xor(a, b))
        netlist = technology_map(aig, library)
        assert equivalent(aig, netlist)
        # in area mode the XOR2 cell beats its 4-gate NAND expansion
        # (in delay mode it legitimately loses: g=4, p=4)
        area_mapped = technology_map(aig, library,
                                     MapperOptions(mode="area"))
        assert equivalent(aig, area_mapped)
        types = {c.type_name for c in area_mapped.logic_cells()}
        assert "XOR2" in types or "XNOR2" in types

    def test_mixed_polarity_fanins(self, library):
        """a & ~b has no direct gate: needs complement-mask matching."""
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        aig.add_output("f", aig.add_and(a, lit_not(b)))
        netlist = technology_map(aig, library)
        assert equivalent(aig, netlist)

    @given(st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_random_equivalence(self, library, seed):
        aig = random_aig(n_inputs=6, n_nodes=70, n_outputs=6, seed=seed)
        netlist = synthesize(aig, library)
        netlist.check_consistency()
        assert equivalent(aig, netlist, seeds=(seed, seed + 1))

    def test_area_mode_smaller_or_equal(self, library):
        aig = random_aig(n_inputs=8, n_nodes=150, n_outputs=8, seed=9)
        delay_mapped = synthesize(aig, library,
                                  MapperOptions(mode="delay"))
        area_mapped = synthesize(aig, library,
                                 MapperOptions(mode="area"))
        assert area_mapped.total_cell_area() <= \
            delay_mapped.total_cell_area() * 1.05

    def test_delay_mode_shallower_or_equal(self, library):
        from repro.timing.graph import TimingGraph
        aig = random_aig(n_inputs=8, n_nodes=150, n_outputs=8, seed=9)
        delay_mapped = synthesize(aig, library,
                                  MapperOptions(mode="delay"))
        area_mapped = synthesize(aig, library,
                                 MapperOptions(mode="area"))
        assert TimingGraph(delay_mapped).max_level() <= \
            TimingGraph(area_mapped).max_level() + 1

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            MapperOptions(mode="power")

    def test_constant_output_rejected(self, library):
        aig = Aig()
        a = aig.add_input("a")
        aig.add_output("zero", aig.add_and(a, lit_not(a)))
        with pytest.raises(ValueError):
            technology_map(aig, library)

    def test_mapped_netlist_feeds_tps(self, library):
        """End-to-end: AIG -> map -> design -> a few placement cuts."""
        from repro.placement import Partitioner
        from repro.workloads import make_design
        aig = random_aig(n_inputs=8, n_nodes=120, n_outputs=8, seed=4)
        netlist = synthesize(aig, library, name="synth2place")
        design = make_design(netlist, library, cycle_time=400.0)
        part = Partitioner(design, seed=1)
        part.run_to(50)
        design.check()
        assert design.worst_slack() < float("inf")
