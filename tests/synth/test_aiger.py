import io
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.aig import Aig, lit_not
from repro.synth.aiger import read_aag, write_aag
from repro.workloads import random_aig


def roundtrip(aig):
    buf = io.StringIO()
    write_aag(aig, buf)
    buf.seek(0)
    return read_aag(buf)


class TestAigerRoundtrip:
    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_function_preserved(self, seed):
        aig = random_aig(n_inputs=5, n_nodes=50, n_outputs=5, seed=seed)
        back = roundtrip(aig)
        assert back.num_inputs == aig.num_inputs
        assert len(back.outputs) == len(aig.outputs)
        rng = random.Random(seed)
        vectors = {n: rng.getrandbits(64) for n in aig.inputs}
        assert aig.simulate(vectors) == back.simulate(vectors)

    def test_names_preserved(self):
        aig = Aig()
        a = aig.add_input("alpha")
        b = aig.add_input("beta")
        aig.add_output("gamma", aig.add_and(a, lit_not(b)))
        back = roundtrip(aig)
        assert back.inputs == ["alpha", "beta"]
        assert back.outputs[0][0] == "gamma"

    def test_complemented_output(self):
        aig = Aig()
        a = aig.add_input("a")
        aig.add_output("na", lit_not(a))
        back = roundtrip(aig)
        assert back.simulate({"a": 0b1}, width=1)["na"] == 0b0

    def test_header_format(self):
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        aig.add_output("f", aig.add_and(a, b))
        buf = io.StringIO()
        write_aag(aig, buf)
        assert buf.getvalue().splitlines()[0] == "aag 3 2 0 1 1"


class TestAigerErrors:
    def test_not_aag(self):
        with pytest.raises(ValueError):
            read_aag(io.StringIO("aig 1 1 0 0 0\n"))

    def test_latches_rejected(self):
        with pytest.raises(ValueError):
            read_aag(io.StringIO("aag 2 1 1 0 0\n2\n4 2\n"))

    def test_forward_reference_rejected(self):
        src = "aag 3 1 0 1 1\n2\n6\n6 2 8\n"
        with pytest.raises(ValueError):
            read_aag(io.StringIO(src))


class TestCli:
    def test_info_command(self, capsys):
        from repro.__main__ import main
        assert main(["info", "Des5", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "design Des5" in out
        assert "cells" in out

    def test_synth_command(self, tmp_path, capsys):
        from repro.__main__ import main
        aag = tmp_path / "t.aag"
        with open(aag, "w") as f:
            write_aag(random_aig(n_inputs=4, n_nodes=20, n_outputs=3,
                                 seed=5), f)
        out_v = tmp_path / "t.v"
        assert main(["synth", str(aag), "-o", str(out_v)]) == 0
        text = out_v.read_text()
        assert "module" in text and "endmodule" in text

    def test_tps_on_verilog_input(self, tmp_path, capsys, library):
        from repro.__main__ import main
        from repro.netlist.verilog import write_verilog
        from repro.workloads import random_logic
        nl = random_logic("cli", library, 60, seed=8)
        path = tmp_path / "d.v"
        with open(path, "w") as f:
            write_verilog(nl, f)
        code = main(["tps", str(path), "--cycle", "800",
                     "--out-placement", str(tmp_path / "d.pl")])
        assert code == 0
        assert (tmp_path / "d.pl").exists()
        out = capsys.readouterr().out
        assert "TPS finished" in out
