import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synth.aig import (
    FALSE,
    TRUE,
    Aig,
    lit_compl,
    lit_node,
    lit_not,
)


class TestAigConstruction:
    def test_inputs_and_ands(self):
        aig = Aig()
        a = aig.add_input("a")
        b = aig.add_input("b")
        f = aig.add_and(a, b)
        aig.add_output("f", f)
        assert aig.num_inputs == 2
        assert aig.num_ands == 1
        assert aig.depth() == 1

    def test_duplicate_input_rejected(self):
        aig = Aig()
        aig.add_input("a")
        with pytest.raises(ValueError):
            aig.add_input("a")

    def test_constant_simplification(self):
        aig = Aig()
        a = aig.add_input("a")
        assert aig.add_and(a, FALSE) == FALSE
        assert aig.add_and(a, TRUE) == a
        assert aig.add_and(a, a) == a
        assert aig.add_and(a, lit_not(a)) == FALSE
        assert aig.num_ands == 0

    def test_structural_hashing(self):
        aig = Aig()
        a, b = aig.add_input("a"), aig.add_input("b")
        f1 = aig.add_and(a, b)
        f2 = aig.add_and(b, a)  # commuted
        assert f1 == f2
        assert aig.num_ands == 1

    def test_unknown_literal_rejected(self):
        aig = Aig()
        with pytest.raises(ValueError):
            aig.add_and(10, 12)

    def test_literal_helpers(self):
        assert lit_node(7) == 3
        assert lit_compl(7)
        assert lit_not(lit_not(6)) == 6


class TestAigSimulation:
    def test_and_or_xor_mux(self):
        aig = Aig()
        a, b, s = (aig.add_input(n) for n in "abs")
        aig.add_output("and", aig.add_and(a, b))
        aig.add_output("or", aig.add_or(a, b))
        aig.add_output("xor", aig.add_xor(a, b))
        aig.add_output("mux", aig.add_mux(s, a, b))
        # exhaustive over 8 combinations packed into one 8-bit word
        v = {"a": 0xAA, "b": 0xCC, "s": 0xF0}
        out = aig.simulate(v, width=8)
        assert out["and"] == 0xAA & 0xCC
        assert out["or"] == 0xAA | 0xCC
        assert out["xor"] == 0xAA ^ 0xCC
        assert out["mux"] == (0xF0 & 0xAA) | (0x0F & 0xCC)

    def test_complemented_output(self):
        aig = Aig()
        a = aig.add_input("a")
        aig.add_output("na", lit_not(a))
        assert aig.simulate({"a": 0b01}, width=2)["na"] == 0b10

    def test_levels(self):
        aig = Aig()
        a, b, c = (aig.add_input(n) for n in "abc")
        ab = aig.add_and(a, b)
        abc = aig.add_and(ab, c)
        aig.add_output("f", abc)
        levels = aig.levels()
        assert levels[lit_node(ab)] == 1
        assert levels[lit_node(abc)] == 2
        assert aig.depth() == 2


class TestRandomAig:
    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_generator_well_formed(self, seed):
        from repro.workloads.unmapped import random_aig
        aig = random_aig(n_inputs=6, n_nodes=60, n_outputs=6, seed=seed)
        assert aig.num_inputs == 6
        assert aig.num_ands >= 60
        assert len(aig.outputs) == 6
        aig.random_simulation(seed=1)  # must not raise
