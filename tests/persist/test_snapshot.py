"""Snapshot round-trips: serialize -> reload -> identical signature.

The acceptance contract of the durable-state layer is that a design
rebuilt from an on-disk snapshot is *provably* bit-identical to the one
serialized, round-tripping through ``DesignCheckpoint.state_signature``
— for every DES preset and for a Verilog-loaded design — and that
corrupt or version-mismatched files are rejected, never half-loaded.
"""

import gzip
import io
import json

import pytest

from repro.guard import DesignCheckpoint
from repro.netlist.verilog import read_verilog, write_verilog
from repro.persist import (
    SNAPSHOT_VERSION,
    SnapshotError,
    design_state,
    read_snapshot,
    rebuild_design,
    restore_design,
    write_snapshot,
)
from repro.workloads import build_des_design, make_design
from repro.workloads.presets import DES_PRESETS

from tests.guard.conftest import build_design


def roundtrip(design, library, path):
    signature = write_snapshot(str(path), design)
    payload = read_snapshot(str(path))
    rebuilt = rebuild_design(payload, library)
    return signature, rebuilt


@pytest.mark.parametrize("preset", sorted(DES_PRESETS))
def test_roundtrip_every_des_preset(preset, library, tmp_path):
    design = build_des_design(preset, library, scale=0.05)
    signature, rebuilt = roundtrip(design, library,
                                   tmp_path / "d.snap.gz")
    assert DesignCheckpoint.state_signature(rebuilt) == signature
    assert DesignCheckpoint.state_signature(design) == signature
    # the RNG stream continues identically in the rebuilt process
    assert rebuilt.rng.random() == design.rng.random()


def test_roundtrip_verilog_loaded_design(library, tmp_path):
    source = build_design(library)
    stream = io.StringIO()
    write_verilog(source.netlist, stream)
    stream.seek(0)
    netlist = read_verilog(stream, library)
    design = make_design(netlist, library, cycle_time=1500.0)
    signature, rebuilt = roundtrip(design, library,
                                   tmp_path / "v.snap.gz")
    assert DesignCheckpoint.state_signature(rebuilt) == signature


def test_roundtrip_preserves_mutated_state(library, tmp_path):
    """Placement, weights, tags, status and grid survive the trip."""
    from repro.geometry import Point

    design = build_design(library)
    design.grid.resize(4, 4)
    design.status = 40
    cells = sorted(design.netlist.movable_cells(),
                   key=lambda c: c.name)
    for i, cell in enumerate(cells[:10]):
        design.netlist.move_cell(cell, Point(10.0 + i, 20.0 + 2 * i))
    cells[0].tags.add("dont_touch")
    net = sorted(design.netlist.nets(), key=lambda n: n.name)[3]
    net.weight = 7.5
    signature, rebuilt = roundtrip(design, library,
                                   tmp_path / "m.snap.gz")
    assert DesignCheckpoint.state_signature(rebuilt) == signature
    assert rebuilt.status == 40
    assert (rebuilt.grid.nx, rebuilt.grid.ny) == (4, 4)
    assert "dont_touch" in rebuilt.netlist.cell(cells[0].name).tags
    assert rebuilt.netlist.net(net.name).weight == 7.5


def test_restore_design_in_place(library, tmp_path):
    """restore_design rebuilds the *same* Design object from disk."""
    design = build_design(library)
    path = str(tmp_path / "r.snap.gz")
    signature = write_snapshot(path, design)
    # mutate heavily, then restore
    victims = sorted(design.netlist.movable_cells(),
                     key=lambda c: c.name)[:5]
    for cell in victims:
        design.netlist.remove_cell(cell)
    design.status = 90
    restore_design(design, read_snapshot(path))
    assert DesignCheckpoint.state_signature(design) == signature
    for cell in victims:
        assert design.netlist.cell(cell.name) is not None
    assert design.timing.worst_slack() is not None  # timer is sane


def test_timing_matches_after_rebuild(library, tmp_path):
    """A rebuilt design times identically (post invalidate_all)."""
    design = build_design(library)
    design.timing.invalidate_all()
    slack = design.timing.worst_slack()
    _, rebuilt = roundtrip(design, library, tmp_path / "t.snap.gz")
    assert rebuilt.timing.worst_slack() == pytest.approx(slack)


def test_corrupt_file_rejected(tmp_path):
    path = tmp_path / "bad.snap.gz"
    path.write_bytes(b"this is not a gzip stream")
    with pytest.raises(SnapshotError):
        read_snapshot(str(path))


def test_truncated_gzip_rejected(library, tmp_path, design=None):
    design = build_design(library)
    path = tmp_path / "cut.snap.gz"
    write_snapshot(str(path), design)
    path.write_bytes(path.read_bytes()[:50])
    with pytest.raises(SnapshotError):
        read_snapshot(str(path))


def test_version_mismatch_rejected(library, tmp_path):
    design = build_design(library)
    payload = design_state(design)
    payload["version"] = SNAPSHOT_VERSION + 1
    path = tmp_path / "vers.snap.gz"
    with gzip.open(str(path), "wt") as stream:
        json.dump(payload, stream)
    with pytest.raises(SnapshotError):
        read_snapshot(str(path))


def test_wrong_format_rejected(tmp_path):
    path = tmp_path / "fmt.snap.gz"
    with gzip.open(str(path), "wt") as stream:
        json.dump({"format": "something-else", "version": 1}, stream)
    with pytest.raises(SnapshotError):
        read_snapshot(str(path))
