"""``repro fsck``: the seeded corruption matrix, detect → repair →
resume.

Every row of the acceptance matrix gets a test: a real (tiny) run is
copied, one specific kind of storage damage is inflicted — torn
journal tail, flipped snapshot byte, tampered signature, missing delta
base, stale fence, orphan tmp/snapshot, misplaced compaction head —
and fsck must *detect* it, ``--repair`` must *converge* to a clean
report, and (for milestone damage) a resume from the repaired
directory must reproduce the reference run's report bit-identically.
"""

import gzip
import json
import os
import random
import shutil
import time
import zlib

import pytest

from repro.guard import DesignCheckpoint
from repro.persist import (
    DIE_EXIT_CODE,
    Journal,
    RunDir,
    fsck_path,
    fsck_run_dir,
    fsck_state_dir,
    read_snapshot,
    scan_resume,
)
from repro.persist.fsck import QUARANTINE_SUFFIX
from repro.scenario.report import report_state

from tests.persist.test_resume import fresh_run, resume_run


def kinds(report):
    return sorted({f["kind"] for f in report["findings"]})


def crc_line(record):
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return json.dumps(
        {"r": record, "c": zlib.crc32(body.encode("utf-8"))},
        sort_keys=True, separators=(",", ":")) + "\n"


@pytest.fixture(scope="module")
def finished_run(library, tmp_path_factory):
    """One completed TPS run (full-snapshot mode), copied per test."""
    path = tmp_path_factory.mktemp("fsck-ref") / "run"
    _, scenario = fresh_run(path, library)
    scenario.run()
    return str(path)


@pytest.fixture(scope="module")
def killed_run(library, tmp_path_factory):
    """(reference report, killed-run template) for repair-then-resume:
    the reference ran uninterrupted; the template died at status 50
    and still needs its resume leg."""
    ref_dir = tmp_path_factory.mktemp("fsck-ref-full") / "run"
    _, scenario = fresh_run(ref_dir, library)
    reference = scenario.run()
    kill_dir = tmp_path_factory.mktemp("fsck-killed") / "run"
    _, doomed = fresh_run(kill_dir, library, die_at=50)
    with pytest.raises(SystemExit) as death:
        doomed.run()
    assert death.value.code == DIE_EXIT_CODE
    return reference, str(kill_dir)


@pytest.fixture
def run_copy(finished_run, tmp_path):
    target = str(tmp_path / "run")
    shutil.copytree(finished_run, target)
    return target


def newest_snapshot(run_path, suffix=".snap.gz"):
    journal = Journal.open(os.path.join(run_path, "journal.jsonl"))
    files = [r["file"] for r in journal.of_type("snapshot")
             if r["file"].endswith(suffix)]
    assert files, "run has no %s milestones" % suffix
    return files[-1]


class TestCleanAndDetect:
    def test_clean_run_reports_clean(self, run_copy):
        report = fsck_run_dir(run_copy)
        assert report["clean"] is True
        assert report["mode"] == "run"
        assert report["total_findings"] == 0

    def test_torn_journal_tail(self, run_copy):
        journal = os.path.join(run_copy, "journal.jsonl")
        with open(journal, "a") as stream:
            stream.write('{"r": {"type": "phase", "sta')  # mid-write
        report = fsck_run_dir(run_copy)
        assert kinds(report) == ["journal-torn-tail"]
        repaired = fsck_run_dir(run_copy, repair=True)
        assert repaired["unrepaired"] == 0
        assert fsck_run_dir(run_copy)["clean"] is True
        # the journal reopens with every original record intact
        assert Journal.open(journal).last_of_type("run_end") is not None

    def test_flipped_snapshot_byte(self, run_copy):
        filename = newest_snapshot(run_copy)
        full = os.path.join(run_copy, "snapshots", filename)
        with open(full, "r+b") as stream:
            stream.seek(os.path.getsize(full) // 2)
            byte = stream.read(1)
            stream.seek(-1, os.SEEK_CUR)
            stream.write(bytes([byte[0] ^ 0x01]))  # gzip CRC catches it
        report = fsck_run_dir(run_copy)
        assert kinds(report) == ["snapshot-unloadable"]
        assert filename in report["findings"][0]["path"]

    def test_tampered_signature_detected(self, run_copy):
        filename = newest_snapshot(run_copy)
        full = os.path.join(run_copy, "snapshots", filename)
        payload = read_snapshot(full)
        payload["signature"] = "0" * len(payload["signature"])
        with open(full, "wb") as stream:
            stream.write(gzip.compress(
                json.dumps(payload, separators=(",", ":")).encode(),
                mtime=0))
        report = fsck_run_dir(run_copy)
        assert kinds(report) == ["snapshot-unloadable"]
        assert "does not match" in report["findings"][0]["detail"]

    def test_orphan_tmp_and_orphan_snapshot(self, run_copy):
        open(os.path.join(run_copy, "report.json.tmp"), "w").close()
        snap_dir = os.path.join(run_copy, "snapshots")
        open(os.path.join(snap_dir, "s9999.snap.gz.tmp"), "w").close()
        with open(os.path.join(snap_dir, "s9999.snap.gz"), "wb") as f:
            f.write(gzip.compress(b"{}"))
        report = fsck_run_dir(run_copy)
        assert kinds(report) == ["orphan-tmp", "snapshot-orphan"]
        assert sum(1 for f in report["findings"]
                   if f["kind"] == "orphan-tmp") == 2
        repaired = fsck_run_dir(run_copy, repair=True)
        assert repaired["unrepaired"] == 0
        assert fsck_run_dir(run_copy)["clean"] is True
        assert not os.path.exists(os.path.join(snap_dir,
                                               "s9999.snap.gz"))

    def test_misplaced_compacted_head(self, tmp_path):
        run = tmp_path / "run"
        os.makedirs(str(run / "snapshots"))
        (run / "run.json").write_text(json.dumps(
            {"format": "repro-run", "version": 1, "meta": {}}))
        with open(str(run / "journal.jsonl"), "w") as stream:
            stream.write(crc_line({"seq": 0, "type": "run_start"}))
            stream.write(crc_line({"seq": 1, "type": "compacted",
                                   "dropped": 3}))
        report = fsck_run_dir(str(run))
        assert "compacted-head-misplaced" in kinds(report)


class TestRepairConvergence:
    def test_quarantine_takes_milestone_off_resume_path(self, run_copy):
        filename = newest_snapshot(run_copy)
        snap_dir = os.path.join(run_copy, "snapshots")
        with open(os.path.join(snap_dir, filename), "r+b") as stream:
            stream.seek(10)
            stream.write(b"\x00\x00\x00\x00")
        before = scan_resume(Journal.open(
            os.path.join(run_copy, "journal.jsonl")))
        assert before["snapshot"]["file"] == filename
        repaired = fsck_run_dir(run_copy, repair=True)
        assert repaired["unrepaired"] == 0
        assert os.path.exists(os.path.join(
            snap_dir, filename + QUARANTINE_SUFFIX))
        after = scan_resume(Journal.open(
            os.path.join(run_copy, "journal.jsonl")))
        assert after["snapshot"] is not None
        assert after["snapshot"]["file"] != filename
        assert fsck_run_dir(run_copy)["clean"] is True

    def test_compacted_head_fuzz_converges(self, tmp_path):
        """Random byte damage to the compaction head is always
        detected, and repair reaches a clean report within two
        passes (truncate, then orphan sweep)."""
        for seed in range(5):
            run = tmp_path / ("run%d" % seed)
            os.makedirs(str(run / "snapshots"))
            (run / "run.json").write_text(json.dumps(
                {"format": "repro-run", "version": 1, "meta": {}}))
            head = crc_line({"seq": 0, "type": "compacted",
                             "dropped": 7, "base_file": "b.snap.gz"})
            tail = crc_line({"seq": 1, "type": "phase", "status": 10})
            rng = random.Random(seed)
            index = rng.randrange(len(head) - 1)
            damaged = (head[:index]
                       + chr((ord(head[index]) + 1) % 127 or 32)
                       + head[index + 1:])
            (run / "journal.jsonl").write_text(damaged + tail)
            report = fsck_run_dir(str(run))
            assert not report["clean"], "seed %d undetected" % seed
            fsck_run_dir(str(run), repair=True)
            second = fsck_run_dir(str(run), repair=True)
            assert second["unrepaired"] == 0
            assert fsck_run_dir(str(run))["clean"] is True

    def test_repair_then_resume_matches_reference(self, killed_run,
                                                  library, tmp_path):
        reference, template = killed_run
        run_path = str(tmp_path / "run")
        shutil.copytree(template, run_path)
        filename = newest_snapshot(run_path)
        full = os.path.join(run_path, "snapshots", filename)
        with open(full, "r+b") as stream:  # bit rot on the newest
            stream.seek(os.path.getsize(full) // 2)
            byte = stream.read(1)
            stream.seek(-1, os.SEEK_CUR)
            stream.write(bytes([byte[0] ^ 0x40]))
        assert not fsck_run_dir(run_path)["clean"]
        repaired = fsck_run_dir(run_path, repair=True)
        assert repaired["unrepaired"] == 0
        design, report = resume_run(run_path, library)
        assert report_state(report) == report_state(reference)
        stored = RunDir.open(run_path).read_report()
        assert (stored["state_signature"]
                == DesignCheckpoint.state_signature(design))


class TestDeltaChains:
    @pytest.fixture(scope="class")
    def delta_run(self, library, tmp_path_factory):
        from repro.persist import PersistConfig
        path = tmp_path_factory.mktemp("fsck-delta") / "run"
        pconfig = PersistConfig(snapshot_every=10,
                                snapshot_mode="delta", full_every=6)
        _, scenario = fresh_run(path, library, pconfig=pconfig)
        scenario.run()
        return str(path)

    @pytest.fixture
    def delta_copy(self, delta_run, tmp_path):
        target = str(tmp_path / "run")
        shutil.copytree(delta_run, target)
        return target

    def test_missing_delta_base_detected_and_quarantined(
            self, delta_copy):
        journal = Journal.open(os.path.join(delta_copy,
                                            "journal.jsonl"))
        deltas = [r["file"] for r in journal.of_type("snapshot")
                  if r["file"].endswith(".delta.gz")]
        assert deltas, "delta mode produced no delta milestones"
        first_delta = os.path.join(delta_copy, "snapshots", deltas[0])
        from repro.persist import read_delta
        base_name = read_delta(first_delta)["base"]
        os.remove(os.path.join(delta_copy, "snapshots", base_name))
        report = fsck_run_dir(delta_copy)
        assert "snapshot-unloadable" in kinds(report)
        assert any("missing base snapshot" in f["detail"]
                   for f in report["findings"])
        repaired = fsck_run_dir(delta_copy, repair=True)
        assert repaired["unrepaired"] == 0
        # convergence: a second pass may sweep newly orphaned files
        fsck_run_dir(delta_copy, repair=True)
        assert fsck_run_dir(delta_copy)["clean"] is True

    def test_missing_mid_chain_delta_detected(self, delta_copy):
        journal = Journal.open(os.path.join(delta_copy,
                                            "journal.jsonl"))
        deltas = [r["file"] for r in journal.of_type("snapshot")
                  if r["file"].endswith(".delta.gz")]
        assert deltas
        os.remove(os.path.join(delta_copy, "snapshots", deltas[0]))
        report = fsck_run_dir(delta_copy)
        assert any("missing delta" in f["detail"]
                   or "missing base" in f["detail"]
                   for f in report["findings"])


class TestStateDir:
    def _state_dir(self, tmp_path, finished_run, fence_token):
        state = str(tmp_path / "state")
        os.makedirs(os.path.join(state, "runs"))
        jobs = Journal.create(os.path.join(state, "jobs.jsonl"))
        jobs.append("submit", job_id="job-0001")
        jobs.append("lease", job_id="job-0001", worker="w1", token=7)
        run_path = os.path.join(state, "runs", "job-0001")
        shutil.copytree(finished_run, run_path)
        with open(os.path.join(run_path, "fence.json"), "w") as f:
            json.dump({"token": fence_token, "worker": "w1",
                       "at": 0.0}, f)
        return state, run_path

    def test_stale_fence_cross_checked_and_rewritten(
            self, tmp_path, finished_run):
        state, run_path = self._state_dir(tmp_path, finished_run,
                                          fence_token=3)
        report = fsck_state_dir(state)
        assert "fence-stale" in kinds(report)
        assert report["run_dirs"] == ["job-0001"]
        repaired = fsck_state_dir(state, repair=True)
        assert repaired["unrepaired"] == 0
        with open(os.path.join(run_path, "fence.json")) as stream:
            assert json.load(stream)["token"] == 7
        assert fsck_state_dir(state)["clean"] is True

    def test_corrupt_fence_and_heartbeat(self, tmp_path, finished_run):
        state, run_path = self._state_dir(tmp_path, finished_run,
                                          fence_token=7)
        with open(os.path.join(run_path, "fence.json"), "w") as f:
            f.write("not json{")
        workers = os.path.join(state, "workers")
        os.makedirs(workers)
        with open(os.path.join(workers, "w1.json"), "w") as f:
            f.write("also not json")
        report = fsck_state_dir(state)
        assert set(kinds(report)) == {"fence-corrupt",
                                      "heartbeat-unreadable"}
        repaired = fsck_state_dir(state, repair=True)
        assert repaired["unrepaired"] == 0
        assert fsck_state_dir(state)["clean"] is True

    def test_live_lease_run_dir_is_skipped(self, tmp_path,
                                           finished_run):
        """A run dir whose job holds a live lease belongs to its
        worker: repair must not truncate what may be an in-flight
        append.  Once the lease expires, the same dir is scrubbed."""
        state = str(tmp_path / "state")
        os.makedirs(os.path.join(state, "runs"))
        jobs = Journal.create(os.path.join(state, "jobs.jsonl"))
        jobs.append("submit", job_id="job-0001")
        jobs.append("lease", job_id="job-0001", worker="w1", token=7,
                    at=time.time(), ttl=30.0)
        run_path = os.path.join(state, "runs", "job-0001")
        shutil.copytree(finished_run, run_path)
        journal = os.path.join(run_path, "journal.jsonl")
        with open(journal, "a") as stream:
            stream.write('{"r": {"type": "phase"')  # append in flight
        size = os.path.getsize(journal)
        report = fsck_state_dir(state, repair=True)
        assert report["skipped_live_runs"] == ["job-0001"]
        assert report["run_dirs"] == []
        assert os.path.getsize(journal) == size  # untouched
        later = time.time() + 120.0  # lease long expired
        report = fsck_state_dir(state, repair=True, now=later)
        assert report["skipped_live_runs"] == []
        assert report["run_dirs"] == ["job-0001"]
        assert "journal-torn-tail" in kinds(report)
        assert os.path.getsize(journal) < size

    def test_heartbeat_keeps_expired_grant_live(self, tmp_path,
                                                finished_run):
        """The reaper's rule, mirrored: an ancient grant whose holder
        still heartbeats (and lists the job) is live — fsck must not
        rewrite its fence or scrub its run dir."""
        state, _ = self._state_dir(tmp_path, finished_run,
                                   fence_token=3)
        workers = os.path.join(state, "workers")
        os.makedirs(workers)
        with open(os.path.join(workers, "w1.json"), "w") as f:
            json.dump({"worker": "w1", "at": time.time(),
                       "jobs": ["job-0001"]}, f)
        report = fsck_state_dir(state, repair=True)
        assert report["skipped_live_runs"] == ["job-0001"]
        assert "fence-stale" not in kinds(report)

    def test_fence_of_finished_job_is_not_stale(self, tmp_path,
                                                finished_run):
        """After finish/requeue the job has no current lease; a fence
        left over from an older attempt is expected debris (the next
        claim rewrites it), not an inconsistency to repair."""
        state, _ = self._state_dir(tmp_path, finished_run,
                                   fence_token=3)
        jobs = Journal.open(os.path.join(state, "jobs.jsonl"))
        jobs.append("finish", job_id="job-0001", state="done", exit=0)
        report = fsck_state_dir(state)
        assert "fence-stale" not in kinds(report)
        assert report["clean"] is True

    def test_fresh_state_level_tmp_is_not_swept(self, tmp_path,
                                                finished_run):
        """Heartbeat/probe publishes are not serialized by the jobs
        lock, so a *fresh* tmp is an in-flight atomic publish — only
        aged tmp debris is reported and swept at the state level."""
        state, _ = self._state_dir(tmp_path, finished_run,
                                   fence_token=7)
        workers = os.path.join(state, "workers")
        os.makedirs(workers)
        fresh = os.path.join(workers, "w1.json.123.tmp")
        open(fresh, "w").close()
        stale = os.path.join(workers, "w2.json.456.tmp")
        open(stale, "w").close()
        old = time.time() - 3600.0
        os.utime(stale, (old, old))
        report = fsck_state_dir(state, repair=True)
        tmp_findings = [f["path"] for f in report["findings"]
                        if f["kind"] == "orphan-tmp"]
        assert tmp_findings == [os.path.join("workers",
                                             "w2.json.456.tmp")]
        assert os.path.exists(fresh)
        assert not os.path.exists(stale)

    def test_fsck_path_autodetects(self, tmp_path, run_copy):
        assert fsck_path(run_copy)["mode"] == "run"
        state = str(tmp_path / "state")
        os.makedirs(os.path.join(state, "runs"))
        Journal.create(os.path.join(state, "jobs.jsonl"))
        assert fsck_path(state)["mode"] == "state"
        empty = str(tmp_path / "empty")
        os.makedirs(empty)
        report = fsck_path(empty)
        assert report["mode"] == "unknown"
        assert kinds(report) == ["not-repro-state"]
