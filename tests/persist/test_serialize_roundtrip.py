"""Serialization round-trip property test across the workload presets.

netlist -> snapshot payload -> netlist must be exact for every Des
preset — including the *unmapped* form straight out of the generator
(gain-mode, no placement, synthesized port sizes) — and must stay
exact under seeded random mutation of everything a transform can
touch.  Exactness is asserted three ways: state-signature equality,
structural equality of the serialized states (cells/nets/ports in
order), and pin-membership spot checks on the rebuilt netlist.
"""

import random

import pytest

from repro.geometry import Point
from repro.guard import state_signature
from repro.persist import design_state, rebuild_design
from repro.workloads.presets import DES_PRESETS, build_des_design

#: keep the biggest preset to a few hundred cells — five presets
#: round-trip per test run
SCALE = 0.1

PRESETS = sorted(DES_PRESETS)


def _roundtrip(design, library):
    payload = design_state(design, {"probe": True})
    rebuilt = rebuild_design(payload, library)
    return payload, rebuilt


def _assert_equal(design, rebuilt, library):
    from repro.netlist.serialize import netlist_to_state, netlists_equal

    assert state_signature(rebuilt) == state_signature(design)
    assert netlists_equal(design.netlist, rebuilt.netlist)
    state_a = netlist_to_state(design.netlist)
    state_b = netlist_to_state(rebuilt.netlist)
    assert state_a == state_b  # cells, nets, ports, counter — in order
    # ports rebuild through the port path, not the library ladder
    ports_a = [(c.name, c.size.gate_type.name)
               for c in design.netlist.ports()]
    ports_b = [(c.name, c.size.gate_type.name)
               for c in rebuilt.netlist.ports()]
    assert ports_a == ports_b
    # pin membership survives with order intact
    for net in design.netlist.nets():
        twin = rebuilt.netlist.net(net.name)
        assert [p.full_name for p in twin.pins()] \
            == [p.full_name for p in net.pins()]


@pytest.mark.parametrize("preset", PRESETS)
def test_unmapped_preset_roundtrip(preset, library):
    """The generator's raw output: unplaced, gain-mode, undiscretized."""
    design = build_des_design(preset, library, scale=SCALE)
    assert any(c.position is None for c in design.netlist.cells())
    _, rebuilt = _roundtrip(design, library)
    _assert_equal(design, rebuilt, library)


@pytest.mark.parametrize("preset", PRESETS)
def test_mutated_preset_roundtrip(preset, library):
    """Property flavor: a seeded storm of transform-like mutations
    (moves, fixes, tags, gains, weights, clock/scan marks, resizes,
    RNG draws) must round-trip exactly."""
    design = build_des_design(preset, library, scale=SCALE)
    rng = random.Random(DES_PRESETS[preset]["seed"])
    cells = list(design.netlist.cells())
    for cell in rng.sample(cells, min(40, len(cells))):
        action = rng.randrange(4)
        if action == 0:
            design.netlist.move_cell(
                cell, Point(rng.uniform(0, design.die.width),
                            rng.uniform(0, design.die.height)))
        elif action == 1:
            cell.fixed = rng.random() < 0.5
        elif action == 2:
            cell.tags.add(rng.choice(("cts", "scan", "hold", "probe")))
        else:
            cell.gain = rng.uniform(1.0, 6.0)
    nets = list(design.netlist.nets())
    for net in rng.sample(nets, min(25, len(nets))):
        net.weight = rng.uniform(0.5, 4.0)
        if rng.random() < 0.2:
            net.is_scan = True
    design.status = rng.randrange(101)
    design.rng.random()  # advance the design RNG off its seed state
    _, rebuilt = _roundtrip(design, library)
    _assert_equal(design, rebuilt, library)


def test_discretized_and_placed_roundtrip(library):
    """The mapped form: discretized against the library ladder, placed
    and legalized — the state a mid-flow snapshot actually carries."""
    from repro.placement import QuadraticPlacer, legalize_rows
    from repro.timing import DelayMode
    from repro.transforms.sizing import GateSizing

    design = build_des_design("Des1", library, scale=SCALE)
    sizing = GateSizing(default_gain=3.0)
    sizing.assign_gains(design)
    design.timing.set_mode(DelayMode.LOAD)
    sizing.discretize(design)
    QuadraticPlacer(design, seed=7).run()
    legalize_rows(design)
    assert all(c.position is not None for c in design.netlist.cells())
    _, rebuilt = _roundtrip(design, library)
    _assert_equal(design, rebuilt, library)
    # the rebuilt design times identically (snapshot reload contract)
    design.timing.invalidate_all()
    assert rebuilt.timing.worst_slack() \
        == pytest.approx(design.timing.worst_slack())
