"""Unit coverage of the delta-snapshot algebra and chain verification.

The crash matrix proves delta chains end-to-end; these tests pin the
diff/apply node semantics directly — partial keyed records, order
reconstruction, ``$full`` replacement, appends — and the two signature
checks that keep a corrupt or mismatched chain from restoring silently
wrong state.
"""

import copy

import pytest

from repro.guard import payload_signature, state_signature
from repro.persist import (
    DELTA_FORMAT,
    SnapshotError,
    apply_delta,
    design_state,
    make_delta,
    read_delta,
    write_delta,
)
from repro.persist.delta import _apply_value, _diff_value, _UNCHANGED

from tests.guard.conftest import build_design


def _roundtrip(base, new):
    node = _diff_value(base, new)
    if node is _UNCHANGED:
        assert base == new
        return base
    return _apply_value(base, node)


class TestDiffApplyAlgebra:
    def test_identical_values_are_unchanged(self):
        assert _diff_value({"a": 1}, {"a": 1}) is _UNCHANGED
        assert _diff_value([1, 2], [1, 2]) is _UNCHANGED

    def test_type_change_is_a_set(self):
        # bool vs int compare equal in Python; the diff must not
        # collapse them or a restored payload would change types
        node = _diff_value(True, 1)
        assert node == {"$set": 1}

    def test_scalar_replace(self):
        assert _roundtrip({"x": 1}, {"x": 2}) == {"x": 2}

    def test_dict_add_and_drop(self):
        base = {"keep": 1, "drop": 2}
        new = {"keep": 1, "added": 3}
        assert _roundtrip(base, new) == new

    def test_nested_dict_recursion(self):
        base = {"outer": {"a": 1, "b": 2}, "same": [1]}
        new = {"outer": {"a": 9, "b": 2}, "same": [1]}
        node = _diff_value(base, new)
        # the unchanged sibling must not appear in the delta
        assert "same" not in node["$dict"]["set"]
        assert _apply_value(base, node) == new

    def test_list_append(self):
        base = {"trace": ["a", "b"]}
        new = {"trace": ["a", "b", "c", "d"]}
        node = _diff_value(base, new)
        assert node["$dict"]["set"]["trace"] == {"$append": ["c", "d"]}
        assert _apply_value(base, node) == new

    def test_list_rewrite_falls_back_to_set(self):
        base = [1, 2, 3]
        new = [3, 2, 1]
        assert _diff_value(base, new) == {"$set": new}


def _cells(*names, **overrides):
    records = []
    for name in names:
        rec = {"name": name, "type": "NAND2", "x": 1.0,
               "position": [0, 0], "fixed": False, "gain": 1.0,
               "tags": []}
        rec.update(overrides.get(name, {}))
        records.append(rec)
    return records


class TestKeyedRecordLists:
    def test_partial_upsert_carries_only_changed_fields(self):
        base = _cells("a", "b", "c")
        new = copy.deepcopy(base)
        new[1]["position"] = [5, 7]
        node = _diff_value(base, new)
        keyed = node["$keyed"]
        assert keyed["drop"] == []
        assert keyed["upsert"] == [{"name": "b", "position": [5, 7]}]
        assert _apply_value(base, node) == new

    def test_insert_and_drop(self):
        base = _cells("a", "b")
        new = _cells("a", "d")
        result = _roundtrip(base, new)
        assert result == new

    def test_order_preserved_without_explicit_order(self):
        base = _cells("a", "b", "c")
        new = copy.deepcopy(base)[0:1] + copy.deepcopy(base)[2:]
        new.append(_cells("z")[0])  # drop b, append z
        node = _diff_value(base, new)
        assert "order" not in node["$keyed"]
        assert _apply_value(base, node) == new

    def test_reorder_emits_explicit_order(self):
        base = _cells("a", "b", "c")
        new = [copy.deepcopy(base)[i] for i in (2, 0, 1)]
        node = _diff_value(base, new)
        assert node["$keyed"]["order"] == ["c", "a", "b"]
        assert _apply_value(base, node) == new

    def test_removed_field_forces_full_record(self):
        base = _cells("a")
        base[0]["port"] = "in"
        new = _cells("a")  # the "port" key vanished: merge can't drop it
        node = _diff_value(base, new)
        assert node["$keyed"]["upsert"][0]["$full"] is True
        result = _apply_value(base, node)
        assert result == new
        assert "$full" not in result[0]

    def test_duplicate_names_disable_keyed_diff(self):
        dup = _cells("a") + _cells("a")
        node = _diff_value(dup, _cells("a", "b"))
        assert "$set" in node


class TestDesignDeltas:
    def test_design_payload_roundtrip(self, library):
        design = build_design(library, gates=30, regs=4)
        base = design_state(design, {"phase": 1})
        # dirty a little of everything a transform can touch
        cell = next(iter(design.netlist.logic_cells()))
        design.netlist.move_cell(cell, None)
        design.status = 40
        design.rng.random()
        new = design_state(design, {"phase": 2, "trace": ["x"]})
        doc = make_delta(base, new)
        assert doc["format"] == DELTA_FORMAT
        restored = apply_delta(base, doc)
        assert restored == new

    def test_payload_signature_matches_live_signature(self, library):
        design = build_design(library, gates=30, regs=4)
        payload = design_state(design)
        assert payload_signature(payload["design"]) \
            == state_signature(design)

    def test_base_signature_mismatch_raises(self, library):
        design = build_design(library, gates=30, regs=4)
        base = design_state(design)
        design.status = 10
        new = design_state(design)
        doc = make_delta(base, new)
        wrong = dict(base)
        wrong["signature"] = "0" * 64
        with pytest.raises(SnapshotError):
            apply_delta(wrong, doc)

    def test_tampered_result_signature_raises(self, library):
        design = build_design(library, gates=30, regs=4)
        base = design_state(design)
        design.status = 10
        new = design_state(design)
        doc = make_delta(base, new)
        doc["signature"] = "f" * 64
        with pytest.raises(SnapshotError):
            apply_delta(base, doc)

    def test_unchanged_design_yields_null_delta(self, library):
        design = build_design(library, gates=30, regs=4)
        payload = design_state(design, {"k": 1})
        doc = make_delta(payload, payload)
        assert doc["delta"] is None
        assert apply_delta(payload, doc) == payload


class TestDeltaFiles:
    def test_write_read_roundtrip(self, library, tmp_path):
        design = build_design(library, gates=30, regs=4)
        base = design_state(design)
        design.status = 30
        doc = make_delta(base, design_state(design))
        path = str(tmp_path / "0001-x.delta.gz")
        write_delta(path, doc)
        assert read_delta(path) == doc

    def test_garbage_file_raises(self, tmp_path):
        path = str(tmp_path / "bad.delta.gz")
        with open(path, "wb") as stream:
            stream.write(b"not gzip at all")
        with pytest.raises(SnapshotError):
            read_delta(path)

    def test_full_snapshot_is_not_a_delta(self, library, tmp_path):
        from repro.persist import write_snapshot

        design = build_design(library, gates=30, regs=4)
        path = str(tmp_path / "full.snap.gz")
        write_snapshot(path, design)
        with pytest.raises(SnapshotError):
            read_delta(path)
