"""The crash-matrix differential harness.

For each flow (TPS, SPR) and each snapshot mode (full, delta), one
uninterrupted reference run fixes the expected ``report.json`` fields
and final state signature.  The matrix then proves that a process
death at *any* milestone snapshot — for TPS that is every in-level
transform boundary, for SPR every mid-iteration boundary — resumes to
a run that matches the reference field-by-field, including the final
state signature:

* ``test_kill_chain_covers_every_milestone`` kills the same run over
  and over — die at the first milestone, resume with a kill at the
  next, repeat — so every milestone in the schedule is a process
  death exactly once, at O(one run) total cost instead of O(n) runs.
* ``test_kill_matrix_spot_checks`` re-verifies a spread sample of
  kill points with independent fresh kill-and-resume pairs, comparing
  each resumed report field-by-field.
* ``test_des_presets_delta_resume_matches_full`` closes the tentpole
  acceptance bar across all five DES presets: a delta-chain resume is
  bit-identical to an uninterrupted full-snapshot run.

Killed runs additionally enable journal compaction and short delta
chains, so the matrix also proves that resume works from a compacted
journal and from any point of a delta chain (base, mid-chain, chain
roll-over).  The cross-mode test covers the same bar on the matrix
design: a delta-chain run is bit-identical to a full-snapshot run.
"""

import pytest

from repro.guard import DesignCheckpoint
from repro.persist import (
    DIE_EXIT_CODE,
    Journal,
    PersistConfig,
    RunDir,
    scan_resume,
)
from repro.scenario import SPRConfig, TPSConfig
from repro.scenario.report import report_state
from repro.workloads.presets import DES_PRESETS, build_des_design

from tests.guard.conftest import build_design
from tests.persist.test_resume import fresh_run, resume_run

MODES = ("full", "delta")
FLOWS = ("TPS", "SPR")


def _design(library):
    # small on purpose: every milestone in the schedule becomes a kill
    # point, so per-run cost multiplies by the milestone count
    return build_design(library, gates=30, regs=4)


def _config(flow):
    return (TPSConfig(seed=1) if flow == "TPS"
            else SPRConfig(seed=1, max_iterations=2))


def _pconfig(mode, die_at_snapshot=None, compact_every=0):
    return PersistConfig(snapshot_every=20, snapshot_mode=mode,
                         full_every=4, compact_every=compact_every,
                         die_at_snapshot=die_at_snapshot)


@pytest.fixture(scope="module")
def references(library, tmp_path_factory):
    """Uninterrupted reference runs per (flow, mode).

    Each entry carries the comparison targets plus the number of
    milestone kill points (journaled milestone snapshots + deduped
    milestones, i.e. every point ``--die-at-snapshot`` can hit).
    """
    refs = {}
    for flow in FLOWS:
        for mode in MODES:
            path = tmp_path_factory.mktemp("ref-%s-%s" % (flow, mode))
            design, scenario = fresh_run(
                path, library, flow=flow, config=_config(flow),
                pconfig=_pconfig(mode), design=_design(library))
            report = scenario.run()
            journal = Journal.open(
                RunDir.open(str(path)).journal_path)
            written = [r for r in journal if r["type"] == "snapshot"
                       and r.get("milestone")]
            stats = scenario.persist.stats
            refs[flow, mode] = {
                "report": report_state(report),
                "signature": DesignCheckpoint.state_signature(design),
                "kill_points": len(written) + stats["deduped"],
                "stats": dict(stats),
            }
    return refs


class TestCrossMode:
    """Delta mode must not change what the flow computes at all."""

    @pytest.mark.parametrize("flow", FLOWS)
    def test_delta_run_matches_full_run(self, references, flow):
        full = references[flow, "full"]
        delta = references[flow, "delta"]
        assert delta["report"] == full["report"]
        assert delta["signature"] == full["signature"]

    @pytest.mark.parametrize("flow", FLOWS)
    def test_delta_mode_actually_wrote_deltas(self, references, flow):
        stats = references[flow, "delta"]["stats"]
        assert stats["delta_snapshots"] > 0
        assert references[flow, "full"]["stats"]["delta_snapshots"] == 0


def chain_run(path, library, flow, mode, compact_every=6):
    """Kill one run at every milestone it has, resuming in between.

    The run dies at its first milestone; each resume re-arms
    ``die_at_snapshot`` for the next milestone, so every milestone in
    the schedule is a process death exactly once — at O(one run) total
    flow work.  When the resume point has not advanced — tracked by
    its snapshot *tag*, i.e. its position in the schedule, because a
    re-entered milestone may legitimately rewrite a fresh file (the
    trace gained a "resumed" line) or dedupe into no file at all —
    the kill is pushed one milestone further instead of replaying
    into the same death forever.

    Returns ``(design, report, deaths)`` once a leg runs to
    completion.
    """
    _, scenario = fresh_run(
        path, library, flow=flow, config=_config(flow),
        pconfig=_pconfig(mode, die_at_snapshot=1,
                         compact_every=compact_every),
        design=_design(library))
    with pytest.raises(SystemExit) as death:
        scenario.run()
    assert death.value.code == DIE_EXIT_CODE
    deaths = 1
    die_at = 1
    prev_tag = None
    while deaths <= 400:  # far above any milestone count
        journal = Journal.open(RunDir.open(str(path)).journal_path)
        record = scan_resume(journal)["snapshot"]
        if record.get("tag") == prev_tag:
            die_at += 1  # last death re-hit the same schedule point
        else:
            die_at = 1
        prev_tag = record.get("tag")
        try:
            design, report = resume_run(path, library,
                                        die_at_snapshot=die_at)
            return design, report, deaths
        except SystemExit as death:
            assert death.code == DIE_EXIT_CODE
            deaths += 1
    pytest.fail("kill chain never completed after %d deaths" % deaths)


@pytest.mark.parametrize("flow", FLOWS)
@pytest.mark.parametrize("mode", MODES)
def test_kill_chain_covers_every_milestone(references, library,
                                           tmp_path, flow, mode):
    """Die at every milestone of one run; the survivor must match."""
    ref = references[flow, mode]
    design, report, deaths = chain_run(tmp_path / "chain", library,
                                       flow, mode)
    where = "%s/%s after %d deaths" % (flow, mode, deaths)
    # the chain dies once per milestone, so it can only fall short of
    # the reference count if milestones vanished from the schedule
    assert deaths >= ref["kill_points"], where
    assert report_state(report) == ref["report"], where
    assert (DesignCheckpoint.state_signature(design)
            == ref["signature"]), where
    journal = Journal.open(
        RunDir.open(str(tmp_path / "chain")).journal_path)
    assert scan_resume(journal)["completed"], where


def _spread(count):
    """A handful of kill points spread across the schedule."""
    picks = {1, 2, count // 3, count // 2, (2 * count) // 3,
             count - 1, count}
    return sorted(k for k in picks if 1 <= k <= count)


@pytest.mark.parametrize("flow", FLOWS)
@pytest.mark.parametrize("mode", MODES)
def test_kill_matrix_spot_checks(references, library, tmp_path,
                                 flow, mode):
    """Independent fresh kill-and-resume pairs at sampled kill points.

    The chain test covers every milestone; these pairs re-verify a
    spread sample where each kill starts from a pristine process, so
    a chain-leg artefact cannot mask a resume bug (and vice versa).
    """
    ref = references[flow, mode]
    assert ref["kill_points"] >= (30 if flow == "TPS" else 10)
    for kill in _spread(ref["kill_points"]):
        path = tmp_path / ("kill-%02d" % kill)
        _, scenario = fresh_run(
            path, library, flow=flow, config=_config(flow),
            pconfig=_pconfig(mode, die_at_snapshot=kill,
                             compact_every=6),
            design=_design(library))
        with pytest.raises(SystemExit) as death:
            scenario.run()
        assert death.value.code == DIE_EXIT_CODE, "kill point %d" % kill
        design, report = resume_run(path, library)
        where = "%s/%s kill point %d" % (flow, mode, kill)
        assert report_state(report) == ref["report"], where
        assert (DesignCheckpoint.state_signature(design)
                == ref["signature"]), where
        journal = Journal.open(RunDir.open(str(path)).journal_path)
        assert scan_resume(journal)["completed"], where


@pytest.mark.parametrize("preset", sorted(DES_PRESETS))
def test_des_presets_delta_resume_matches_full(library, tmp_path,
                                               preset):
    """Tentpole acceptance bar, per DES preset: a delta-mode TPS run
    killed mid-chain and resumed is bit-identical to an uninterrupted
    full-snapshot run — same report fields, same state signature."""
    scale = 0.05
    design_full = build_des_design(preset, library, scale=scale)
    _, scenario = fresh_run(
        tmp_path / "full", library, config=TPSConfig(seed=1),
        pconfig=_pconfig("full"), design=design_full)
    report_full = scenario.run()

    design_killed = build_des_design(preset, library, scale=scale)
    _, scenario = fresh_run(
        tmp_path / "delta", library, config=TPSConfig(seed=1),
        # kill point 11 sits mid-chain with full_every=4, so the
        # restore walks delta links back to a full root
        pconfig=_pconfig("delta", die_at_snapshot=11, compact_every=5),
        design=design_killed)
    with pytest.raises(SystemExit) as death:
        scenario.run()
    assert death.value.code == DIE_EXIT_CODE
    design_delta, report_delta = resume_run(tmp_path / "delta", library)
    assert report_state(report_delta) == report_state(report_full)
    assert (DesignCheckpoint.state_signature(design_delta)
            == DesignCheckpoint.state_signature(design_full))


def test_compaction_bounds_the_journal(references, library, tmp_path):
    """With compaction on, records before the chain base are folded
    into a ``compacted`` head record and their snapshot files pruned;
    the run still completes and matches the uncompacted reference."""
    import os

    ref = references["TPS", "delta"]
    path = tmp_path / "compacted"
    design, scenario = fresh_run(
        path, library, flow="TPS", config=_config("TPS"),
        pconfig=_pconfig("delta", compact_every=4),
        design=_design(library))
    report = scenario.run()
    assert report_state(report) == ref["report"]
    assert scenario.persist.stats["compactions"] >= 1
    journal = Journal.open(RunDir.open(str(path)).journal_path)
    head = journal.records[0]
    assert head["type"] == "compacted"
    assert head["dropped"] > 0
    # every snapshot file on disk is referenced by a surviving record
    referenced = {r["file"] for r in journal if r["type"] == "snapshot"}
    on_disk = {f for f in os.listdir(str(path / "snapshots"))
               if not f.endswith(".tmp")}
    assert on_disk == referenced
