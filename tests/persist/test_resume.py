"""Kill-and-resume determinism and snapshot-backed substrate guarding.

The acceptance contract: a flow interrupted at a snapshot milestone and
resumed in a fresh process produces the *identical* final
``state_signature`` and FlowReport metrics as an uninterrupted run; and
a partitioner/legalizer failure restores the design from the last
on-disk snapshot with invariants passing.

"Fresh process" is simulated by rebuilding the Design, configs, and
scenario purely from what is on disk — exactly what
``python -m repro tps --run-dir DIR --resume`` does.
"""

import pytest

from repro.guard import DesignCheckpoint, FaultInjector, FaultKind
from repro.persist import (
    DIE_EXIT_CODE,
    FlowPersist,
    Journal,
    PersistConfig,
    RunDir,
    load_snapshot_payload,
    rebuild_design,
    scan_resume,
)
from repro.scenario import SPRConfig, SPRFlow, TPSConfig, TPSScenario
from repro.scenario.report import report_state

from tests.guard.conftest import build_design


def small_design(library):
    return build_design(library, gates=70, regs=6)


def fresh_run(path, library, flow="TPS", die_at=None, injector=None,
              config=None, pconfig=None, design=None):
    """A persisted scenario over a newly created run directory."""
    if design is None:
        design = small_design(library)
    if config is None:
        config = (TPSConfig(seed=1) if flow == "TPS"
                  else SPRConfig(seed=1))
    if pconfig is None:
        pconfig = PersistConfig(snapshot_every=10, die_at_status=die_at)
    meta = {"flow": flow, "config": config.to_state(),
            "persist": pconfig.to_state()}
    rundir = RunDir.create(str(path), meta)
    journal = Journal.create(rundir.journal_path)
    persist = FlowPersist(rundir, journal, pconfig, design)
    cls = TPSScenario if flow == "TPS" else SPRFlow
    return design, cls(design, config, injector=injector,
                       persist=persist)


def resume_run(path, library, injector=None, die_at_snapshot=None):
    """Rebuild everything from disk, as a fresh process would."""
    rundir = RunDir.open(str(path))
    journal = Journal.open(rundir.journal_path)
    state = scan_resume(journal)
    assert not state["completed"]
    record = state["snapshot"]
    assert record is not None, "no snapshot to resume from"
    payload = load_snapshot_payload(rundir, record)
    design = rebuild_design(payload, library)
    pconfig = PersistConfig.from_state(rundir.meta["persist"])
    pconfig.die_at_snapshot = die_at_snapshot
    quarantined = rundir.note_crashes(state["in_flight"],
                                      pconfig.crash_quarantine_after)
    persist = FlowPersist(rundir, journal, pconfig, design,
                          resumed=True)
    persist.seed_snapshot(record, record["status"], payload=payload)
    persist.note_resumed(record["seq"], record["status"],
                         state["in_flight"])
    resume_state = dict(payload.get("extras", {}))
    resume_state["quarantine"] = quarantined
    flow = rundir.meta["flow"]
    if flow == "TPS":
        config = TPSConfig.from_state(rundir.meta["config"])
        scenario = TPSScenario(design, config, injector=injector,
                               persist=persist,
                               resume_state=resume_state)
    else:
        config = SPRConfig.from_state(rundir.meta["config"])
        scenario = SPRFlow(design, config, injector=injector,
                           persist=persist, resume_state=resume_state)
    return design, scenario.run()


@pytest.fixture(scope="module")
def tps_runs(library, tmp_path_factory):
    """(uninterrupted, resumed) TPS reports plus their run dirs."""
    dir_a = tmp_path_factory.mktemp("tps-uninterrupted")
    dir_b = tmp_path_factory.mktemp("tps-killed")
    design_a, scenario_a = fresh_run(dir_a, library)
    report_a = scenario_a.run()
    _, scenario_b = fresh_run(dir_b, library, die_at=50)
    with pytest.raises(SystemExit) as death:
        scenario_b.run()
    assert death.value.code == DIE_EXIT_CODE
    design_b, report_b = resume_run(dir_b, library)
    return dir_a, dir_b, design_a, design_b, report_a, report_b


class TestKillAndResumeTPS:
    def test_reports_identical(self, tps_runs):
        _, _, _, _, report_a, report_b = tps_runs
        assert report_state(report_a) == report_state(report_b)

    def test_state_signatures_identical(self, tps_runs):
        _, _, design_a, design_b, _, _ = tps_runs
        assert (DesignCheckpoint.state_signature(design_a)
                == DesignCheckpoint.state_signature(design_b))

    def test_stored_reports_identical(self, tps_runs):
        dir_a, dir_b = tps_runs[0], tps_runs[1]
        stored_a = RunDir.open(str(dir_a)).read_report()
        stored_b = RunDir.open(str(dir_b)).read_report()
        assert stored_a is not None
        assert stored_a == stored_b
        assert stored_a["state_signature"] == stored_b["state_signature"]

    def test_resumed_flag_and_journal(self, tps_runs):
        dir_b, report_b = tps_runs[1], tps_runs[5]
        assert report_b.resumed
        journal = Journal.open(
            RunDir.open(str(dir_b)).journal_path)
        assert journal.last_of_type("resumed") is not None
        assert journal.last_of_type("run_end") is not None
        state = scan_resume(journal)
        assert state["completed"]

    def test_completed_run_is_detected(self, tps_runs):
        dir_a = tps_runs[0]
        journal = Journal.open(RunDir.open(str(dir_a)).journal_path)
        assert scan_resume(journal)["completed"]


def test_kill_and_resume_spr(library, tmp_path):
    """Same contract for the SPR baseline, killed at the synthesis
    snapshot (status 0) so the whole iteration loop replays."""
    dir_a = tmp_path / "a"
    dir_b = tmp_path / "b"
    config = SPRConfig(seed=1, max_iterations=2)
    design_a, flow_a = fresh_run(dir_a, library, flow="SPR",
                                 config=config)
    report_a = flow_a.run()
    _, flow_b = fresh_run(dir_b, library, flow="SPR", die_at=0,
                          config=SPRConfig(seed=1, max_iterations=2))
    with pytest.raises(SystemExit) as death:
        flow_b.run()
    assert death.value.code == DIE_EXIT_CODE
    design_b, report_b = resume_run(dir_b, library)
    assert report_state(report_a) == report_state(report_b)
    assert (DesignCheckpoint.state_signature(design_a)
            == DesignCheckpoint.state_signature(design_b))
    assert report_b.resumed


def test_substrate_failure_restores_from_disk(library, tmp_path):
    """A partitioner crash mid-flow: the design comes back from the
    last on-disk snapshot, the retry succeeds, invariants pass, and the
    run completes with the restore journaled."""
    injector = FaultInjector(seed=5)
    injector.inject("partitioner", FaultKind.EXCEPTION, invocation=3)
    design, scenario = fresh_run(tmp_path, library, injector=injector)
    report = scenario.run()
    design.check()  # raises on invariant failure
    health = report.health["partitioner"]
    assert health.rollbacks >= 1  # restored from disk at least once
    assert health.failures == 0  # the retry succeeded
    journal = Journal.open(
        RunDir.open(str(tmp_path)).journal_path)
    assert journal.last_of_type("restore") is not None
    assert scan_resume(journal)["completed"]


def test_substrate_retries_exhausted_raises(library, tmp_path):
    """Persistent substrate failure aborts coherently: the error
    propagates and the run directory remains resumable."""
    from repro.guard.errors import GuardError

    injector = FaultInjector(seed=5)
    for invocation in range(3):  # retries=2 -> 3 attempts, all fail
        injector.inject("legalizer", FaultKind.EXCEPTION,
                        invocation=0)
    design, scenario = fresh_run(tmp_path, library, injector=injector)
    with pytest.raises(GuardError):
        scenario.run()
    # the design was restored to the last snapshot: invariants hold
    design.check()
    journal = Journal.open(RunDir.open(str(tmp_path)).journal_path)
    state = scan_resume(journal)
    assert not state["completed"]
    assert state["snapshot"] is not None
