"""Write-ahead journal: atomic appends, torn-tail recovery."""

import json
import zlib

import pytest

from repro.persist import Journal, JournalError


def _raw_append(path, text):
    with open(str(path), "a") as stream:
        stream.write(text)


def _line(record):
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return json.dumps(
        {"r": record, "c": zlib.crc32(body.encode("utf-8"))},
        sort_keys=True, separators=(",", ":")) + "\n"


@pytest.fixture
def journal(tmp_path):
    return Journal.create(str(tmp_path / "journal.jsonl"))


def test_append_and_reopen(journal):
    journal.append("run_start", flow="TPS", seed=3)
    journal.append("phase", status=10)
    journal.append("phase", status=20)
    reopened = Journal.open(journal.path)
    assert len(reopened) == 3
    assert reopened.truncated_lines == 0
    assert [r["type"] for r in reopened] == ["run_start", "phase",
                                             "phase"]
    assert reopened.last_of_type("phase")["status"] == 20
    assert [r["seq"] for r in reopened] == [0, 1, 2]


def test_torn_tail_truncated(journal):
    journal.append("run_start", flow="TPS", seed=0)
    journal.append("phase", status=10)
    _raw_append(journal.path, '{"r": {"type": "phase", "st')  # torn
    reopened = Journal.open(journal.path)
    assert len(reopened) == 2
    assert reopened.truncated_lines == 1
    # the rewrite scrubbed the tail: a second open is clean
    again = Journal.open(journal.path)
    assert again.truncated_lines == 0
    assert len(again) == 2


def test_bad_crc_truncated(journal):
    journal.append("run_start", flow="TPS", seed=0)
    record = {"seq": 1, "type": "phase", "status": 10}
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    _raw_append(journal.path, json.dumps(
        {"r": record, "c": zlib.crc32(body.encode()) ^ 0xFF}) + "\n")
    reopened = Journal.open(journal.path)
    assert len(reopened) == 1
    assert reopened.truncated_lines == 1


def test_everything_after_first_bad_line_dropped(journal):
    journal.append("run_start", flow="TPS", seed=0)
    _raw_append(journal.path, "garbage\n")
    # a structurally valid line *after* the tear is dropped too: the
    # journal is a prefix log, not a sparse one
    _raw_append(journal.path, _line({"seq": 1, "type": "phase",
                                     "status": 10}))
    reopened = Journal.open(journal.path)
    assert len(reopened) == 1
    assert reopened.truncated_lines == 2


def test_non_monotonic_seq_truncated(journal):
    journal.append("run_start", flow="TPS", seed=0)
    _raw_append(journal.path, _line({"seq": 5, "type": "phase",
                                     "status": 10}))
    reopened = Journal.open(journal.path)
    assert len(reopened) == 1
    assert reopened.truncated_lines == 1


def test_append_after_recovery_continues_sequence(journal):
    journal.append("run_start", flow="TPS", seed=0)
    journal.append("phase", status=10)
    _raw_append(journal.path, "garbage\n")
    reopened = Journal.open(journal.path)
    reopened.append("phase", status=20)
    final = Journal.open(journal.path)
    assert [r["seq"] for r in final] == [0, 1, 2]
    assert final.last_of_type("phase")["status"] == 20


def test_missing_file_raises(tmp_path):
    with pytest.raises(JournalError):
        Journal.open(str(tmp_path / "nope.jsonl"))


def test_valid_tail_without_newline_is_torn(journal):
    """A record whose final newline never hit the disk is a torn
    append: recovery must not count it, or a later append would
    concatenate onto it."""
    journal.append("run_start", flow="TPS", seed=0)
    _raw_append(journal.path,
                _line({"seq": 1, "type": "phase", "status": 10})[:-1])
    reopened = Journal.open(journal.path)
    assert len(reopened) == 1
    assert reopened.truncated_lines == 1


class TestMultiWriterRefresh:
    """Two Journal handles on one file — the serve job-store contract
    (each append is made under an exclusive lock, after refresh)."""

    def test_refresh_folds_in_foreign_appends(self, journal):
        other = Journal.open(journal.path)
        journal.append("phase", status=10)
        journal.append("phase", status=20)
        fresh = other.refresh()
        assert [r["status"] for r in fresh] == [10, 20]
        # and the refreshed writer continues the shared sequence
        other.append("phase", status=30)
        assert journal.refresh()[0]["seq"] == 2

    def test_refresh_repairs_torn_tail_in_place(self, journal):
        """A writer crashed mid-append; the next refresher truncates
        the torn line so appends cannot concatenate past it."""
        journal.append("phase", status=10)
        other = Journal.open(journal.path)
        _raw_append(journal.path, '{"r": {"type": "phase", "st')
        assert other.refresh() == []
        assert other.repaired_lines == 1
        # the file itself was repaired: appends land cleanly after
        # the last valid record, for this writer and the first one
        other.append("phase", status=20)
        assert [r["seq"] for r in journal.refresh()] == [1]
        final = Journal.open(journal.path)
        assert final.truncated_lines == 0
        assert [r["seq"] for r in final] == [0, 1]
        assert final.last_of_type("phase")["status"] == 20

    def test_no_fork_after_torn_tail(self, journal):
        """The review scenario: writer A crashes mid-append, writers
        B and C keep going.  Without in-place repair B and C would
        continue from their stale prefixes (duplicate seqs, mutually
        invisible records); with it they share one sequence and no
        committed record is ever lost."""
        journal.append("phase", status=10)
        b = Journal.open(journal.path)
        c = Journal.open(journal.path)
        _raw_append(journal.path, '{"r": {"type": "le')  # A's crash
        b.refresh()
        b.append("phase", status=20)     # B: repair, then append
        c.refresh()
        c.append("phase", status=30)     # C: fold B's record in first
        assert [r["seq"] for r in c.records] == [0, 1, 2]
        final = Journal.open(journal.path)
        assert final.truncated_lines == 0
        assert [(r["seq"], r.get("status")) for r in final] \
            == [(0, 10), (1, 20), (2, 30)]


def test_of_type(journal):
    journal.append("phase", status=10)
    journal.append("snapshot", tag="init", file="x", status=0,
                   signature="s")
    journal.append("phase", status=20)
    assert len(journal.of_type("phase")) == 2
    assert journal.last_of_type("snapshot")["tag"] == "init"
    assert journal.last_of_type("run_end") is None
