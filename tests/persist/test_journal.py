"""Write-ahead journal: atomic appends, torn-tail recovery."""

import json
import zlib

import pytest

from repro.persist import Journal, JournalError


def _raw_append(path, text):
    with open(str(path), "a") as stream:
        stream.write(text)


def _line(record):
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return json.dumps(
        {"r": record, "c": zlib.crc32(body.encode("utf-8"))},
        sort_keys=True, separators=(",", ":")) + "\n"


@pytest.fixture
def journal(tmp_path):
    return Journal.create(str(tmp_path / "journal.jsonl"))


def test_append_and_reopen(journal):
    journal.append("run_start", flow="TPS", seed=3)
    journal.append("phase", status=10)
    journal.append("phase", status=20)
    reopened = Journal.open(journal.path)
    assert len(reopened) == 3
    assert reopened.truncated_lines == 0
    assert [r["type"] for r in reopened] == ["run_start", "phase",
                                             "phase"]
    assert reopened.last_of_type("phase")["status"] == 20
    assert [r["seq"] for r in reopened] == [0, 1, 2]


def test_torn_tail_truncated(journal):
    journal.append("run_start", flow="TPS", seed=0)
    journal.append("phase", status=10)
    _raw_append(journal.path, '{"r": {"type": "phase", "st')  # torn
    reopened = Journal.open(journal.path)
    assert len(reopened) == 2
    assert reopened.truncated_lines == 1
    # the rewrite scrubbed the tail: a second open is clean
    again = Journal.open(journal.path)
    assert again.truncated_lines == 0
    assert len(again) == 2


def test_bad_crc_truncated(journal):
    journal.append("run_start", flow="TPS", seed=0)
    record = {"seq": 1, "type": "phase", "status": 10}
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    _raw_append(journal.path, json.dumps(
        {"r": record, "c": zlib.crc32(body.encode()) ^ 0xFF}) + "\n")
    reopened = Journal.open(journal.path)
    assert len(reopened) == 1
    assert reopened.truncated_lines == 1


def test_everything_after_first_bad_line_dropped(journal):
    journal.append("run_start", flow="TPS", seed=0)
    _raw_append(journal.path, "garbage\n")
    # a structurally valid line *after* the tear is dropped too: the
    # journal is a prefix log, not a sparse one
    _raw_append(journal.path, _line({"seq": 1, "type": "phase",
                                     "status": 10}))
    reopened = Journal.open(journal.path)
    assert len(reopened) == 1
    assert reopened.truncated_lines == 2


def test_non_monotonic_seq_truncated(journal):
    journal.append("run_start", flow="TPS", seed=0)
    _raw_append(journal.path, _line({"seq": 5, "type": "phase",
                                     "status": 10}))
    reopened = Journal.open(journal.path)
    assert len(reopened) == 1
    assert reopened.truncated_lines == 1


def test_append_after_recovery_continues_sequence(journal):
    journal.append("run_start", flow="TPS", seed=0)
    journal.append("phase", status=10)
    _raw_append(journal.path, "garbage\n")
    reopened = Journal.open(journal.path)
    reopened.append("phase", status=20)
    final = Journal.open(journal.path)
    assert [r["seq"] for r in final] == [0, 1, 2]
    assert final.last_of_type("phase")["status"] == 20


def test_missing_file_raises(tmp_path):
    with pytest.raises(JournalError):
        Journal.open(str(tmp_path / "nope.jsonl"))


def test_of_type(journal):
    journal.append("phase", status=10)
    journal.append("snapshot", tag="init", file="x", status=0,
                   signature="s")
    journal.append("phase", status=20)
    assert len(journal.of_type("phase")) == 2
    assert journal.last_of_type("snapshot")["tag"] == "init"
    assert journal.last_of_type("run_end") is None
