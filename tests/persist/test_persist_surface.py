"""Unit tests for previously untested PR 2 surface.

Three corners the resume tests exercised only implicitly:
``TimingEngine.invalidate_all`` (the snapshot staleness barrier),
quarantine-strike persistence across process boundaries, and the
``--die-at-status`` contract when the target status is never reached.
"""

import pytest

from repro.persist import (
    DIE_EXIT_CODE,
    Journal,
    PersistConfig,
    RunDir,
    scan_resume,
)

from tests.guard.conftest import build_design
from tests.persist.test_resume import fresh_run


class TestInvalidateAll:
    def test_discards_cached_timing(self, library):
        """An out-of-band change (no netlist event) stays invisible to
        cached queries until invalidate_all forces a full re-time —
        exactly the staleness the snapshot barrier exists to flush."""
        design = build_design(library, gates=30, regs=4)
        before = design.timing.worst_slack()
        design.timing.default_gain *= 2  # plain attribute: no event
        assert design.timing.worst_slack() == before  # stale cache
        design.timing.invalidate_all()
        assert design.timing.worst_slack() != before

    def test_idempotent_when_nothing_changed(self, library):
        design = build_design(library, gates=30, regs=4)
        before = design.timing.worst_slack()
        design.timing.invalidate_all()
        assert design.timing.worst_slack() == before
        design.timing.invalidate_all()
        design.timing.invalidate_all()
        assert design.timing.worst_slack() == before


class TestQuarantineStrikePersistence:
    def test_strikes_accumulate_across_processes(self, tmp_path):
        """Each process death with a transform in flight adds one
        strike on disk; the threshold crossing quarantines it for
        every later process."""
        rundir = RunDir.create(str(tmp_path), {"flow": "TPS"})
        assert rundir.note_crashes(["buffer_insertion"], 2) == []
        # "new process": reopen from disk, strike again
        reopened = RunDir.open(str(tmp_path))
        assert reopened.note_crashes(["buffer_insertion"], 2) \
            == ["buffer_insertion"]
        state = RunDir.open(str(tmp_path)).load_quarantine()
        assert state["strikes"]["buffer_insertion"] == 2
        assert state["quarantined"] == ["buffer_insertion"]

    def test_quarantine_survives_unrelated_strikes(self, tmp_path):
        rundir = RunDir.create(str(tmp_path), {"flow": "TPS"})
        rundir.note_crashes(["pin_swapping"], 1)
        after = RunDir.open(str(tmp_path)).note_crashes(
            ["clock_scan"], 99)
        assert after == ["pin_swapping"]  # earlier quarantine kept

    def test_missing_file_means_clean_slate(self, tmp_path):
        rundir = RunDir.create(str(tmp_path), {"flow": "TPS"})
        assert rundir.load_quarantine() \
            == {"strikes": {}, "quarantined": []}


class TestDieAtStatusNeverReached:
    def test_run_completes_when_target_is_past_final_status(
            self, library, tmp_path):
        """--die-at-status past every milestone must not kill the run:
        it completes, writes its report, and would exit 0 — the exit-17
        path is reserved for an actual simulated death."""
        design, scenario = fresh_run(
            tmp_path, library,
            design=build_design(library, gates=30, regs=4),
            pconfig=PersistConfig(snapshot_every=50,
                                  die_at_status=500))
        report = scenario.run()  # must NOT raise SystemExit
        assert report.run_dir == str(tmp_path)
        rundir = RunDir.open(str(tmp_path))
        stored = rundir.read_report()
        assert stored is not None
        assert stored["state_signature"]
        journal = Journal.open(rundir.journal_path)
        assert scan_resume(journal)["completed"]

    def test_reached_target_still_dies(self, library, tmp_path):
        """Control: the same setup with a reachable target does die
        with the documented exit code."""
        _, scenario = fresh_run(
            tmp_path, library,
            design=build_design(library, gates=30, regs=4),
            pconfig=PersistConfig(snapshot_every=50,
                                  die_at_status=50))
        with pytest.raises(SystemExit) as death:
            scenario.run()
        assert death.value.code == DIE_EXIT_CODE

    def test_cli_exit_code_contract(self, library, tmp_path):
        """The CLI surfaces completion as exit 0 even with an
        unreachable --die-at-status, and 17 only on a real death."""
        from repro.__main__ import main

        completed = main(["tps", "Des1", "--scale", "0.05",
                          "--run-dir", str(tmp_path / "done"),
                          "--die-at-status", "999"])
        assert completed == 0
        with pytest.raises(SystemExit) as death:
            main(["tps", "Des1", "--scale", "0.05",
                  "--run-dir", str(tmp_path / "dead"),
                  "--die-at-status", "0"])
        assert death.value.code == DIE_EXIT_CODE
