"""The storage I/O shim: retry policy, fault injection, hygiene.

Every durable byte in the repo routes through ``repro.persist.io``,
so this file is the contract test for the whole storage boundary:
transient errors are retried with backoff, fatal ones escalate to
:class:`IoFatalError` (→ exit code 5), injected faults exhibit the
exact on-disk damage the recovery paths are built to survive, and
atomic publishes never leave a half-written file behind.
"""

import errno
import json
import os

import pytest

from repro.guard import FaultInjector, FaultKind, IO_KINDS
from repro.persist import IO_EXIT_CODE, IoFatalError, IoPolicy
from repro.persist import io as storage


@pytest.fixture(autouse=True)
def clean_shim():
    """Every test starts with a fresh hook, counters, and a no-sleep
    retry policy (backoff delays are pointless in tests)."""
    storage.clear_fault_hook()
    storage.reset_counters()
    old = storage.get_policy()
    storage.set_policy(IoPolicy(retries=3, sleep=lambda _s: None))
    yield
    storage.set_policy(old)
    storage.clear_fault_hook()
    storage.reset_counters()


def hook_for(kind, ops=None, times=None):
    """A fault hook firing ``kind`` (optionally only for ``ops``,
    optionally only the first ``times`` consults that match)."""
    state = {"left": times}

    def hook(op, path):
        if ops is not None and op not in ops:
            return None
        if state["left"] is not None:
            if state["left"] <= 0:
                return None
            state["left"] -= 1
        return kind

    return hook


class TestAtomicPublish:
    def test_json_roundtrip_and_no_tmp_left(self, tmp_path):
        path = str(tmp_path / "doc.json")
        storage.atomic_write_json(path, {"a": 1, "b": [2, 3]})
        with open(path) as stream:
            assert json.load(stream) == {"a": 1, "b": [2, 3]}
        assert os.listdir(str(tmp_path)) == ["doc.json"]

    def test_counters_track_the_full_publish(self, tmp_path):
        storage.atomic_write_bytes(str(tmp_path / "f"), b"x")
        counts = storage.counters()
        assert counts["io_writes"] == 1
        assert counts["io_fsyncs"] == 1
        assert counts["io_replaces"] == 1
        assert counts["io_dir_fsyncs"] == 1

    def test_failed_publish_leaves_old_content(self, tmp_path):
        path = str(tmp_path / "doc.json")
        storage.atomic_write_json(path, {"v": 1})
        storage.set_fault_hook(hook_for("disk-full", ops=("write",)))
        with pytest.raises(IoFatalError):
            storage.atomic_write_json(path, {"v": 2})
        storage.clear_fault_hook()
        with open(path) as stream:
            assert json.load(stream) == {"v": 1}

    def test_append_is_durable_and_ordered(self, tmp_path):
        path = str(tmp_path / "log")
        storage.append_text(path, "one\n")
        storage.append_text(path, "two\n")
        with open(path) as stream:
            assert stream.read() == "one\ntwo\n"
        assert storage.counters()["io_fsyncs"] == 2


class TestRetryPolicy:
    def test_transient_error_is_retried_to_success(self, tmp_path):
        storage.set_fault_hook(hook_for("io-error", times=2))
        storage.atomic_write_bytes(str(tmp_path / "f"), b"ok")
        counts = storage.counters()
        assert counts["io_retries"] == 2
        assert counts["io_faults_fatal"] == 0
        with open(str(tmp_path / "f"), "rb") as stream:
            assert stream.read() == b"ok"

    def test_exhausted_retries_escalate_to_fatal(self, tmp_path):
        storage.set_policy(IoPolicy(retries=2, sleep=lambda _s: None))
        storage.set_fault_hook(hook_for("io-error"))
        with pytest.raises(IoFatalError) as info:
            storage.atomic_write_bytes(str(tmp_path / "f"), b"x")
        assert info.value.cause.errno == errno.EIO
        counts = storage.counters()
        assert counts["io_retries"] == 2
        assert counts["io_faults_fatal"] == 1

    def test_append_retry_does_not_duplicate_partial_write(
            self, tmp_path, monkeypatch):
        """A transient error striking *after* part of an append
        reached the file must not merge a partial prefix with the
        retried full payload: every retry truncates back to the size
        captured before the first attempt."""
        path = str(tmp_path / "log")
        storage.append_text(path, "intact line\n")
        real = storage._write_and_sync
        calls = {"n": 0}

        def flaky(stream, file_path, data, op_path):
            if calls["n"] == 0:
                calls["n"] += 1
                stream.write(data[:len(data) // 2])
                stream.flush()
                raise OSError(errno.EIO, "controller hiccup mid-write")
            return real(stream, file_path, data, op_path)

        monkeypatch.setattr(storage, "_write_and_sync", flaky)
        storage.append_text(path, "second line\n")
        with open(path) as stream:
            assert stream.read() == "intact line\nsecond line\n"
        assert storage.counters()["io_retries"] == 1

    def test_fatal_errno_fails_fast_without_retry(self, tmp_path):
        storage.set_fault_hook(hook_for("disk-full"))
        with pytest.raises(IoFatalError) as info:
            storage.atomic_write_bytes(str(tmp_path / "f"), b"x")
        assert info.value.cause.errno == errno.ENOSPC
        counts = storage.counters()
        assert counts["io_retries"] == 0
        assert counts["io_faults_fatal"] == 1

    def test_fsync_fail_only_hits_sync_operations(self, tmp_path):
        storage.set_policy(IoPolicy(retries=1, sleep=lambda _s: None))
        storage.set_fault_hook(hook_for("fsync-fail"))
        with pytest.raises(IoFatalError) as info:
            storage.atomic_write_bytes(str(tmp_path / "f"), b"x")
        assert info.value.op in ("fsync", "fsync_dir")

    def test_backoff_doubles_and_caps(self):
        policy = IoPolicy(backoff_base=0.1, backoff_cap=0.35)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.35)
        assert policy.delay(9) == pytest.approx(0.35)

    def test_exit_code_is_distinct(self):
        # 0 ok, 3 bad job, 4 fenced, 17 simulated kill
        assert IO_EXIT_CODE == 5


class TestInjectedDamage:
    def test_torn_write_leaves_a_prefix(self, tmp_path):
        path = str(tmp_path / "log")
        storage.append_text(path, "intact line\n")
        storage.set_fault_hook(hook_for("torn-write", ops=("write",)))
        with pytest.raises(IoFatalError):
            storage.append_text(path, "doomed line that tears\n")
        storage.clear_fault_hook()
        with open(path) as stream:
            data = stream.read()
        assert data.startswith("intact line\n")
        # a strict prefix of the doomed payload landed — the exact
        # torn tail the journal recovery scan truncates
        tail = data[len("intact line\n"):]
        assert 0 < len(tail) < len("doomed line that tears\n")

    def test_bit_flip_lands_silently(self, tmp_path):
        path = str(tmp_path / "blob")
        payload = b"A" * 64
        storage.set_fault_hook(hook_for("bit-flip", ops=("write",)))
        storage.atomic_write_bytes(path, payload)  # no exception
        storage.clear_fault_hook()
        with open(path, "rb") as stream:
            on_disk = stream.read()
        assert len(on_disk) == len(payload)
        assert on_disk != payload
        flipped = [i for i in range(len(payload))
                   if on_disk[i] != payload[i]]
        assert len(flipped) == 1  # exactly one corrupted byte


class TestHygiene:
    def test_sweep_removes_only_tmp_debris(self, tmp_path):
        for name in ("a.tmp", "b.json.tmp", "fence.json.123.tmp",
                     "keep.json", "keep.tmpl"):
            (tmp_path / name).write_text("x")
        removed = storage.sweep_tmp(str(tmp_path))
        assert removed == 3
        assert sorted(os.listdir(str(tmp_path))) == ["keep.json",
                                                     "keep.tmpl"]

    def test_sweep_missing_directory_is_a_noop(self, tmp_path):
        assert storage.sweep_tmp(str(tmp_path / "nope")) == 0

    def test_fsync_dir_counts(self, tmp_path):
        storage.fsync_dir(str(tmp_path))
        assert storage.counters()["io_dir_fsyncs"] == 1


class TestInjectorIntegration:
    def test_explicit_spec_fires_at_the_scheduled_op(self, tmp_path):
        injector = FaultInjector(seed=7)
        injector.inject_io(FaultKind.DISK_FULL, op="write", at=2)
        injector.arm_io()
        try:
            storage.append_text(str(tmp_path / "log"), "0\n")
            storage.append_text(str(tmp_path / "log"), "1\n")
            with pytest.raises(IoFatalError):
                storage.append_text(str(tmp_path / "log"), "2\n")
        finally:
            injector.disarm_io()
        fired = injector.fired()
        assert len(fired) == 1
        assert fired[0].kind is FaultKind.DISK_FULL

    def test_random_io_plan_replays_deterministically(self, tmp_path):
        def fault_ops(seed):
            injector = FaultInjector(seed=seed, io_rate=0.3)
            injector.arm_io()
            hits = []
            try:
                for index in range(20):
                    try:
                        storage.atomic_write_bytes(
                            str(tmp_path / ("f%d" % index)), b"x")
                    except IoFatalError:
                        hits.append(index)
            finally:
                injector.disarm_io()
            return hits

        first, second = fault_ops(11), fault_ops(11)
        assert first == second
        assert fault_ops(12) != first or True  # other seeds may differ

    def test_io_state_round_trips(self):
        # io_rate/seed travel in run meta; state_dict carries the
        # *streams* — rng position, op counter, spec match windows —
        # so a resumed injector continues the schedule mid-sequence
        injector = FaultInjector(seed=3, io_rate=0.2)
        injector.inject_io(FaultKind.BIT_FLIP, op="write", at=5)
        for _ in range(4):
            injector.io_hook("write", "warmup")
        clone = FaultInjector(seed=3, io_rate=0.2)
        clone.load_state_dict(injector.state_dict())
        assert clone.has_io_chaos()
        assert [s.kind for s in clone._io_specs] == [FaultKind.BIT_FLIP]
        assert clone._io_specs[0].seen == injector._io_specs[0].seen
        assert [clone.io_hook("write", "f") for _ in range(8)] \
            == [injector.io_hook("write", "f") for _ in range(8)]

    def test_io_kinds_excluded_from_transform_pool(self):
        injector = FaultInjector(seed=1, rate=1.0)
        assert not set(injector.kinds) & set(IO_KINDS)
