"""Seeded fuzzing of journal recovery.

The recovery contract: whatever happens to the tail of a journal file
— torn writes, flipped bits, duplicated appends — ``Journal.open``
either recovers a *valid prefix* of the original records or raises
``JournalError``; it never returns corrupt records and never lets a
different exception escape.  Each case is generated from a seeded RNG
so failures replay exactly.
"""

import random

import pytest

from repro.persist import Journal, JournalError


def _make_journal(path, rng, n=24):
    """A journal with ``n`` records of varied shapes and sizes."""
    journal = Journal.create(str(path))
    for index in range(n):
        journal.append(
            "record",
            payload=rng.getrandbits(32),
            name="transform-%d" % rng.randrange(8),
            nested={"values": [rng.random() for _ in range(rng.randrange(4))]},
            text="x" * rng.randrange(40),
        )
    return journal


def _assert_valid_prefix(records, original):
    assert len(records) <= len(original)
    assert records == original[:len(records)]


SEEDS = range(8)


@pytest.mark.parametrize("seed", SEEDS)
def test_torn_tail_truncates_to_valid_prefix(tmp_path, seed):
    rng = random.Random(seed)
    path = tmp_path / "journal.jsonl"
    original = list(_make_journal(path, rng))
    data = path.read_bytes()
    # tear the file at a random byte boundary (simulated crash mid-append)
    torn_at = rng.randrange(1, len(data))
    path.write_bytes(data[:torn_at])
    journal = Journal.open(str(path))
    _assert_valid_prefix(journal.records, original)
    # recovery must be durable: a reopen is clean and appendable
    reopened = Journal.open(str(path))
    assert reopened.truncated_lines == 0
    assert reopened.records == journal.records
    appended = reopened.append("after", ok=True)
    assert appended["seq"] == len(journal.records)
    assert Journal.open(str(path)).records[-1] == appended


@pytest.mark.parametrize("seed", SEEDS)
def test_single_bit_flip_is_detected(tmp_path, seed):
    rng = random.Random(1000 + seed)
    path = tmp_path / "journal.jsonl"
    original = list(_make_journal(path, rng))
    data = bytearray(path.read_bytes())
    position = rng.randrange(len(data))
    data[position] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))
    journal = Journal.open(str(path))
    _assert_valid_prefix(journal.records, original)
    # recovery rewrote the file: a reopen sees no residual corruption
    reopened = Journal.open(str(path))
    assert reopened.truncated_lines == 0
    assert reopened.records == journal.records


@pytest.mark.parametrize("seed", SEEDS)
def test_duplicate_append_truncates_at_duplicate(tmp_path, seed):
    """A crash can leave the same record appended twice (retry after a
    torn fsync).  The duplicate's sequence number is non-monotonic, so
    recovery truncates there — no duplicate record is ever replayed."""
    rng = random.Random(2000 + seed)
    path = tmp_path / "journal.jsonl"
    original = list(_make_journal(path, rng))
    lines = path.read_text().splitlines(keepends=True)
    dup = rng.randrange(len(lines))
    insert_at = rng.randrange(dup + 1, len(lines) + 1)
    lines.insert(insert_at, lines[dup])
    path.write_text("".join(lines))
    journal = Journal.open(str(path))
    # everything before the duplicated line is intact; the duplicate
    # and everything after it is dropped
    assert journal.records == original[:insert_at]
    assert journal.truncated_lines > 0


@pytest.mark.parametrize("seed", range(4))
def test_shuffled_garbage_lines_never_escape_journalerror(tmp_path, seed):
    """Arbitrary line-level mangling (drop/duplicate/garbage splice)
    must yield a valid prefix — never an unhandled exception."""
    rng = random.Random(3000 + seed)
    path = tmp_path / "journal.jsonl"
    original = list(_make_journal(path, rng))
    lines = path.read_text().splitlines(keepends=True)
    for _ in range(rng.randrange(1, 4)):
        action = rng.choice(("drop", "dup", "garbage"))
        at = rng.randrange(len(lines))
        if action == "drop":
            del lines[at]
        elif action == "dup":
            lines.insert(at, lines[rng.randrange(len(lines))])
        else:
            lines.insert(at, "{not json at all\n")
    path.write_text("".join(lines))
    try:
        journal = Journal.open(str(path))
    except JournalError:
        return  # allowed: detected, not silently wrong
    _assert_valid_prefix(journal.records, original)


def test_missing_file_raises_journalerror(tmp_path):
    with pytest.raises(JournalError):
        Journal.open(str(tmp_path / "nope.jsonl"))
