import pytest

from repro.scenario import SPRConfig, SPRFlow
from repro.timing import DelayMode
from repro.timing.engine import INF
from repro.wirelength.wlm import WireLoadModel
from repro.workloads import ProcessorParams, make_design, processor_partition


@pytest.fixture
def spr_setup(library):
    params = ProcessorParams(n_stages=2, regs_per_stage=8,
                             gates_per_stage=90, seed=37)
    netlist = processor_partition(params, library)
    design = make_design(netlist, library, cycle_time=1200.0)
    return design


class TestFreezeNetWeights:
    def test_critical_nets_boosted(self, spr_setup):
        design = spr_setup
        flow = SPRFlow(design)
        design.timing.set_mode(DelayMode.LOAD)
        flow._freeze_net_weights(design)
        boosted = [n for n in design.netlist.nets()
                   if n.weight > n.base_weight]
        assert boosted
        worst = design.timing.worst_slack()
        window = 0.15 * design.constraints.cycle_time
        for n in boosted:
            assert design.timing.net_slack(n) <= worst + window + 1e-6

    def test_clock_scan_untouched(self, spr_setup):
        design = spr_setup
        flow = SPRFlow(design)
        clk = next(n for n in design.netlist.nets() if n.is_clock)
        clk.weight = 0.123
        flow._freeze_net_weights(design)
        assert clk.weight == 0.123

    def test_weights_bounded(self, spr_setup):
        design = spr_setup
        flow = SPRFlow(design)
        flow._freeze_net_weights(design)
        for n in design.netlist.nets():
            assert n.weight <= n.base_weight * 4.0 + 1e-9


class TestFanoutBuffering:
    def test_heavy_fanout_gets_buffers(self, library):
        """A WLM-timed net with big fanout is split when it pays."""
        from repro.netlist import Netlist
        from repro.workloads import make_design
        nl = Netlist()
        pi = nl.add_input_port("pi")
        drv = nl.add_cell("drv", library.smallest("INV"))
        n0, fan = nl.add_net("n0"), nl.add_net("fan")
        nl.connect(pi.pin("Z"), n0)
        nl.connect(drv.pin("A"), n0)
        nl.connect(drv.pin("Z"), fan)
        for i in range(12):
            s = nl.add_cell("s%d" % i, library.smallest("INV"))
            nl.connect(s.pin("A"), fan)
            out = nl.add_net("o%d" % i)
            nl.connect(s.pin("Z"), out)
            po = nl.add_output_port("po%d" % i)
            nl.connect(po.pin("A"), out)
        design = make_design(nl, library, cycle_time=60.0)
        flow = SPRFlow(design, SPRConfig(fanout_buffer_threshold=8))
        design.timing.set_wire_model(
            WireLoadModel(design.steiner, design.parasitics))
        design.timing.set_mode(DelayMode.LOAD)
        before = design.netlist.num_cells
        flow._fanout_buffering(design)
        assert design.netlist.num_cells > before
        design.netlist.check_consistency()

    def test_threshold_respected(self, spr_setup):
        design = spr_setup
        flow = SPRFlow(design, SPRConfig(fanout_buffer_threshold=10**6))
        before = design.netlist.num_cells
        flow._fanout_buffering(design)
        assert design.netlist.num_cells == before


class TestSprConfig:
    def test_convergence_cutoff(self, library):
        """max_iterations=1 forces a single placement pass."""
        params = ProcessorParams(n_stages=2, regs_per_stage=6,
                                 gates_per_stage=60, seed=41)
        netlist = processor_partition(params, library)
        design = make_design(netlist, library, cycle_time=1500.0)
        report = SPRFlow(design, SPRConfig(max_iterations=1)).run()
        assert report.iterations == 1
