"""TPSScenario._window boundary semantics and electrical-round exits.

Status advances in discrete jumps, so Figure 5's ``lo < status < hi``
guards are evaluated against the traversed interval ``(prev, status]``;
these tests pin the boundary cases down exactly.
"""

import re

import pytest

from repro.scenario import TPSConfig, TPSScenario
from repro.workloads import ProcessorParams, make_design, processor_partition

_ACCEPTED = re.compile(r"(\d+)/(\d+) accepted")


def tiny_design(library, seed=5):
    params = ProcessorParams(n_stages=2, regs_per_stage=6,
                             gates_per_stage=60, seed=seed)
    netlist = processor_partition(params, library)
    return make_design(netlist, library, cycle_time=1400.0,
                       with_blockage=True)


class TestWindowBoundaries:
    """(prev, status] overlapping the open window (lo, hi)."""

    window = staticmethod(TPSScenario._window)

    def test_prev_on_lower_edge_fires(self):
        # prev == lo: the traversed interval starts exactly at the
        # window's open edge; (lo, status] overlaps (lo, hi)
        assert self.window(30, 35, 30, 50)

    def test_status_on_lower_edge_skips(self):
        # status == lo: the interval (prev, lo] never enters (lo, hi)
        assert not self.window(25, 30, 30, 50)

    def test_status_on_upper_edge_fires(self):
        # status == hi: values just below hi were traversed
        assert self.window(45, 50, 30, 50)

    def test_prev_on_upper_edge_skips(self):
        # prev == hi: the window was fully handled by earlier cuts
        assert not self.window(50, 55, 30, 50)

    def test_window_jumped_in_one_step_still_fires(self):
        # a single cut from below lo to above hi must not skip the
        # window — the whole point of interval semantics
        assert self.window(20, 60, 30, 50)
        assert self.window(0, 100, 30, 50)

    def test_interval_below_window_skips(self):
        assert not self.window(10, 20, 30, 50)

    def test_interval_above_window_skips(self):
        assert not self.window(60, 70, 30, 50)

    def test_degenerate_no_progress(self):
        # prev == status inside the window: nothing new traversed but
        # the guard is only consulted after a successful cut; the
        # interval semantics still report overlap
        assert self.window(35, 40, 30, 50)
        assert not self.window(30, 30, 30, 50)


def electrical_lines(report):
    """Trace lines from the migration/cloning/buffering rounds."""
    return [line for line in report.trace_lines()
            if ("migration:" in line or "cloning:" in line
                or "buffering:" in line)
            and "post-legalization" not in line]


class TestElectricalRounds:
    def test_zero_rounds_disables_electrical_correction(self, library):
        report = TPSScenario(
            tiny_design(library),
            TPSConfig(seed=1, electrical_rounds=0)).run()
        assert electrical_lines(report) == []

    def test_window_above_status_range_never_fires(self, library):
        # lo == 100: status can never exceed it, so the window is dead
        report = TPSScenario(
            tiny_design(library),
            TPSConfig(seed=1, electrical_window=(100, 101))).run()
        assert electrical_lines(report) == []

    def test_rounds_bounded_and_exit_on_no_progress(self, library):
        """Per status: at most ``electrical_rounds`` rounds, and every
        non-final round accepted at least one change (the loop exits
        early the moment a round makes no progress)."""
        rounds = 3
        report = TPSScenario(
            tiny_design(library),
            TPSConfig(seed=1, electrical_rounds=rounds)).run()
        by_status = {}
        for line in electrical_lines(report):
            status = int(line.split(":")[0].split()[1])
            by_status.setdefault(status, []).append(line)
        assert by_status, "electrical window never fired"
        for status, lines in by_status.items():
            n_rounds = sum("migration:" in line for line in lines)
            assert n_rounds <= rounds, (status, lines)
            # group into rounds (each starts with a migration line)
            per_round = []
            for line in lines:
                if "migration:" in line:
                    per_round.append([])
                per_round[-1].append(line)
            for round_lines in per_round[:-1]:
                accepted = sum(
                    int(m.group(1)) for line in round_lines
                    for m in [_ACCEPTED.search(line)] if m)
                assert accepted > 0, (status, round_lines)
