import pytest

from repro.scenario import FlowReport, SPRConfig, SPRFlow, TPSConfig, TPSScenario
from repro.scenario.report import snapshot
from repro.placement.legalize import check_legal
from repro.timing import DelayMode
from repro.workloads import ProcessorParams, make_design, processor_partition


def small_design(library, seed=5, cycle=1500.0):
    params = ProcessorParams(n_stages=2, regs_per_stage=8,
                             gates_per_stage=110, seed=seed)
    netlist = processor_partition(params, library)
    return make_design(netlist, library, cycle_time=cycle,
                       with_blockage=True)


@pytest.fixture(scope="module")
def tps_run(library):
    design = small_design(library)
    scenario = TPSScenario(design, TPSConfig(seed=1))
    report = scenario.run()
    return design, report


class TestTPSScenario:
    def test_report_fields(self, tps_run):
        design, report = tps_run
        assert report.flow == "TPS"
        assert report.icells == design.icell_count()
        assert report.cuts is not None
        assert report.cpu_seconds > 0
        assert report.trace

    def test_ends_legal(self, tps_run):
        design, _report = tps_run
        assert check_legal(design) == []

    def test_ends_in_load_mode(self, tps_run):
        design, _report = tps_run
        assert design.timing.mode is DelayMode.LOAD

    def test_status_monotonic(self, tps_run):
        _design, report = tps_run
        statuses = [event.status for event in report.trace]
        assert statuses == sorted(statuses)
        assert statuses[-1] == 100

    def test_figure5_windows(self, tps_run):
        """Transforms fire only inside their status windows.

        Status advances in jumps, so window conditions are evaluated
        against the traversed interval (prev, status]: a window fires
        at the first status at-or-past it.
        """
        _design, report = tps_run
        prev = 0
        last_status = 0
        for event in report.trace:
            status, line = event.status, event.render()
            if status != last_status:
                prev, last_status = last_status, status
            if "area recovery" in line and "late" not in line \
                    and "final" not in line:
                assert status > 20 and prev < 30, line
            if "speed sizing" in line and "post-legalization" not in line:
                assert status > 30, line
            if line.endswith("clock/scan stage: clock"):
                assert status >= 30, line
            if "pin swapping" in line and "post-legalization" not in line:
                assert status > 50, line
            if "late area recovery" in line:
                assert status > 80, line

    def test_clock_tree_was_built(self, tps_run):
        design, _report = tps_run
        bufs = [c for c in design.netlist.cells() if c.is_clock_buffer]
        assert bufs
        for reg in design.netlist.sequential_cells():
            assert reg.pin("CK").net is not None

    def test_consistency(self, tps_run):
        design, _report = tps_run
        design.check()

    def test_ablation_flags_disable_stages(self, library):
        design = small_design(library, seed=6)
        config = TPSConfig(seed=1, use_migration=False,
                           use_cloning=False, use_buffering=False,
                           use_pin_swapping=False, use_reflow=False,
                           netweight_mode=None,
                           use_detailed_placement=False)
        report = TPSScenario(design, config).run()
        text = "\n".join(report.trace_lines())
        assert "migration" not in text
        assert "cloning" not in text
        assert "buffering" not in text
        assert "pin swapping" not in text
        assert "reflow" not in text
        assert "net weights" not in text
        assert "detailed placement" not in text

    def test_strict_figure5_window_config(self, library):
        design = small_design(library, seed=7)
        config = TPSConfig(seed=1, electrical_window=(30, 50))
        report = TPSScenario(design, config).run()
        prev = 0
        last_status = 0
        for event in report.trace:
            status, line = event.status, event.render()
            if status != last_status:
                prev, last_status = last_status, status
            if ("migration" in line or "cloning" in line
                    or "buffering" in line) \
                    and "post-legalization" not in line:
                # interval semantics: fires while (prev, status]
                # still overlaps the (30, 50) window
                assert status > 30 and prev < 50, line


class TestSPRFlow:
    @pytest.fixture(scope="class")
    def spr_run(self, library):
        design = small_design(library)
        flow = SPRFlow(design, SPRConfig(seed=1))
        report = flow.run()
        return design, report

    def test_report(self, spr_run):
        design, report = spr_run
        assert report.flow == "SPR"
        assert report.iterations >= 1
        assert report.cuts is not None

    def test_real_wire_model_restored(self, spr_run):
        design, _report = spr_run
        from repro.wirelength.wlm import WireLoadModel
        assert not isinstance(design.timing.wire_model, WireLoadModel)

    def test_clock_tree_exists(self, spr_run):
        design, _report = spr_run
        assert any(c.is_clock_buffer for c in design.netlist.cells())

    def test_consistency(self, spr_run):
        design, _report = spr_run
        design.check()


class TestComparison:
    def test_tps_competitive(self, library):
        """The Table 1 shape on a small instance: TPS slack at least
        comparable, wirelength no worse than ~SPR."""
        d_spr = small_design(library, seed=9, cycle=1400.0)
        spr = SPRFlow(d_spr, SPRConfig(seed=2)).run()
        d_tps = small_design(library, seed=9, cycle=1400.0)
        tps = TPSScenario(d_tps, TPSConfig(seed=2)).run()
        cycle = 1400.0
        assert tps.worst_slack >= spr.worst_slack - 0.10 * cycle
        assert tps.wirelength <= spr.wirelength * 1.2

    def test_improvement_formula(self):
        spr = FlowReport("SPR", "d", 1, 1.0, -380.0, -380.0, 2000.0, 1.0)
        tps = FlowReport("TPS", "d", 1, 1.0, -222.0, -222.0, 2000.0, 1.0)
        assert FlowReport.cycle_time_improvement(spr, tps) == \
            pytest.approx(7.9)


class TestExtensionFlags:
    def test_power_and_hold_extensions(self, library):
        design = small_design(library, seed=12, cycle=2500.0)
        config = TPSConfig(seed=3, use_power_recovery=True,
                           use_hold_fix=True, cluster_first_cuts=2)
        report = TPSScenario(design, config).run()
        text = "\n".join(report.trace_lines())
        assert "power recovery" in text
        assert "hold fixing" in text
        # hold fixing leaves no violations it could fix
        design.check()
