import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.partition import (
    Hypergraph,
    cut_size,
    fm_bipartition,
    multilevel_bipartition,
)


def two_clusters(k=8, bridge=1):
    """Two k-cliques joined by `bridge` nets: obvious min cut."""
    nets = []
    for base in (0, k):
        for i in range(k):
            for j in range(i + 1, k):
                nets.append([base + i, base + j])
    for b in range(bridge):
        nets.append([b, k + b])
    return Hypergraph([1.0] * (2 * k), nets)


class TestHypergraph:
    def test_validation(self):
        with pytest.raises(ValueError):
            Hypergraph([1.0], [[0, 1]])
        with pytest.raises(ValueError):
            Hypergraph([1.0, 1.0], [[0, 1]], net_weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            Hypergraph([1.0], [], fixed={0: 2})

    def test_incidence(self):
        hg = Hypergraph([1, 1, 1], [[0, 1], [1, 2], [0, 1, 2]])
        inc = hg.vertex_nets()
        assert inc[1] == [0, 1, 2]
        assert inc[0] == [0, 2]

    def test_free_and_movable(self):
        hg = Hypergraph([2.0, 3.0, 5.0], [], fixed={2: 1})
        assert hg.free_vertices() == [0, 1]
        assert hg.movable_weight() == 5.0
        assert hg.total_weight == 10.0


class TestCutSize:
    def test_uncut(self):
        hg = Hypergraph([1, 1, 1, 1], [[0, 1], [2, 3]])
        assert cut_size(hg, [0, 0, 1, 1]) == 0.0

    def test_weighted_cut(self):
        hg = Hypergraph([1, 1], [[0, 1]], net_weights=[3.5])
        assert cut_size(hg, [0, 1]) == 3.5

    def test_hyperedge_counted_once(self):
        hg = Hypergraph([1, 1, 1], [[0, 1, 2]])
        assert cut_size(hg, [0, 0, 1]) == 1.0
        assert cut_size(hg, [0, 1, 1]) == 1.0


class TestFMBipartition:
    def test_finds_obvious_min_cut(self):
        hg = two_clusters(k=8, bridge=1)
        res = fm_bipartition(hg, seed=3)
        assert res.cut == pytest.approx(1.0)
        # each cluster ends up whole on one side
        assert len({res.sides[i] for i in range(8)}) == 1
        assert len({res.sides[i] for i in range(8, 16)}) == 1

    def test_balance_respected(self):
        hg = two_clusters(k=10)
        res = fm_bipartition(hg, tolerance=0.1, seed=1)
        w0 = sum(hg.vertex_weights[v]
                 for v in range(hg.num_vertices) if res.sides[v] == 0)
        assert 0.4 * hg.total_weight <= w0 <= 0.6 * hg.total_weight

    def test_fixed_vertices_never_move(self):
        hg = Hypergraph([1.0] * 6, [[0, 1], [2, 3], [4, 5]],
                        fixed={0: 1, 5: 0})
        res = fm_bipartition(hg, seed=0, tolerance=0.5)
        assert res.sides[0] == 1
        assert res.sides[5] == 0

    def test_fixed_terminals_pull_neighbors(self):
        # star around a fixed terminal: neighbors should join its side
        hg = Hypergraph([1.0] * 9,
                        [[0, i] for i in range(1, 5)]
                        + [[8, i] for i in range(5, 8)],
                        fixed={0: 0, 8: 1})
        res = fm_bipartition(hg, seed=2, tolerance=0.3)
        assert all(res.sides[i] == 0 for i in range(1, 5))
        assert all(res.sides[i] == 1 for i in range(5, 8))

    def test_target_fraction(self):
        hg = Hypergraph([1.0] * 10, [])
        res = fm_bipartition(hg, target_fraction=0.3, tolerance=0.05,
                             seed=0)
        w0 = sum(1 for s in res.sides if s == 0)
        assert w0 == 3

    def test_initial_sides_respected_shape(self):
        hg = two_clusters()
        init = [0] * 8 + [1] * 8
        res = fm_bipartition(hg, initial_sides=init, seed=0)
        assert res.cut == pytest.approx(1.0)

    def test_initial_sides_length_checked(self):
        hg = two_clusters()
        with pytest.raises(ValueError):
            fm_bipartition(hg, initial_sides=[0, 1])

    def test_empty_graph(self):
        res = fm_bipartition(Hypergraph([], []))
        assert res.sides == []
        assert res.cut == 0.0

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_cut_reported_matches_sides(self, seed):
        rng = random.Random(seed)
        n = 20
        nets = [[rng.randrange(n) for _ in range(rng.randint(2, 4))]
                for _ in range(30)]
        nets = [list(set(net)) for net in nets]
        nets = [net for net in nets if len(net) >= 2]
        hg = Hypergraph([1.0 + rng.random() for _ in range(n)], nets)
        res = fm_bipartition(hg, seed=seed)
        assert res.cut == pytest.approx(cut_size(hg, res.sides))

    def test_lookahead_can_be_disabled(self):
        hg = two_clusters()
        res = fm_bipartition(hg, seed=0, lookahead=False)
        assert res.cut == pytest.approx(1.0)

    def test_net_weights_steer_cut(self):
        # chain a-b-c; cutting the heavy net should be avoided
        hg = Hypergraph([1.0, 1.0, 1.0, 1.0],
                        [[0, 1], [1, 2], [2, 3]],
                        net_weights=[1.0, 10.0, 1.0])
        res = fm_bipartition(hg, seed=0, tolerance=0.3)
        assert res.sides[1] == res.sides[2]


class TestMultilevel:
    def test_matches_flat_on_small(self):
        hg = two_clusters(k=8)
        res = multilevel_bipartition(hg, seed=0)
        assert res.cut == pytest.approx(1.0)

    def test_large_two_cluster(self):
        hg = two_clusters(k=40, bridge=2)
        res = multilevel_bipartition(hg, seed=1)
        assert res.cut == pytest.approx(2.0)

    def test_balance_on_large(self):
        hg = two_clusters(k=40)
        res = multilevel_bipartition(hg, tolerance=0.1, seed=0)
        w0 = sum(1 for s in res.sides if s == 0)
        assert 30 <= w0 <= 50

    def test_fixed_respected_through_levels(self):
        hg = two_clusters(k=30)
        hg.fixed[0] = 1
        res = multilevel_bipartition(hg, seed=0)
        assert res.sides[0] == 1
