import pytest

from repro.partition import Hypergraph, cut_size, multilevel_bipartition
from repro.partition.multilevel import _coarsen, _heavy_edge_matching
import random


class TestCoarsening:
    def test_weights_conserved(self):
        hg = Hypergraph([1.0, 2.0, 3.0, 4.0],
                        [[0, 1], [1, 2], [2, 3], [0, 3]])
        coarse, cmap = _coarsen(hg, random.Random(0))
        assert sum(coarse.vertex_weights) == pytest.approx(10.0)
        assert len(cmap) == 4
        assert all(0 <= c < coarse.num_vertices for c in cmap)

    def test_parallel_nets_merge_weights(self):
        # two vertices connected by two parallel nets: after they merge,
        # no net survives; before, identical coarse nets combine weight
        hg = Hypergraph([1.0, 1.0, 1.0],
                        [[0, 1], [0, 1], [1, 2]],
                        net_weights=[2.0, 3.0, 1.0])
        coarse, cmap = _coarsen(hg, random.Random(1))
        # every surviving coarse net's weight is a sum of fine weights
        assert sum(coarse.net_weights) <= 6.0
        for w in coarse.net_weights:
            assert w in (1.0, 2.0, 3.0, 5.0, 6.0)

    def test_fixed_vertices_never_merge(self):
        hg = Hypergraph([1.0] * 4, [[0, 1], [2, 3]],
                        fixed={0: 0, 1: 1})
        coarse, cmap = _coarsen(hg, random.Random(2))
        assert cmap[0] != cmap[1]
        assert coarse.fixed[cmap[0]] == 0
        assert coarse.fixed[cmap[1]] == 1

    def test_matching_is_a_matching(self):
        rng = random.Random(3)
        nets = [[i, (i + 1) % 30] for i in range(30)]
        hg = Hypergraph([1.0] * 30, nets)
        match = _heavy_edge_matching(hg, rng)
        for v, partner in enumerate(match):
            assert match[partner] == v  # symmetric pairing


class TestMultilevelQuality:
    def test_never_worse_than_random_by_much(self):
        rng = random.Random(5)
        n = 120
        nets = []
        for _ in range(220):
            base = rng.randrange(n - 4)
            nets.append([base, base + rng.randint(1, 4)])
        hg = Hypergraph([1.0] * n, nets)
        res = multilevel_bipartition(hg, seed=5)
        # a random balanced split cuts ~half the nets in expectation
        assert res.cut < 0.4 * len(nets)
        assert res.cut == pytest.approx(cut_size(hg, res.sides))
