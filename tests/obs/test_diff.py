"""Trace-diff triage (repro.obs.diff) on synthetic span streams.

Each drift dimension gets a positive and a negative case, plus the
two properties the tool's exit code rests on: identical streams diff
clean, and improvements are notes, never regressions.  The real
two-run acceptance scenario (a perturbed transform budget flagged by
name on Des2) lives in ``test_trace_cli.py`` as a slow test and in
the CI smoke job.
"""

from repro.obs.diff import DiffConfig, diff_traces

from tests.obs.test_analyze import span


def spans(n, **kwargs):
    """n copies of one synthetic span."""
    return [span(seq=i + 1, **kwargs) for i in range(n)]


class TestCleanDiffs:
    def test_identical_streams_are_ok(self):
        records = (spans(3, name="a", dt=0.5,
                         counters={"timing.arrival_recomputes": 10})
                   + spans(2, name="b"))
        diff = diff_traces(records, list(records))
        assert diff.verdict == "ok"
        assert diff.findings == []

    def test_small_noise_survives_thresholds(self):
        a = spans(3, name="a", dt=0.100)
        b = spans(3, name="a", dt=0.101)  # scheduler jitter
        assert diff_traces(a, b).verdict == "ok"


class TestShapeDrift:
    def test_missing_span_flags(self):
        diff = diff_traces(spans(2, name="a") + spans(1, name="b"),
                           spans(2, name="a"))
        assert diff.verdict == "regression"
        assert diff.flagged == ["b"]
        assert diff.regressions[0].dimension == "missing_span"

    def test_new_span_flags(self):
        diff = diff_traces(spans(2, name="a"),
                           spans(2, name="a") + spans(1, name="c"))
        assert [f.dimension for f in diff.regressions] == ["new_span"]


class TestCountDrift:
    def test_count_drift_needs_ratio_and_absolute_change(self):
        # 8 -> 13: ratio 1.625 >= 1.5, change 5 >= 2 → flagged
        diff = diff_traces(spans(8, dt=0.01), spans(13, dt=0.01))
        assert [f.dimension for f in diff.regressions] == ["count_drift"]
        # 1 -> 2: ratio 2.0 but change 1 < 2 → clean
        assert diff_traces(spans(1, dt=0.01),
                           spans(2, dt=0.01)).verdict == "ok"

    def test_count_drift_is_symmetric(self):
        assert diff_traces(spans(13, dt=0.01),
                           spans(8, dt=0.01)).verdict == "regression"


class TestEffectiveness:
    def base(self, gain):
        return [span(dt=1.0, before={"wns": -gain}, after={"wns": 0.0})]

    def test_payoff_drop_flags_less_effective(self):
        diff = diff_traces(self.base(10.0), self.base(1.0))
        assert [f.dimension for f in diff.regressions] \
            == ["less_effective"]

    def test_payoff_growth_is_a_note(self):
        diff = diff_traces(self.base(1.0), self.base(10.0))
        assert diff.verdict == "ok"
        assert [f.dimension for f in diff.findings] == ["more_effective"]


class TestCounterBlowup:
    def test_blowup_needs_magnitude_and_ratio(self):
        a = spans(1, counters={"timing.arrival_recomputes": 100})
        b = spans(1, counters={"timing.arrival_recomputes": 5000})
        diff = diff_traces(a, b)
        assert [f.dimension for f in diff.regressions] \
            == ["counter_blowup"]
        # 3 -> 7 doubles but is noise-scale: clean
        small_a = spans(1, counters={"x": 3})
        small_b = spans(1, counters={"x": 7})
        assert diff_traces(small_a, small_b).verdict == "ok"

    def test_profile_counters_are_exempt(self):
        a = spans(1, counters={"profile.sta.sweep.us": 100})
        b = spans(1, counters={"profile.sta.sweep.us": 500000})
        findings = diff_traces(a, b).findings
        assert "counter_blowup" not in [f.dimension for f in findings]


class TestWallClock:
    def test_slower_needs_ratio_and_floor(self):
        diff = diff_traces(spans(1, dt=0.2), spans(1, dt=0.6))
        assert [f.dimension for f in diff.regressions] == ["slower"]
        # 0.01 -> 0.05 is 5x but under the floor: clean
        assert diff_traces(spans(1, dt=0.01),
                           spans(1, dt=0.05)).verdict == "ok"

    def test_faster_is_a_note(self):
        diff = diff_traces(spans(1, dt=0.6), spans(1, dt=0.2))
        assert diff.verdict == "ok"
        assert [f.dimension for f in diff.findings] == ["faster"]

    def test_kernel_slower_names_the_kernel(self):
        a = spans(1, dt=0.3, counters={"profile.sta.sweep.us": 100000})
        b = spans(1, dt=0.35, counters={"profile.sta.sweep.us": 900000})
        diff = diff_traces(a, b)
        kernels = [f for f in diff.regressions
                   if f.dimension == "kernel_slower"]
        assert len(kernels) == 1
        assert "sta.sweep" in kernels[0].detail


class TestConfigAndOutput:
    def test_thresholds_are_configurable(self):
        a, b = spans(1, dt=0.2), spans(1, dt=0.6)
        strict = diff_traces(a, b, DiffConfig(slow_ratio=10.0))
        assert strict.verdict == "ok"

    def test_json_shape(self):
        diff = diff_traces(spans(8), spans(13))
        doc = diff.to_json()
        assert doc["verdict"] == "regression"
        assert doc["flagged"] == ["reflow"]
        assert doc["thresholds"]["count_ratio"] == 1.5
        assert doc["findings"][0]["dimension"] == "count_drift"

    def test_lines_lead_with_verdict(self):
        lines = diff_traces(spans(1), spans(1)).lines()
        assert lines[0] == "verdict: ok"
