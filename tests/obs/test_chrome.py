"""Chrome trace-event export: structure and file round-trip."""

import json

from repro.obs import chrome_events, write_chrome_trace
from repro.obs.chrome import COUNTER_TRACKS


def record(seq, **over):
    base = {"seq": seq, "name": "sizing", "kind": "transform",
            "status": 35, "t0": 1.5, "dt": 0.25, "ok": True,
            "before": {"wns": -20.0, "wirelength": 100.0},
            "after": {"wns": -15.0, "wirelength": 90.0},
            "counters": {"timing.flushes": 2}}
    base.update(over)
    return base


class TestChromeEvents:
    def test_metadata_complete_and_counter_events(self):
        events = chrome_events([record(0)])
        phases = [e["ph"] for e in events]
        assert phases == ["M", "X"] + ["C"] * len(COUNTER_TRACKS)

    def test_complete_event_fields(self):
        event = next(e for e in chrome_events([record(0)])
                     if e["ph"] == "X")
        assert event["name"] == "sizing"
        assert event["cat"] == "transform"
        assert event["ts"] == 1.5e6       # seconds -> microseconds
        assert event["dur"] == 0.25e6
        assert event["args"]["status"] == 35
        assert event["args"]["after"]["wns"] == -15.0

    def test_counter_events_sample_span_end(self):
        counters = [e for e in chrome_events([record(0)])
                    if e["ph"] == "C"]
        assert {e["name"] for e in counters} == set(COUNTER_TRACKS)
        for event in counters:
            assert event["ts"] == (1.5 + 0.25) * 1e6

    def test_missing_metric_emits_no_track(self):
        rec = record(0, after={"cells": 5})
        counters = [e for e in chrome_events([rec]) if e["ph"] == "C"]
        assert counters == []


class TestWriteChromeTrace:
    def test_file_parses_and_count_matches(self, tmp_path):
        path = str(tmp_path / "chrome.json")
        count = write_chrome_trace([record(0), record(1)], path)
        with open(path) as stream:
            payload = json.load(stream)
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == count
        names = [e["name"] for e in payload["traceEvents"]
                 if e["ph"] == "X"]
        assert names == ["sizing", "sizing"]
