"""The trace-report / trace-diff / fleet-report CLI surface.

Fast cases run on synthetic traces; the acceptance scenario — a
perturbed transform budget flagged *by name* between two otherwise
identical seeded runs, with no false positives at identical seeds —
runs real Des2 flows and is marked slow (CI's trace-analyze-smoke job
covers the same property on Des1 every push).
"""

import json

from repro.__main__ import main

from tests.obs.test_analyze import span, write_trace

import pytest


def _trace_dir(tmp_path, name, records):
    d = tmp_path / name
    d.mkdir()
    write_trace(str(d / "trace.jsonl"), records)
    return str(d)


class TestTraceReportCli:
    def test_report_prints_table_and_writes_json(self, tmp_path,
                                                 capsys):
        run = _trace_dir(tmp_path, "run", [
            span(name="reflow", dt=0.5,
                 before={"wns": -5.0}, after={"wns": -4.0})])
        out = tmp_path / "report.json"
        assert main(["trace-report", run, "-o", str(out)]) == 0
        text = capsys.readouterr().out
        assert "transform" in text and "reflow" in text
        doc = json.loads(out.read_text())
        assert doc["rows"][0]["wns_gain"] == pytest.approx(1.0)

    def test_untraced_dir_exits_2(self, tmp_path, capsys):
        assert main(["trace-report", str(tmp_path)]) == 2
        assert "has no trace.jsonl" in capsys.readouterr().err

    def test_empty_trace_exits_1(self, tmp_path, capsys):
        (tmp_path / "trace.jsonl").write_text("")
        assert main(["trace-report", str(tmp_path)]) == 1


class TestTraceDiffCli:
    def test_identical_runs_exit_0(self, tmp_path, capsys):
        records = [span(name="a", dt=0.1)]
        a = _trace_dir(tmp_path, "a", records)
        b = _trace_dir(tmp_path, "b", records)
        assert main(["trace-diff", a, b]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_regression_exits_1_and_writes_json(self, tmp_path,
                                                capsys):
        a = _trace_dir(tmp_path, "a",
                       [span(seq=i + 1, dt=0.01) for i in range(2)])
        b = _trace_dir(tmp_path, "b",
                       [span(seq=i + 1, dt=0.01) for i in range(8)])
        out = tmp_path / "diff.json"
        assert main(["trace-diff", a, b, "-o", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["verdict"] == "regression"
        assert doc["flagged"] == ["reflow"]
        assert "count_drift" in capsys.readouterr().out

    def test_threshold_override_changes_verdict(self, tmp_path):
        a = _trace_dir(tmp_path, "a",
                       [span(seq=i + 1, dt=0.01) for i in range(2)])
        b = _trace_dir(tmp_path, "b",
                       [span(seq=i + 1, dt=0.01) for i in range(8)])
        assert main(["trace-diff", a, b, "-t", "count_ratio=10"]) == 0

    def test_unknown_threshold_exits_2(self, tmp_path, capsys):
        a = _trace_dir(tmp_path, "a", [span()])
        assert main(["trace-diff", a, a, "-t", "bogus=1"]) == 2
        assert "unknown threshold" in capsys.readouterr().err

    def test_missing_trace_exits_2(self, tmp_path):
        a = _trace_dir(tmp_path, "a", [span()])
        assert main(["trace-diff", a, str(tmp_path / "nope")]) == 2


class TestFleetReportCli:
    def test_missing_state_dir_exits_2(self, tmp_path, capsys):
        assert main(["fleet-report", str(tmp_path / "nope")]) == 2
        assert "no state dir" in capsys.readouterr().err

    def test_empty_state_dir_reports_zero_jobs(self, tmp_path, capsys):
        out = tmp_path / "fleet.json"
        assert main(["fleet-report", str(tmp_path),
                     "-o", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert doc["jobs"]["total"] == 0
        assert set(doc["latency"]) == {"job_run", "submit_to_lease"}
        assert "jobs: 0" in capsys.readouterr().out


@pytest.mark.slow
class TestBudgetPerturbationAcceptance:
    """The ISSUE's acceptance scenario on real Des2 runs."""

    def _run(self, tmp_path, name, budget):
        run_dir = tmp_path / name
        code = main(["tps", "Des2", "--scale", "0.05", "--trace",
                     "--run-dir", str(run_dir),
                     "--pin-swap-budget", str(budget)])
        assert code == 0
        return str(run_dir)

    def test_perturbed_budget_flags_exactly_pin_swapping(self,
                                                         tmp_path):
        base = self._run(tmp_path, "base", 200)
        same = self._run(tmp_path, "same", 200)
        pert = self._run(tmp_path, "pert", 2)
        # identical seeds: no false positives
        assert main(["trace-diff", base, same]) == 0
        # perturbed budget as baseline: the extra work the default
        # budget does shows up as counter/wall-clock regressions on
        # pin_swapping and nothing else
        out = tmp_path / "diff.json"
        assert main(["trace-diff", pert, base,
                     "-o", str(out)]) == 1
        doc = json.loads(out.read_text())
        assert doc["flagged"] == ["pin_swapping"]
