"""Flow-level tracing: determinism, resume merging, and the report
contract.

Acceptance (ISSUE 4): (a) two seeded runs of the same flow produce
identical span streams and counters up to wall-clock timestamps;
(b) a run killed at a milestone and resumed yields a merged
``trace.jsonl`` whose transform-span sequence matches an uninterrupted
run's; (c) the last record of a traced run's ``trace.jsonl`` is the
flow span and its "after" metrics equal the FlowReport exactly.
"""

import pytest

from repro.obs import Tracer, comparable, read_trace
from repro.persist import DIE_EXIT_CODE
from repro.scenario import TPSConfig, TPSScenario

from tests.guard.conftest import build_design
from tests.persist.test_resume import fresh_run, resume_run, small_design


def run_traced(library):
    design = build_design(library, gates=70, regs=6)
    scenario = TPSScenario(design, TPSConfig(seed=3),
                           tracer=Tracer(design))
    return scenario.run()


def transform_view(record):
    """The resume-invariant face of a non-flow span."""
    return (record["name"], record["kind"], record["status"],
            record["ok"], tuple(sorted(record["before"].items())),
            tuple(sorted(record["after"].items())))


class TestSeededDeterminism:
    def test_two_runs_identical_up_to_timestamps(self, library):
        first = run_traced(library)
        second = run_traced(library)
        assert first.spans, "traced run produced no spans"
        assert len(first.spans) == len(second.spans)
        for a, b in zip(first.spans, second.spans):
            assert comparable(a) == comparable(b)

    def test_spans_cover_the_flow(self, library):
        report = run_traced(library)
        names = {r["name"] for r in report.spans}
        assert "partitioner" in names
        assert "TPS" in names
        kinds = {r["kind"] for r in report.spans}
        assert kinds == {"transform", "substrate", "flow"}


class TestReportContract:
    def test_last_record_is_flow_span_matching_report(self, library,
                                                      tmp_path):
        design, scenario = fresh_run(tmp_path / "run", library,
                                     design=small_design(library))
        report = scenario.run()
        records = read_trace(scenario.tracer.writer.path)
        last = records[-1]
        assert last["kind"] == "flow"
        assert last["name"] == "TPS"
        assert last["after"]["wns"] == report.worst_slack
        assert last["after"]["tns"] == report.total_negative_slack
        assert last["after"]["wirelength"] == report.wirelength
        assert last["after"]["cells"] == report.icells
        # the report carries the same records
        assert report.spans == records

    def test_timeline_final_matches_report(self, library):
        report = run_traced(library)
        timeline = report.timeline()
        assert timeline.final["wns"] == report.worst_slack
        assert timeline.rows, "no per-status rows"


class TestResumeMergedTrace:
    def test_merged_trace_matches_uninterrupted(self, library, tmp_path):
        # reference: same design/config run without interruption
        ref_design, ref_scenario = fresh_run(
            tmp_path / "ref", library, design=small_design(library))
        ref_report = ref_scenario.run()
        ref_records = read_trace(ref_scenario.tracer.writer.path)

        # killed at the third milestone, then resumed to completion
        design, scenario = fresh_run(tmp_path / "run", library, die_at=3,
                                     design=small_design(library))
        with pytest.raises(SystemExit) as death:
            scenario.run()
        assert death.value.code == DIE_EXIT_CODE
        resumed, report = resume_run(tmp_path / "run", library)
        records = read_trace(scenario.persist.rundir.trace_path)
        assert report.spans == records

        ref_steps = [transform_view(r) for r in ref_records
                     if r["kind"] != "flow"]
        steps = [transform_view(r) for r in records
                 if r["kind"] != "flow"]
        assert steps == ref_steps
        # exactly one flow span: only the finishing process writes one,
        # and its endpoint equals the uninterrupted run's
        flows = [r for r in records if r["kind"] == "flow"]
        ref_flows = [r for r in ref_records if r["kind"] == "flow"]
        assert len(flows) == len(ref_flows) == 1
        assert flows[0]["after"] == ref_flows[0]["after"]
        # the merged file is one seq-contiguous stream
        assert [r["seq"] for r in records] == list(range(len(records)))


class TestElapsedSeconds:
    def test_resumed_report_covers_dead_segments(self, library, tmp_path):
        design, scenario = fresh_run(tmp_path / "run", library, die_at=2,
                                     design=small_design(library))
        with pytest.raises(SystemExit):
            scenario.run()
        rundir = scenario.persist.rundir
        dead_segment = rundir.load_elapsed()
        assert dead_segment > 0.0
        resumed, report = resume_run(tmp_path / "run", library)
        assert report.cpu_seconds >= dead_segment
        # finish() persisted the final cumulative figure too
        assert rundir.load_elapsed() >= report.cpu_seconds
