"""Payoff accounting (repro.obs.analyze) on synthetic span streams.

Synthetic records keep these tests fast and make every expected
number exact; the CLI-level tests in ``test_trace_cli.py`` and the
CI smoke job cover real traces.
"""

import json

from repro.obs.analyze import (
    TraceNotFound,
    analyze_path,
    analyze_trace,
    kernel_seconds,
    load_trace,
    resolve_trace,
    write_report,
)
from repro.persist.journal import encode_line

import pytest


def span(name="reflow", kind="transform", status=0, dt=1.0, ok=True,
         before=None, after=None, counters=None, seq=1):
    """One synthetic span record in the tracer's on-disk shape."""
    return {"seq": seq, "name": name, "kind": kind, "status": status,
            "t0": 0.0, "dt": dt, "ok": ok,
            "before": before or {}, "after": after or {},
            "counters": counters or {}}


def write_trace(path, records):
    """Write records as a CRC-wrapped trace.jsonl."""
    with open(path, "w") as stream:
        for record in records:
            stream.write(encode_line(record) + "\n")


class TestLoading:
    def test_run_dir_resolves_to_trace_file(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        write_trace(str(trace), [span()])
        assert resolve_trace(str(tmp_path)) == str(trace)
        assert len(load_trace(str(tmp_path))) == 1

    def test_direct_file_path(self, tmp_path):
        trace = tmp_path / "elsewhere.jsonl"
        write_trace(str(trace), [span(), span(seq=2)])
        assert len(load_trace(str(trace))) == 2

    def test_untraced_dir_raises(self, tmp_path):
        with pytest.raises(TraceNotFound):
            resolve_trace(str(tmp_path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceNotFound):
            resolve_trace(str(tmp_path / "nope.jsonl"))


class TestPayoffRows:
    def test_gains_use_fixed_sign_conventions(self):
        report = analyze_trace([
            span(before={"wns": -5.0, "tns": -50.0, "wirelength": 1000.0},
                 after={"wns": -3.0, "tns": -30.0, "wirelength": 900.0}),
        ])
        row = report.row("reflow")
        # slack grows toward zero: positive gain is better
        assert row.wns_gain == pytest.approx(2.0)
        assert row.tns_gain == pytest.approx(20.0)
        # wirelength shrinks: before - after, positive is better
        assert row.wirelength_gain == pytest.approx(100.0)

    def test_rows_accumulate_and_keep_first_appearance_order(self):
        report = analyze_trace([
            span(name="b", dt=1.0), span(name="a", dt=2.0),
            span(name="b", dt=3.0, ok=False),
        ])
        assert [r.name for r in report.rows] == ["b", "a"]
        b = report.row("b")
        assert b.invocations == 2
        assert b.accepts == 1 and b.rejects == 1
        assert b.seconds == pytest.approx(4.0)
        assert report.total_seconds == pytest.approx(6.0)

    def test_counters_sum_and_kernels_decode(self):
        report = analyze_trace([
            span(counters={"timing.arrival_recomputes": 10,
                           "profile.sta.sweep.us": 500000,
                           "profile.sta.sweep.calls": 3}),
            span(counters={"timing.arrival_recomputes": 5,
                           "profile.sta.sweep.us": 250000}),
        ])
        row = report.row("reflow")
        assert row.counters["timing.arrival_recomputes"] == 15
        assert row.kernels == {"sta.sweep": pytest.approx(0.75)}

    def test_rate_is_zero_without_wall_time(self):
        report = analyze_trace([span(dt=0.0)])
        assert report.row("reflow").rate(5.0) == 0.0

    def test_flow_span_becomes_summary_not_row(self):
        report = analyze_trace([
            span(name="TPS", kind="flow", dt=9.0,
                 before={"wns": -5.0, "wirelength": 1000.0},
                 after={"wns": -1.0, "wirelength": 800.0}),
            span(name="reflow"),
        ])
        assert report.row("TPS", "flow") is None
        assert report.flow["wns_gain"] == pytest.approx(4.0)
        assert report.flow["wirelength_gain"] == pytest.approx(200.0)
        assert report.span_count == 2


class TestKernelSeconds:
    def test_only_profile_us_keys_decode(self):
        seconds = kernel_seconds({
            "profile.quad.dense.us": 1500000,
            "profile.quad.dense.calls": 7,
            "timing.arrival_recomputes": 12})
        assert seconds == {"quad.dense": pytest.approx(1.5)}


class TestReportOutput:
    def test_table_has_header_and_one_line_per_row(self):
        report = analyze_trace([span(name="a"), span(name="b")])
        lines = report.table()
        assert "transform" in lines[0]
        assert sum(1 for l in lines if l.startswith("a ")) == 1
        assert sum(1 for l in lines if l.startswith("b ")) == 1

    def test_written_report_round_trips(self, tmp_path):
        report = analyze_trace([span(
            counters={"profile.steiner.build.us": 100})])
        out = tmp_path / "report.json"
        write_report(report, str(out))
        doc = json.loads(out.read_text())
        assert doc["spans"] == 1
        assert doc["rows"][0]["name"] == "reflow"
        assert doc["rows"][0]["kernel_seconds"]["steiner.build"] \
            == pytest.approx(0.0001)

    def test_analyze_path_end_to_end(self, tmp_path):
        write_trace(str(tmp_path / "trace.jsonl"),
                    [span(), span(name="sizing", seq=2)])
        report = analyze_path(str(tmp_path))
        assert {r.name for r in report.rows} == {"reflow", "sizing"}
