"""Kernel-profiler behaviour: accumulation, integer counters, the
enable switch, provider registration, and the determinism exemption.

The load-bearing property is the last one: ``profile.*`` counters are
wall clock, so :func:`repro.obs.comparable` must strip them exactly
like ``t0``/``dt`` — otherwise every seeded-identity and differential
test in the suite would flake on timing noise.
"""

import pytest

from repro.obs import Tracer, comparable, profile
from repro.obs.tracer import WALLCLOCK_COUNTER_PREFIXES

from tests.guard.conftest import build_design


@pytest.fixture(autouse=True)
def clean_profiler():
    """Each test sees an empty, enabled accumulator."""
    profile.reset()
    profile.enable(True)
    yield
    profile.reset()
    profile.enable(True)


class TestAccumulator:
    def test_begin_end_accumulates_calls_and_time(self):
        for _ in range(3):
            t0 = profile.begin()
            profile.end("k.test", t0)
        flat = profile.counters()
        assert flat["k.test.calls"] == 3
        assert isinstance(flat["k.test.us"], int)
        assert flat["k.test.us"] >= 0

    def test_counters_are_all_ints(self):
        profile.end("a", profile.begin())
        profile.end("b", profile.begin())
        assert all(isinstance(v, int) for v in profile.counters().values())

    def test_seconds_by_kernel_tracks_keys(self):
        profile.end("x", profile.begin())
        seconds = profile.seconds_by_kernel()
        assert set(seconds) == {"x"}
        assert seconds["x"] >= 0.0

    def test_reset_clears(self):
        profile.end("x", profile.begin())
        profile.reset()
        assert profile.counters() == {}

    def test_disable_makes_hooks_noops(self):
        profile.enable(False)
        assert not profile.enabled()
        profile.end("x", profile.begin())
        assert profile.counters() == {}
        profile.enable(True)
        assert profile.enabled()

    def test_leaf_and_facade_share_state(self):
        from repro import _profile as leaf
        leaf.end("shared", leaf.begin())
        assert profile.counters()["shared.calls"] == 1


class TestDeterminismExemption:
    def test_comparable_strips_profile_counters(self):
        record = {"seq": 0, "name": "x", "t0": 1.0, "dt": 0.5,
                  "counters": {"timing.flushes": 2,
                               "profile.sta.sweep.calls": 2,
                               "profile.sta.sweep.us": 1234}}
        stripped = comparable(record)
        assert stripped["counters"] == {"timing.flushes": 2}
        # and the original record is untouched
        assert "profile.sta.sweep.us" in record["counters"]

    def test_profile_prefix_is_registered_wallclock(self):
        assert profile.PROFILE_PREFIX in WALLCLOCK_COUNTER_PREFIXES

    def test_comparable_leaves_counterless_records_alone(self):
        record = {"seq": 0, "name": "x", "t0": 1.0, "dt": 0.5}
        assert comparable(record) == {"seq": 0, "name": "x"}


class TestTracerIntegration:
    def test_spans_carry_kernel_deltas(self, library):
        design = build_design(library, gates=40, regs=4)
        tracer = Tracer(design)
        cell = next(iter(design.netlist.movable_cells()))
        from repro.geometry import Point
        with tracer.span("nudge") as _span:
            design.netlist.move_cell(cell, Point(design.die.xlo + 10.0,
                                                 design.die.ylo + 10.0))
        record = tracer.records()[0]
        # the end-of-span metric query flushed timing: one sweep, and
        # the wirelength query built Steiner trees
        assert record["counters"].get("profile.sta.sweep.calls", 0) >= 1
        assert record["counters"].get("profile.steiner.build.calls", 0) >= 1
        assert record["counters"].get("profile.sta.sweep.us", 0) >= 0
        # the stripped view hides every profile key
        assert not any(k.startswith("profile.")
                       for k in comparable(record)["counters"])

    def test_hot_kernels_profiled_in_both_cores(self, library):
        from repro.workloads.presets import build_des_design
        for core in ("object", "array"):
            profile.reset()
            design = build_des_design("Des1", library, scale=0.05,
                                      core=core)
            design.timing.worst_slack()
            design.total_wirelength()
            flat = profile.counters()
            assert flat.get("bins.rebuild.calls", 0) >= 1, core
            assert flat.get("sta.sweep.calls", 0) >= 1, core
            assert flat.get("steiner.build.calls", 0) >= 1, core
