"""Unit behaviour of spans, counters, and the trace writer.

The module contract under test: a span captures before/after design
metrics and per-invocation counter deltas; the writer is kill-safe
(torn tails are detected and dropped) and resume-aware (sequence
numbers and timestamps continue across process boundaries).
"""

import pytest

from repro.obs import (
    CounterRegistry,
    Span,
    Tracer,
    TraceWriter,
    comparable,
    design_metrics,
    read_trace,
)
from repro.obs.tracer import METRIC_KEYS, TIMESTAMP_KEYS

from tests.guard.conftest import build_design


@pytest.fixture
def design(library):
    return build_design(library, gates=40, regs=4)


class TestDesignMetrics:
    def test_keys_and_values(self, design):
        metrics = design_metrics(design)
        assert tuple(metrics) == METRIC_KEYS
        assert metrics["wns"] == design.timing.worst_slack()
        assert metrics["cells"] == design.icell_count()

    def test_comparable_strips_only_timestamps(self):
        record = {"seq": 0, "name": "x", "t0": 1.5, "dt": 0.25, "ok": True}
        stripped = comparable(record)
        assert "t0" not in stripped and "dt" not in stripped
        assert stripped == {"seq": 0, "name": "x", "ok": True}
        for key in TIMESTAMP_KEYS:
            assert key not in stripped


class TestCounterRegistry:
    def test_flattens_with_prefix_and_skips_non_ints(self):
        registry = CounterRegistry()
        registry.add("a", lambda: {"n": 3, "wall": 1.5, "flag": True})
        registry.add("b", lambda: {"n": 7})
        snap = registry.snapshot()
        assert snap == {"a.n": 3, "b.n": 7}

    def test_delta_keeps_only_movement(self):
        before = {"a.n": 3, "b.n": 7}
        after = {"a.n": 5, "b.n": 7, "c.n": 2}
        assert CounterRegistry.delta(before, after) == {"a.n": 2, "c.n": 2}


class TestSpanRoundTrip:
    def test_to_from_record(self):
        span = Span(seq=4, name="sizing", kind="transform", status=35,
                    t0=1.0, dt=0.5, ok=False,
                    before={"wns": -10.0}, after={"wns": -8.0},
                    counters={"timing.flushes": 2}, error="ValueError")
        back = Span.from_record(span.to_record())
        assert back == span
        assert back.delta("wns") == pytest.approx(2.0)

    def test_error_absent_when_ok(self):
        span = Span(seq=0, name="x", kind="flow", status=0, t0=0.0)
        assert "error" not in span.to_record()


class TestTracerLifecycle:
    def test_span_captures_metric_movement(self, design):
        tracer = Tracer(design)
        cell = next(iter(design.netlist.movable_cells()))
        with tracer.span("nudge") as span:
            from repro.geometry import Point
            design.netlist.move_cell(cell, Point(design.die.xlo + 10.0,
                                                 design.die.ylo + 10.0))
        assert len(tracer.spans) == 1
        record = tracer.records()[0]
        assert record["name"] == "nudge"
        assert record["kind"] == "transform"
        assert record["ok"] is True
        assert record["before"]["cells"] == record["after"]["cells"]
        # the move dirtied timing; the end-of-span metric query flushed
        assert record["counters"].get("timing.flushes", 0) >= 1

    def test_sequence_numbers_increment(self, design):
        tracer = Tracer(design)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [r["seq"] for r in tracer.records()] == [0, 1]

    def test_exception_recorded_and_reraised(self, design):
        tracer = Tracer(design)
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        record = tracer.records()[0]
        assert record["ok"] is False
        assert record["error"] == "ValueError"

    def test_explicit_status_overrides_design(self, design):
        tracer = Tracer(design)
        with tracer.span("x", status=42):
            pass
        assert tracer.records()[0]["status"] == 42

    def test_kill_during_span_writes_nothing(self, design, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(design, writer=TraceWriter(path))
        tracer.begin("doomed")  # never ended: process died inside
        assert read_trace(path) == []


class TestTraceWriter:
    def _record(self, seq, t0=0.0, dt=0.1):
        return Span(seq=seq, name="s%d" % seq, kind="transform",
                    status=10, t0=t0, dt=dt).to_record()

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(path)
        for i in range(3):
            writer.append(self._record(i))
        assert [r["seq"] for r in read_trace(path)] == [0, 1, 2]

    def test_torn_tail_dropped_on_read(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(path)
        writer.append(self._record(0))
        writer.append(self._record(1))
        with open(path, "a") as stream:
            stream.write('{"r": {"seq": 2}, "c": ')  # kill mid-write
        assert [r["seq"] for r in read_trace(path)] == [0, 1]

    def test_resume_continues_seq_and_time(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(path)
        writer.append(self._record(0, t0=0.0, dt=0.5))
        writer.append(self._record(1, t0=0.5, dt=1.0))
        resumed = TraceWriter(path, resume=True)
        assert resumed.count == 2
        assert resumed.t_base == pytest.approx(1.5)

    def test_resume_rewrites_away_torn_tail(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        writer = TraceWriter(path)
        writer.append(self._record(0))
        with open(path, "a") as stream:
            stream.write("garbage not json\n")
        resumed = TraceWriter(path, resume=True)
        assert resumed.count == 1
        resumed.append(self._record(1))
        # the torn line is gone from the file itself, not just skipped
        assert [r["seq"] for r in read_trace(path)] == [0, 1]
        with open(path) as stream:
            assert "garbage" not in stream.read()

    def test_fresh_writer_truncates(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        TraceWriter(path).append(self._record(0))
        TraceWriter(path)  # resume=False: a new run owns the file
        assert read_trace(path) == []

    def test_resumed_tracer_offsets_new_spans(self, design, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        first = Tracer(design, writer=TraceWriter(path))
        with first.span("a"):
            pass
        second = Tracer(design, writer=TraceWriter(path, resume=True))
        with second.span("b"):
            pass
        records = read_trace(path)
        assert [r["name"] for r in records] == ["a", "b"]
        assert [r["seq"] for r in records] == [0, 1]
        # merged timeline is monotonic across the process boundary
        assert records[1]["t0"] >= records[0]["t0"] + records[0]["dt"]
