"""trace-export must fail cleanly — a message and exit 2, never a
traceback — on directories that are not (traced) run dirs."""

from repro.__main__ import main
from repro.persist import RunDir


class TestTraceExportErrors:
    def test_untraced_run_dir_exits_2(self, tmp_path, capsys):
        RunDir.create(str(tmp_path / "run"), {"flow": "TPS"})
        code = main(["trace-export", str(tmp_path / "run"),
                     "-o", str(tmp_path / "out.json")])
        assert code == 2
        assert "no trace at" in capsys.readouterr().err

    def test_not_a_run_dir_exits_2(self, tmp_path, capsys):
        (tmp_path / "junk").mkdir()
        code = main(["trace-export", str(tmp_path / "junk"),
                     "-o", str(tmp_path / "out.json")])
        assert code == 2
        assert "not a run directory" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["trace-export", str(tmp_path / "nope.jsonl"),
                     "-o", str(tmp_path / "out.json")])
        assert code == 2
        assert "no trace at" in capsys.readouterr().err
