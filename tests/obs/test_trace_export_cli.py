"""trace-export must fail cleanly — a message and exit 2, never a
traceback — on paths that are not (traced) run dirs or trace files.

The loading goes through :func:`repro.obs.analyze.resolve_trace`,
shared with ``trace-report`` and ``trace-diff``, so a direct
``trace.jsonl`` path works exactly like a run directory.
"""

import json

from repro.__main__ import main
from repro.persist import RunDir
from repro.persist.journal import encode_line


class TestTraceExportErrors:
    def test_untraced_run_dir_exits_2(self, tmp_path, capsys):
        RunDir.create(str(tmp_path / "run"), {"flow": "TPS"})
        code = main(["trace-export", str(tmp_path / "run"),
                     "-o", str(tmp_path / "out.json")])
        assert code == 2
        assert "has no trace.jsonl" in capsys.readouterr().err

    def test_not_a_run_dir_exits_2(self, tmp_path, capsys):
        (tmp_path / "junk").mkdir()
        code = main(["trace-export", str(tmp_path / "junk"),
                     "-o", str(tmp_path / "out.json")])
        assert code == 2
        assert "has no trace.jsonl" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["trace-export", str(tmp_path / "nope.jsonl"),
                     "-o", str(tmp_path / "out.json")])
        assert code == 2
        assert "no trace at" in capsys.readouterr().err


class TestTraceExportDirectPath:
    def test_direct_trace_file_path(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        record = {"seq": 1, "name": "reflow", "kind": "transform",
                  "status": 0, "t0": 0.0, "dt": 0.5, "ok": True,
                  "before": {}, "after": {}, "counters": {}}
        trace.write_text(encode_line(record) + "\n")
        out = tmp_path / "out.json"
        code = main(["trace-export", str(trace), "-o", str(out)])
        assert code == 0
        events = json.loads(out.read_text())["traceEvents"]
        assert any(e.get("name") == "reflow" for e in events)
