"""Chrome export and cut timeline on a resumed (merged) trace.

A run killed at a milestone and resumed writes a *merged*
``trace.jsonl`` (ISSUE 4's contract, tested in ``test_flow_trace``).
These tests pin what the two consumers do with such a stream: the
Chrome exporter must keep event ordering sane across the kill point
(a viewer renders events in timestamp order, so a resumed segment
must not interleave backwards into the dead process's), and the cut
timeline must fold the merged stream into exactly the same per-status
rows as an uninterrupted run.
"""

import pytest

from repro.obs import CutTimeline, chrome_events, read_trace
from repro.persist import DIE_EXIT_CODE

from tests.persist.test_resume import fresh_run, resume_run, small_design


@pytest.fixture(scope="module")
def merged_and_reference(library, tmp_path_factory):
    """(merged records, reference records) for one killed+resumed run."""
    ref_dir = tmp_path_factory.mktemp("trace-ref")
    run_dir = tmp_path_factory.mktemp("trace-killed")
    _, ref_scenario = fresh_run(ref_dir / "run", library,
                                design=small_design(library))
    ref_scenario.run()
    ref_records = read_trace(ref_scenario.tracer.writer.path)

    _, scenario = fresh_run(run_dir / "run", library, die_at=3,
                            design=small_design(library))
    with pytest.raises(SystemExit) as death:
        scenario.run()
    assert death.value.code == DIE_EXIT_CODE
    resume_run(run_dir / "run", library)
    records = read_trace(scenario.persist.rundir.trace_path)
    return records, ref_records


class TestChromeOnMergedTrace:
    def test_resumed_segment_does_not_rewind_the_clock(
            self, merged_and_reference):
        # records are appended at span *end*, so file order is
        # end-time order; the resume writer offsets new timestamps
        # past the last recorded end (t_base), which must keep end
        # times monotone across the kill point — without it the
        # resumed spans would render *before* the dead process's
        records, _ = merged_and_reference
        events = chrome_events(records)
        spans = [e for e in events if e["ph"] == "X"]
        assert len(spans) == len(records)
        ends = [e["ts"] + e["dur"] for e in spans]
        assert all(b >= a - 1.0 for a, b in zip(ends, ends[1:])), \
            "resumed segment rewound behind the dead segment"

    def test_every_span_event_is_complete(self, merged_and_reference):
        records, _ = merged_and_reference
        for event in chrome_events(records):
            if event["ph"] != "X":
                continue
            assert event["dur"] >= 0.0
            assert set(event["args"]) == {"status", "ok", "before",
                                          "after", "counters"}

    def test_counter_tracks_cover_both_segments(self,
                                                merged_and_reference):
        records, ref_records = merged_and_reference
        counters = [e for e in chrome_events(records)
                    if e["ph"] == "C"]
        ref_counters = [e for e in chrome_events(ref_records)
                        if e["ph"] == "C"]
        # same spans → same counter-track samples, kill or no kill
        assert len(counters) == len(ref_counters)


class TestTimelineOnMergedTrace:
    def test_row_count_matches_uninterrupted_run(self,
                                                 merged_and_reference):
        records, ref_records = merged_and_reference
        timeline = CutTimeline.from_records(records)
        reference = CutTimeline.from_records(ref_records)
        assert len(timeline.rows) == len(reference.rows)
        assert [r.status for r in timeline.rows] \
            == [r.status for r in reference.rows]

    def test_final_metrics_match_uninterrupted_run(self,
                                                   merged_and_reference):
        records, ref_records = merged_and_reference
        timeline = CutTimeline.from_records(records)
        reference = CutTimeline.from_records(ref_records)
        assert timeline.final == reference.final
