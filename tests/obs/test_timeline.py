"""CutTimeline aggregation and rendering over synthetic span streams."""

from repro.obs import CutTimeline


def record(seq, name="t", kind="transform", status=10, dt=0.5, ok=True,
           before=None, after=None, counters=None):
    return {"seq": seq, "name": name, "kind": kind, "status": status,
            "t0": seq * 1.0, "dt": dt, "ok": ok,
            "before": before or {"wns": -20.0, "wirelength": 100.0,
                                 "cells": 10},
            "after": after or {"wns": -15.0, "wirelength": 90.0,
                               "cells": 10},
            "counters": counters or {}}


class TestAggregation:
    def test_rows_grouped_and_sorted_by_status(self):
        timeline = CutTimeline.from_records([
            record(0, status=35),
            record(1, status=10),
            record(2, status=10),
        ])
        assert [row.status for row in timeline.rows] == [10, 35]
        assert timeline.row(10).spans == 2
        assert timeline.row(35).spans == 1
        assert timeline.row(99) is None
        assert timeline.total_spans == 3

    def test_row_folds_before_first_after_last(self):
        timeline = CutTimeline.from_records([
            record(0, status=10, before={"wns": -30.0},
                   after={"wns": -25.0}),
            record(1, status=10, before={"wns": -25.0},
                   after={"wns": -20.0}),
        ])
        row = timeline.row(10)
        assert row.before == {"wns": -30.0}
        assert row.after == {"wns": -20.0}

    def test_counters_sum_within_row(self):
        timeline = CutTimeline.from_records([
            record(0, counters={"timing.arrival_recomputes": 5}),
            record(1, counters={"timing.arrival_recomputes": 7,
                                "guard.rollbacks": 1}),
        ])
        row = timeline.row(10)
        assert row.counters == {"timing.arrival_recomputes": 12,
                                "guard.rollbacks": 1}

    def test_flow_span_sets_final_but_no_row(self):
        timeline = CutTimeline.from_records([
            record(0, status=10),
            record(1, name="TPS", kind="flow", status=0,
                   after={"wns": -1.0, "wirelength": 50.0, "cells": 9}),
        ])
        assert [row.status for row in timeline.rows] == [10]
        assert timeline.final["wns"] == -1.0
        assert timeline.total_spans == 1

    def test_final_falls_back_to_last_row(self):
        timeline = CutTimeline.from_records([record(0)])
        assert timeline.final == record(0)["after"]

    def test_failures_counted(self):
        timeline = CutTimeline.from_records([
            record(0, ok=False), record(1)])
        assert timeline.row(10).failures == 1


class TestRendering:
    def test_lines_have_header_rows_and_total(self):
        timeline = CutTimeline.from_records([
            record(0, status=10), record(1, status=35, ok=False)])
        lines = timeline.lines()
        assert lines[0].startswith("status")
        body = lines[2:-1]
        assert len(body) == 2
        assert body[0].lstrip().startswith("10")
        assert "(1 failed)" in body[1]
        assert lines[-1].lstrip().startswith("total")
        assert "final wns" in lines[-1]

    def test_empty_stream_renders(self):
        lines = CutTimeline.from_records([]).lines()
        assert lines[0].startswith("status")
        assert lines[-1].lstrip().startswith("total")
