"""Latency histograms (repro.obs.hist): buckets, quantiles, merging."""

from repro.obs.hist import (
    DEFAULT_BOUNDS,
    LatencyHistogram,
    quantile_gauges,
)

import pytest


class TestObserve:
    def test_observations_land_in_le_buckets(self):
        h = LatencyHistogram(bounds=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 100.0):
            h.observe(v)
        # le semantics: 0.1 lands in the 0.1 bucket, 100 overflows
        assert h.counts == [2, 1, 1, 1]
        assert h.total == 5
        assert h.sum == pytest.approx(105.65)

    def test_cumulative_is_the_prometheus_shape(self):
        h = LatencyHistogram(bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(50.0)
        assert h.cumulative() == [(0.1, 1), (1.0, 1),
                                  (float("inf"), 2)]

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            LatencyHistogram(bounds=(1.0, 1.0, 2.0))


class TestQuantiles:
    def test_empty_histogram_has_no_quantiles(self):
        assert LatencyHistogram().quantile(0.5) is None
        assert quantile_gauges({"stage": LatencyHistogram()}) == {}

    def test_quantile_interpolates_inside_the_bucket(self):
        h = LatencyHistogram(bounds=(1.0, 2.0))
        for _ in range(4):
            h.observe(1.5)  # all in the (1, 2] bucket
        # rank 2 of 4 → halfway through the bucket
        assert h.quantile(0.5) == pytest.approx(1.5)

    def test_overflow_reports_largest_finite_bound(self):
        h = LatencyHistogram(bounds=(1.0, 2.0))
        h.observe(100.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_gauges_name_stage_and_percentile(self):
        h = LatencyHistogram()
        h.observe(0.02)
        gauges = quantile_gauges({"job_run": h})
        assert set(gauges) == {"job_run_p50", "job_run_p99"}
        assert 0.0 < gauges["job_run_p50"] <= 0.025


class TestMerge:
    def test_merge_adds_bucket_by_bucket(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.observe(0.01)
        b.observe(3.0)
        a.merge(b)
        assert a.total == 2
        assert a.sum == pytest.approx(3.01)

    def test_merge_refuses_different_bounds(self):
        a = LatencyHistogram()
        b = LatencyHistogram(bounds=(1.0, 2.0))
        with pytest.raises(ValueError):
            a.merge(b)


class TestJson:
    def test_round_trip(self):
        h = LatencyHistogram()
        h.observe(0.3)
        h.observe(7.0)
        again = LatencyHistogram.from_json(h.to_json())
        assert again.bounds == DEFAULT_BOUNDS
        assert again.counts == h.counts
        assert again.total == 2
        assert again.quantile(0.5) == h.quantile(0.5)
