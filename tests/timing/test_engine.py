import pytest

from repro.geometry import Point
from repro.library.parasitics import WireParasitics
from repro.library.types import TAU
from repro.netlist import Netlist
from repro.timing import (
    CombinationalLoopError,
    DelayMode,
    TimingConstraints,
    TimingEngine,
    obtain_critical_region,
)
from repro.wirelength import SteinerCache, WireModel


def make_engine(nl, cycle=100.0, mode=DelayMode.LOAD, rc_threshold=1e9,
                setup=4.0):
    cache = SteinerCache(nl)
    model = WireModel(cache, WireParasitics(rc_threshold=rc_threshold))
    constraints = TimingConstraints(cycle_time=cycle, setup_time=setup)
    # port_drive_resistance=0 keeps the hand-computed arithmetic simple
    return TimingEngine(nl, model, constraints, mode=mode,
                        port_drive_resistance=0.0)


@pytest.fixture
def inv_chain(library):
    """pi -> inv1 -> inv2 -> po, all co-located (zero wire length)."""
    nl = Netlist()
    pi = nl.add_input_port("pi", Point(0, 0))
    po = nl.add_output_port("po", Point(0, 0))
    inv1 = nl.add_cell("inv1", library.smallest("INV"), position=Point(0, 0))
    inv2 = nl.add_cell("inv2", library.smallest("INV"), position=Point(0, 0))
    n = [nl.add_net("n%d" % i) for i in range(3)]
    nl.connect(pi.pin("Z"), n[0])
    nl.connect(inv1.pin("A"), n[0])
    nl.connect(inv1.pin("Z"), n[1])
    nl.connect(inv2.pin("A"), n[1])
    nl.connect(inv2.pin("Z"), n[2])
    nl.connect(po.pin("A"), n[2])
    return nl


class TestCombinationalTiming:
    def test_hand_computed_arrivals(self, inv_chain, library):
        nl = inv_chain
        eng = make_engine(nl)
        inv1, inv2 = nl.cell("inv1"), nl.cell("inv2")
        po = nl.cell("po")
        # INV_X1: intrinsic 2ps, R=2kohm. Loads: inv2 pin 1fF; po pin 1fF.
        assert eng.arrival(inv1.pin("A")) == pytest.approx(0.0)
        assert eng.arrival(inv1.pin("Z")) == pytest.approx(4.0)
        assert eng.arrival(inv2.pin("Z")) == pytest.approx(8.0)
        assert eng.arrival(po.pin("A")) == pytest.approx(8.0)

    def test_worst_slack(self, inv_chain):
        eng = make_engine(inv_chain, cycle=100.0)
        assert eng.worst_slack() == pytest.approx(92.0)
        assert eng.total_negative_slack() == 0.0

    def test_negative_slack(self, inv_chain):
        eng = make_engine(inv_chain, cycle=5.0)
        assert eng.worst_slack() == pytest.approx(-3.0)
        assert eng.total_negative_slack() == pytest.approx(-3.0)

    def test_required_propagates_backwards(self, inv_chain):
        nl = inv_chain
        eng = make_engine(nl, cycle=100.0)
        inv1 = nl.cell("inv1")
        # req(inv1/A) = 100 - 4 - 4 = 92 -> slack 92 everywhere on path
        assert eng.required(inv1.pin("A")) == pytest.approx(92.0)
        assert eng.slack(inv1.pin("A")) == pytest.approx(92.0)

    def test_slack_uniform_on_single_path(self, inv_chain):
        nl = inv_chain
        eng = make_engine(nl)
        slacks = {eng.slack(nl.cell(c).pin("Z")) for c in ("inv1", "inv2")}
        assert len({round(s, 6) for s in slacks}) == 1

    def test_gain_mode_load_independent(self, inv_chain, library):
        nl = inv_chain
        eng = make_engine(nl, mode=DelayMode.GAIN)
        for c in ("inv1", "inv2"):
            nl.cell(c).gain = 3.0
        eng.set_mode(DelayMode.LOAD)
        eng.set_mode(DelayMode.GAIN)
        # d = tau*(p + g*h) = 2*(1 + 1*3) = 8 per stage
        assert eng.arrival(nl.cell("inv2").pin("Z")) == pytest.approx(16.0)
        # resizing downstream changes nothing in gain mode
        nl.resize_cell(nl.cell("inv2"), library.size("INV", 8.0))
        assert eng.arrival(nl.cell("inv1").pin("Z")) == pytest.approx(8.0)

    def test_wire_delay_included_when_long(self, library):
        nl = Netlist()
        pi = nl.add_input_port("pi", Point(0, 0))
        drv = nl.add_cell("drv", library.size("INV", 4.0),
                          position=Point(0, 0))
        snk = nl.add_cell("snk", library.smallest("INV"),
                          position=Point(500, 0))
        po = nl.add_output_port("po", Point(500, 0))
        n0, n1, n2 = (nl.add_net("n%d" % i) for i in range(3))
        nl.connect(pi.pin("Z"), n0)
        nl.connect(drv.pin("A"), n0)
        nl.connect(drv.pin("Z"), n1)
        nl.connect(snk.pin("A"), n1)
        nl.connect(snk.pin("Z"), n2)
        nl.connect(po.pin("A"), n2)
        eng_short = make_engine(nl, rc_threshold=1e9)
        arr_short = eng_short.arrival(snk.pin("A"))
        nl2_eng = make_engine(nl, rc_threshold=100.0)
        arr_long = nl2_eng.arrival(snk.pin("A"))
        assert arr_long > arr_short  # Elmore wire delay added

    def test_combinational_loop_detected(self, library):
        nl = Netlist()
        a = nl.add_cell("a", library.smallest("INV"))
        b = nl.add_cell("b", library.smallest("INV"))
        n1, n2 = nl.add_net("n1"), nl.add_net("n2")
        nl.connect(a.pin("Z"), n1)
        nl.connect(b.pin("A"), n1)
        nl.connect(b.pin("Z"), n2)
        nl.connect(a.pin("A"), n2)
        eng = make_engine(nl)
        with pytest.raises(CombinationalLoopError):
            eng.worst_slack()

    def test_empty_design(self):
        eng = make_engine(Netlist())
        assert eng.worst_slack() == float("inf")


@pytest.fixture
def ff_pipe(library):
    """clk -> (buffered) both FFs; pi -> ff1.D; ff1.Q -> inv -> ff2.D."""
    nl = Netlist()
    pi = nl.add_input_port("pi", Point(0, 0))
    clk = nl.add_input_port("clk", Point(0, 0))
    ff1 = nl.add_cell("ff1", library.smallest("DFF"), position=Point(0, 0))
    ff2 = nl.add_cell("ff2", library.smallest("DFF"), position=Point(0, 0))
    inv = nl.add_cell("inv", library.smallest("INV"), position=Point(0, 0))
    nets = {n: nl.add_net(n) for n in ["din", "cknet", "q1", "d2"]}
    nets["cknet"].is_clock = True
    nl.connect(pi.pin("Z"), nets["din"])
    nl.connect(ff1.pin("D"), nets["din"])
    nl.connect(clk.pin("Z"), nets["cknet"])
    nl.connect(ff1.pin("CK"), nets["cknet"])
    nl.connect(ff2.pin("CK"), nets["cknet"])
    nl.connect(ff1.pin("Q"), nets["q1"])
    nl.connect(inv.pin("A"), nets["q1"])
    nl.connect(inv.pin("Z"), nets["d2"])
    nl.connect(ff2.pin("D"), nets["d2"])
    return nl


class TestSequentialTiming:
    def test_q_launches_from_clock(self, ff_pipe, library):
        nl = ff_pipe
        eng = make_engine(nl, cycle=100.0)
        ff1 = nl.cell("ff1")
        # clk->CK wire is zero-length; arr(Q) = clk2q
        clk2q = eng.gate_delay(ff1, ff1.pin("Q"))
        assert eng.arrival(ff1.pin("Q")) == pytest.approx(clk2q)

    def test_d_is_endpoint_with_setup(self, ff_pipe):
        nl = ff_pipe
        eng = make_engine(nl, cycle=100.0, setup=4.0)
        ff2 = nl.cell("ff2")
        assert eng.required(ff2.pin("D")) == pytest.approx(100.0 - 4.0)
        assert ff2.pin("D") in eng.endpoints()

    def test_reg_to_reg_slack(self, ff_pipe):
        nl = ff_pipe
        eng = make_engine(nl, cycle=100.0, setup=4.0)
        ff1, ff2, inv = nl.cell("ff1"), nl.cell("ff2"), nl.cell("inv")
        clk2q = eng.gate_delay(ff1, ff1.pin("Q"))
        inv_d = eng.gate_delay(inv, inv.pin("Z"))
        expected = (100.0 - 4.0) - (clk2q + inv_d)
        assert eng.slack(ff2.pin("D")) == pytest.approx(expected)

    def test_no_path_through_ff(self, ff_pipe):
        nl = ff_pipe
        eng = make_engine(nl, cycle=100.0)
        ff1 = nl.cell("ff1")
        # D of ff1 sees only the PI, not the downstream logic
        assert eng.arrival(ff1.pin("D")) == pytest.approx(0.0)
        assert eng.required(ff1.pin("D")) == pytest.approx(96.0)

    def test_clock_skew_shifts_capture(self, ff_pipe, library):
        nl = ff_pipe
        # insert a clock buffer before ff2's CK only
        from repro.netlist import ops
        buf = ops.insert_buffer(nl, library, nl.net("cknet"),
                                [nl.cell("ff2").pin("CK")],
                                position=Point(0, 0))
        eng = make_engine(nl, cycle=100.0, setup=4.0)
        ff2 = nl.cell("ff2")
        ck_arr = eng.arrival(ff2.pin("CK"))
        assert ck_arr > 0
        assert eng.required(ff2.pin("D")) == pytest.approx(
            100.0 + ck_arr - 4.0)


class TestIncrementality:
    def test_independent_chains_not_recomputed(self, library):
        nl = Netlist()
        for tag in ("a", "b"):
            pi = nl.add_input_port("pi_" + tag, Point(0, 0))
            prev = nl.add_net("n_%s_in" % tag)
            nl.connect(pi.pin("Z"), prev)
            for i in range(10):
                c = nl.add_cell("%s%d" % (tag, i), library.smallest("INV"),
                                position=Point(float(i), 0))
                nl.connect(c.pin("A"), prev)
                prev = nl.add_net("n_%s_%d" % (tag, i))
                nl.connect(c.pin("Z"), prev)
            po = nl.add_output_port("po_" + tag, Point(10, 0))
            nl.connect(po.pin("A"), prev)
        eng = make_engine(nl)
        eng.worst_slack()
        before = dict(eng.stats())
        # perturb chain a only
        nl.move_cell(nl.cell("a5"), Point(5.0, 50.0))
        eng.worst_slack()
        recomputed = eng.stats()["arrival_recomputes"] - before["arrival_recomputes"]
        total_pins = eng.graph().num_pins
        assert 0 < recomputed < total_pins / 2

    def test_no_change_no_recompute(self, inv_chain):
        eng = make_engine(inv_chain)
        eng.worst_slack()
        before = eng.stats()["arrival_recomputes"]
        eng.worst_slack()
        assert eng.stats()["arrival_recomputes"] == before

    def test_incremental_matches_from_scratch(self, inv_chain, library):
        nl = inv_chain
        eng = make_engine(nl)
        eng.worst_slack()
        nl.resize_cell(nl.cell("inv1"), library.size("INV", 4.0))
        nl.move_cell(nl.cell("inv2"), Point(40, 0))
        incremental = eng.worst_slack()
        fresh = make_engine(nl).worst_slack()
        assert incremental == pytest.approx(fresh)

    def test_connectivity_edit_matches_fresh(self, inv_chain, library):
        nl = inv_chain
        eng = make_engine(nl)
        eng.worst_slack()
        from repro.netlist import ops
        ops.insert_buffer(nl, library, nl.net("n1"),
                          [nl.cell("inv2").pin("A")], position=Point(0, 0))
        assert eng.worst_slack() == pytest.approx(
            make_engine(nl).worst_slack())

    def test_cell_removal_matches_fresh(self, inv_chain, library):
        nl = inv_chain
        eng = make_engine(nl)
        eng.worst_slack()
        inv2 = nl.cell("inv2")
        n1, n2 = nl.net("n1"), nl.net("n2")
        nl.remove_cell(inv2)
        # reconnect inv1 straight to po
        po_pin = nl.cell("po").pin("A")
        nl.connect(po_pin, n1)
        assert eng.worst_slack() == pytest.approx(
            make_engine(nl).worst_slack())


class TestCriticalRegion:
    def test_single_path_all_critical(self, inv_chain):
        nl = inv_chain
        eng = make_engine(nl, cycle=5.0)
        cr = obtain_critical_region(eng)
        assert {c.name for c in cr.cells} >= {"inv1", "inv2"}
        assert not cr.empty

    def test_margin_widens_region(self, library):
        nl = Netlist()
        pi = nl.add_input_port("pi", Point(0, 0))
        n0 = nl.add_net("n0")
        nl.connect(pi.pin("Z"), n0)
        # long chain and short chain to separate POs
        prev = n0
        for i in range(5):
            c = nl.add_cell("long%d" % i, library.smallest("INV"),
                            position=Point(0, 0))
            nl.connect(c.pin("A"), prev)
            prev = nl.add_net("ln%d" % i)
            nl.connect(c.pin("Z"), prev)
        po1 = nl.add_output_port("po1", Point(0, 0))
        nl.connect(po1.pin("A"), prev)
        s = nl.add_cell("short0", library.smallest("INV"),
                        position=Point(0, 0))
        nl.connect(s.pin("A"), n0)
        sn = nl.add_net("sn")
        nl.connect(s.pin("Z"), sn)
        po2 = nl.add_output_port("po2", Point(0, 0))
        nl.connect(po2.pin("A"), sn)
        eng = make_engine(nl, cycle=100.0)
        tight = obtain_critical_region(eng, slack_margin=0.0)
        wide = obtain_critical_region(eng, slack_margin=1000.0)
        assert "short0" not in tight.cell_names()
        assert "short0" in wide.cell_names()
        assert len(wide.pins) > len(tight.pins)

    def test_absolute_threshold(self, inv_chain):
        eng = make_engine(inv_chain, cycle=1000.0)
        cr = obtain_critical_region(eng, absolute_threshold=0.0)
        assert cr.empty  # everything meets timing

    def test_empty_design_region(self):
        eng = make_engine(Netlist())
        assert obtain_critical_region(eng).empty
