import pytest

from repro.geometry import Point
from repro.library.parasitics import WireParasitics
from repro.netlist import Netlist
from repro.timing import DelayMode, TimingConstraints, TimingEngine
from repro.timing.engine import INF
from repro.wirelength import SteinerCache, WireModel


def make_engine(nl, cycle=100.0, hold=2.0):
    cache = SteinerCache(nl)
    model = WireModel(cache, WireParasitics(rc_threshold=1e9))
    constraints = TimingConstraints(cycle_time=cycle, hold_time=hold)
    return TimingEngine(nl, model, constraints, mode=DelayMode.LOAD,
                        port_drive_resistance=0.0)


@pytest.fixture
def ff_to_ff(library):
    """ff1.Q -> (direct) ff2.D, shared ideal clock: a hold hazard."""
    nl = Netlist()
    clk = nl.add_input_port("clk", Point(0, 0))
    ff1 = nl.add_cell("ff1", library.smallest("DFF"), position=Point(0, 0))
    ff2 = nl.add_cell("ff2", library.smallest("DFF"), position=Point(0, 0))
    cknet = nl.add_net("ck", is_clock=True)
    nl.connect(clk.pin("Z"), cknet)
    nl.connect(ff1.pin("CK"), cknet)
    nl.connect(ff2.pin("CK"), cknet)
    q = nl.add_net("q")
    nl.connect(ff1.pin("Q"), q)
    nl.connect(ff2.pin("D"), q)
    pi = nl.add_input_port("pi", Point(0, 0))
    din = nl.add_net("din")
    nl.connect(pi.pin("Z"), din)
    nl.connect(ff1.pin("D"), din)
    return nl, ff1, ff2


class TestMinArrival:
    def test_min_le_max(self, ff_to_ff):
        nl, ff1, ff2 = ff_to_ff
        eng = make_engine(nl)
        for cell in nl.cells():
            for pin in cell.pins():
                assert eng.arrival_min(pin) <= eng.arrival(pin) + 1e-9

    def test_early_factor_scales(self, ff_to_ff):
        nl, ff1, ff2 = ff_to_ff
        eng = make_engine(nl)
        q = ff1.pin("Q")
        # single arc: min = early_factor * max (zero wire, same path)
        assert eng.arrival_min(q) == pytest.approx(
            eng.early_factor * eng.arrival(q))

    def test_min_tracks_shortest_path(self, library):
        """Two reconvergent paths: min follows the short one."""
        nl = Netlist()
        pi = nl.add_input_port("pi", Point(0, 0))
        n0 = nl.add_net("n0")
        nl.connect(pi.pin("Z"), n0)
        # short branch: 1 inverter; long branch: 3 inverters
        def chain(tag, k, src):
            prev = src
            for i in range(k):
                c = nl.add_cell("%s%d" % (tag, i),
                                library.smallest("INV"),
                                position=Point(0, 0))
                nl.connect(c.pin("A"), prev)
                prev = nl.add_net("%sn%d" % (tag, i))
                nl.connect(c.pin("Z"), prev)
            return prev
        short = chain("s", 1, n0)
        long = chain("l", 3, n0)
        g = nl.add_cell("g", library.smallest("NAND2"),
                        position=Point(0, 0))
        nl.connect(g.pin("A"), short)
        nl.connect(g.pin("B"), long)
        gout = nl.add_net("gout")
        nl.connect(g.pin("Z"), gout)
        po = nl.add_output_port("po", Point(0, 0))
        nl.connect(po.pin("A"), gout)
        eng = make_engine(nl)
        z = g.pin("Z")
        assert eng.arrival_min(z) < eng.arrival(z)


class TestHoldSlack:
    def test_direct_ff_to_ff_violates(self, ff_to_ff):
        """Q->D with no logic: clk2q*early < hold -> violation region."""
        nl, ff1, ff2 = ff_to_ff
        eng = make_engine(nl, hold=20.0)  # brutal hold requirement
        slack = eng.hold_slack(ff2.pin("D"))
        assert slack < 0

    def test_relaxed_hold_passes(self, ff_to_ff):
        nl, ff1, ff2 = ff_to_ff
        eng = make_engine(nl, hold=0.5)
        assert eng.hold_slack(ff2.pin("D")) > 0

    def test_hold_only_at_register_d(self, ff_to_ff):
        nl, ff1, ff2 = ff_to_ff
        eng = make_engine(nl)
        assert eng.hold_slack(ff1.pin("CK")) == INF
        assert eng.hold_slack(ff1.pin("Q")) == INF

    def test_worst_hold(self, ff_to_ff):
        nl, ff1, ff2 = ff_to_ff
        eng = make_engine(nl, hold=20.0)
        worst = eng.worst_hold_slack()
        slacks = [eng.hold_slack(p) for p in eng.endpoints()
                  if eng.hold_slack(p) < INF]
        assert worst == min(slacks)

    def test_added_delay_fixes_hold(self, ff_to_ff, library):
        nl, ff1, ff2 = ff_to_ff
        eng = make_engine(nl, hold=20.0)
        before = eng.hold_slack(ff2.pin("D"))
        # pad the Q->D path with two buffers
        from repro.netlist import ops
        q = ff1.pin("Q").net
        b1 = ops.insert_buffer(nl, library, q, [ff2.pin("D")],
                               position=Point(0, 0))
        nl2 = b1.output_pin().net
        ops.insert_buffer(nl, library, nl2, [ff2.pin("D")],
                          position=Point(0, 0))
        after = eng.hold_slack(ff2.pin("D"))
        assert after > before
