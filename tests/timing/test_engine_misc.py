import pytest

from repro.geometry import Point
from repro.library.parasitics import WireParasitics
from repro.netlist import Netlist
from repro.timing import DelayMode, TimingConstraints, TimingEngine
from repro.timing.engine import INF
from repro.wirelength import SteinerCache, WireModel
from repro.wirelength.wlm import WireLoadModel


def engine_for(nl, **kw):
    cache = SteinerCache(nl)
    model = WireModel(cache, WireParasitics(rc_threshold=1e9))
    constraints = TimingConstraints(cycle_time=kw.pop("cycle", 100.0))
    return TimingEngine(nl, model, constraints,
                        mode=DelayMode.LOAD,
                        port_drive_resistance=0.0, **kw)


@pytest.fixture
def simple(library):
    nl = Netlist()
    pi = nl.add_input_port("pi", Point(0, 0))
    po = nl.add_output_port("po", Point(0, 0))
    g = nl.add_cell("g", library.smallest("NAND2"), position=Point(0, 0))
    clk = nl.add_input_port("clk", Point(0, 0))
    ff = nl.add_cell("ff", library.smallest("DFF"), position=Point(0, 0))
    nets = {k: nl.add_net(k) for k in ("a", "b", "z", "ck")}
    nets["ck"].is_clock = True
    nl.connect(pi.pin("Z"), nets["a"])
    nl.connect(g.pin("A"), nets["a"])
    nl.connect(clk.pin("Z"), nets["ck"])
    nl.connect(ff.pin("CK"), nets["ck"])
    nl.connect(ff.pin("Q"), nets["b"])
    nl.connect(g.pin("B"), nets["b"])
    nl.connect(g.pin("Z"), nets["z"])
    nl.connect(po.pin("A"), nets["z"])
    nl.connect(ff.pin("D"), nets["z"])
    return nl


class TestEngineMisc:
    def test_endpoint_slacks_keys(self, simple):
        eng = engine_for(simple)
        slacks = eng.endpoint_slacks()
        assert set(slacks) == {"po/A", "ff/D"}

    def test_net_slack_ignores_clock_pins(self, simple):
        eng = engine_for(simple)
        ck = simple.net("ck")
        # the register CK pin is excluded; only the (non-clock) port
        # driver pin counts
        driver = ck.driver()
        assert eng.net_slack(ck) == pytest.approx(eng.slack(driver))

    def test_set_wire_model_retimes(self, simple):
        eng = engine_for(simple)
        before = eng.worst_slack()
        wlm = WireLoadModel(SteinerCache(simple), cap_per_fanout=50.0)
        eng.set_wire_model(wlm)
        after = eng.worst_slack()
        assert after < before  # huge WLM caps slow everything

    def test_set_mode_noop_keeps_values(self, simple):
        eng = engine_for(simple)
        eng.worst_slack()
        flushes = eng.stats()["flushes"]
        eng.set_mode(DelayMode.LOAD)  # already LOAD
        eng.worst_slack()
        assert eng.stats()["flushes"] == flushes

    def test_gate_delay_gain_vs_load(self, simple, library):
        eng = engine_for(simple)
        g = simple.cell("g")
        load_delay = eng.gate_delay(g, g.pin("Z"))
        eng.set_mode(DelayMode.GAIN)
        g.gain = 4.0
        gain_delay = eng.gate_delay(g, g.pin("Z"))
        from repro.library.types import TAU
        t = g.gate_type
        assert gain_delay == pytest.approx(
            TAU * (t.parasitic + t.logical_effort * 4.0))
        assert gain_delay != load_delay

    def test_tns_counts_only_negative(self, simple):
        eng = engine_for(simple, cycle=10_000.0)
        assert eng.total_negative_slack() == 0.0

    def test_floating_input_unconstrained(self, simple, library):
        nl = simple
        lone = nl.add_cell("lone", library.smallest("INV"),
                           position=Point(0, 0))
        eng = engine_for(nl)
        assert eng.arrival(lone.pin("A")) == 0.0
        assert eng.required(lone.pin("A")) == INF
        assert eng.slack(lone.pin("A")) == INF
