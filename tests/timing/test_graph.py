import pytest

from repro.geometry import Point
from repro.netlist import Netlist
from repro.timing.graph import TimingGraph, cell_arcs


class TestCellArcs:
    def test_combinational_full_crossbar(self, library):
        nl = Netlist()
        g = nl.add_cell("g", library.smallest("NAND3"))
        arcs = cell_arcs(g)
        assert len(arcs) == 3
        assert all(dst.name == "Z" for _src, dst in arcs)

    def test_sequential_only_ck_to_q(self, library):
        nl = Netlist()
        ff = nl.add_cell("ff", library.smallest("SDFF"))
        arcs = cell_arcs(ff)
        assert len(arcs) == 1
        (src, dst), = arcs
        assert src.name == "CK" and dst.name == "Q"

    def test_ports_have_no_arcs(self, library):
        nl = Netlist()
        p = nl.add_input_port("p")
        assert cell_arcs(p) == []


class TestTimingGraph:
    @pytest.fixture
    def graph(self, library):
        nl = Netlist()
        pi = nl.add_input_port("pi")
        inv = nl.add_cell("inv", library.smallest("INV"))
        nand = nl.add_cell("nand", library.smallest("NAND2"))
        po = nl.add_output_port("po")
        n0, n1, n2 = (nl.add_net("n%d" % i) for i in range(3))
        nl.connect(pi.pin("Z"), n0)
        nl.connect(inv.pin("A"), n0)
        nl.connect(nand.pin("A"), n0)
        nl.connect(inv.pin("Z"), n1)
        nl.connect(nand.pin("B"), n1)
        nl.connect(nand.pin("Z"), n2)
        nl.connect(po.pin("A"), n2)
        return nl, TimingGraph(nl)

    def test_counts(self, graph):
        nl, g = graph
        # pins: pi.Z, inv.A/Z, nand.A/B/Z, po.A = 7
        assert g.num_pins == 7
        # net arcs: n0->(inv.A, nand.A)=2, n1->nand.B=1, n2->po.A=1;
        # cell arcs: inv 1, nand 2
        assert g.num_arcs == 7

    def test_levels_longest_path(self, graph):
        nl, g = graph
        nand_z = nl.cell("nand").pin("Z")
        # longest: pi.Z(0) -> inv.A(1) -> inv.Z(2) -> nand.B(3) -> Z(4)
        assert g.level_of(nand_z) == 4
        assert g.max_level() == 5  # po.A

    def test_fanout_arcs(self, graph):
        nl, g = graph
        pi_z = nl.cell("pi").pin("Z")
        dsts = {p.full_name for p, _k in g.fanout_arcs(pi_z)}
        assert dsts == {"inv/A", "nand/A"}

    def test_fanin_kinds(self, graph):
        nl, g = graph
        nand_z = nl.cell("nand").pin("Z")
        kinds = {k for _p, k in g.fanin_arcs(nand_z)}
        assert kinds == {"cell"}
        nand_a = nl.cell("nand").pin("A")
        kinds = {k for _p, k in g.fanin_arcs(nand_a)}
        assert kinds == {"net"}
