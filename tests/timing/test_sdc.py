import io

import pytest

from repro.timing import TimingConstraints
from repro.timing.sdc import SdcError, read_sdc, write_sdc

SAMPLE = """
# core constraints
create_clock -period 2000 -name core
set_input_delay 80 [all_inputs]
set_input_delay 120 [get_ports pi3]
set_output_delay 100 [all_outputs]
set_output_delay 150 [get_ports po1]
set_clock_uncertainty 25
"""


class TestReadSdc:
    def test_full_sample(self):
        c = read_sdc(io.StringIO(SAMPLE))
        assert c.cycle_time == 2000
        assert c.default_input_arrival == 80
        assert c.input_arrival("pi3") == 120
        assert c.input_arrival("other") == 80
        assert c.output_required("po1") == 2000 - 150
        assert c.output_required("other") == 2000 - 100
        # uncertainty folded into the setup margin
        default_setup = TimingConstraints.__dataclass_fields__[
            "setup_time"].default
        assert c.setup_time == default_setup + 25

    def test_minimal(self):
        c = read_sdc(io.StringIO("create_clock -period 500\n"))
        assert c.cycle_time == 500
        assert c.output_required("x") == 500

    def test_missing_clock(self):
        with pytest.raises(SdcError):
            read_sdc(io.StringIO("set_clock_uncertainty 10\n"))

    def test_unknown_command(self):
        with pytest.raises(SdcError):
            read_sdc(io.StringIO("create_clock -period 10\n"
                                 "set_false_path -from x\n"))

    def test_bad_delay_target(self):
        with pytest.raises(SdcError):
            read_sdc(io.StringIO("create_clock -period 10\n"
                                 "set_input_delay 5\n"))

    def test_comments_ignored(self):
        c = read_sdc(io.StringIO("# hi\ncreate_clock -period 10 # x\n"))
        assert c.cycle_time == 10


class TestRoundtrip:
    def test_write_then_read(self):
        original = read_sdc(io.StringIO(SAMPLE))
        buf = io.StringIO()
        write_sdc(original, buf)
        buf.seek(0)
        back = read_sdc(buf)
        assert back.cycle_time == original.cycle_time
        assert back.default_input_arrival == \
            original.default_input_arrival
        assert back.input_arrivals == original.input_arrivals
        assert back.output_requireds == original.output_requireds

    def test_constraints_drive_engine(self, library):
        """SDC input arrival shifts timing like any other constraint."""
        from repro.geometry import Point
        from repro.netlist import Netlist
        from repro.timing import DelayMode, TimingEngine
        from repro.wirelength import SteinerCache, WireModel
        nl = Netlist()
        pi = nl.add_input_port("pi", Point(0, 0))
        po = nl.add_output_port("po", Point(0, 0))
        inv = nl.add_cell("inv", library.smallest("INV"),
                          position=Point(0, 0))
        n0, n1 = nl.add_net("n0"), nl.add_net("n1")
        nl.connect(pi.pin("Z"), n0)
        nl.connect(inv.pin("A"), n0)
        nl.connect(inv.pin("Z"), n1)
        nl.connect(po.pin("A"), n1)
        sdc = io.StringIO("create_clock -period 100\n"
                          "set_input_delay 30 [get_ports pi]\n")
        constraints = read_sdc(sdc)
        engine = TimingEngine(nl, WireModel(SteinerCache(nl)),
                              constraints, mode=DelayMode.LOAD,
                              port_drive_resistance=0.0)
        assert engine.arrival(pi.pin("Z")) == pytest.approx(30.0)
