"""Property: incremental timing == from-scratch timing, always.

The central contract of the engine — after ANY sequence of netlist
edits, lazily re-propagated values must equal a fresh engine's values.
Hypothesis drives random edit sequences (moves, resizes, buffer
insertions/removals, pin swaps, cell clones) against a seed design.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.library.parasitics import WireParasitics
from repro.netlist import Netlist, ops
from repro.timing import DelayMode, TimingConstraints, TimingEngine
from repro.wirelength import SteinerCache, WireModel
from repro.workloads import random_logic


def build(library, seed=3):
    nl = random_logic("p", library, 60, n_inputs=6, n_outputs=6,
                      seed=seed)
    # place everything deterministically
    for i, cell in enumerate(nl.cells()):
        nl.move_cell(cell, Point(float((i * 37) % 200),
                                 float((i * 53) % 200)))
    return nl


def fresh_engine(nl):
    cache = SteinerCache(nl)
    model = WireModel(cache, WireParasitics(rc_threshold=120.0))
    return TimingEngine(nl, model,
                        TimingConstraints(cycle_time=500.0),
                        mode=DelayMode.LOAD)


# an edit is (kind, int, int); ints index cells/nets/positions
edits = st.lists(
    st.tuples(st.sampled_from(["move", "resize", "buffer", "swap",
                               "clone", "unplace"]),
              st.integers(0, 10_000), st.integers(0, 10_000)),
    min_size=1, max_size=12,
)


class TestIncrementalEqualsFresh:
    @given(edits)
    @settings(max_examples=25, deadline=None)
    def test_random_edit_sequences(self, library, sequence):
        nl = build(library)
        engine = fresh_engine(nl)
        engine.worst_slack()  # settle once

        for kind, a, b in sequence:
            cells = [c for c in nl.cells() if c.is_movable]
            nets = [n for n in nl.nets() if n.driver() is not None]
            if not cells or not nets:
                break
            cell = cells[a % len(cells)]
            net = nets[b % len(nets)]
            if kind == "move":
                nl.move_cell(cell, Point(float(a % 200), float(b % 200)))
            elif kind == "unplace":
                nl.move_cell(cell, None)
            elif kind == "resize":
                ladder = library.sizes(cell.type_name) \
                    if library.has_type(cell.type_name) else []
                if ladder:
                    nl.resize_cell(cell, ladder[a % len(ladder)])
            elif kind == "buffer":
                sinks = net.sinks()
                if sinks:
                    ops.insert_buffer(nl, library, net,
                                      sinks[:1 + a % len(sinks)],
                                      position=Point(float(a % 200),
                                                     float(b % 200)))
            elif kind == "swap":
                groups = cell.gate_type.swap_groups()
                if groups:
                    pins = list(groups.values())[0]
                    ops.swap_pins(nl, cell, pins[0].name, pins[1].name)
            elif kind == "clone":
                driver = net.driver()
                if (driver is not None and not driver.cell.is_port
                        and len(net.sinks()) >= 2):
                    ops.clone_cell(nl, driver.cell, net.sinks()[:1],
                                   position=cell.position)

        incremental = engine.worst_slack()
        reference = fresh_engine(nl).worst_slack()
        assert incremental == pytest.approx(reference, abs=1e-6)

    @given(st.integers(0, 2**30))
    @settings(max_examples=10, deadline=None)
    def test_per_pin_equality_after_moves(self, library, seed):
        nl = build(library, seed=5)
        engine = fresh_engine(nl)
        engine.worst_slack()
        movable = nl.movable_cells()
        for i, cell in enumerate(movable[: 10]):
            nl.move_cell(cell, Point(float((seed + i * 31) % 200),
                                     float((seed + i * 17) % 200)))
        reference = fresh_engine(nl)
        for cell in nl.cells():
            for pin in cell.pins():
                assert engine.arrival(pin) == pytest.approx(
                    reference.arrival(pin), abs=1e-6), pin.full_name
                assert engine.slack(pin) == pytest.approx(
                    reference.slack(pin), abs=1e-6), pin.full_name
