import pytest

from repro.placement import Partitioner, Reflow, legalize_rows
from repro.routing import GlobalRouter, cut_metrics
from repro.workloads import ProcessorParams, make_design, processor_partition


@pytest.fixture(scope="module")
def placed(library):
    params = ProcessorParams(n_stages=2, regs_per_stage=10,
                             gates_per_stage=180, seed=8)
    netlist = processor_partition(params, library)
    design = make_design(netlist, library, cycle_time=1500.0)
    part = Partitioner(design, seed=2)
    part.run_to(100)
    Reflow(part).run()
    legalize_rows(design)
    return design


class TestGlobalRouter:
    def test_routes_every_multi_pin_net(self, placed):
        router = GlobalRouter(placed)
        result = router.route()
        multi = [n for n in placed.netlist.nets() if n.degree >= 2]
        assert len(result.routes) == len(multi)

    def test_routed_at_least_steiner(self, placed):
        router = GlobalRouter(placed)
        result = router.route()
        for r in result.routes.values():
            if r.steiner_length > 0:
                # routed length includes quantization/detour, so it may
                # only fall slightly below the Steiner estimate
                assert r.routed_length > 0.3 * r.steiner_length

    def test_usage_conservation(self, placed):
        """Unrouting everything returns usage to zero."""
        router = GlobalRouter(placed)
        result = router.route()
        for route in result.routes.values():
            router._unroute(route)
        assert all(u == pytest.approx(0.0)
                   for u in router._usage.values())

    def test_overflow_decreases_with_iterations(self, placed):
        one = GlobalRouter(placed, max_iterations=1)
        one.route()
        many = GlobalRouter(placed, max_iterations=4)
        many.route()
        assert many.total_overflow() <= one.total_overflow() + 1e-9

    def test_publishes_bin_usage(self, placed):
        GlobalRouter(placed).route()
        assert any(b.wire_used_h > 0 or b.wire_used_v > 0
                   for b in placed.grid.bins())

    def test_single_bin_grid_routes_trivially(self, placed):
        placed.grid.resize(1, 1)
        result = GlobalRouter(placed).route()
        assert result.total_overflow == 0.0
        # restore resolution for other tests (module-scoped fixture)
        from repro.placement.partitioner import standard_grid_dims
        placed.grid.resize(*standard_grid_dims(placed))


class TestCutMetrics:
    def test_metrics_shape(self, placed):
        router = GlobalRouter(placed)
        router.route()
        metrics = cut_metrics(router)
        assert metrics.horizontal_peak >= metrics.horizontal_avg >= 0
        assert metrics.vertical_peak >= metrics.vertical_avg >= 0
        assert len(metrics.horizontal_per_line) == router.nx - 1
        assert len(metrics.vertical_per_line) == router.ny - 1

    def test_row_format(self, placed):
        router = GlobalRouter(placed)
        router.route()
        row = cut_metrics(router).row()
        assert "/" in row

    def test_crossings_counted_somewhere(self, placed):
        router = GlobalRouter(placed)
        router.route()
        metrics = cut_metrics(router)
        assert sum(metrics.horizontal_per_line) > 0
        assert sum(metrics.vertical_per_line) > 0
