"""Property tests for the global router's path machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design import Design
from repro.geometry import Point, Rect
from repro.netlist import Netlist
from repro.routing import GlobalRouter
from repro.timing import TimingConstraints


def grid_design(library, nx=6, ny=6):
    nl = Netlist()
    design = Design(nl, library, Rect(0, 0, 120, 120),
                    TimingConstraints(cycle_time=100.0))
    design.grid.resize(nx, ny)
    return design


cells_idx = st.tuples(st.integers(0, 5), st.integers(0, 5))


class TestPathProperties:
    @given(cells_idx, cells_idx)
    @settings(max_examples=40, deadline=None)
    def test_l_path_is_connected_and_minimal(self, library, a, b):
        design = grid_design(library)
        router = GlobalRouter(design)
        path = router._l_path(a, b)
        assert path[0] == a and path[-1] == b
        for (x1, y1), (x2, y2) in zip(path, path[1:]):
            assert abs(x1 - x2) + abs(y1 - y2) == 1
        assert len(path) - 1 == abs(a[0] - b[0]) + abs(a[1] - b[1])

    @given(cells_idx, cells_idx)
    @settings(max_examples=40, deadline=None)
    def test_maze_path_valid(self, library, a, b):
        design = grid_design(library)
        router = GlobalRouter(design)
        path = router._maze_path(a, b)
        assert path[0] == a and path[-1] == b
        for (x1, y1), (x2, y2) in zip(path, path[1:]):
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    @given(cells_idx, cells_idx)
    @settings(max_examples=25, deadline=None)
    def test_maze_no_longer_than_l_when_uncongested(self, library, a, b):
        design = grid_design(library)
        router = GlobalRouter(design)
        l_path = router._l_path(a, b)
        maze = router._maze_path(a, b)
        assert len(maze) <= len(l_path)

    @given(st.lists(st.tuples(st.integers(2, 116), st.integers(2, 116)),
                    min_size=2, max_size=8, unique=True))
    @settings(max_examples=20, deadline=None)
    def test_net_route_accounting(self, library, points):
        """Routing then unrouting a net restores pristine usage."""
        design = grid_design(library)
        nl = design.netlist
        drv = nl.add_cell("drv", library.smallest("INV"),
                          position=Point(*map(float, points[0])))
        net = nl.add_net("n")
        nl.connect(drv.pin("Z"), net)
        for i, p in enumerate(points[1:]):
            s = nl.add_cell("s%d" % i, library.smallest("INV"),
                            position=Point(*map(float, p)))
            nl.connect(s.pin("A"), net)
        router = GlobalRouter(design)
        route = router._route_net(net, maze=False)
        assert route.routed_length >= 0
        router._unroute(route)
        assert all(abs(u) < 1e-9 for u in router._usage.values())
