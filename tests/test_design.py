import pytest

from repro.design import Design
from repro.geometry import Point, Rect
from repro.image import Blockage
from repro.netlist import Netlist
from repro.timing import DelayMode, TimingConstraints
from repro.workloads import random_logic


@pytest.fixture
def design(library):
    netlist = random_logic("d", library, 50, seed=6)
    die = Rect(0, 0, 200, 200)
    blockage = Blockage(Rect(150, 150, 200, 200))
    return Design(netlist, library, die,
                  TimingConstraints(cycle_time=500.0),
                  blockages=[blockage], target_utilization=0.8)


class TestDesignFacade:
    def test_analyzers_wired(self, design):
        # the grid, steiner cache and timing engine all observe edits
        cell = design.netlist.movable_cells()[0]
        design.netlist.move_cell(cell, Point(10, 10))
        assert design.grid.bin_of(cell) is design.grid.bin_at(Point(10, 10))
        assert design.worst_slack() < float("inf")

    def test_effective_capacity_subtracts_blockage(self, design):
        free = design.effective_capacity(Rect(0, 0, 50, 50))
        blocked = design.effective_capacity(Rect(150, 150, 200, 200))
        assert free == pytest.approx(50 * 50 * 0.8)
        assert blocked < free

    def test_effective_capacity_outside_die(self, design):
        assert design.effective_capacity(Rect(500, 500, 600, 600)) == 0.0

    def test_effective_capacity_clamps_to_die(self, design):
        inside = design.effective_capacity(Rect(0, 0, 200, 200))
        overhang = design.effective_capacity(Rect(-100, -100, 200, 200))
        assert overhang == pytest.approx(inside)

    def test_spread_all_to_center(self, design):
        design.spread_all_to_center()
        center = design.die.center
        for cell in design.netlist.movable_cells():
            assert cell.position == center

    def test_icell_count_excludes_ports(self, design):
        assert design.icell_count() == len(design.netlist.logic_cells())

    def test_check_detects_grid_corruption(self, design):
        design.spread_all_to_center()
        victim = design.netlist.movable_cells()[0]
        # corrupt the bookkeeping behind the grid's back
        b = design.grid.bin_of(victim)
        b.area_used += 100.0
        with pytest.raises(AssertionError):
            design.check()

    def test_repr(self, design):
        assert "Design" in repr(design)


class TestFlowReportSnapshot:
    def test_snapshot_fields(self, design):
        from repro.scenario.report import snapshot
        design.spread_all_to_center()
        report = snapshot(design, "TPS", cpu_seconds=1.5)
        assert report.flow == "TPS"
        assert report.icells == design.icell_count()
        assert report.cell_area == pytest.approx(
            design.total_cell_area())
        assert report.cycle_time == 500.0
        assert report.cpu_seconds == 1.5
        assert "TPS" in report.table_row()

    def test_slack_fraction(self, design):
        from repro.scenario.report import snapshot
        report = snapshot(design, "SPR")
        assert report.slack_fraction_of_cycle == pytest.approx(
            report.worst_slack / 500.0)
