from repro.geometry import Point
from repro.netlist import Netlist, NetlistListener


class Recorder(NetlistListener):
    def __init__(self):
        self.events = []

    def on_cell_added(self, cell):
        self.events.append(("cell_added", cell.name))

    def on_cell_removed(self, cell):
        self.events.append(("cell_removed", cell.name))

    def on_cell_moved(self, cell, old):
        self.events.append(("cell_moved", cell.name, old))

    def on_cell_resized(self, cell, old):
        self.events.append(("cell_resized", cell.name, old.x))

    def on_net_added(self, net):
        self.events.append(("net_added", net.name))

    def on_net_removed(self, net):
        self.events.append(("net_removed", net.name))

    def on_connect(self, pin, net):
        self.events.append(("connect", pin.full_name, net.name))

    def on_disconnect(self, pin, net):
        self.events.append(("disconnect", pin.full_name, net.name))


class TestEventBus:
    def test_structural_events(self, library):
        nl = Netlist()
        rec = Recorder()
        nl.add_listener(rec)
        c = nl.add_cell("u1", library.smallest("INV"))
        n = nl.add_net("n1")
        nl.connect(c.pin("A"), n)
        nl.disconnect(c.pin("A"))
        nl.remove_net(n)
        nl.remove_cell(c)
        assert rec.events == [
            ("cell_added", "u1"),
            ("net_added", "n1"),
            ("connect", "u1/A", "n1"),
            ("disconnect", "u1/A", "n1"),
            ("net_removed", "n1"),
            ("cell_removed", "u1"),
        ]

    def test_move_event_carries_old_position(self, library):
        nl = Netlist()
        rec = Recorder()
        nl.add_listener(rec)
        c = nl.add_cell("u1", library.smallest("INV"), position=Point(1, 1))
        nl.move_cell(c, Point(2, 2))
        assert ("cell_moved", "u1", Point(1, 1)) in rec.events

    def test_noop_move_fires_nothing(self, library):
        nl = Netlist()
        c = nl.add_cell("u1", library.smallest("INV"), position=Point(1, 1))
        rec = Recorder()
        nl.add_listener(rec)
        nl.move_cell(c, Point(1, 1))
        assert rec.events == []

    def test_resize_event(self, library):
        nl = Netlist()
        c = nl.add_cell("u1", library.smallest("INV"))
        rec = Recorder()
        nl.add_listener(rec)
        nl.resize_cell(c, library.size("INV", 2.0))
        assert rec.events == [("cell_resized", "u1", 1.0)]

    def test_reconnect_fires_disconnect_then_connect(self, library):
        nl = Netlist()
        c = nl.add_cell("u1", library.smallest("INV"))
        n1, n2 = nl.add_net("n1"), nl.add_net("n2")
        nl.connect(c.pin("A"), n1)
        rec = Recorder()
        nl.add_listener(rec)
        nl.connect(c.pin("A"), n2)
        assert rec.events == [
            ("disconnect", "u1/A", "n1"),
            ("connect", "u1/A", "n2"),
        ]

    def test_remove_cell_disconnects_first(self, library):
        nl = Netlist()
        c = nl.add_cell("u1", library.smallest("INV"))
        n = nl.add_net("n1")
        nl.connect(c.pin("A"), n)
        rec = Recorder()
        nl.add_listener(rec)
        nl.remove_cell(c)
        assert rec.events == [
            ("disconnect", "u1/A", "n1"),
            ("cell_removed", "u1"),
        ]

    def test_listener_removal(self, library):
        nl = Netlist()
        rec = Recorder()
        nl.add_listener(rec)
        nl.remove_listener(rec)
        nl.add_cell("u1", library.smallest("INV"))
        assert rec.events == []

    def test_duplicate_listener_registered_once(self, library):
        nl = Netlist()
        rec = Recorder()
        nl.add_listener(rec)
        nl.add_listener(rec)
        nl.add_cell("u1", library.smallest("INV"))
        assert len(rec.events) == 1


class TestVirtualResize:
    def test_virtual_resize_skips_analyzers(self, library):
        from repro.netlist import NetlistListener

        class Physical(Recorder):
            is_physical_view = True

        nl = Netlist()
        c = nl.add_cell("u1", library.smallest("INV"))
        analyzer, image = Recorder(), Physical()
        nl.add_listener(analyzer)
        nl.add_listener(image)
        nl.resize_cell(c, library.size("INV", 4.0), virtual=True)
        assert analyzer.events == []
        assert image.events == [("cell_resized", "u1", 1.0)]
        # the cell itself really changed
        assert c.size.x == 4.0

    def test_actual_resize_reaches_everyone(self, library):
        class Physical(Recorder):
            is_physical_view = True

        nl = Netlist()
        c = nl.add_cell("u1", library.smallest("INV"))
        analyzer, image = Recorder(), Physical()
        nl.add_listener(analyzer)
        nl.add_listener(image)
        nl.resize_cell(c, library.size("INV", 4.0))
        assert analyzer.events == [("cell_resized", "u1", 1.0)]
        assert image.events == [("cell_resized", "u1", 1.0)]
