import io

import pytest

from repro.geometry import Point
from repro.netlist import Netlist
from repro.netlist.verilog import (
    read_placement,
    read_verilog,
    write_placement,
    write_verilog,
)
from repro.workloads import random_logic


def roundtrip(netlist, library):
    buf = io.StringIO()
    write_verilog(netlist, buf)
    buf.seek(0)
    return read_verilog(buf, library, name=netlist.name)


class TestVerilogRoundtrip:
    def test_structure_preserved(self, library):
        nl = random_logic("rt", library, 80, n_inputs=6, n_outputs=6,
                          seed=3)
        back = roundtrip(nl, library)
        back.check_consistency()
        assert back.num_cells == nl.num_cells
        assert back.num_nets == nl.num_nets
        for cell in nl.logic_cells():
            twin = back.cell(cell.name)
            assert twin.size.name == cell.size.name
            for pin in cell.pins():
                net = pin.net.name if pin.net else None
                twin_net = twin.pin(pin.name).net
                assert (twin_net.name if twin_net else None) == net

    def test_ports_preserved(self, library):
        nl = random_logic("rt", library, 40, seed=5)
        back = roundtrip(nl, library)
        assert {p.name for p in back.ports()} == \
            {p.name for p in nl.ports()}
        # port connectivity came back through the assigns
        for port in nl.ports():
            orig = port.pins()[0].net
            twin = back.cell(port.name).pins()[0].net
            assert (twin.name if twin else None) == \
                (orig.name if orig else None)

    def test_timing_identical_after_roundtrip(self, library):
        from repro.workloads import make_design
        nl = random_logic("rt", library, 60, seed=7)
        back = roundtrip(nl, library)
        d1 = make_design(nl, library, cycle_time=500.0)
        d2 = make_design(back, library, cycle_time=500.0)
        # unplaced + gain mode: pure netlist timing must agree
        assert d1.worst_slack() == pytest.approx(d2.worst_slack())

    def test_escaped_names(self, library):
        nl = Netlist("weird")
        c = nl.add_cell("u/with/slashes", library.smallest("INV"))
        n = nl.add_net("net.with.dots")
        nl.connect(c.pin("Z"), n)
        back = roundtrip(nl, library)
        assert back.has_cell("u/with/slashes")
        assert back.has_net("net.with.dots")

    def test_unknown_cell_rejected(self, library):
        src = io.StringIO(
            "module m (a);\n  input a;\n  wire n1;\n"
            "  BOGUS_X1 u1 (.A(n1));\nendmodule\n")
        with pytest.raises(ValueError):
            read_verilog(src, library)


class TestPlacementFile:
    def test_roundtrip(self, library):
        nl = random_logic("pl", library, 30, seed=2)
        for i, cell in enumerate(nl.cells()):
            nl.move_cell(cell, Point(float(i), float(i * 2)))
        buf = io.StringIO()
        write_placement(nl, buf)
        # strip placement, re-apply
        positions = {c.name: c.position for c in nl.cells()}
        for cell in nl.cells():
            nl.move_cell(cell, None)
        buf.seek(0)
        placed = read_placement(nl, buf)
        assert placed == len(positions)
        for cell in nl.cells():
            assert cell.position == positions[cell.name]

    def test_fixed_flag(self, library):
        nl = Netlist()
        c = nl.add_cell("u1", library.smallest("INV"),
                        position=Point(1, 2))
        buf = io.StringIO("u1 5 6 FIXED\n")
        read_placement(nl, buf)
        assert c.position == Point(5, 6)
        assert c.fixed

    def test_unknown_cells_skipped(self, library):
        nl = Netlist()
        nl.add_cell("u1", library.smallest("INV"))
        buf = io.StringIO("ghost 1 2 PLACED\nu1 3 4 PLACED\n")
        assert read_placement(nl, buf) == 1

    def test_malformed_line(self, library):
        nl = Netlist()
        with pytest.raises(ValueError):
            read_placement(nl, io.StringIO("only two\n"))
