import pytest

from repro.geometry import Point
from repro.netlist import Netlist, ops


@pytest.fixture
def fanout4(library):
    """One INV driving four NAND2 sinks."""
    nl = Netlist("fanout")
    drv = nl.add_cell("drv", library.size("INV", 2.0), position=Point(0, 0))
    src = nl.add_net("src")
    inp = nl.add_input_port("in0", Point(0, 0))
    innet = nl.add_net("innet")
    nl.connect(inp.pin("Z"), innet)
    nl.connect(drv.pin("A"), innet)
    nl.connect(drv.pin("Z"), src)
    sinks = []
    for i in range(4):
        s = nl.add_cell("s%d" % i, library.smallest("NAND2"),
                        position=Point(10 * (i + 1), 0))
        nl.connect(s.pin("A"), src)
        sinks.append(s)
    return nl, drv, src, sinks


class TestClone:
    def test_clone_splits_sinks(self, fanout4):
        nl, drv, src, sinks = fanout4
        moved = [sinks[2].pin("A"), sinks[3].pin("A")]
        clone = ops.clone_cell(nl, drv, moved, position=Point(30, 0))
        assert clone.type_name == "INV"
        assert clone.position == Point(30, 0)
        assert {p.cell.name for p in src.sinks()} == {"s0", "s1"}
        clone_net = clone.output_pin().net
        assert {p.cell.name for p in clone_net.sinks()} == {"s2", "s3"}
        # clone shares the original's input net
        assert clone.pin("A").net is drv.pin("A").net
        nl.check_consistency()

    def test_clone_requires_sinks_on_net(self, fanout4, library):
        nl, drv, src, sinks = fanout4
        other = nl.add_cell("x", library.smallest("INV"))
        with pytest.raises(ValueError):
            ops.clone_cell(nl, drv, [other.pin("A")])

    def test_clone_unconnected_output_raises(self, fanout4, library):
        nl, _, _, _ = fanout4
        lone = nl.add_cell("lone", library.smallest("INV"))
        with pytest.raises(ValueError):
            ops.clone_cell(nl, lone, [])

    def test_unclone_restores(self, fanout4):
        nl, drv, src, sinks = fanout4
        before = {p.full_name for p in src.sinks()}
        clone = ops.clone_cell(nl, drv, [sinks[3].pin("A")])
        ops.unclone_cell(nl, clone, drv)
        assert {p.full_name for p in src.sinks()} == before
        assert not any(c.name.startswith("drv_cln") for c in nl.cells())
        nl.check_consistency()


class TestBuffer:
    def test_insert_buffer(self, fanout4):
        nl, drv, src, sinks = fanout4
        buffered = [s.pin("A") for s in sinks[1:]]
        buf = ops.insert_buffer(nl, _lib(nl), src, buffered,
                                position=Point(20, 0), buffer_x=4.0)
        assert buf.type_name == "BUF"
        assert buf.size.x == 4.0
        assert buf.pin("A").net is src
        assert {p.cell.name for p in src.sinks()} == {"s0", buf.name}
        out_net = buf.output_pin().net
        assert {p.cell.name for p in out_net.sinks()} == {"s1", "s2", "s3"}
        nl.check_consistency()

    def test_buffer_undriven_net_raises(self, fanout4):
        nl, _, _, _ = fanout4
        dead = nl.add_net("dead")
        with pytest.raises(ValueError):
            ops.insert_buffer(nl, _lib(nl), dead, [])

    def test_buffer_driver_pin_rejected(self, fanout4):
        nl, drv, src, _ = fanout4
        with pytest.raises(ValueError):
            ops.insert_buffer(nl, _lib(nl), src, [drv.pin("Z")])

    def test_remove_buffer_roundtrip(self, fanout4):
        nl, drv, src, sinks = fanout4
        before_sinks = {p.full_name for p in src.sinks()}
        before_cells = nl.num_cells
        buf = ops.insert_buffer(nl, _lib(nl), src,
                                [s.pin("A") for s in sinks[2:]])
        ops.remove_buffer(nl, buf)
        assert {p.full_name for p in src.sinks()} == before_sinks
        assert nl.num_cells == before_cells
        nl.check_consistency()

    def test_remove_non_buffer_raises(self, fanout4):
        nl, drv, _, _ = fanout4
        with pytest.raises(ValueError):
            ops.remove_buffer(nl, drv)


class TestSwapPins:
    def test_swap_and_inverse(self, fanout4, library):
        nl, _, src, sinks = fanout4
        g = sinks[0]
        other = nl.add_net("other")
        nl.connect(g.pin("B"), other)
        ops.swap_pins(nl, g, "A", "B")
        assert g.pin("A").net is other
        assert g.pin("B").net is src
        ops.swap_pins(nl, g, "A", "B")
        assert g.pin("A").net is src
        assert g.pin("B").net is other
        nl.check_consistency()

    def test_swap_with_floating_pin(self, fanout4):
        nl, _, src, sinks = fanout4
        g = sinks[0]  # B floating
        ops.swap_pins(nl, g, "A", "B")
        assert g.pin("A").net is None
        assert g.pin("B").net is src

    def test_non_swappable_raises(self, library):
        nl = Netlist()
        m = nl.add_cell("m", library.smallest("MUX2"))
        with pytest.raises(ValueError):
            ops.swap_pins(nl, m, "D0", "S")


class TestDecompose:
    def test_nand3_decomposition(self, library):
        nl = Netlist()
        g = nl.add_cell("g", library.smallest("NAND3"), position=Point(5, 5))
        nets = {n: nl.add_net(n) for n in ["a", "b", "c", "z"]}
        ins = []
        for name in ["a", "b", "c"]:
            p = nl.add_input_port("p_" + name, Point(0, 0))
            nl.connect(p.pin("Z"), nets[name])
        nl.connect(g.pin("A"), nets["a"])
        nl.connect(g.pin("B"), nets["b"])
        nl.connect(g.pin("C"), nets["c"])
        nl.connect(g.pin("Z"), nets["z"])
        assert ops.can_decompose(g)
        front, back = ops.decompose_cell(nl, library, g)
        assert front.type_name == "AND2"
        assert back.type_name == "NAND2"
        assert not nl.has_cell("g")
        assert back.output_pin().net is nets["z"]
        assert front.pin("A").net is nets["a"]
        assert front.pin("B").net is nets["b"]
        # back gets mid on first pin and C on second
        assert back.pin("A").net is front.output_pin().net
        assert back.pin("B").net is nets["c"]
        # new cells inherit position
        assert front.position == Point(5, 5)
        nl.check_consistency()

    def test_and2_decomposition(self, library):
        nl = Netlist()
        g = nl.add_cell("g", library.smallest("AND2"))
        a, b, z = nl.add_net("a"), nl.add_net("b"), nl.add_net("z")
        nl.connect(g.pin("A"), a)
        nl.connect(g.pin("B"), b)
        nl.connect(g.pin("Z"), z)
        front, back = ops.decompose_cell(nl, library, g)
        assert front.type_name == "NAND2"
        assert back.type_name == "INV"
        assert back.output_pin().net is z

    def test_no_rule_raises(self, library):
        nl = Netlist()
        g = nl.add_cell("g", library.smallest("XOR2"))
        assert not ops.can_decompose(g)
        with pytest.raises(ValueError):
            ops.decompose_cell(nl, library, g)


def _lib(nl):
    from repro.library import default_library
    return default_library()
