import pytest

from repro.geometry import Point
from repro.netlist import Netlist


@pytest.fixture
def net3(library):
    """INV -> NAND2 with one input port and one output port."""
    nl = Netlist("t")
    a = nl.add_input_port("a", Point(0, 0))
    inv = nl.add_cell("inv0", library.smallest("INV"))
    nand = nl.add_cell("nand0", library.smallest("NAND2"))
    out = nl.add_output_port("z", Point(100, 0))
    n1 = nl.add_net("n1")
    n2 = nl.add_net("n2")
    n3 = nl.add_net("n3")
    nl.connect(a.pin("Z"), n1)
    nl.connect(inv.pin("A"), n1)
    nl.connect(inv.pin("Z"), n2)
    nl.connect(nand.pin("A"), n2)
    nl.connect(nand.pin("B"), n1)
    nl.connect(nand.pin("Z"), n3)
    nl.connect(out.pin("A"), n3)
    return nl


class TestCellManagement:
    def test_add_and_lookup(self, library):
        nl = Netlist()
        c = nl.add_cell("u1", library.smallest("INV"))
        assert nl.cell("u1") is c
        assert nl.has_cell("u1")
        assert nl.num_cells == 1
        assert c.netlist is nl

    def test_duplicate_cell_raises(self, library):
        nl = Netlist()
        nl.add_cell("u1", library.smallest("INV"))
        with pytest.raises(ValueError):
            nl.add_cell("u1", library.smallest("INV"))

    def test_remove_cell_disconnects(self, net3):
        inv = net3.cell("inv0")
        n1 = net3.net("n1")
        net3.remove_cell(inv)
        assert not net3.has_cell("inv0")
        assert all(p.cell is not inv for p in n1.pins())

    def test_remove_foreign_cell_raises(self, library):
        nl1, nl2 = Netlist(), Netlist()
        c = nl1.add_cell("u1", library.smallest("INV"))
        with pytest.raises(KeyError):
            nl2.remove_cell(c)

    def test_ports_classified(self, net3):
        assert {c.name for c in net3.ports()} == {"a", "z"}
        assert {c.name for c in net3.logic_cells()} == {"inv0", "nand0"}
        assert net3.cell("a").fixed
        assert not net3.cell("a").is_movable

    def test_unique_name(self, net3):
        n = net3.unique_name("inv")
        assert not net3.has_cell(n)
        assert n != net3.unique_name("inv")


class TestConnectivity:
    def test_driver_and_sinks(self, net3):
        n1 = net3.net("n1")
        assert n1.driver().full_name == "a/Z"
        assert {p.full_name for p in n1.sinks()} == {"inv0/A", "nand0/B"}
        assert n1.degree == 3

    def test_two_drivers_rejected(self, net3, library):
        inv2 = net3.add_cell("inv2", library.smallest("INV"))
        with pytest.raises(ValueError):
            net3.connect(inv2.pin("Z"), net3.net("n1"))

    def test_reconnect_moves_pin(self, net3):
        pin = net3.cell("nand0").pin("B")
        net3.connect(pin, net3.net("n2"))
        assert pin.net.name == "n2"
        assert pin not in net3.net("n1").pins()

    def test_connect_same_net_noop(self, net3):
        pin = net3.cell("inv0").pin("A")
        before = net3.net("n1").degree
        net3.connect(pin, net3.net("n1"))
        assert net3.net("n1").degree == before

    def test_disconnect_floating_noop(self, net3, library):
        c = net3.add_cell("u9", library.smallest("INV"))
        net3.disconnect(c.pin("A"))  # no exception

    def test_remove_net_disconnects(self, net3):
        n2 = net3.net("n2")
        pins = n2.pins()
        net3.remove_net(n2)
        assert not net3.has_net("n2")
        assert all(p.net is None for p in pins)

    def test_consistency_check_passes(self, net3):
        net3.check_consistency()

    def test_cells_on_net_unique(self, net3, library):
        # connect both NAND inputs to the same net: cell listed once
        net3.connect(net3.cell("nand0").pin("B"), net3.net("n2"))
        names = [c.name for c in net3.net("n2").cells()]
        assert names.count("nand0") == 1


class TestPhysicalEdits:
    def test_move_cell(self, net3):
        inv = net3.cell("inv0")
        net3.move_cell(inv, Point(10, 20))
        assert inv.position == Point(10, 20)
        assert inv.placed

    def test_unplaced_cell(self, net3):
        inv = net3.cell("inv0")
        assert not inv.placed
        with pytest.raises(ValueError):
            inv.require_position()

    def test_outline(self, net3):
        inv = net3.cell("inv0")
        net3.move_cell(inv, Point(0, 0))
        box = inv.outline()
        assert box.area == pytest.approx(inv.area)

    def test_resize_same_type(self, net3, library):
        inv = net3.cell("inv0")
        net3.resize_cell(inv, library.size("INV", 4.0))
        assert inv.size.x == 4.0

    def test_resize_cross_type_rejected(self, net3, library):
        with pytest.raises(ValueError):
            net3.resize_cell(net3.cell("inv0"), library.smallest("NAND2"))

    def test_pin_load(self, net3, library):
        n2 = net3.net("n2")
        expected = library.smallest("NAND2").input_cap("A")
        assert n2.pin_load() == pytest.approx(expected)

    def test_hpwl(self, net3):
        net3.move_cell(net3.cell("inv0"), Point(10, 10))
        n1 = net3.net("n1")  # a@(0,0), inv@(10,10), nand unplaced
        assert n1.hpwl() == pytest.approx(20)

    def test_total_cell_area_excludes_ports(self, net3, library):
        expected = (library.smallest("INV").area
                    + library.smallest("NAND2").area)
        assert net3.total_cell_area() == pytest.approx(expected)
