"""Property tests: netlist consistency survives arbitrary op sequences,
and invertible ops really invert."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Point
from repro.netlist import Netlist, ops
from repro.workloads import random_logic

op_sequences = st.lists(
    st.tuples(st.sampled_from(["buffer", "unbuffer", "clone", "unclone",
                               "swap", "decompose", "remove"]),
              st.integers(0, 10_000)),
    min_size=1, max_size=15,
)


class TestOpSequences:
    @given(op_sequences)
    @settings(max_examples=30, deadline=None)
    def test_consistency_always_holds(self, library, sequence):
        nl = random_logic("p", library, 40, n_inputs=5, n_outputs=5,
                          seed=11)
        inserted_buffers = []
        clones = []  # (clone, original)
        for kind, a in sequence:
            nets = [n for n in nl.nets() if n.driver() is not None
                    and n.sinks()]
            if not nets:
                break
            net = nets[a % len(nets)]
            if kind == "buffer":
                buf = ops.insert_buffer(nl, library, net,
                                        net.sinks()[:2],
                                        position=Point(1, 1))
                inserted_buffers.append(buf)
            elif kind == "unbuffer" and inserted_buffers:
                buf = inserted_buffers.pop()
                if nl.has_cell(buf.name):
                    ops.remove_buffer(nl, buf)
            elif kind == "clone":
                driver = net.driver()
                if driver is not None and not driver.cell.is_port \
                        and len(net.sinks()) >= 2:
                    clone = ops.clone_cell(nl, driver.cell,
                                           net.sinks()[:1])
                    clones.append((clone, driver.cell))
            elif kind == "unclone" and clones:
                clone, original = clones.pop()
                if nl.has_cell(clone.name) and nl.has_cell(original.name):
                    ops.unclone_cell(nl, clone, original)
            elif kind == "swap":
                cells = [c for c in nl.logic_cells()
                         if c.gate_type.swap_groups()]
                if cells:
                    cell = cells[a % len(cells)]
                    pins = list(cell.gate_type.swap_groups().values())[0]
                    ops.swap_pins(nl, cell, pins[0].name, pins[1].name)
            elif kind == "decompose":
                cells = [c for c in nl.logic_cells()
                         if ops.can_decompose(c)]
                if cells:
                    ops.decompose_cell(nl, library, cells[a % len(cells)])
            elif kind == "remove":
                cells = [c for c in nl.logic_cells()
                         if not c.is_sequential]
                if cells:
                    victim = cells[a % len(cells)]
                    # never leave a driven net with two drivers later
                    nl.remove_cell(victim)
            nl.check_consistency()
        nl.check_consistency()

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_buffer_roundtrip_preserves_connectivity(self, library, a):
        nl = random_logic("p", library, 30, seed=9)
        nets = [n for n in nl.nets()
                if n.driver() is not None and len(n.sinks()) >= 2]
        net = nets[a % len(nets)]
        snapshot = {p.full_name for p in net.sinks()}
        buf = ops.insert_buffer(nl, library, net, net.sinks()[:2],
                                position=Point(0, 0))
        ops.remove_buffer(nl, buf)
        assert {p.full_name for p in net.sinks()} == snapshot
        nl.check_consistency()

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_clone_roundtrip(self, library, a):
        nl = random_logic("p", library, 30, seed=9)
        nets = [n for n in nl.nets()
                if n.driver() is not None and len(n.sinks()) >= 2
                and not n.driver().cell.is_port]
        if not nets:
            pytest.skip("no clonable nets")
        net = nets[a % len(nets)]
        driver = net.driver().cell
        sinks_before = {p.full_name for p in net.sinks()}
        cells_before = nl.num_cells
        clone = ops.clone_cell(nl, driver, net.sinks()[:1])
        ops.unclone_cell(nl, clone, driver)
        assert {p.full_name for p in net.sinks()} == sinks_before
        assert nl.num_cells == cells_before
        nl.check_consistency()
