import pytest

from repro.geometry import Point
from repro.netlist import Netlist


class TestNetlistMisc:
    def test_unique_name_avoids_nets_too(self, library):
        nl = Netlist()
        nl.add_net("x_0")
        name = nl.unique_name("x")
        assert name != "x_0"
        assert not nl.has_net(name)

    def test_total_hpwl(self, library):
        nl = Netlist()
        a = nl.add_cell("a", library.smallest("INV"), position=Point(0, 0))
        b = nl.add_cell("b", library.smallest("INV"),
                        position=Point(10, 5))
        n1 = nl.add_net("n1")
        nl.connect(a.pin("Z"), n1)
        nl.connect(b.pin("A"), n1)
        n2 = nl.add_net("n2")  # floating net contributes 0
        assert nl.total_hpwl() == pytest.approx(15.0)

    def test_move_to_none_unplaces(self, library):
        nl = Netlist()
        a = nl.add_cell("a", library.smallest("INV"), position=Point(1, 1))
        nl.move_cell(a, None)
        assert not a.placed

    def test_remove_net_of_other_netlist(self, library):
        nl1, nl2 = Netlist(), Netlist()
        n = nl1.add_net("n")
        with pytest.raises(KeyError):
            nl2.remove_net(n)

    def test_consistency_detects_double_driver(self, library):
        nl = Netlist()
        a = nl.add_cell("a", library.smallest("INV"))
        b = nl.add_cell("b", library.smallest("INV"))
        n = nl.add_net("n")
        nl.connect(a.pin("Z"), n)
        # corrupt behind the API's back
        n._pins.append(b.pin("Z"))
        b.pin("Z").net = n
        with pytest.raises(AssertionError):
            nl.check_consistency()

    def test_sequential_cells_listing(self, library):
        nl = Netlist()
        nl.add_cell("ff", library.smallest("DFF"))
        nl.add_cell("g", library.smallest("NAND2"))
        assert [c.name for c in nl.sequential_cells()] == ["ff"]

    def test_cell_outline_requires_position(self, library):
        nl = Netlist()
        c = nl.add_cell("c", library.smallest("INV"))
        with pytest.raises(ValueError):
            c.outline()

    def test_port_pin_positions_track_cell(self, library):
        nl = Netlist()
        p = nl.add_input_port("p", Point(3, 4))
        assert p.pin("Z").position == Point(3, 4)
