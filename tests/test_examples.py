"""The examples must at least parse, import cleanly, and expose main().

(Full example runs take minutes; the benchmark suite and the examples
themselves cover behaviour — this guards against bit-rot.)
"""

import ast
import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    top_level = {node.name for node in tree.body
                 if isinstance(node, ast.FunctionDef)}
    assert "main" in top_level, "%s has no main()" % path.name
    # a __main__ guard so importing never runs the flow
    assert any(isinstance(node, ast.If) for node in tree.body), \
        "%s has no __main__ guard" % path.name


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_resolve(path):
    """Importing the module must not raise (and must not run main)."""
    spec = importlib.util.spec_from_file_location(
        "example_" + path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(module.main)


def test_expected_example_set():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "timing_closure", "strong_moves",
            "clock_scan_flow", "custom_transform",
            "synthesis_to_placement", "analyzer_suite"} <= names
