import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, Rect

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


class TestRectBasics:
    def test_dimensions(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.area == 8
        assert r.half_perimeter() == 6
        assert r.center == Point(2, 1)

    def test_degenerate_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)
        with pytest.raises(ValueError):
            Rect(0, 1, 1, 0)

    def test_zero_area_ok(self):
        r = Rect(1, 1, 1, 1)
        assert r.area == 0
        assert r.contains(Point(1, 1))

    def test_contains(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(Point(5, 5))
        assert r.contains(Point(0, 0))  # boundary
        assert not r.contains(Point(11, 5))

    def test_contains_rect(self):
        assert Rect(0, 0, 10, 10).contains_rect(Rect(1, 1, 9, 9))
        assert not Rect(0, 0, 10, 10).contains_rect(Rect(5, 5, 11, 9))

    def test_intersection(self):
        a = Rect(0, 0, 4, 4)
        b = Rect(2, 2, 6, 6)
        assert a.intersection(b) == Rect(2, 2, 4, 4)
        assert a.intersection(Rect(5, 5, 6, 6)) is None

    def test_touching_rects_intersect(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 0, 2, 1))

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(2, 2, 3, 3)) == Rect(0, 0, 3, 3)

    def test_expanded(self):
        assert Rect(1, 1, 2, 2).expanded(1) == Rect(0, 0, 3, 3)

    def test_clamp(self):
        r = Rect(0, 0, 10, 10)
        assert r.clamp(Point(-5, 5)) == Point(0, 5)
        assert r.clamp(Point(3, 20)) == Point(3, 10)
        assert r.clamp(Point(4, 4)) == Point(4, 4)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 3, 4)

    def test_bounding(self):
        box = Rect.bounding([Point(1, 5), Point(-2, 0), Point(4, 2)])
        assert box == Rect(-2, 0, 4, 5)

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.bounding([])


class TestRectProperties:
    @given(rects(), rects())
    def test_intersection_within_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_rect(inter)
            assert b.contains_rect(inter)

    @given(rects(), rects())
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a)
        assert u.contains_rect(b)

    @given(rects(), st.builds(Point, coords, coords))
    def test_clamp_inside(self, r, p):
        assert r.contains(r.clamp(p))

    @given(rects(), rects())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)
