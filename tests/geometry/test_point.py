import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Point, manhattan

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
points = st.builds(Point, coords, coords)


class TestPointBasics:
    def test_add(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_sub(self):
        assert Point(5, 5) - Point(2, 3) == Point(3, 2)

    def test_scaled(self):
        assert Point(2, -4).scaled(0.5) == Point(1, -2)

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_manhattan(self):
        assert Point(0, 0).manhattan_to(Point(3, 4)) == 7
        assert manhattan(Point(1, 1), Point(1, 1)) == 0

    def test_euclidean(self):
        assert Point(0, 0).euclidean_to(Point(3, 4)) == pytest.approx(5.0)

    def test_points_are_hashable_and_orderable(self):
        assert len({Point(0, 0), Point(0, 0), Point(1, 0)}) == 2
        assert Point(0, 1) < Point(1, 0)

    def test_frozen(self):
        with pytest.raises(Exception):
            Point(0, 0).x = 5


class TestPointProperties:
    @given(points, points)
    def test_manhattan_symmetric(self, a, b):
        assert a.manhattan_to(b) == b.manhattan_to(a)

    @given(points, points, points)
    def test_manhattan_triangle_inequality(self, a, b, c):
        assert a.manhattan_to(c) <= a.manhattan_to(b) + b.manhattan_to(c) + 1e-6

    @given(points)
    def test_manhattan_identity(self, p):
        assert p.manhattan_to(p) == 0

    @given(points, points)
    def test_euclidean_le_manhattan(self, a, b):
        assert a.euclidean_to(b) <= a.manhattan_to(b) + 1e-9
