import pytest

from repro.placement import Partitioner
from repro.routing import GlobalRouter
from repro.transforms import CongestionRelief
from repro.workloads import ProcessorParams, make_design, processor_partition


@pytest.fixture
def congested(library):
    params = ProcessorParams(n_stages=2, regs_per_stage=10,
                             gates_per_stage=160, seed=17)
    netlist = processor_partition(params, library)
    design = make_design(netlist, library, cycle_time=1500.0)
    Partitioner(design, seed=2).run_to(100)
    GlobalRouter(design).route()  # publish wire usage to bins
    return design


class TestCongestionRelief:
    def test_runs_and_keeps_consistency(self, congested):
        result = CongestionRelief(hotspot_threshold=0.5).run(congested)
        assert result.attempted >= 0
        congested.check()

    def test_never_hurts_timing_meaningfully(self, congested):
        before = congested.timing.worst_slack()
        CongestionRelief(hotspot_threshold=0.5).run(congested)
        assert congested.timing.worst_slack() >= before - 2.0

    def test_relieves_pin_demand_in_hotspots(self, congested):
        tr = CongestionRelief(hotspot_threshold=0.5)
        hotspots = [b for b in congested.grid.bins()
                    if b.congestion > 0.5]
        if not hotspots:
            pytest.skip("design routed without hotspots")
        before = {(b.ix, b.iy): tr._pin_demand(b) for b in hotspots}
        result = tr.run(congested)
        if result.accepted:
            after = {(b.ix, b.iy): tr._pin_demand(b) for b in hotspots}
            assert sum(after.values()) <= sum(before.values())

    def test_no_hotspots_no_action(self, congested):
        result = CongestionRelief(hotspot_threshold=1e9).run(congested)
        assert result.attempted == 0
