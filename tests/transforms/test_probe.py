import pytest

from repro.geometry import Point, Rect
from repro.netlist import Netlist
from repro.timing import DelayMode, TimingConstraints
from repro.transforms.base import TimingProbe, Transform, TransformResult
from repro.design import Design


@pytest.fixture
def probe_design(library):
    nl = Netlist()
    pi = nl.add_input_port("pi", Point(0, 0))
    po = nl.add_output_port("po", Point(60, 0))
    inv = nl.add_cell("inv", library.smallest("INV"), position=Point(30, 0))
    n0, n1 = nl.add_net("n0"), nl.add_net("n1")
    nl.connect(pi.pin("Z"), n0)
    nl.connect(inv.pin("A"), n0)
    nl.connect(inv.pin("Z"), n1)
    nl.connect(po.pin("A"), n1)
    return Design(nl, library, Rect(0, 0, 64, 16),
                  TimingConstraints(cycle_time=10.0),
                  mode=DelayMode.LOAD)


class TestTimingProbe:
    def test_improved_on_real_gain(self, probe_design):
        d = probe_design
        probe = TimingProbe(d)
        # upsizing the only inverter improves the single path
        d.netlist.resize_cell(d.netlist.cell("inv"),
                              d.library.size("INV", 8.0))
        assert probe.improved()
        assert probe.not_degraded()

    def test_not_improved_when_nothing_changes(self, probe_design):
        probe = TimingProbe(probe_design)
        assert not probe.improved()
        assert probe.not_degraded()

    def test_degradation_detected(self, probe_design):
        d = probe_design
        probe = TimingProbe(d)
        # dragging the inverter far away lengthens both wires
        d.netlist.move_cell(d.netlist.cell("inv"), Point(0, 15))
        assert not probe.improved()
        # may or may not degrade the *worst* slack depending on load;
        # the probe must at least be internally consistent:
        if not probe.not_degraded():
            assert d.timing.worst_slack() < probe.worst_before

    def test_margin_blocks_marginal_wins(self, probe_design):
        d = probe_design
        probe = TimingProbe(d, margin=1e9)
        d.netlist.resize_cell(d.netlist.cell("inv"),
                              d.library.size("INV", 8.0))
        assert not probe.improved()


class TestTransformBase:
    def test_result_counters(self):
        r = TransformResult("t", accepted=3, rejected=2)
        assert r.attempted == 5
        assert "3/5" in str(r)

    def test_base_run_abstract(self, probe_design):
        with pytest.raises(NotImplementedError):
            Transform().run(probe_design)
