import pytest

from repro.transforms import LogicalEffortNetWeight, WeightMode


class TestLogicalEffortNetWeight:
    def test_critical_nets_get_heavier(self, placed_design):
        d = placed_design
        tr = LogicalEffortNetWeight(mode=WeightMode.ABSOLUTE)
        result = tr.run(d)
        assert result.accepted > 0
        boosted = [n for n in d.netlist.nets() if n.weight > n.base_weight]
        assert boosted
        # every boosted net is near-critical
        worst = d.timing.worst_slack()
        window = tr.slack_margin_fraction * d.constraints.cycle_time
        for n in boosted:
            assert d.timing.net_slack(n) <= worst + window + 1e-6

    def test_noncritical_reset_in_absolute_mode(self, placed_design):
        d = placed_design
        victim = next(n for n in d.netlist.nets()
                      if not n.is_clock and not n.is_scan
                      and d.timing.net_slack(n) > d.timing.worst_slack()
                      + 0.5 * d.constraints.cycle_time)
        victim.weight = 5.0
        LogicalEffortNetWeight(mode=WeightMode.ABSOLUTE).run(d)
        assert victim.weight == victim.base_weight

    def test_incremental_mode_smooths(self, placed_design):
        d = placed_design
        tr_abs = LogicalEffortNetWeight(mode=WeightMode.ABSOLUTE)
        tr_inc = LogicalEffortNetWeight(mode=WeightMode.INCREMENTAL)
        victim = next(n for n in d.netlist.nets()
                      if not n.is_clock and not n.is_scan
                      and d.timing.net_slack(n) > d.timing.worst_slack()
                      + 0.5 * d.constraints.cycle_time)
        victim.weight = 5.0
        tr_inc.run(d)
        # incremental decay: halfway to base, not straight to base
        assert victim.base_weight < victim.weight < 5.0

    def test_effort_scales_weight(self, placed_design):
        d = placed_design
        tr = LogicalEffortNetWeight()
        # find two nets, one driven by INV, one by XOR-ish high effort
        for net in d.netlist.nets():
            drv = net.driver()
            if drv is None or drv.cell.is_port:
                continue
            low = tr.effort_factor(d, net)
            break
        inv_net = next(n for n in d.netlist.nets() if n.driver() is not None
                       and n.driver().cell.type_name == "INV")
        assert tr.effort_factor(d, inv_net) == pytest.approx(1.0 / 4.0)

    def test_masked_nets_untouched(self, placed_design):
        d = placed_design
        net = next((n for n in d.netlist.nets() if n.is_clock), None)
        if net is None:
            pytest.skip("no clock net")
        net.weight = 0.0
        LogicalEffortNetWeight().run(d)
        assert net.weight == 0.0

    def test_slack_weight_bounds(self, placed_design):
        d = placed_design
        tr = LogicalEffortNetWeight()
        for net in list(d.netlist.nets())[:50]:
            w = tr.compute_slack_weight(d, net)
            assert 0.0 <= w <= 1.0

    def test_weights_bounded_by_max_boost(self, placed_design):
        d = placed_design
        tr = LogicalEffortNetWeight(mode=WeightMode.ABSOLUTE, max_boost=8.0)
        tr.run(d)
        for n in d.netlist.nets():
            assert n.weight <= n.base_weight * 8.0 + 1e-9
