import pytest

from repro.geometry import Point, Rect
from repro.netlist import Netlist, ops
from repro.timing import DelayMode, TimingConstraints
from repro.transforms import RedundancyCleanup
from repro.design import Design


@pytest.fixture
def with_useless_buffer(library):
    """A buffer inserted where it no longer helps anything."""
    nl = Netlist()
    pi = nl.add_input_port("pi")
    po = nl.add_output_port("po")
    drv = nl.add_cell("drv", library.size("INV", 4.0))
    snk = nl.add_cell("snk", library.smallest("INV"))
    n0, n1, n2 = (nl.add_net("n%d" % i) for i in range(3))
    nl.connect(pi.pin("Z"), n0)
    nl.connect(drv.pin("A"), n0)
    nl.connect(drv.pin("Z"), n1)
    nl.connect(snk.pin("A"), n1)
    nl.connect(snk.pin("Z"), n2)
    nl.connect(po.pin("A"), n2)
    d = Design(nl, library, Rect(0, 0, 64, 64),
               TimingConstraints(cycle_time=200.0),
               mode=DelayMode.LOAD)
    for c in nl.cells():
        nl.move_cell(c, Point(32, 32))
    buf = ops.insert_buffer(nl, library, n1, [snk.pin("A")],
                            position=Point(32, 32))
    return d, buf


class TestRedundancyCleanup:
    def test_removes_useless_buffer(self, with_useless_buffer):
        d, buf = with_useless_buffer
        name = buf.name
        result = RedundancyCleanup().run(d)
        assert result.accepted >= 1
        assert not d.netlist.has_cell(name)
        d.check()

    def test_keeps_load_bearing_buffer(self, library):
        """A buffer shielding a weak driver from heavy load stays."""
        nl = Netlist()
        pi = nl.add_input_port("pi")
        drv = nl.add_cell("drv", library.smallest("INV"))
        n0, n1 = nl.add_net("n0"), nl.add_net("n1")
        nl.connect(pi.pin("Z"), n0)
        nl.connect(drv.pin("A"), n0)
        nl.connect(drv.pin("Z"), n1)
        sinks = []
        for i in range(6):
            s = nl.add_cell("s%d" % i, library.largest("NAND2"))
            nl.connect(s.pin("A"), n1)
            out = nl.add_net("o%d" % i)
            nl.connect(s.pin("Z"), out)
            po = nl.add_output_port("po%d" % i)
            nl.connect(po.pin("A"), out)
            sinks.append(s)
        d = Design(nl, library, Rect(0, 0, 64, 64),
                   TimingConstraints(cycle_time=12.0),
                   mode=DelayMode.LOAD)
        for c in nl.cells():
            nl.move_cell(c, Point(32, 32))
        buf = ops.insert_buffer(nl, library, n1,
                                [s.pin("A") for s in sinks[1:]],
                                position=Point(32, 32), buffer_x=8.0)
        # removing this buffer would pile 5 big loads back on drv
        worst_with = d.timing.worst_slack()
        result = RedundancyCleanup().run(d)
        # the shield survives (possibly resurrected under a new name)
        assert any(c.type_name == "BUF" for c in d.netlist.cells())
        assert d.timing.worst_slack() >= worst_with - 1e-6

    def test_removes_useless_clone(self, library):
        nl = Netlist()
        pi = nl.add_input_port("pi")
        drv = nl.add_cell("drv", library.size("INV", 8.0))
        n0, n1 = nl.add_net("n0"), nl.add_net("n1")
        nl.connect(pi.pin("Z"), n0)
        nl.connect(drv.pin("A"), n0)
        nl.connect(drv.pin("Z"), n1)
        sinks = []
        for i in range(2):
            s = nl.add_cell("s%d" % i, library.smallest("INV"))
            nl.connect(s.pin("A"), n1)
            out = nl.add_net("o%d" % i)
            nl.connect(s.pin("Z"), out)
            po = nl.add_output_port("po%d" % i)
            nl.connect(po.pin("A"), out)
            sinks.append(s)
        d = Design(nl, library, Rect(0, 0, 64, 64),
                   TimingConstraints(cycle_time=500.0),
                   mode=DelayMode.LOAD)
        for c in nl.cells():
            nl.move_cell(c, Point(32, 32))
        clone = ops.clone_cell(nl, drv, [sinks[1].pin("A")],
                               position=Point(32, 32))
        cells_before = nl.num_cells
        result = RedundancyCleanup().run(d)
        assert result.accepted >= 1
        assert nl.num_cells == cells_before - 1
        d.check()
