import pytest

from repro.placement import Partitioner, Reflow
from repro.transforms import ClockScanOptimizer
from repro.transforms.sizing import GateSizing
from repro.workloads import ProcessorParams, make_design, processor_partition


@pytest.fixture
def placed_design(library):
    """A placed, clock-optimized, linked (LOAD-mode) design."""
    params = ProcessorParams(n_stages=2, regs_per_stage=10,
                             gates_per_stage=150, seed=5)
    netlist = processor_partition(params, library)
    design = make_design(netlist, library, cycle_time=250.0,
                         with_blockage=False)
    sizing = GateSizing()
    sizing.assign_gains(design)
    part = Partitioner(design, seed=3)
    clock_scan = ClockScanOptimizer(regs_per_buffer=6)
    reflow = Reflow(part)
    while not part.done:
        part.cut()
        reflow.run()
        clock_scan.apply_for_status(design, part.status)
    sizing.link_cells(design)
    design._partitioner = part
    design._clock_scan = clock_scan
    return design
