import pytest

from repro.analysis import PowerAnalyzer
from repro.placement import Partitioner
from repro.transforms import PowerRecovery
from repro.transforms.sizing import GateSizing
from repro.workloads import ProcessorParams, make_design, processor_partition


@pytest.fixture
def relaxed_design(library):
    """A placed design with generous timing (lots of recoverable power)."""
    params = ProcessorParams(n_stages=2, regs_per_stage=8,
                             gates_per_stage=120, seed=19)
    netlist = processor_partition(params, library)
    design = make_design(netlist, library, cycle_time=4000.0)
    GateSizing().assign_gains(design)
    Partitioner(design, seed=2).run_to(100)
    GateSizing().link_cells(design)
    # upsize a few sinks so there is something to recover
    for cell in design.netlist.logic_cells()[:30]:
        if library.has_type(cell.type_name):
            design.netlist.resize_cell(
                cell, library.largest(cell.type_name))
    return design


class TestPowerRecovery:
    def test_reduces_total_power(self, relaxed_design):
        before = PowerAnalyzer(relaxed_design).analyze().total
        result = PowerRecovery().run(relaxed_design)
        after = PowerAnalyzer(relaxed_design).analyze().total
        assert result.accepted > 0
        assert after < before
        assert result.detail["power_saved_uw"] > 0

    def test_timing_not_degraded(self, relaxed_design):
        before = relaxed_design.timing.worst_slack()
        PowerRecovery().run(relaxed_design)
        assert relaxed_design.timing.worst_slack() >= before - 1e-3

    def test_clock_nets_untouched(self, relaxed_design):
        clk_sizes = {c.name: c.size for c in relaxed_design.netlist.cells()
                     if c.is_clock_buffer}
        PowerRecovery().run(relaxed_design)
        for name, size in clk_sizes.items():
            assert relaxed_design.netlist.cell(name).size == size

    def test_consistency(self, relaxed_design):
        PowerRecovery().run(relaxed_design)
        relaxed_design.check()
