import pytest

from repro.geometry import Point, Rect
from repro.netlist import Netlist
from repro.timing import DelayMode, TimingConstraints
from repro.transforms import LocalRemap
from repro.design import Design


@pytest.fixture
def late_nand3(library):
    """NAND3 whose input A arrives much later than B and C."""
    nl = Netlist()
    early1 = nl.add_input_port("e1")
    early2 = nl.add_input_port("e2")
    late_p = nl.add_input_port("lt")
    po = nl.add_output_port("po")
    chain_net = nl.add_net("c0")
    nl.connect(late_p.pin("Z"), chain_net)
    for i in range(4):
        inv = nl.add_cell("inv%d" % i, library.smallest("INV"))
        nl.connect(inv.pin("A"), chain_net)
        chain_net = nl.add_net("c%d" % (i + 1))
        nl.connect(inv.pin("Z"), chain_net)
    e1net, e2net = nl.add_net("e1n"), nl.add_net("e2n")
    nl.connect(early1.pin("Z"), e1net)
    nl.connect(early2.pin("Z"), e2net)
    g = nl.add_cell("g", library.smallest("NAND3"))
    nl.connect(g.pin("A"), chain_net)   # late on slow outer pin
    nl.connect(g.pin("B"), e1net)
    nl.connect(g.pin("C"), e2net)
    gout = nl.add_net("gout")
    nl.connect(g.pin("Z"), gout)
    nl.connect(po.pin("A"), gout)
    d = Design(nl, library, Rect(0, 0, 64, 64),
               TimingConstraints(cycle_time=10.0), mode=DelayMode.LOAD)
    for c in nl.cells():
        nl.move_cell(c, Point(32, 32))
    return d, g


class TestLocalRemap:
    def test_remaps_late_input(self, late_nand3):
        d, g = late_nand3
        before = d.timing.worst_slack()
        result = LocalRemap().run(d)
        assert result.accepted == 1
        assert d.timing.worst_slack() > before
        # the NAND3 is gone, replaced by a two-stage structure
        assert not d.netlist.has_cell("g")
        types = {c.type_name for c in d.netlist.logic_cells()}
        assert "AND2" in types and "NAND2" in types
        d.check()

    def test_rejection_restores_netlist(self, library):
        """All inputs arrive together: decomposing only adds a level,
        so the move must be rejected and fully undone."""
        nl = Netlist()
        ports = [nl.add_input_port("p%d" % i) for i in range(3)]
        po = nl.add_output_port("po")
        g = nl.add_cell("g", library.smallest("NAND3"))
        for port, pin in zip(ports, ("A", "B", "C")):
            net = nl.add_net("n_" + pin)
            nl.connect(port.pin("Z"), net)
            nl.connect(g.pin(pin), net)
        gout = nl.add_net("gout")
        nl.connect(g.pin("Z"), gout)
        nl.connect(po.pin("A"), gout)
        d = Design(nl, library, Rect(0, 0, 64, 64),
                   TimingConstraints(cycle_time=10.0),
                   mode=DelayMode.LOAD)
        for c in nl.cells():
            nl.move_cell(c, Point(32, 32))
        cells_before = d.netlist.num_cells
        nets_before = d.netlist.num_nets
        slack_before = d.timing.worst_slack()
        result = LocalRemap().run(d)
        assert result.accepted == 0
        assert d.netlist.num_cells == cells_before
        assert d.netlist.num_nets == nets_before
        assert d.timing.worst_slack() == pytest.approx(slack_before)
        d.check()

    def test_noop_without_complex_gates(self, library):
        nl = Netlist()
        pi, po = nl.add_input_port("pi"), nl.add_output_port("po")
        inv = nl.add_cell("i", library.smallest("INV"))
        n1, n2 = nl.add_net("n1"), nl.add_net("n2")
        nl.connect(pi.pin("Z"), n1)
        nl.connect(inv.pin("A"), n1)
        nl.connect(inv.pin("Z"), n2)
        nl.connect(po.pin("A"), n2)
        d = Design(nl, library, Rect(0, 0, 32, 32),
                   TimingConstraints(cycle_time=5.0),
                   mode=DelayMode.LOAD)
        for c in nl.cells():
            nl.move_cell(c, Point(16, 16))
        result = LocalRemap().run(d)
        assert result.attempted == 0
