import pytest

from repro.placement import Partitioner, Reflow
from repro.transforms import ClockScanOptimizer
from repro.transforms.clock_scan import (
    _chain_order,
    _geometric_clusters,
    _nearest_neighbor_tour,
    _two_opt,
)
from repro.geometry import Point
from repro.workloads import ProcessorParams, make_design, processor_partition


@pytest.fixture
def seq_design(library):
    params = ProcessorParams(n_stages=2, regs_per_stage=12,
                             gates_per_stage=120, scan_fraction=0.7,
                             seed=11)
    netlist = processor_partition(params, library)
    return make_design(netlist, library, cycle_time=250.0)


def run_flow(design, optimizer):
    part = Partitioner(design, seed=4)
    reflow = Reflow(part)
    while not part.done:
        part.cut()
        reflow.run()
        optimizer.apply_for_status(design, part.status)
    return part


class TestStaging:
    def test_stages_fire_once_in_order(self, seq_design):
        opt = ClockScanOptimizer()
        fired = []
        part = Partitioner(seq_design, seed=4)
        while not part.done:
            part.cut()
            fired.extend(opt.apply_for_status(seq_design, part.status))
        assert fired == ["mask", "clock", "scan"]
        assert opt.masked and opt.clock_done and opt.scan_done

    def test_mask_zeroes_weights_and_resizes(self, seq_design):
        opt = ClockScanOptimizer()
        opt.apply_for_status(seq_design, 10)
        for net in seq_design.netlist.nets():
            if net.is_clock or net.is_scan:
                assert net.weight == 0.0
        # registers grew a step (space reservation)
        grown = [c for c in seq_design.netlist.sequential_cells()
                 if c.size.x > 1.0]
        assert grown

    def test_restore_at_30(self, seq_design):
        opt = ClockScanOptimizer()
        opt.apply_for_status(seq_design, 10)
        # place registers so clustering works
        part = Partitioner(seq_design, seed=4)
        part.run_to(40)
        opt.apply_for_status(seq_design, part.status)
        for net in seq_design.netlist.nets():
            if net.is_clock:
                assert net.weight == net.base_weight
        regs = [c for c in seq_design.netlist.sequential_cells()
                if not c.is_clock_buffer]
        assert all(c.size.x == 1.0 for c in regs)


class TestClockTree:
    def test_tree_built_with_short_nets(self, seq_design):
        opt = ClockScanOptimizer(regs_per_buffer=6)
        run_flow(seq_design, opt)
        bufs = [c for c in seq_design.netlist.cells() if c.is_clock_buffer]
        assert bufs
        # every register CK now on a leaf net driven by a clock buffer
        for reg in seq_design.netlist.sequential_cells():
            ck = reg.pin("CK").net
            assert ck is not None and ck.is_clock
            assert ck.driver().cell.is_clock_buffer
        # clock nets are all much shorter than the die span
        for net in seq_design.netlist.nets():
            if net.is_clock and net.degree > 1:
                assert (seq_design.steiner.length(net)
                        < 2.0 * seq_design.die.width)

    def test_skew_bounded(self, seq_design):
        opt = ClockScanOptimizer(regs_per_buffer=6)
        run_flow(seq_design, opt)
        from repro.transforms.sizing import GateSizing
        GateSizing().link_cells(seq_design)
        cks = [seq_design.timing.arrival(c.pin("CK"))
               for c in seq_design.netlist.sequential_cells()]
        skew = max(cks) - min(cks)
        assert skew < 0.8 * seq_design.constraints.cycle_time


class TestScanReorder:
    def test_scan_length_decreases(self, seq_design):
        opt = ClockScanOptimizer()
        part = Partitioner(seq_design, seed=4)
        reflow = Reflow(part)
        result = None
        while not part.done:
            part.cut()
            reflow.run()
            if part.status >= 80 and not opt.scan_done:
                opt.masked = True
                opt.clock_done = True
                opt.restore_scan(seq_design)
                result = opt.scan_optimization(seq_design)
            else:
                opt.apply_for_status(seq_design, min(part.status, 79))
        assert result is not None
        assert result.detail["length_after"] <= result.detail["length_before"]

    def test_chain_stays_connected(self, seq_design):
        opt = ClockScanOptimizer()
        run_flow(seq_design, opt)
        nl = seq_design.netlist
        head = next(n for n in nl.nets()
                    if n.is_scan and n.driver() is not None
                    and n.driver().cell.is_port)
        scan_regs = [c for c in nl.sequential_cells()
                     if c.gate_type.name == "SDFF"
                     and c.pin("SI").net is not None]
        order = _chain_order(head, scan_regs)
        assert len(order) == len(scan_regs)
        seq_design.check()


class TestTourUtilities:
    def test_nearest_neighbor(self, library):
        from repro.netlist import Netlist
        nl = Netlist()
        cells = []
        for i, x in enumerate([50.0, 10.0, 30.0]):
            c = nl.add_cell("r%d" % i, library.smallest("DFF"),
                            position=Point(x, 0))
            cells.append(c)
        tour = _nearest_neighbor_tour(cells, Point(0, 0))
        assert [c.position.x for c in tour] == [10.0, 30.0, 50.0]

    def test_two_opt_uncrosses(self, library):
        from repro.netlist import Netlist
        nl = Netlist()
        xs = [40.0, 20.0, 30.0, 10.0]
        cells = [nl.add_cell("r%d" % i, library.smallest("DFF"),
                             position=Point(x, 0))
                 for i, x in enumerate(xs)]
        improved = _two_opt(list(cells), Point(0, 0))
        assert [c.position.x for c in improved] == [10.0, 20.0, 30.0, 40.0]

    def test_geometric_clusters_size(self, library):
        from repro.netlist import Netlist
        nl = Netlist()
        cells = [nl.add_cell("r%d" % i, library.smallest("DFF"),
                             position=Point(float(i * 7 % 50),
                                            float(i * 13 % 50)))
                 for i in range(37)]
        clusters = _geometric_clusters(cells, 6)
        assert all(len(c) <= 6 for c in clusters)
        assert sum(len(c) for c in clusters) == 37


class TestMultipleScanChains:
    def test_chains_reordered_independently(self, library):
        from repro.workloads import (ProcessorParams, make_design,
                                     processor_partition)
        from repro.placement import Partitioner, Reflow
        params = ProcessorParams(n_stages=2, regs_per_stage=14,
                                 gates_per_stage=100, scan_fraction=0.9,
                                 n_scan_chains=3, seed=29)
        netlist = processor_partition(params, library)
        design = make_design(netlist, library, cycle_time=1500.0)
        # three distinct scan-in/scan-out pairs exist
        heads = [n for n in netlist.nets()
                 if n.is_scan and n.driver() is not None
                 and n.driver().cell.is_port]
        assert len(heads) == 3
        opt = ClockScanOptimizer()
        run_flow(design, opt)
        result_regs = set()
        for head in heads:
            all_regs = [c for c in netlist.sequential_cells()
                        if c.gate_type.name == "SDFF"
                        and c.pin("SI").net is not None]
            chain = _chain_order(head, all_regs)
            assert len(chain) >= 2
            # membership is disjoint across chains
            names = {c.name for c in chain}
            assert not (names & result_regs)
            result_regs |= names
        design.check()

    def test_multi_chain_lengths_reduced(self, library):
        from repro.workloads import (ProcessorParams, make_design,
                                     processor_partition)
        from repro.placement import Partitioner, Reflow
        params = ProcessorParams(n_stages=2, regs_per_stage=14,
                                 gates_per_stage=100, scan_fraction=0.9,
                                 n_scan_chains=2, seed=31)
        netlist = processor_partition(params, library)
        design = make_design(netlist, library, cycle_time=1500.0)
        part = Partitioner(design, seed=4)
        part.run_to(100)
        opt = ClockScanOptimizer()
        opt.masked = True
        opt.clock_done = True
        result = opt.scan_optimization(design)
        assert result.accepted == 2
        assert result.detail["length_after"] <= \
            result.detail["length_before"]
