import pytest

from repro.timing import DelayMode
from repro.transforms.sizing import GateSizing


class TestGainAssignment:
    def test_assign_gains(self, placed_design):
        sizing = GateSizing(default_gain=3.5)
        count = sizing.assign_gains(placed_design)
        assert count > 0
        for cell in placed_design.netlist.logic_cells():
            assert cell.gain == 3.5
        assert placed_design.timing.default_gain == 3.5


class TestDiscretize:
    def test_sizes_follow_load(self, placed_design):
        d = placed_design
        # the heaviest-loaded INV should be at least as big as the
        # lightest-loaded INV after discretization
        invs = [c for c in d.netlist.logic_cells()
                if c.type_name == "INV" and c.output_pins()
                and c.output_pin().net is not None]
        if len(invs) < 2:
            pytest.skip("not enough INVs")
        GateSizing().discretize(d)
        loads = {c.name: d.timing.net_electrical(c.output_pin().net).total_cap
                 for c in invs}
        heavy = max(invs, key=lambda c: loads[c.name])
        light = min(invs, key=lambda c: loads[c.name])
        if loads[heavy.name] > 2 * loads[light.name]:
            assert heavy.size.x >= light.size.x

    def test_discretize_in_gain_mode_keeps_arrivals(self, library):
        """Virtual discretization: resize while gain-based -> no timing
        change (the paper's cheap path)."""
        from repro.workloads import ProcessorParams, make_design, \
            processor_partition
        params = ProcessorParams(n_stages=2, regs_per_stage=6,
                                 gates_per_stage=60, seed=9)
        nl = processor_partition(params, library)
        d = make_design(nl, library, cycle_time=200.0)
        GateSizing().assign_gains(d)
        assert d.timing.mode is DelayMode.GAIN
        before = d.worst_slack()
        GateSizing().discretize(d)
        assert d.worst_slack() == pytest.approx(before)

    def test_link_switches_mode(self, library):
        from repro.workloads import ProcessorParams, make_design, \
            processor_partition
        params = ProcessorParams(n_stages=2, regs_per_stage=6,
                                 gates_per_stage=60, seed=9)
        nl = processor_partition(params, library)
        d = make_design(nl, library, cycle_time=200.0)
        GateSizing().assign_gains(d)
        GateSizing().link_cells(d)
        assert d.timing.mode is DelayMode.LOAD


class TestTimingDrivenSizing:
    def test_speed_sizing_never_hurts(self, placed_design):
        d = placed_design
        before = d.worst_slack()
        GateSizing().gate_sizing_for_speed(d)
        assert d.worst_slack() >= before - 1e-6

    def test_area_recovery_reduces_area(self, placed_design):
        d = placed_design
        before_area = d.total_cell_area()
        before_slack = d.worst_slack()
        result = GateSizing().gate_sizing_for_area(d)
        assert d.total_cell_area() <= before_area
        assert d.worst_slack() >= before_slack - 1e-6
        if result.accepted:
            assert result.detail["area_recovered"] > 0

    def test_area_recovery_skips_critical(self, placed_design):
        d = placed_design
        # snapshot sizes of critical cells
        from repro.timing.critical import obtain_critical_region
        region = obtain_critical_region(d.timing, slack_margin=0.0)
        crit_sizes = {c.name: c.size for c in region.cells}
        GateSizing().gate_sizing_for_area(d)
        for name, size in crit_sizes.items():
            if d.netlist.has_cell(name):
                assert d.netlist.cell(name).size == size


class TestInFootprintSizing:
    def test_never_moves_cells_or_changes_outline(self, placed_design):
        d = placed_design
        positions = {c.name: c.position for c in d.netlist.cells()}
        areas = {c.name: c.area for c in d.netlist.cells()}
        GateSizing().in_footprint_sizing(d)
        for c in d.netlist.cells():
            assert c.position == positions[c.name]
            assert c.area == pytest.approx(areas[c.name])

    def test_never_hurts_timing(self, placed_design):
        d = placed_design
        before = d.worst_slack()
        GateSizing().in_footprint_sizing(d)
        assert d.worst_slack() >= before - 1e-6


class TestVirtualDiscretization:
    def test_virtual_pass_triggers_no_timing_work(self, library):
        from repro.workloads import ProcessorParams, make_design, \
            processor_partition
        from repro.placement import Partitioner
        params = ProcessorParams(n_stages=2, regs_per_stage=6,
                                 gates_per_stage=80, seed=12)
        nl = processor_partition(params, library)
        d = make_design(nl, library, cycle_time=1200.0)
        GateSizing().assign_gains(d)
        Partitioner(d, seed=1).run_to(30)
        d.timing.worst_slack()  # settle
        before = dict(d.timing.stats())
        result = GateSizing().discretize(d)  # GAIN mode -> virtual
        d.timing.worst_slack()
        assert result.accepted > 0
        assert d.timing.stats()["arrival_recomputes"] == \
            before["arrival_recomputes"]

    def test_image_sees_virtual_sizes(self, library):
        from repro.workloads import ProcessorParams, make_design, \
            processor_partition
        from repro.placement import Partitioner
        params = ProcessorParams(n_stages=2, regs_per_stage=6,
                                 gates_per_stage=80, seed=12)
        nl = processor_partition(params, library)
        d = make_design(nl, library, cycle_time=1200.0)
        GateSizing().assign_gains(d)
        Partitioner(d, seed=1).run_to(30)
        area_before = sum(b.area_used for b in d.grid.bins())
        GateSizing().discretize(d)
        area_after = sum(b.area_used for b in d.grid.bins())
        assert area_after != area_before
        d.grid.check_occupancy()
