import pytest

from repro.geometry import Point, Rect
from repro.netlist import Netlist
from repro.timing import DelayMode
from repro.transforms import CircuitMigration
from repro.workloads import make_design


@pytest.fixture
def meander(library):
    """Figure 3: critical chain A -> C -> D -> E -> B with C, D, E
    meandering away from the straight line between fixed A and B."""
    nl = Netlist()
    cells = {}
    for name in ("c", "d", "e"):
        cells[name] = nl.add_cell(name, library.smallest("INV"))
    a = nl.add_input_port("a")
    b = nl.add_output_port("b")
    chain = [a.pin("Z"), cells["c"], cells["d"], cells["e"]]
    nets = []
    prev = a.pin("Z")
    for nxt in ("c", "d", "e"):
        net = nl.add_net("n_" + nxt)
        nl.connect(prev, net)
        nl.connect(cells[nxt].pin("A"), net)
        prev = cells[nxt].pin("Z")
        nets.append(net)
    last = nl.add_net("n_b")
    nl.connect(prev, last)
    nl.connect(b.pin("A"), last)
    from repro.design import Design
    from repro.timing import TimingConstraints
    design = Design(nl, library, Rect(0, 0, 48, 32),
                    TimingConstraints(cycle_time=20.0),
                    mode=DelayMode.LOAD)
    # fixed endpoints on the bottom edge; movable cells meander upward
    nl.move_cell(a, Point(0, 0))
    nl.move_cell(b, Point(40, 0))
    nl.move_cell(cells["c"], Point(10, 20))
    nl.move_cell(cells["d"], Point(20, 20))
    nl.move_cell(cells["e"], Point(30, 20))
    return design, cells


class TestStrongMoves:
    def test_individual_moves_do_not_help(self, meander):
        design, cells = meander
        eng = design.timing
        base = eng.worst_slack()
        for name in ("c", "d", "e"):
            cell = cells[name]
            old = cell.position
            design.netlist.move_cell(cell, Point(old.x, 0.0))
            assert eng.worst_slack() <= base + 1e-9, name
            design.netlist.move_cell(cell, old)

    def test_joint_move_helps(self, meander):
        design, cells = meander
        eng = design.timing
        base = eng.worst_slack()
        for name in ("c", "d", "e"):
            design.netlist.move_cell(cells[name],
                                     Point(cells[name].position.x, 0.0))
        assert eng.worst_slack() > base

    def test_migration_finds_the_strong_move(self, meander):
        design, cells = meander
        base = design.timing.worst_slack()
        wl_before = design.total_wirelength()
        result = CircuitMigration(max_group_size=4).run(design)
        assert result.accepted >= 1
        assert design.timing.worst_slack() > base
        assert design.total_wirelength() < wl_before
        # the meander was flattened
        for name in ("c", "d", "e"):
            assert cells[name].position.y == pytest.approx(0.0)

    def test_migration_never_hurts(self, placed_design):
        d = placed_design
        before = d.worst_slack()
        CircuitMigration(max_groups=20).run(d)
        assert d.worst_slack() >= before - 1e-6
        d.check()

    def test_rejected_moves_restore_positions(self, meander):
        design, cells = meander
        # force every move to be rejected: all bins report overfill
        for b in design.grid.bins():
            b.area_capacity = 0.0
        positions = {n: c.position for n, c in cells.items()}
        result = CircuitMigration().run(design)
        assert result.accepted == 0
        for n, c in cells.items():
            assert c.position == positions[n]

    def test_group_size_respected(self, meander):
        design, _cells = meander
        tr = CircuitMigration(max_group_size=2)
        groups = tr._build_groups(design)
        assert all(len(g) <= 2 for g in groups)
