import pytest

from repro.geometry import Point
from repro.netlist import Netlist
from repro.timing import DelayMode, TimingConstraints
from repro.transforms import HoldFix
from repro.design import Design
from repro.geometry import Rect


@pytest.fixture
def racing(library):
    """Two FFs wired Q->D directly with a cruel hold requirement."""
    nl = Netlist()
    clk = nl.add_input_port("clk")
    ff1 = nl.add_cell("ff1", library.smallest("DFF"))
    ff2 = nl.add_cell("ff2", library.smallest("DFF"))
    cknet = nl.add_net("ck", is_clock=True)
    nl.connect(clk.pin("Z"), cknet)
    nl.connect(ff1.pin("CK"), cknet)
    nl.connect(ff2.pin("CK"), cknet)
    q = nl.add_net("q")
    nl.connect(ff1.pin("Q"), q)
    nl.connect(ff2.pin("D"), q)
    pi = nl.add_input_port("pi")
    din = nl.add_net("din")
    nl.connect(pi.pin("Z"), din)
    # a little logic in front of ff1 keeps its own hold path clean
    inv = nl.add_cell("pad", library.smallest("INV"))
    nl.connect(inv.pin("A"), din)
    padded = nl.add_net("din_p")
    nl.connect(inv.pin("Z"), padded)
    nl.connect(ff1.pin("D"), padded)
    d = Design(nl, library, Rect(0, 0, 64, 64),
               TimingConstraints(cycle_time=200.0, hold_time=20.0),
               mode=DelayMode.LOAD)
    for c in nl.cells():
        nl.move_cell(c, Point(32, 32))
    return d, ff2


class TestHoldFix:
    def test_fixes_violation(self, racing):
        d, ff2 = racing
        assert d.timing.hold_slack(ff2.pin("D")) < 0
        result = HoldFix().run(d)
        assert result.accepted >= 1
        assert d.timing.hold_slack(ff2.pin("D")) >= 0
        assert result.detail["buffers_added"] >= 1
        d.check()

    def test_setup_not_broken(self, racing):
        d, ff2 = racing
        HoldFix().run(d)
        assert d.timing.slack(ff2.pin("D")) >= 0

    def test_noop_when_clean(self, racing):
        d, ff2 = racing
        d.constraints.hold_time = 0.1
        d.timing._mark_all_dirty()
        cells = d.netlist.num_cells
        result = HoldFix().run(d)
        assert result.attempted == 0
        assert d.netlist.num_cells == cells

    def test_gives_up_gracefully(self, racing):
        d, ff2 = racing
        d.constraints.hold_time = 1e6  # unfixable
        d.timing._mark_all_dirty()
        result = HoldFix(max_buffers_per_path=2).run(d)
        assert result.rejected >= 1
        assert result.accepted == 0
        d.check()
