import pytest

from repro.geometry import Point, Rect
from repro.netlist import Netlist
from repro.timing import DelayMode, TimingConstraints
from repro.transforms import BufferInsertion, Cloning, PinSwapping
from repro.design import Design


@pytest.fixture
def heavy_fanout(library):
    """A weak driver with 6 sinks split into two distant clusters."""
    nl = Netlist()
    pi = nl.add_input_port("pi")
    drv = nl.add_cell("drv", library.smallest("INV"))
    innet = nl.add_net("innet")
    nl.connect(pi.pin("Z"), innet)
    nl.connect(drv.pin("A"), innet)
    fan = nl.add_net("fan")
    nl.connect(drv.pin("Z"), fan)
    sinks = []
    for i in range(6):
        s = nl.add_cell("s%d" % i, library.smallest("INV"))
        nl.connect(s.pin("A"), fan)
        out = nl.add_net("out%d" % i)
        nl.connect(s.pin("Z"), out)
        po = nl.add_output_port("po%d" % i)
        nl.connect(po.pin("A"), out)
        sinks.append(s)
    d = Design(nl, library, Rect(0, 0, 400, 120),
               TimingConstraints(cycle_time=30.0), mode=DelayMode.LOAD)
    nl.move_cell(pi, Point(0, 60))
    nl.move_cell(drv, Point(20, 60))
    for i, s in enumerate(sinks[:3]):
        nl.move_cell(s, Point(60, 40 + 20 * i))
        nl.move_cell(nl.cell("po%d" % i), Point(80, 40 + 20 * i))
    for i, s in enumerate(sinks[3:]):
        nl.move_cell(s, Point(360, 40 + 20 * i))
        nl.move_cell(nl.cell("po%d" % (i + 3)), Point(390, 40 + 20 * i))
    return d, drv, sinks


class TestCloning:
    def test_clones_far_cluster(self, heavy_fanout):
        d, drv, sinks = heavy_fanout
        before = d.timing.worst_slack()
        result = Cloning(fanout_threshold=4).run(d)
        assert result.accepted >= 1
        assert d.timing.worst_slack() > before
        clones = [c for c in d.netlist.cells() if "_cln" in c.name]
        assert len(clones) == 1
        # clone sits near the far cluster, not near the driver
        assert clones[0].require_position().x > 200
        d.check()

    def test_no_clone_when_no_space(self, heavy_fanout):
        d, drv, sinks = heavy_fanout
        # no bin can host the clone and relocation is off
        for b in d.grid.bins():
            b.area_capacity = 0.0
        n_cells = d.netlist.num_cells
        result = Cloning(fanout_threshold=4,
                         relocate_for_space=False).run(d)
        assert result.accepted == 0
        assert d.netlist.num_cells == n_cells

    def test_respects_fanout_threshold(self, heavy_fanout):
        d, drv, sinks = heavy_fanout
        result = Cloning(fanout_threshold=10).run(d)
        assert result.attempted == 0


class TestBufferInsertion:
    def test_shields_far_sinks(self, heavy_fanout):
        d, drv, sinks = heavy_fanout
        before = d.timing.worst_slack()
        result = BufferInsertion(buffer_x=4.0).run(d)
        assert result.accepted >= 1
        assert d.timing.worst_slack() > before
        bufs = [c for c in d.netlist.cells() if c.type_name == "BUF"]
        assert bufs
        d.check()

    def test_repeater_on_long_two_point_net(self, library):
        nl = Netlist()
        pi = nl.add_input_port("pi")
        drv = nl.add_cell("drv", library.size("INV", 2.0))
        snk = nl.add_cell("snk", library.smallest("INV"))
        po = nl.add_output_port("po")
        n0, n1, n2 = (nl.add_net("n%d" % i) for i in range(3))
        nl.connect(pi.pin("Z"), n0)
        nl.connect(drv.pin("A"), n0)
        nl.connect(drv.pin("Z"), n1)
        nl.connect(snk.pin("A"), n1)
        nl.connect(snk.pin("Z"), n2)
        nl.connect(po.pin("A"), n2)
        d = Design(nl, library, Rect(0, 0, 800, 64),
                   TimingConstraints(cycle_time=50.0),
                   mode=DelayMode.LOAD)
        nl.move_cell(pi, Point(0, 32))
        nl.move_cell(drv, Point(10, 32))
        nl.move_cell(snk, Point(790, 32))
        nl.move_cell(po, Point(800, 32))
        before = d.timing.worst_slack()
        result = BufferInsertion(buffer_x=8.0).run(d)
        assert result.accepted >= 1
        assert d.timing.worst_slack() > before
        # repeater lands mid-wire
        buf = next(c for c in d.netlist.cells() if c.type_name == "BUF")
        assert 200 < buf.require_position().x < 600

    def test_rejected_insertions_leave_no_garbage(self, heavy_fanout):
        d, drv, sinks = heavy_fanout
        for c in d.netlist.cells():
            d.netlist.move_cell(c, Point(10, 10))
        cells_before = d.netlist.num_cells
        nets_before = d.netlist.num_nets
        BufferInsertion().run(d)
        assert d.netlist.num_cells == cells_before
        assert d.netlist.num_nets == nets_before
        d.check()


class TestPinSwapping:
    @pytest.fixture
    def skewed_nand(self, library):
        """NAND2 whose late signal sits on the slow pin A."""
        nl = Netlist()
        early = nl.add_input_port("early")
        late_p = nl.add_input_port("late")
        po = nl.add_output_port("po")
        # late path goes through 3 inverters first
        chain_net = nl.add_net("c0")
        nl.connect(late_p.pin("Z"), chain_net)
        for i in range(3):
            inv = nl.add_cell("inv%d" % i, library.smallest("INV"))
            nl.connect(inv.pin("A"), chain_net)
            chain_net = nl.add_net("c%d" % (i + 1))
            nl.connect(inv.pin("Z"), chain_net)
        enet = nl.add_net("enet")
        nl.connect(early.pin("Z"), enet)
        g = nl.add_cell("g", library.smallest("NAND2"))
        nl.connect(g.pin("A"), chain_net)   # late signal on slow pin A
        nl.connect(g.pin("B"), enet)        # early signal on fast pin B
        gout = nl.add_net("gout")
        nl.connect(g.pin("Z"), gout)
        nl.connect(po.pin("A"), gout)
        d = Design(nl, library, Rect(0, 0, 64, 64),
                   TimingConstraints(cycle_time=10.0),
                   mode=DelayMode.LOAD)
        for c in nl.cells():
            nl.move_cell(c, Point(32, 32))
        return d, g

    def test_swap_matches_arrival_to_speed(self, skewed_nand):
        d, g = skewed_nand
        chain_net_name = g.pin("A").net.name
        before = d.timing.worst_slack()
        result = PinSwapping().run(d)
        assert result.accepted == 1
        assert d.timing.worst_slack() > before
        # the late signal moved to the fast pin B
        assert g.pin("B").net.name == chain_net_name

    def test_already_optimal_rejected(self, skewed_nand):
        d, g = skewed_nand
        PinSwapping().run(d)
        nets = (g.pin("A").net.name, g.pin("B").net.name)
        result = PinSwapping().run(d)
        assert (g.pin("A").net.name, g.pin("B").net.name) == nets

    def test_never_hurts_on_real_design(self, placed_design):
        d = placed_design
        before = d.worst_slack()
        PinSwapping().run(d)
        assert d.worst_slack() >= before - 1e-6
        d.check()
