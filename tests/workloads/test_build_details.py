import pytest

from repro.library.types import ROW_HEIGHT
from repro.workloads import make_design, random_logic, size_die
from repro.workloads.build import place_ports_on_boundary


class TestSizeDie:
    def test_side_is_row_multiple(self, library):
        nl = random_logic("r", library, 120, seed=1)
        die = size_die(nl)
        assert die.width % ROW_HEIGHT == pytest.approx(0.0)
        assert die.width == die.height

    def test_blockage_area_enlarges_die(self, library):
        nl = random_logic("r", library, 120, seed=1)
        plain = size_die(nl, 0.5)
        padded = size_die(nl, 0.5, blockage_area=plain.area / 4)
        assert padded.area > plain.area

    def test_empty_netlist_has_minimum(self, library):
        from repro.netlist import Netlist
        die = size_die(Netlist())
        assert die.area > 0


class TestGrowthAllowance:
    def test_allowance_grows_die(self, library):
        nl1 = random_logic("a", library, 100, seed=2)
        nl2 = random_logic("b", library, 100, seed=2)
        tight = make_design(nl1, library, cycle_time=500.0,
                            growth_allowance=1.0)
        roomy = make_design(nl2, library, cycle_time=500.0,
                            growth_allowance=3.0)
        assert roomy.die.area > tight.die.area

    def test_ports_stay_on_boundary_after_resize(self, library):
        nl = random_logic("r", library, 80, seed=3)
        design = make_design(nl, library, cycle_time=500.0)
        for port in nl.ports():
            p = port.require_position()
            assert (p.x in (design.die.xlo, design.die.xhi)
                    or p.y in (design.die.ylo, design.die.yhi))

    def test_inputs_left_outputs_right_bias(self, library):
        nl = random_logic("r", library, 80, seed=3)
        design = make_design(nl, library, cycle_time=500.0)
        ins = [p for p in nl.ports() if p.output_pins()]
        outs = [p for p in nl.ports() if p.input_pins()]
        avg_in_x = sum(p.position.x for p in ins) / len(ins)
        avg_out_x = sum(p.position.x for p in outs) / len(outs)
        assert avg_in_x < avg_out_x
