import pytest

from repro.timing import TimingEngine, TimingConstraints
from repro.workloads import (
    ProcessorParams,
    build_des_design,
    des_params,
    make_design,
    processor_partition,
    random_logic,
    size_die,
)
from repro.workloads.presets import DES_PRESETS


class TestRandomLogic:
    def test_size_and_consistency(self, library):
        nl = random_logic("r", library, 300, seed=4)
        nl.check_consistency()
        assert 300 <= len(nl.logic_cells()) + len(nl.ports())

    def test_acyclic(self, library):
        nl = random_logic("r", library, 200, seed=4)
        from repro.timing.graph import TimingGraph
        TimingGraph(nl)  # raises CombinationalLoopError on a cycle

    def test_deterministic_per_seed(self, library):
        a = random_logic("a", library, 100, seed=7)
        b = random_logic("b", library, 100, seed=7)
        assert [c.type_name for c in a.cells()] == \
            [c.type_name for c in b.cells()]
        c = random_logic("c", library, 100, seed=8)
        assert [x.type_name for x in a.cells()] != \
            [x.type_name for x in c.cells()]

    def test_every_net_driven(self, library):
        nl = random_logic("r", library, 150, seed=2)
        for net in nl.nets():
            assert net.driver() is not None, net.name

    def test_fanout_bounded(self, library):
        nl = random_logic("r", library, 400, seed=3)
        from repro.workloads.random_logic import _MAX_FANOUT
        for net in nl.nets():
            assert len(net.sinks()) <= _MAX_FANOUT + 1


class TestProcessorPartition:
    def test_structure(self, library):
        params = ProcessorParams(n_stages=2, regs_per_stage=8,
                                 gates_per_stage=80, seed=1)
        nl = processor_partition(params, library)
        nl.check_consistency()
        seq = nl.sequential_cells()
        assert len(seq) == 3 * 8  # (stages+1) banks
        clk = [n for n in nl.nets() if n.is_clock]
        assert len(clk) == 1
        # every register is clocked
        for reg in seq:
            assert reg.pin("CK").net is clk[0]

    def test_scan_chain_connected(self, library):
        params = ProcessorParams(n_stages=2, regs_per_stage=10,
                                 scan_fraction=1.0, gates_per_stage=50,
                                 seed=2)
        nl = processor_partition(params, library)
        sdffs = [c for c in nl.sequential_cells()
                 if c.gate_type.name == "SDFF"]
        assert sdffs
        for reg in sdffs:
            assert reg.pin("SI").net is not None
        assert nl.has_cell("scan_in")
        assert nl.has_cell("scan_out")

    def test_no_dangling_nets(self, library):
        params = ProcessorParams(n_stages=3, regs_per_stage=6,
                                 gates_per_stage=90, seed=3)
        nl = processor_partition(params, library)
        for net in nl.nets():
            if net.driver() is not None and not net.is_clock:
                assert net.sinks(), "dangling net %s" % net.name

    def test_timeable(self, library):
        params = ProcessorParams(n_stages=2, regs_per_stage=6,
                                 gates_per_stage=60, seed=4)
        nl = processor_partition(params, library)
        design = make_design(nl, library, cycle_time=500.0)
        assert design.worst_slack() < float("inf")


class TestDiesAndPresets:
    def test_size_die_fits_cells(self, library):
        nl = random_logic("r", library, 200, seed=1)
        die = size_die(nl, target_utilization=0.5)
        assert die.area * 0.5 >= nl.total_cell_area() * 0.99

    def test_port_placement_on_boundary(self, library):
        nl = random_logic("r", library, 100, seed=1)
        design = make_design(nl, library, cycle_time=300.0)
        for port in nl.ports():
            p = port.require_position()
            on_edge = (p.x in (design.die.xlo, design.die.xhi)
                       or p.y in (design.die.ylo, design.die.yhi))
            assert on_edge, port.name

    def test_des_params_scale(self):
        full = des_params("Des1", scale=1.0)
        small = des_params("Des1", scale=0.25)
        assert small.gates_per_stage < full.gates_per_stage
        assert small.n_stages == full.n_stages

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            des_params("Des9")

    def test_relative_sizes_track_paper(self, library):
        sizes = {}
        for name in DES_PRESETS:
            sizes[name] = des_params(name, scale=0.2).approx_cells
        # Des3 is the paper's largest, Des5 the smallest
        assert sizes["Des3"] == max(sizes.values())
        assert sizes["Des5"] == min(sizes.values())

    def test_build_des_design(self, library):
        design = build_des_design("Des5", library, scale=0.1)
        assert design.netlist.num_cells > 50
        assert design.blockages  # datapath macro present
        design.check()
