"""The ``Design``: one object bundling the unified TPS design space.

"All transforms have an unified view of the placement and synthesis
design space.  Synthesis, timing, and placement algorithms and data are
concurrently available to all transforms."  A ``Design`` wires the
netlist to the bin image, the Steiner cache, the wire model and the
incremental timing engine, and is the single argument every transform
receives.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.geometry import Rect
from repro.image import BinGrid, Blockage
from repro.library import Library, LibraryAnalysis, WireParasitics, analyze_library
from repro.netlist import Netlist
from repro.timing import DelayMode, TimingConstraints, TimingEngine
from repro.wirelength import RentEstimator, SteinerCache, WireModel


class Design:
    """A netlist bound to a die image and incremental analyzers."""

    def __init__(self, netlist: Netlist, library: Library, die: Rect,
                 constraints: TimingConstraints,
                 blockages: Sequence[Blockage] = (),
                 parasitics: Optional[WireParasitics] = None,
                 target_utilization: float = 0.85,
                 mode: DelayMode = DelayMode.GAIN,
                 seed: int = 0,
                 core: str = "object") -> None:
        if core not in ("object", "array"):
            raise ValueError("unknown compute core %r" % (core,))
        self.netlist = netlist
        self.library = library
        self.die = die
        self.constraints = constraints
        self.blockages = list(blockages)
        self.target_utilization = target_utilization
        self.rng = random.Random(seed)

        #: Compute core: "object" runs the hot kernels over the object
        #: graph, "array" over the repro.core SoA image.  Results are
        #: bit-identical; tests/core pins the equivalence.
        self.core = core
        self.core_image = None
        if core == "array":
            from repro.core import CoreImage
            self.core_image = CoreImage(netlist)

        self.grid = BinGrid(die, 1, 1, blockages=self.blockages,
                            target_utilization=target_utilization)
        self.grid.core = self.core_image
        self.grid.attach(netlist)

        self.parasitics = parasitics or WireParasitics()
        self.steiner = SteinerCache(netlist, rent=RentEstimator())
        self.wire_model = WireModel(self.steiner, self.parasitics)
        self.timing = TimingEngine(netlist, self.wire_model, constraints,
                                   mode=mode, kernel=core)
        self.library_analysis: LibraryAnalysis = analyze_library(library)

        #: Placement progress 0..100 as reported by the Partitioner.
        self.status: int = 0

    # -- convenience metrics -------------------------------------------

    def worst_slack(self) -> float:
        return self.timing.worst_slack()

    def total_wirelength(self) -> float:
        """Total Steiner wirelength over all nets (tracks)."""
        return self.steiner.total_length()

    def icell_count(self) -> int:
        """Number of logic cells (the paper's "icells" area column)."""
        return len(self.netlist.logic_cells())

    def total_cell_area(self) -> float:
        return self.netlist.total_cell_area()

    def effective_capacity(self, region: Rect) -> float:
        """Blockage-aware cell capacity of a die sub-region (track^2)."""
        overlap = region.intersection(self.die)
        if overlap is None:
            return 0.0
        cap = overlap.area * self.target_utilization
        for blk in self.blockages:
            cap -= blk.blocked_area_in(overlap)
        return max(0.0, cap)

    def spread_all_to_center(self) -> None:
        """Reset placement: all movable cells to the die center."""
        center = self.die.center
        for cell in self.netlist.movable_cells():
            self.netlist.move_cell(cell, center)

    def check(self, suite=None) -> None:
        """Validate design-space consistency; raise on corruption.

        Runs the default :class:`~repro.guard.invariants.InvariantSuite`
        (netlist back-references, dangling pins, bin occupancy
        conservation, timing-graph/netlist sync) or a caller-supplied
        suite.  Used both as a test hook and in-flow by the guarded
        scenarios.
        """
        if suite is None:
            from repro.guard.invariants import InvariantSuite
            suite = InvariantSuite()
        suite.verify(self)

    def __repr__(self) -> str:
        return "<Design %s: %d cells on %gx%g, status %d>" % (
            self.netlist.name, self.netlist.num_cells,
            self.die.width, self.die.height, self.status)
