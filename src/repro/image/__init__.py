"""Bin-based placement image (section 2 of the paper).

The chip area is divided into bins; only abstracted information is kept
per bin (area capacity/usage, wiring capacity/usage, blockage data).
Circuits move between bins without a complex legalization procedure —
the image just tracks how much of each bin's capacity is used.  The
grid *refines gradually* (bins subdivide) as the flow converges, giving
efficiency up-front and precision late.
"""

from repro.image.bins import Bin
from repro.image.blockage import Blockage
from repro.image.grid import BinGrid

__all__ = ["Bin", "Blockage", "BinGrid"]
