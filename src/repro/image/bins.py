"""A single bin of the placement image (the BIN_DATA of Figure 1)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Set

from repro.geometry import Point, Rect

if TYPE_CHECKING:  # pragma: no cover
    from repro.netlist.cell import Cell


class Bin:
    """One bin: abstracted capacity/usage bookkeeping, no legalization.

    Attributes mirror the paper's BIN_DATA record: area capacity, area
    used, wire capacity, wire used, and blockage data.  Wire usage is
    maintained by the global router; area usage by the ``BinGrid``
    listening to netlist moves.
    """

    __slots__ = ("ix", "iy", "rect", "area_capacity", "area_used",
                 "blocked_area", "wire_capacity_h", "wire_capacity_v",
                 "wire_used_h", "wire_used_v", "cells")

    def __init__(self, ix: int, iy: int, rect: Rect,
                 target_utilization: float = 0.85,
                 tracks_per_unit: float = 1.0) -> None:
        self.ix = ix
        self.iy = iy
        self.rect = rect
        self.blocked_area = 0.0
        self.area_capacity = rect.area * target_utilization
        self.area_used = 0.0
        # Routing capacity through the bin: proportional to its span in
        # each direction (tracks available on the crossing layers).
        self.wire_capacity_h = rect.height * tracks_per_unit
        self.wire_capacity_v = rect.width * tracks_per_unit
        self.wire_used_h = 0.0
        self.wire_used_v = 0.0
        self.cells: Set["Cell"] = set()

    # -- area --------------------------------------------------------

    @property
    def effective_capacity(self) -> float:
        """Cell area capacity net of blockages (track^2)."""
        return max(0.0, self.area_capacity - self.blocked_area)

    @property
    def free_area(self) -> float:
        return self.effective_capacity - self.area_used

    @property
    def utilization(self) -> float:
        """Fraction of effective capacity in use (may exceed 1)."""
        cap = self.effective_capacity
        if cap <= 0.0:
            return float("inf") if self.area_used > 0 else 1.0
        return self.area_used / cap

    def can_fit(self, area: float) -> bool:
        """True if ``area`` more track^2 of cells fits in this bin."""
        return self.free_area >= area

    @property
    def overfilled(self) -> bool:
        return self.area_used > self.effective_capacity

    # -- wiring ------------------------------------------------------

    @property
    def wire_overflow(self) -> float:
        """Routing demand beyond capacity, summed over directions."""
        return (max(0.0, self.wire_used_h - self.wire_capacity_h)
                + max(0.0, self.wire_used_v - self.wire_capacity_v))

    @property
    def congestion(self) -> float:
        """Worst-direction routing demand / capacity ratio."""
        ratios = []
        if self.wire_capacity_h > 0:
            ratios.append(self.wire_used_h / self.wire_capacity_h)
        if self.wire_capacity_v > 0:
            ratios.append(self.wire_used_v / self.wire_capacity_v)
        return max(ratios) if ratios else 0.0

    # -- geometry ----------------------------------------------------

    @property
    def center(self) -> Point:
        return self.rect.center

    def __repr__(self) -> str:
        return "<Bin (%d,%d) used=%.0f/%.0f cells=%d>" % (
            self.ix, self.iy, self.area_used, self.effective_capacity,
            len(self.cells))
