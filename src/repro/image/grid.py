"""The placement image: a refinable grid of bins bound to a netlist.

The grid subscribes to netlist change events, so bin occupancy is
always current without any polling: moving a cell, resizing it, or
creating/deleting cells updates ``area_used`` of the affected bins
only.  ``refine()`` subdivides every bin, implementing the paper's
gradual-precision story ("eventually, each bin could contain one cell").
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geometry import Point, Rect
from repro.image.bins import Bin
from repro.image.blockage import Blockage
from repro.library.types import GateSize
from repro.netlist.cell import Cell
from repro.netlist.netlist import Netlist, NetlistListener
from repro import _profile as profile


class BinGrid(NetlistListener):
    """A grid of bins covering the die, kept in sync with a netlist."""

    #: the image is the physical view: it also receives virtual resizes
    is_physical_view = True

    def __init__(self, die: Rect, nx: int = 1, ny: int = 1,
                 blockages: Sequence[Blockage] = (),
                 target_utilization: float = 0.85,
                 tracks_per_unit: float = 1.0) -> None:
        if nx < 1 or ny < 1:
            raise ValueError("grid must have at least one bin per axis")
        self.die = die
        self.blockages: List[Blockage] = list(blockages)
        self.target_utilization = target_utilization
        self.tracks_per_unit = tracks_per_unit
        self.netlist: Optional[Netlist] = None
        #: optional repro.core.CoreImage; when set (array core), grid
        #: rebuilds bin occupancy from its arrays instead of per-cell
        #: property walks (bit-identical accumulation order)
        self.core = None
        self.nx = 0
        self.ny = 0
        self._bins: List[List[Bin]] = []
        self._cell_bin: Dict[str, Bin] = {}
        self._rebuild(nx, ny)

    # -- construction / refinement ------------------------------------

    def _rebuild(self, nx: int, ny: int) -> None:
        """(Re)create the bin array at the given resolution."""
        _p0 = profile.begin()
        self.nx, self.ny = nx, ny
        bw = self.die.width / nx
        bh = self.die.height / ny
        self._bins = []
        for ix in range(nx):
            column = []
            for iy in range(ny):
                rect = Rect(self.die.xlo + ix * bw, self.die.ylo + iy * bh,
                            self.die.xlo + (ix + 1) * bw,
                            self.die.ylo + (iy + 1) * bh)
                b = Bin(ix, iy, rect,
                        target_utilization=self.target_utilization,
                        tracks_per_unit=self.tracks_per_unit)
                for blk in self.blockages:
                    b.blocked_area += blk.blocked_area_in(rect)
                    overlap = blk.rect.intersection(rect)
                    if overlap is not None and rect.area > 0:
                        frac = overlap.area / rect.area * blk.wiring_factor
                        b.wire_capacity_h *= (1.0 - frac)
                        b.wire_capacity_v *= (1.0 - frac)
                column.append(b)
            self._bins.append(column)
        self._cell_bin = {}
        if self.netlist is not None:
            if self.core is not None and self.core.netlist is self.netlist:
                self._rebuild_occupancy_array()
            else:
                for cell in self.netlist.cells():
                    if cell.placed:
                        self._insert(cell)
        profile.end("bins.rebuild", _p0)

    def _rebuild_occupancy_array(self) -> None:
        """Vectorized re-binning of all placed cells (array core).

        Replicates ``_insert`` per placed cell in netlist order: the
        same clamp/trunc bin indexing and — via ``np.add.at``, which
        accumulates repeated indices sequentially — the same
        ``area_used`` addition order, so occupancy is bit-identical to
        the object path's.
        """
        import numpy as np

        im = self.core.sync()
        idx = np.flatnonzero(im.cell_placed)
        if idx.size == 0:
            return
        die = self.die
        bw = die.width / self.nx
        bh = die.height / self.ny
        px = np.minimum(np.maximum(im.cell_x[idx], die.xlo), die.xhi)
        py = np.minimum(np.maximum(im.cell_y[idx], die.ylo), die.yhi)
        ix = np.minimum(self.nx - 1, np.maximum(
            0, ((px - die.xlo) / bw).astype(np.int64)))
        iy = np.minimum(self.ny - 1, np.maximum(
            0, ((py - die.ylo) / bh).astype(np.int64)))
        flat = ix * self.ny + iy
        area = np.zeros(self.nx * self.ny)
        np.add.at(area, flat, im.cell_area[idx])
        bins_flat = [b for column in self._bins for b in column]
        cells = im.cells
        cell_bin = self._cell_bin
        for k, f in zip(idx.tolist(), flat.tolist()):
            cell = cells[k]
            b = bins_flat[f]
            b.cells.add(cell)
            cell_bin[cell.name] = b
        for f in np.unique(flat).tolist():
            bins_flat[f].area_used = float(area[f])

    def attach(self, netlist: Netlist) -> None:
        """Bind to a netlist: populate from placed cells and subscribe."""
        if self.netlist is not None:
            self.netlist.remove_listener(self)
        self.netlist = netlist
        netlist.add_listener(self)
        self._rebuild(self.nx, self.ny)

    def detach(self) -> None:
        if self.netlist is not None:
            self.netlist.remove_listener(self)
            self.netlist = None

    def refine(self, factor: int = 2) -> None:
        """Subdivide every bin ``factor``x``factor`` ways."""
        if factor < 2:
            raise ValueError("refinement factor must be >= 2")
        self._rebuild(self.nx * factor, self.ny * factor)

    def resize(self, nx: int, ny: int) -> None:
        """Rebuild the grid at an explicit resolution (re-binning all
        cells); used by the Partitioner to keep bins aligned with its
        region structure."""
        if nx < 1 or ny < 1:
            raise ValueError("grid must have at least one bin per axis")
        self._rebuild(nx, ny)

    @property
    def bin_area(self) -> float:
        return self._bins[0][0].rect.area

    # -- lookup --------------------------------------------------------

    def bin(self, ix: int, iy: int) -> Bin:
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise IndexError("bin (%d,%d) outside %dx%d grid" % (ix, iy, self.nx, self.ny))
        return self._bins[ix][iy]

    def bins(self) -> Iterable[Bin]:
        for column in self._bins:
            for b in column:
                yield b

    def index_at(self, point: Point) -> Tuple[int, int]:
        """Grid index of the bin containing ``point`` (clamped to die)."""
        p = self.die.clamp(point)
        bw = self.die.width / self.nx
        bh = self.die.height / self.ny
        ix = min(self.nx - 1, max(0, int((p.x - self.die.xlo) / bw)))
        iy = min(self.ny - 1, max(0, int((p.y - self.die.ylo) / bh)))
        return ix, iy

    def bin_at(self, point: Point) -> Bin:
        ix, iy = self.index_at(point)
        return self._bins[ix][iy]

    def bin_of(self, cell: Cell) -> Optional[Bin]:
        """The bin currently holding ``cell`` (None if unplaced)."""
        return self._cell_bin.get(cell.name)

    def bins_in(self, region: Rect) -> List[Bin]:
        """All bins whose rectangle intersects ``region``."""
        lo = self.index_at(Point(region.xlo, region.ylo))
        hi = self.index_at(Point(region.xhi, region.yhi))
        out = []
        for ix in range(lo[0], hi[0] + 1):
            for iy in range(lo[1], hi[1] + 1):
                b = self._bins[ix][iy]
                if b.rect.intersects(region):
                    out.append(b)
        return out

    def neighbors(self, b: Bin) -> List[Bin]:
        """The 4-connected neighbour bins."""
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            ix, iy = b.ix + dx, b.iy + dy
            if 0 <= ix < self.nx and 0 <= iy < self.ny:
                out.append(self._bins[ix][iy])
        return out

    # -- occupancy maintenance (netlist events) ------------------------

    def _insert(self, cell: Cell) -> None:
        b = self.bin_at(cell.require_position())
        b.cells.add(cell)
        b.area_used += cell.area
        self._cell_bin[cell.name] = b

    def _evict(self, cell: Cell) -> None:
        b = self._cell_bin.pop(cell.name, None)
        if b is not None:
            b.cells.discard(cell)
            b.area_used -= cell.area

    def on_cell_added(self, cell: Cell) -> None:
        if cell.placed:
            self._insert(cell)

    def on_cell_removed(self, cell: Cell) -> None:
        self._evict(cell)

    def on_cell_moved(self, cell: Cell, old_position) -> None:
        self._evict(cell)
        if cell.placed:
            self._insert(cell)

    def on_cell_resized(self, cell: Cell, old_size: GateSize) -> None:
        b = self._cell_bin.get(cell.name)
        if b is not None:
            b.area_used += cell.area - old_size.area

    # -- aggregate measures --------------------------------------------

    def total_overflow(self) -> float:
        """Total cell-area overflow over all bins (track^2)."""
        return sum(max(0.0, b.area_used - b.effective_capacity)
                   for b in self.bins())

    def max_utilization(self) -> float:
        return max((b.utilization for b in self.bins()), default=0.0)

    def reset_wire_usage(self) -> None:
        for b in self.bins():
            b.wire_used_h = 0.0
            b.wire_used_v = 0.0

    def check_occupancy(self) -> None:
        """Verify bin bookkeeping against cell positions; raise if stale."""
        for b in self.bins():
            expect = sum(c.area for c in b.cells)
            if not math.isclose(expect, b.area_used, abs_tol=1e-6):
                raise AssertionError(
                    "bin (%d,%d) area_used %.3f != cells %.3f"
                    % (b.ix, b.iy, b.area_used, expect))
            for c in b.cells:
                if self.bin_at(c.require_position()) is not b:
                    raise AssertionError(
                        "cell %s tracked in wrong bin" % c.name)

    def __repr__(self) -> str:
        return "<BinGrid %dx%d over %gx%g>" % (
            self.nx, self.ny, self.die.width, self.die.height)
