"""Placement and wiring blockages.

Figure 1 of the paper shows bin area blocked by a custom datapath and
power lines blocking wiring tracks; a ``Blockage`` models both: it
removes cell capacity from the bins it overlaps and (optionally) a
fraction of their wiring capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect


@dataclass(frozen=True)
class Blockage:
    """A rectangular obstruction on the placement image.

    ``wiring_factor`` is the fraction of routing capacity removed over
    the blockage (0 = routing may pass over freely, e.g. a datapath
    macro with free upper layers; 1 = fully blocked, e.g. dense power
    straps).
    """

    rect: Rect
    name: str = "blockage"
    wiring_factor: float = 0.5

    def blocked_area_in(self, region: Rect) -> float:
        """Cell area (track^2) this blockage removes from ``region``."""
        overlap = self.rect.intersection(region)
        return overlap.area if overlap is not None else 0.0
