"""Technology library substrate.

TPS relies on a standard-cell library with:

* per-gate-type *logical effort* and *parasitic delay* (Sutherland &
  Sproull), used by the gain-based delay model and the
  ``LogicalEffortNetWeight`` transform;
* multiple *drive strengths* per type, grouped into *footprints*
  (same physical outline) so that a final in-footprint sizing can be
  done without disturbing placement or routing;
* per-size input capacitance, drive resistance, and cell area.

The S/390 library used in the paper is proprietary; ``default_library``
builds a parametric equivalent exposing the same knobs.
"""

from repro.library.types import GateKind, GateType, GateSize, PinSpec, PinDirection
from repro.library.library import Library, LibraryAnalysis, analyze_library
from repro.library.default import default_library
from repro.library.parasitics import WireParasitics

__all__ = [
    "GateKind",
    "GateType",
    "GateSize",
    "PinSpec",
    "PinDirection",
    "Library",
    "LibraryAnalysis",
    "analyze_library",
    "default_library",
    "WireParasitics",
]
