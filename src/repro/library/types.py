"""Gate types, sizes (drive strengths), and pin specifications."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Unit input capacitance of a minimum inverter input, in fF.
C_UNIT = 1.0
#: Output resistance of a minimum inverter, in kOhm.
R_UNIT = 2.0
#: Process time constant tau = R_UNIT * C_UNIT, in ps (kOhm * fF = ps).
TAU = R_UNIT * C_UNIT
#: Standard-cell row height, in tracks.
ROW_HEIGHT = 8.0
#: Area of a minimum inverter, in track^2.
AREA_UNIT = 16.0


class PinDirection(enum.Enum):
    """Direction of a library pin."""

    INPUT = "input"
    OUTPUT = "output"


class GateKind(enum.Enum):
    """Coarse functional class of a gate type."""

    COMBINATIONAL = "comb"
    SEQUENTIAL = "seq"
    BUFFER = "buffer"
    CLOCK_BUFFER = "clock_buffer"
    PORT = "port"


@dataclass(frozen=True)
class PinSpec:
    """A pin on a library gate type.

    ``swap_group`` marks functionally interchangeable inputs (e.g. the
    two inputs of a NAND2); the pin-swapping transform may permute pins
    within a group.  ``cap_factor`` scales the per-size input
    capacitance (e.g. a clock pin that is lighter than a data pin).
    """

    name: str
    direction: PinDirection
    swap_group: Optional[int] = None
    cap_factor: float = 1.0
    #: Relative speed of the arc from this pin to the output (inner
    #: transistors switch faster); pin swapping exploits the asymmetry.
    delay_factor: float = 1.0
    is_clock: bool = False
    is_scan: bool = False


@dataclass(frozen=True)
class GateType:
    """A logic function available in the library.

    ``logical_effort`` is the ratio of this type's input capacitance to
    that of an inverter delivering the same output current (g in the
    logical-effort model).  ``parasitic`` is the intrinsic delay p, in
    units of tau.
    """

    name: str
    kind: GateKind
    pins: Tuple[PinSpec, ...]
    logical_effort: float
    parasitic: float
    area_factor: float = 1.0
    #: True if output = logical inversion of AND/OR (affects remapping only).
    inverting: bool = True

    def __post_init__(self) -> None:
        if self.logical_effort <= 0:
            raise ValueError("logical effort must be positive")
        if not any(p.direction is PinDirection.OUTPUT for p in self.pins):
            if self.kind is not GateKind.PORT:
                raise ValueError("gate type %s has no output pin" % self.name)

    @property
    def input_pins(self) -> List[PinSpec]:
        return [p for p in self.pins if p.direction is PinDirection.INPUT]

    @property
    def output_pins(self) -> List[PinSpec]:
        return [p for p in self.pins if p.direction is PinDirection.OUTPUT]

    @property
    def output_pin(self) -> PinSpec:
        outs = self.output_pins
        if len(outs) != 1:
            raise ValueError("gate type %s has %d outputs" % (self.name, len(outs)))
        return outs[0]

    def pin(self, name: str) -> PinSpec:
        for p in self.pins:
            if p.name == name:
                return p
        raise KeyError("no pin %r on gate type %s" % (name, self.name))

    @property
    def is_sequential(self) -> bool:
        return self.kind is GateKind.SEQUENTIAL

    @property
    def num_inputs(self) -> int:
        return len(self.input_pins)

    def swap_groups(self) -> Dict[int, List[PinSpec]]:
        """Input pins grouped by swap group (groups of size >= 2 only)."""
        groups: Dict[int, List[PinSpec]] = {}
        for p in self.input_pins:
            if p.swap_group is not None:
                groups.setdefault(p.swap_group, []).append(p)
        return {g: ps for g, ps in groups.items() if len(ps) >= 2}


@dataclass(frozen=True)
class GateSize:
    """A concrete drive strength of a gate type.

    ``x`` is the size multiple of the minimum device.  Sizes sharing a
    ``footprint`` have the same physical outline, so exchanging them
    never perturbs placement (used for post-route in-footprint sizing).
    """

    gate_type: GateType
    x: float
    footprint: str
    #: Physical area shared by every size in the footprint (track^2).
    #: ``None`` falls back to the size's own device area.
    footprint_area: Optional[float] = None

    def __post_init__(self) -> None:
        if self.x <= 0:
            raise ValueError("size multiple must be positive")

    @property
    def name(self) -> str:
        return "%s_X%g" % (self.gate_type.name, self.x)

    def input_cap(self, pin_name: Optional[str] = None) -> float:
        """Input capacitance of ``pin_name`` (fF); any input if None."""
        factor = 1.0
        if pin_name is not None:
            factor = self.gate_type.pin(pin_name).cap_factor
        return self.gate_type.logical_effort * self.x * C_UNIT * factor

    @property
    def drive_resistance(self) -> float:
        """Equivalent output resistance, in kOhm."""
        return R_UNIT / self.x

    @property
    def intrinsic_delay(self) -> float:
        """Parasitic (load-independent) delay, in ps."""
        return self.gate_type.parasitic * TAU

    @property
    def device_area(self) -> float:
        """Area demanded by the devices alone, in track^2."""
        return self.gate_type.area_factor * self.x * AREA_UNIT

    @property
    def area(self) -> float:
        """Cell outline area in track^2.

        Sizes sharing a footprint share an outline (that of the largest
        member), which is what makes post-route in-footprint sizing a
        zero-perturbation move.
        """
        if self.footprint_area is not None:
            return self.footprint_area
        return self.device_area

    @property
    def width(self) -> float:
        """Cell width in tracks, at the standard row height."""
        return self.area / ROW_HEIGHT

    @property
    def height(self) -> float:
        return ROW_HEIGHT

    def delay(self, load: float) -> float:
        """Load-based gate delay in ps: ``p*tau + R_drive * C_load``."""
        return self.intrinsic_delay + self.drive_resistance * load

    def gain_for_load(self, load: float) -> float:
        """Electrical effort h = C_out / C_in for a given load."""
        cin = self.input_cap()
        if cin <= 0:
            return 0.0
        return load / cin
