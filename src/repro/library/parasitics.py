"""Interconnect parasitics.

Wire load capacitances are estimated as lumped capacitances
proportional to the Steiner estimates of wire length (section 3 of the
paper); for longer wires the resistive component matters and a
distributed RC model is used instead.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WireParasitics:
    """Per-unit-length interconnect parasitics.

    Units: capacitance fF/track, resistance kOhm/track.  The defaults
    approximate a late-1990s 0.25um process at minimum wire width where
    a track is one routing pitch.
    """

    cap_per_track: float = 0.2
    res_per_track: float = 0.02
    #: Wires longer than this (tracks) use the distributed RC model.
    rc_threshold: float = 200.0

    def wire_cap(self, length: float) -> float:
        """Total capacitance of a wire of the given length (fF)."""
        return self.cap_per_track * max(0.0, length)

    def wire_res(self, length: float) -> float:
        """Total resistance of a wire of the given length (kOhm)."""
        return self.res_per_track * max(0.0, length)

    def is_long(self, length: float) -> bool:
        """True if the RC component of this wire is significant."""
        return length > self.rc_threshold
