"""The default parametric standard-cell library.

Logical efforts follow the canonical Sutherland & Sproull values for
static CMOS (INV = 1, NAND2 = 4/3, NOR2 = 5/3, XOR2 = 4, ...);
parasitic delays scale with the number of series devices.  Clock
buffers are modelled as much larger than ordinary cells, which is what
drives the staged clock optimization of section 4.5.
"""

from __future__ import annotations

from repro.library.library import Library
from repro.library.types import GateKind, GateType, PinDirection, PinSpec


#: Arc-speed asymmetry of stacked inputs: pins later in the list drive
#: transistors closer to the output and switch faster.  Pin swapping
#: puts late-arriving signals on the fast pins.
_STACK_SPEEDUP = (1.0, 0.92, 0.86, 0.82)


def _inputs(names, swap_group=0, **kwargs):
    """PinSpecs for a group of mutually swappable input pins."""
    return tuple(
        PinSpec(n, PinDirection.INPUT, swap_group=swap_group,
                delay_factor=_STACK_SPEEDUP[min(i, len(_STACK_SPEEDUP) - 1)],
                **kwargs)
        for i, n in enumerate(names)
    )


def _out(name="Z"):
    return (PinSpec(name, PinDirection.OUTPUT),)


def default_library() -> Library:
    """Build the default library used by the TPS reproduction."""
    lib = Library("tps_default")

    std = [1.0, 2.0, 4.0, 8.0]
    drv = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]

    lib.add_type(
        GateType("INV", GateKind.COMBINATIONAL, _inputs(["A"]) + _out(),
                 logical_effort=1.0, parasitic=1.0),
        drv,
    )
    lib.add_type(
        GateType("BUF", GateKind.BUFFER, _inputs(["A"]) + _out(),
                 logical_effort=1.0, parasitic=2.0, area_factor=1.5,
                 inverting=False),
        drv,
    )
    lib.add_type(
        GateType("NAND2", GateKind.COMBINATIONAL, _inputs(["A", "B"]) + _out(),
                 logical_effort=4.0 / 3.0, parasitic=2.0, area_factor=1.5),
        std,
    )
    lib.add_type(
        GateType("NAND3", GateKind.COMBINATIONAL,
                 _inputs(["A", "B", "C"]) + _out(),
                 logical_effort=5.0 / 3.0, parasitic=3.0, area_factor=2.0),
        std,
    )
    lib.add_type(
        GateType("NAND4", GateKind.COMBINATIONAL,
                 _inputs(["A", "B", "C", "D"]) + _out(),
                 logical_effort=2.0, parasitic=4.0, area_factor=2.5),
        std,
    )
    lib.add_type(
        GateType("NOR2", GateKind.COMBINATIONAL, _inputs(["A", "B"]) + _out(),
                 logical_effort=5.0 / 3.0, parasitic=2.0, area_factor=1.5),
        std,
    )
    lib.add_type(
        GateType("NOR3", GateKind.COMBINATIONAL,
                 _inputs(["A", "B", "C"]) + _out(),
                 logical_effort=7.0 / 3.0, parasitic=3.0, area_factor=2.0),
        std,
    )
    lib.add_type(
        GateType("AND2", GateKind.COMBINATIONAL, _inputs(["A", "B"]) + _out(),
                 logical_effort=1.5, parasitic=3.0, area_factor=2.0,
                 inverting=False),
        std,
    )
    lib.add_type(
        GateType("OR2", GateKind.COMBINATIONAL, _inputs(["A", "B"]) + _out(),
                 logical_effort=1.8, parasitic=3.0, area_factor=2.0,
                 inverting=False),
        std,
    )
    # AOI21: inputs A, B feed the AND; C is the bare OR leg (not swappable
    # with A/B).
    lib.add_type(
        GateType(
            "AOI21", GateKind.COMBINATIONAL,
            _inputs(["A", "B"], swap_group=0)
            + (PinSpec("C", PinDirection.INPUT, swap_group=None),)
            + _out(),
            logical_effort=2.0, parasitic=3.0, area_factor=2.0,
        ),
        std,
    )
    lib.add_type(
        GateType(
            "OAI21", GateKind.COMBINATIONAL,
            _inputs(["A", "B"], swap_group=0)
            + (PinSpec("C", PinDirection.INPUT, swap_group=None),)
            + _out(),
            logical_effort=2.0, parasitic=3.0, area_factor=2.0,
        ),
        std,
    )
    lib.add_type(
        GateType("XOR2", GateKind.COMBINATIONAL, _inputs(["A", "B"]) + _out(),
                 logical_effort=4.0, parasitic=4.0, area_factor=3.0,
                 inverting=False),
        std,
    )
    lib.add_type(
        GateType("XNOR2", GateKind.COMBINATIONAL, _inputs(["A", "B"]) + _out(),
                 logical_effort=4.0, parasitic=4.0, area_factor=3.0),
        std,
    )
    lib.add_type(
        GateType(
            "MUX2", GateKind.COMBINATIONAL,
            (
                PinSpec("D0", PinDirection.INPUT, swap_group=None),
                PinSpec("D1", PinDirection.INPUT, swap_group=None),
                PinSpec("S", PinDirection.INPUT, swap_group=None),
            )
            + _out(),
            logical_effort=2.0, parasitic=4.0, area_factor=3.0,
            inverting=False,
        ),
        std,
    )
    # Registers.  The D pin is the timing endpoint; CK is driven by the
    # clock tree.
    lib.add_type(
        GateType(
            "DFF", GateKind.SEQUENTIAL,
            (
                PinSpec("D", PinDirection.INPUT),
                PinSpec("CK", PinDirection.INPUT, is_clock=True,
                        cap_factor=0.8),
                PinSpec("Q", PinDirection.OUTPUT),
            ),
            logical_effort=1.5, parasitic=4.0, area_factor=6.0,
            inverting=False,
        ),
        [1.0, 2.0, 4.0],
    )
    # Scan register: SI is the scan-chain input, reordered by the scan
    # optimization transform.
    lib.add_type(
        GateType(
            "SDFF", GateKind.SEQUENTIAL,
            (
                PinSpec("D", PinDirection.INPUT),
                PinSpec("SI", PinDirection.INPUT, is_scan=True,
                        cap_factor=0.6),
                PinSpec("CK", PinDirection.INPUT, is_clock=True,
                        cap_factor=0.8),
                PinSpec("Q", PinDirection.OUTPUT),
            ),
            logical_effort=1.5, parasitic=4.5, area_factor=7.0,
            inverting=False,
        ),
        [1.0, 2.0, 4.0],
    )
    # Clock buffers are "typically much larger than registers" (§4.5).
    # Each size is its own footprint: clock cells are never resized by
    # the post-route in-footprint pass.
    lib.add_type(
        GateType(
            "CLKBUF", GateKind.CLOCK_BUFFER,
            (
                PinSpec("A", PinDirection.INPUT, is_clock=True),
                PinSpec("Z", PinDirection.OUTPUT),
            ),
            logical_effort=1.0, parasitic=2.0, area_factor=4.0,
            inverting=False,
        ),
        [2.0, 4.0, 8.0, 16.0],
        footprint_of={2.0: "CLKBUF_FPA", 4.0: "CLKBUF_FPB",
                      8.0: "CLKBUF_FPC", 16.0: "CLKBUF_FPD"},
    )
    return lib
