"""Library container and logical-effort analysis.

``analyze_library`` is the paper's ``analyze_library()`` step in
algorithm *LogicalEffortNetWeight*: it is run once before placement and
yields the logical effort of every gate type, normalised so the net
weighting transform can scale weights by ``logical_effort /
max_logical_effort``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.library.types import GateSize, GateType


class Library:
    """A collection of gate types, each with a ladder of drive strengths."""

    def __init__(self, name: str = "lib") -> None:
        self.name = name
        self._types: Dict[str, GateType] = {}
        self._sizes: Dict[str, List[GateSize]] = {}

    def add_type(self, gate_type: GateType, sizes: Iterable[float],
                 footprint_of: Optional[Dict[float, str]] = None) -> GateType:
        """Register a gate type with the given size multiples.

        ``footprint_of`` maps a size multiple to its footprint name; by
        default consecutive size pairs share a footprint, which gives
        every size an in-footprint alternative.
        """
        if gate_type.name in self._types:
            raise ValueError("duplicate gate type %s" % gate_type.name)
        size_list = sorted(set(sizes))
        if not size_list:
            raise ValueError("gate type %s registered with no sizes" % gate_type.name)
        self._types[gate_type.name] = gate_type
        footprints: Dict[float, str] = {}
        for i, x in enumerate(size_list):
            if footprint_of and x in footprint_of:
                footprints[x] = footprint_of[x]
            else:
                footprints[x] = "%s_FP%d" % (gate_type.name, i // 2)
        # Every size in a footprint shares the outline of the largest
        # member, so in-footprint resizing never perturbs placement.
        outline: Dict[str, float] = {}
        for x in size_list:
            probe = GateSize(gate_type, x, footprints[x])
            fp = footprints[x]
            outline[fp] = max(outline.get(fp, 0.0), probe.device_area)
        ladder: List[GateSize] = [
            GateSize(gate_type, x, footprints[x], footprint_area=outline[footprints[x]])
            for x in size_list
        ]
        self._sizes[gate_type.name] = ladder
        return gate_type

    def type(self, name: str) -> GateType:
        try:
            return self._types[name]
        except KeyError:
            raise KeyError("no gate type %r in library %s" % (name, self.name))

    def has_type(self, name: str) -> bool:
        return name in self._types

    def types(self) -> List[GateType]:
        return list(self._types.values())

    def sizes(self, type_name: str) -> List[GateSize]:
        """All drive strengths of a type, ascending."""
        try:
            return list(self._sizes[type_name])
        except KeyError:
            raise KeyError("no gate type %r in library %s" % (type_name, self.name))

    def size(self, type_name: str, x: float) -> GateSize:
        """The exact size ``x`` of ``type_name``."""
        for s in self.sizes(type_name):
            if s.x == x:
                return s
        raise KeyError("no size x%g for type %s" % (x, type_name))

    def smallest(self, type_name: str) -> GateSize:
        return self.sizes(type_name)[0]

    def largest(self, type_name: str) -> GateSize:
        return self.sizes(type_name)[-1]

    def discretize(self, type_name: str, target_cin: float) -> GateSize:
        """The size whose input capacitance best matches ``target_cin``.

        This is the library-match step of the discretization process in
        section 4.4: given a gain assignment and a load, the required
        input capacitance is ``load / gain`` and the closest available
        size is selected.
        """
        ladder = self.sizes(type_name)
        return min(ladder, key=lambda s: abs(s.input_cap() - target_cin))

    def footprint_siblings(self, size: GateSize) -> List[GateSize]:
        """Sizes of the same type sharing ``size``'s footprint."""
        return [
            s for s in self.sizes(size.gate_type.name)
            if s.footprint == size.footprint
        ]

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __len__(self) -> int:
        return len(self._types)


@dataclass
class LibraryAnalysis:
    """Result of the pre-placement library analysis.

    ``efforts`` maps gate type name to logical effort; ``max_effort``
    is the largest logical effort over non-clock combinational types,
    used for normalisation in the net weighting transform.
    """

    efforts: Dict[str, float] = field(default_factory=dict)
    max_effort: float = 1.0
    min_effort: float = 1.0

    def normalized(self, type_name: str) -> float:
        """Logical effort of the type divided by the library maximum."""
        return self.efforts.get(type_name, 1.0) / self.max_effort


def analyze_library(library: Library) -> LibraryAnalysis:
    """Compute logical efforts for every gate type in the library."""
    efforts = {t.name: t.logical_effort for t in library.types()}
    drivers = [
        t.logical_effort
        for t in library.types()
        if t.kind.value in ("comb", "buffer", "seq")
    ]
    if not drivers:
        drivers = list(efforts.values()) or [1.0]
    return LibraryAnalysis(
        efforts=efforts,
        max_effort=max(drivers),
        min_effort=min(drivers),
    )
