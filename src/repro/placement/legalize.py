"""Row/site legalization.

At the end of the flow "the circuits have exact legal locations for a
given chip image and the circuit rows ... are exactly defined"
(section 2).  ``legalize_rows`` snaps every movable cell into standard
cell rows without overlap, minimizing displacement: cells are processed
in x order and dropped into the best free gap of a nearby row.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.design import Design
from repro.geometry import Point, Rect
from repro.library.types import ROW_HEIGHT
from repro.netlist.cell import Cell


class _Segment:
    """A blockage-free span of one row, tracking occupied intervals."""

    __slots__ = ("xlo", "xhi", "_starts", "_ends")

    def __init__(self, xlo: float, xhi: float) -> None:
        self.xlo = xlo
        self.xhi = xhi
        self._starts: List[float] = []
        self._ends: List[float] = []

    def best_gap(self, want_x: float,
                 width: float) -> Optional[Tuple[float, float]]:
        """(x, |x - want_x|) of the best legal position, or None."""
        lo = self.xlo
        best: Optional[Tuple[float, float]] = None
        for i in range(len(self._starts) + 1):
            hi = self._starts[i] if i < len(self._starts) else self.xhi
            if hi - lo >= width - 1e-9:
                x = min(max(want_x, lo), hi - width)
                cost = abs(x - want_x)
                if best is None or cost < best[1]:
                    best = (x, cost)
                if best is not None and lo > want_x \
                        and best[1] <= lo - want_x:
                    break  # later gaps start even farther right
            if i < len(self._ends):
                lo = max(lo, self._ends[i])
        return best

    def occupy(self, x: float, width: float) -> None:
        i = bisect.bisect_left(self._starts, x)
        self._starts.insert(i, x)
        self._ends.insert(i, x + width)


@dataclass
class LegalizeResult:
    """Displacement statistics of a legalization run."""

    placed: int
    failed: int
    total_displacement: float

    @property
    def mean_displacement(self) -> float:
        return self.total_displacement / self.placed if self.placed else 0.0


def _build_rows(design: Design) -> List[Tuple[float, List[_Segment]]]:
    """Rows (y, free segments) covering the die minus blockages."""
    die = design.die
    rows: List[Tuple[float, List[_Segment]]] = []
    y = die.ylo
    while y + ROW_HEIGHT <= die.yhi + 1e-9:
        row_rect = Rect(die.xlo, y, die.xhi, y + ROW_HEIGHT)
        cut_spans = []
        for blk in design.blockages:
            overlap = blk.rect.intersection(row_rect)
            if overlap is not None and overlap.width > 0 \
                    and overlap.height > 1e-9:
                cut_spans.append((overlap.xlo, overlap.xhi))
        cut_spans.sort()
        segments = []
        x = die.xlo
        for lo, hi in cut_spans:
            if lo > x:
                segments.append(_Segment(x, lo))
            x = max(x, hi)
        if x < die.xhi:
            segments.append(_Segment(x, die.xhi))
        rows.append((y, segments))
        y += ROW_HEIGHT
    return rows


def legalize_rows(design: Design,
                  cells: Optional[Sequence[Cell]] = None,
                  respect_existing: bool = False) -> LegalizeResult:
    """Assign exact, non-overlapping row positions to movable cells.

    Cells are processed left-to-right; each lands in the gap (over all
    candidate rows) minimizing Manhattan displacement.  Returns
    displacement statistics; cells that cannot fit anywhere stay put
    and are counted in ``failed``.

    With ``respect_existing`` the already-placed cells *not* in
    ``cells`` are treated as obstacles — incremental legalization for
    the handful of cells a post-placement transform created or moved.
    """
    if cells is None:
        cells = [c for c in design.netlist.movable_cells() if c.placed]
    rows = _build_rows(design)
    if not rows:
        return LegalizeResult(0, len(list(cells)), 0.0)
    if respect_existing:
        moving = {id(c) for c in cells}
        for other in design.netlist.movable_cells():
            if id(other) in moving or not other.placed \
                    or other.size.width <= 0:
                continue
            box = other.outline()
            for row_y, segments in rows:
                if abs(row_y - box.ylo) > 1e-6:
                    continue
                for seg in segments:
                    if seg.xlo - 1e-9 <= box.xlo and \
                            box.xhi <= seg.xhi + 1e-9:
                        seg.occupy(box.xlo, box.width)
                        break
                break

    # Wide cells first (clock buffers, x16+ drivers): they need the
    # large gaps that fragment once ordinary cells are packed.
    order = sorted(cells, key=lambda c: (-c.size.width,
                                         c.require_position().x,
                                         c.require_position().y,
                                         c.name))
    placed = 0
    failed = 0
    total_disp = 0.0
    netlist = design.netlist
    for cell in order:
        want = cell.require_position()
        width = cell.size.width
        best = None  # (cost, row_y, segment, x)
        for row_y, segments in rows:
            dy = abs(row_y - want.y)
            if best is not None and dy >= best[0]:
                continue  # even a perfect x cannot beat the best found
            for seg in segments:
                gap = seg.best_gap(want.x, width)
                if gap is None:
                    continue
                x, dx = gap
                cost = dx + dy
                if best is None or cost < best[0]:
                    best = (cost, row_y, seg, x)
        if best is None:
            failed += 1
            continue
        cost, row_y, seg, x = best
        netlist.move_cell(cell, Point(x, row_y))
        seg.occupy(x, width)
        total_disp += cost
        placed += 1
    return LegalizeResult(placed, failed, total_disp)


def check_legal(design: Design, tolerance: float = 1e-6) -> List[str]:
    """Overlap/off-die violations among movable cells; empty if legal."""
    problems: List[str] = []
    cells = [c for c in design.netlist.movable_cells()
             if c.placed and c.area > 0]
    outlines = []
    for c in cells:
        box = c.outline()
        if not design.die.contains_rect(box):
            problems.append("%s outside die" % c.name)
        outlines.append((box, c.name))
    by_row = {}
    for box, name in outlines:
        by_row.setdefault(round(box.ylo, 3), []).append(
            (box.xlo, box.xhi, name))
    for row, spans in by_row.items():
        spans.sort()
        for (alo, ahi, aname), (blo, bhi, bname) in zip(spans, spans[1:]):
            if blo < ahi - tolerance:
                problems.append("overlap %s / %s in row %g"
                                % (aname, bname, row))
    return problems
