"""Circuit relocation (section 4.6): min-cost space creation.

"A mincost network optimization algorithm ... determines the best
combination of bin to bin cell moves that frees the local area for
timing optimizations."  The bin grid becomes a flow network: the
target bin supplies the area it must shed, bins with free capacity
absorb it, and flow travels over bin adjacency at unit cost per hop.
Realising the flow moves *non-critical* movable cells one hop at a
time, so critical logic is never disturbed.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.design import Design
from repro.geometry import Point
from repro.image.bins import Bin
from repro.netlist.cell import Cell

#: Flow quantum in track^2 (one minimum-inverter of area).
_AREA_UNIT = 16.0


class CircuitRelocation:
    """Frees area in a bin by min-cost-flow cell migration.

    Either called as a stand-alone transform or from within another
    transform (cloning, buffering) to explicitly create space in a
    certain bin.
    """

    def __init__(self, design: Design) -> None:
        self.design = design
        #: (cell, old position) log of the last make_space call, so a
        #: calling transform can roll everything back on rejection.
        self.journal: List[Tuple[Cell, Point]] = []

    def make_space(self, target: Bin, area_needed: float,
                   protect: Optional[Set[str]] = None) -> bool:
        """Try to free ``area_needed`` track^2 in ``target``.

        ``protect`` names cells that must not move (the critical
        region).  Returns True if the bin ends with at least that much
        free area.
        """
        protect = protect or set()
        self.journal = []
        if target.free_area >= area_needed:
            return True
        deficit = area_needed - target.free_area
        flow = self._solve_flow(target, deficit)
        if flow is None:
            return False
        self._realize_flow(flow, protect)
        return target.free_area >= area_needed - 1e-6

    def undo(self) -> int:
        """Roll back every move of the last ``make_space`` call."""
        count = 0
        for cell, old in reversed(self.journal):
            if cell.netlist is self.design.netlist:
                self.design.netlist.move_cell(cell, old)
                count += 1
        self.journal = []
        return count

    # -- flow model ----------------------------------------------------

    def _solve_flow(self, target: Bin,
                    deficit: float) -> Optional[Dict[Tuple, int]]:
        """Min-cost flow of area quanta from ``target`` to free bins."""
        grid = self.design.grid
        supply = int(math.ceil(deficit / _AREA_UNIT))
        g = nx.DiGraph()
        sink = "SINK"
        total_absorb = 0
        for b in grid.bins():
            node = (b.ix, b.iy)
            g.add_node(node, demand=0)
            if b is not target and b.free_area > 0:
                absorb = int(b.free_area / _AREA_UNIT)
                if absorb > 0:
                    g.add_edge(node, sink, capacity=absorb, weight=0)
                    total_absorb += absorb
        if total_absorb < supply:
            return None
        # Adjacency edges: area may relay through any bin (cells arrive,
        # then depart on a later sweep), so capacity is the full supply;
        # unit cost per hop makes the flow prefer nearby free space.
        for b in grid.bins():
            node = (b.ix, b.iy)
            for nb in grid.neighbors(b):
                g.add_edge(node, (nb.ix, nb.iy), capacity=supply, weight=1)
        g.nodes[(target.ix, target.iy)]["demand"] = -supply
        g.add_node(sink, demand=supply)
        try:
            flow = nx.min_cost_flow(g)
        except nx.NetworkXUnfeasible:
            return None
        out = {}
        for u, targets in flow.items():
            for v, f in targets.items():
                if f > 0 and v != sink and u != sink:
                    out[(u, v)] = f
        return out

    # -- flow realisation ------------------------------------------------

    def _realize_flow(self, flow: Dict[Tuple, int],
                      protect: Set[str]) -> None:
        """Move non-critical cells along flow edges, one hop each.

        Edges are processed in order of remaining outflow so relay bins
        receive cells before they must pass area on.
        """
        grid = self.design.grid
        netlist = self.design.netlist
        remaining = dict(flow)
        # Sweep repeatedly: relay bins must receive cells before they
        # can pass area on, so an edge may only make progress on a
        # later sweep.  Stop when a full sweep moves nothing.
        while remaining:
            progressed = False
            for (u, v), quanta in list(remaining.items()):
                src = grid.bin(*u)
                dst = grid.bin(*v)
                budget = quanta * _AREA_UNIT
                candidates = sorted(
                    (c for c in src.cells
                     if c.is_movable and c.name not in protect),
                    key=lambda c: (-c.area, c.name),
                )
                moved_area = 0.0
                for cell in candidates:
                    if moved_area >= budget - 1e-9:
                        break
                    if cell.area <= budget - moved_area + _AREA_UNIT / 2:
                        self.journal.append((cell, cell.position))
                        netlist.move_cell(cell, dst.center)
                        moved_area += cell.area
                if moved_area <= 0:
                    continue
                progressed = True
                used = max(1, int(round(moved_area / _AREA_UNIT)))
                if quanta - used <= 0:
                    remaining.pop((u, v), None)
                else:
                    remaining[(u, v)] = quanta - used
            if not progressed:
                break
