"""Region bookkeeping shared by the Partitioner and Reflow.

A ``RegionGrid`` is the placer's view of the die: an nx-by-ny array of
rectangular regions, each owning a set of movable cells whose positions
are the region center (the bin abstraction of section 2).  The
partitioner doubles one axis per cut; reflow re-partitions merged
neighbour regions in place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.geometry import Point, Rect
from repro.netlist.cell import Cell
from repro.netlist.netlist import Netlist


class Region:
    """One placement region and the movable cells assigned to it."""

    __slots__ = ("ix", "iy", "rect", "cells")

    def __init__(self, ix: int, iy: int, rect: Rect) -> None:
        self.ix = ix
        self.iy = iy
        self.rect = rect
        self.cells: Set[Cell] = set()

    @property
    def center(self) -> Point:
        return self.rect.center

    def cell_area(self) -> float:
        return sum(c.area for c in self.cells)

    def __repr__(self) -> str:
        return "<Region (%d,%d) %d cells>" % (self.ix, self.iy,
                                              len(self.cells))


class RegionGrid:
    """The nx-by-ny region array; owns cell-to-region assignment."""

    def __init__(self, die: Rect) -> None:
        self.die = die
        self.nx = 1
        self.ny = 1
        self._regions: Dict[Tuple[int, int], Region] = {
            (0, 0): Region(0, 0, die)
        }
        self._owner: Dict[str, Region] = {}

    def region(self, ix: int, iy: int) -> Region:
        return self._regions[(ix, iy)]

    def regions(self) -> List[Region]:
        return [self._regions[(ix, iy)]
                for ix in range(self.nx) for iy in range(self.ny)]

    def region_of(self, cell: Cell) -> Optional[Region]:
        return self._owner.get(cell.name)

    def seed(self, netlist: Netlist) -> None:
        """Assign every movable cell to the single root region."""
        if self.nx != 1 or self.ny != 1:
            raise ValueError("seed() requires an unsplit region grid")
        root = self._regions[(0, 0)]
        root.cells = set(netlist.movable_cells())
        for cell in root.cells:
            self._owner[cell.name] = root
            netlist.move_cell(cell, root.center)

    def assign(self, netlist: Netlist, cell: Cell, region: Region) -> None:
        """Move a cell into ``region`` (position snaps to its center)."""
        old = self._owner.get(cell.name)
        if old is not None:
            old.cells.discard(cell)
        region.cells.add(cell)
        self._owner[cell.name] = region
        netlist.move_cell(cell, region.center)

    def forget(self, cell: Cell) -> None:
        """Drop a (removed) cell from the region bookkeeping."""
        old = self._owner.pop(cell.name, None)
        if old is not None:
            old.cells.discard(cell)

    def split(self, axis: str) -> None:
        """Double the region count along ``axis`` ('x' or 'y').

        Cells stay with the *lower* child; the partitioner immediately
        redistributes them, so the interim assignment is irrelevant —
        it just keeps the invariant that every cell has a region.
        """
        if axis not in ("x", "y"):
            raise ValueError("axis must be 'x' or 'y'")
        new: Dict[Tuple[int, int], Region] = {}
        for (ix, iy), r in self._regions.items():
            if axis == "x":
                midx = (r.rect.xlo + r.rect.xhi) / 2.0
                lo = Region(2 * ix, iy,
                            Rect(r.rect.xlo, r.rect.ylo, midx, r.rect.yhi))
                hi = Region(2 * ix + 1, iy,
                            Rect(midx, r.rect.ylo, r.rect.xhi, r.rect.yhi))
            else:
                midy = (r.rect.ylo + r.rect.yhi) / 2.0
                lo = Region(ix, 2 * iy,
                            Rect(r.rect.xlo, r.rect.ylo, r.rect.xhi, midy))
                hi = Region(ix, 2 * iy + 1,
                            Rect(r.rect.xlo, midy, r.rect.xhi, r.rect.yhi))
            lo.cells = set(r.cells)
            for c in lo.cells:
                self._owner[c.name] = lo
            new[(lo.ix, lo.iy)] = lo
            new[(hi.ix, hi.iy)] = hi
        self._regions = new
        if axis == "x":
            self.nx *= 2
        else:
            self.ny *= 2

    def check(self, netlist: Netlist) -> None:
        """Every movable cell in exactly one region, at its center."""
        seen: Set[str] = set()
        for r in self._regions.values():
            for c in r.cells:
                if c.name in seen:
                    raise AssertionError("cell %s in two regions" % c.name)
                seen.add(c.name)
        movable = {c.name for c in netlist.movable_cells()}
        if seen != movable:
            missing = movable - seen
            extra = seen - movable
            raise AssertionError(
                "region/netlist mismatch: missing=%s extra=%s"
                % (sorted(missing)[:5], sorted(extra)[:5]))
