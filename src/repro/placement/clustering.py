"""Connectivity clustering (one of the §4.1 placement algorithms).

Tightly-connected movable cells are grouped bottom-up by heavy-edge
affinity (rounds of matching until a size/area cap), so the early,
coarse partitioning cuts can move whole clusters instead of individual
cells — fewer FM vertices, less early-decision noise, and naturally
co-located timing-coupled logic.  The Partitioner can be told to cut
cluster-wise for its first cuts (``cluster_first_cuts``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.netlist.cell import Cell

#: Nets wider than this carry no clustering affinity.
_MAX_NET_DEGREE = 10


def _affinities(cells: Sequence[Cell]) -> Dict[Tuple[int, int], float]:
    """Pairwise connectivity weights (clique model on small nets)."""
    index = {id(c): i for i, c in enumerate(cells)}
    weights: Dict[Tuple[int, int], float] = {}
    seen_nets = set()
    for cell in cells:
        for pin in cell.pins():
            net = pin.net
            if net is None or net.name in seen_nets:
                continue
            seen_nets.add(net.name)
            if net.degree > _MAX_NET_DEGREE or net.weight <= 0:
                continue
            members = sorted({index[id(p.cell)] for p in net.pins()
                              if id(p.cell) in index})
            k = len(members)
            if k < 2:
                continue
            share = net.weight / (k - 1)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    weights[(u, v)] = weights.get((u, v), 0.0) + share
    return weights


def cluster_cells(cells: Sequence[Cell], max_cluster_cells: int = 4,
                  max_cluster_area: float = float("inf"),
                  ) -> List[List[Cell]]:
    """Group cells into connectivity clusters.

    Rounds of greedy heavy-edge matching merge the most-affine pairs
    until no merge stays within both caps.  Every input cell appears in
    exactly one output cluster (singletons allowed).
    """
    cells = list(cells)
    clusters: List[List[int]] = [[i] for i in range(len(cells))]
    areas = [cells[i].area for i in range(len(cells))]
    pair_weights = _affinities(cells)

    # cluster-level affinity bootstrapped from cell pairs
    owner = list(range(len(cells)))

    def find(x: int) -> int:
        while owner[x] != x:
            owner[x] = owner[owner[x]]
            x = owner[x]
        return x

    sizes = [1] * len(cells)
    cluster_area = list(areas)
    edges = sorted(pair_weights.items(), key=lambda kv: -kv[1])
    merged = True
    while merged:
        merged = False
        for (u, v), _w in edges:
            ru, rv = find(u), find(v)
            if ru == rv:
                continue
            if sizes[ru] + sizes[rv] > max_cluster_cells:
                continue
            if cluster_area[ru] + cluster_area[rv] > max_cluster_area:
                continue
            owner[rv] = ru
            sizes[ru] += sizes[rv]
            cluster_area[ru] += cluster_area[rv]
            merged = True

    groups: Dict[int, List[Cell]] = {}
    for i, cell in enumerate(cells):
        groups.setdefault(find(i), []).append(cell)
    return [sorted(g, key=lambda c: c.name) for g in groups.values()]
