"""Quadratic (analytic) placement — the SPR baseline's placer.

A GORDIAN-style [14] formulation: minimize sum of squared Euclidean
edge lengths under a clique/star net model with fixed I/O anchors,
solved with conjugate gradients, then spread by recursive
capacity-weighted median bisection.  This is the "commercial quadratic
placer" stand-in of the paper's SPR comparison flow: a *global cost
function* placer with no coupling to the timing analyzer beyond static
net weights.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix
from scipy.sparse.linalg import cg

from repro.design import Design
from repro.geometry import Point, Rect
from repro.netlist.cell import Cell
from repro import _profile as profile

#: Nets up to this degree use a clique model; larger nets use a star.
_CLIQUE_LIMIT = 6
#: Weak pull to the die center so floating components stay bounded.
_ANCHOR_WEIGHT = 1e-4


class QuadraticPlacer:
    """Analytic global placement over a design's movable cells."""

    def __init__(self, design: Design, min_region_cells: int = 8,
                 seed: int = 0) -> None:
        self.design = design
        self.min_region_cells = min_region_cells
        self.seed = seed

    def run(self) -> None:
        """Solve, spread, and commit bin-level positions."""
        movable = [c for c in self.design.netlist.movable_cells()]
        if not movable:
            return
        xs, ys = self._solve(movable)
        positions = self._spread(movable, xs, ys)
        for cell, pos in zip(movable, positions):
            self.design.netlist.move_cell(cell, pos)

    # -- system assembly and solve ----------------------------------------

    def _solve(self, movable: List[Cell]) -> Tuple[np.ndarray, np.ndarray]:
        if (self.design.core == "array"
                and self.design.core_image is not None):
            from repro.core.quad import assemble_system
            laplacian, bx, by = assemble_system(self.design, movable)
            xs, _ = cg(laplacian, bx, rtol=1e-8, maxiter=500)
            ys, _ = cg(laplacian, by, rtol=1e-8, maxiter=500)
            return xs, ys
        _p0 = profile.begin()
        index = {id(c): i for i, c in enumerate(movable)}
        n = len(movable)
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        bx = np.zeros(n)
        by = np.zeros(n)
        diag = np.full(n, _ANCHOR_WEIGHT)
        center = self.design.die.center
        bx += _ANCHOR_WEIGHT * center.x
        by += _ANCHOR_WEIGHT * center.y

        def add_edge(i: Optional[int], pi: Optional[Point],
                     j: Optional[int], pj: Optional[Point],
                     w: float) -> None:
            """Quadratic spring between two endpoints (index or fixed)."""
            if i is not None and j is not None:
                diag[i] += w
                diag[j] += w
                rows.extend((i, j))
                cols.extend((j, i))
                vals.extend((-w, -w))
            elif i is not None and pj is not None:
                diag[i] += w
                bx[i] += w * pj.x
                by[i] += w * pj.y
            elif j is not None and pi is not None:
                diag[j] += w
                bx[j] += w * pi.x
                by[j] += w * pi.y

        for net in self.design.netlist.nets():
            if net.weight <= 0:
                continue
            ends: List[Tuple[Optional[int], Optional[Point]]] = []
            for pin in net.pins():
                i = index.get(id(pin.cell))
                if i is not None:
                    ends.append((i, None))
                elif pin.position is not None:
                    ends.append((None, pin.position))
            k = len(ends)
            if k < 2:
                continue
            if k <= _CLIQUE_LIMIT:
                w = net.weight / (k - 1)
                for a in range(k):
                    for b in range(a + 1, k):
                        add_edge(ends[a][0], ends[a][1],
                                 ends[b][0], ends[b][1], w)
            else:
                # Star model: fixed pseudo-center at the mean of fixed
                # endpoints (or die center), movable members pulled in.
                fixed_pts = [p for _i, p in ends if p is not None]
                if fixed_pts:
                    cx = sum(p.x for p in fixed_pts) / len(fixed_pts)
                    cy = sum(p.y for p in fixed_pts) / len(fixed_pts)
                else:
                    cx, cy = center.x, center.y
                star = Point(cx, cy)
                w = net.weight / k
                for i, p in ends:
                    if i is not None:
                        add_edge(i, None, None, star, w)

        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diag)
        laplacian = csr_matrix(
            coo_matrix((vals, (rows, cols)), shape=(n, n)))
        profile.end("quad.assemble", _p0)
        xs, _ = cg(laplacian, bx, rtol=1e-8, maxiter=500)
        ys, _ = cg(laplacian, by, rtol=1e-8, maxiter=500)
        return xs, ys

    # -- spreading ----------------------------------------------------------

    def _spread(self, movable: List[Cell], xs: np.ndarray,
                ys: np.ndarray) -> List[Point]:
        """Recursive capacity-weighted median bisection."""
        positions: List[Optional[Point]] = [None] * len(movable)
        order = list(range(len(movable)))

        def recurse(idxs: List[int], region: Rect, vertical: bool) -> None:
            if len(idxs) <= self.min_region_cells:
                c = region.center
                for i in idxs:
                    positions[i] = c
                return
            if vertical:
                idxs.sort(key=lambda i: xs[i])
                mid = (region.xlo + region.xhi) / 2.0
                left = Rect(region.xlo, region.ylo, mid, region.yhi)
                right = Rect(mid, region.ylo, region.xhi, region.yhi)
            else:
                idxs.sort(key=lambda i: ys[i])
                mid = (region.ylo + region.yhi) / 2.0
                left = Rect(region.xlo, region.ylo, region.xhi, mid)
                right = Rect(region.xlo, mid, region.xhi, region.yhi)
            cap_l = self.design.effective_capacity(left)
            cap_r = self.design.effective_capacity(right)
            total_cap = cap_l + cap_r
            frac = cap_l / total_cap if total_cap > 0 else 0.5
            total_area = sum(max(movable[i].area, 1.0) for i in idxs)
            want = frac * total_area
            acc = 0.0
            split = 0
            for pos, i in enumerate(idxs):
                if acc >= want:
                    split = pos
                    break
                acc += max(movable[i].area, 1.0)
            else:
                split = len(idxs)
            split = max(1, min(len(idxs) - 1, split))
            recurse(idxs[:split], left, not vertical)
            recurse(idxs[split:], right, not vertical)

        recurse(order, self.design.die,
                self.design.die.width >= self.design.die.height)
        return [p if p is not None else self.design.die.center
                for p in positions]
