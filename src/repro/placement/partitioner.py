"""The Partitioner placement transform.

Recursive min-cut bisection over the region grid, with *terminal
projection* done natively: every partitioning operation sees the whole
netlist and current placement, so connections exiting a region become
fixed vertices on the side of the cut line their projected position
falls on — "no data model set up overhead".

The Partitioner also owns the flow's notion of progress: it reports a
**cut status** between 0 and 100 derived from how far the bins have
refined, and ``run_to(target)`` advances placement to a requested
status (section 5).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.design import Design
from repro.geometry import Point, Rect
from repro.netlist.cell import Cell
from repro.partition import Hypergraph, fm_bipartition, multilevel_bipartition
from repro.placement.regions import Region, RegionGrid

#: Use multilevel partitioning above this many movable vertices.
_MULTILEVEL_THRESHOLD = 150
#: Nets wider than this carry almost no cut signal; skip for speed.
_MAX_NET_DEGREE = 64


def bipartition_cells(design: Design, cells: Sequence[Cell],
                      rect_lo: Rect, rect_hi: Rect, axis: str,
                      seed: int = 0, lookahead: bool = True,
                      tolerance: float = 0.1,
                      initial_sides: Optional[Sequence[int]] = None,
                      groups: Optional[Sequence[Sequence[Cell]]] = None,
                      ) -> Tuple[List[Cell], List[Cell]]:
    """Split ``cells`` across the boundary between two rectangles.

    Returns ``(cells_lo, cells_hi)``.  External connections (pins of
    cells not in the set, or fixed cells) are projected to fixed
    vertices; the area split targets the blockage-aware capacity ratio
    of the two rectangles.

    With ``groups`` (a partition of ``cells`` into clusters), each
    cluster moves as one FM vertex — the clustering placement mode.
    ``initial_sides`` is then per group.
    """
    cells = list(cells)
    if not cells:
        return [], []
    if axis == "x":
        cut_coord = rect_lo.xhi
    else:
        cut_coord = rect_lo.yhi
    window = rect_lo.union(rect_hi)

    if groups is None:
        units: List[List[Cell]] = [[c] for c in cells]
    else:
        units = [list(g) for g in groups if g]
    index = {}
    for vi, unit in enumerate(units):
        for cell in unit:
            index[id(cell)] = vi
    vertex_weights = [max(sum(c.area for c in unit), 1.0)
                      for unit in units]
    nets: List[List[int]] = []
    net_weights: List[float] = []
    fixed = {}

    seen_nets = set()
    for cell in cells:
        for pin in cell.pins():
            net = pin.net
            if net is None or net.name in seen_nets:
                continue
            seen_nets.add(net.name)
            if net.weight <= 0.0 or net.degree > _MAX_NET_DEGREE:
                continue
            members: List[int] = []
            ext_sides = set()
            for p in net.pins():
                vi = index.get(id(p.cell))
                if vi is not None:
                    if vi not in members:
                        members.append(vi)
                    continue
                pos = p.position
                if pos is None:
                    continue
                clamped = window.clamp(pos)
                coord = clamped.x if axis == "x" else clamped.y
                ext_sides.add(0 if coord < cut_coord else 1)
            if len(members) + len(ext_sides) < 2:
                continue
            for side in sorted(ext_sides):
                vi = len(vertex_weights)
                vertex_weights.append(0.0)
                fixed[vi] = side
                members.append(vi)
            nets.append(members)
            net_weights.append(net.weight)

    graph = Hypergraph(vertex_weights, nets, net_weights, fixed)
    cap_lo = design.effective_capacity(rect_lo)
    cap_hi = design.effective_capacity(rect_hi)
    total_cap = cap_lo + cap_hi
    fraction = cap_lo / total_cap if total_cap > 0 else 0.5

    n_units = len(units)
    if initial_sides is not None:
        # Refine an existing assignment (reflow): keep FM flat so the
        # starting point is preserved rather than re-derived.
        init = list(initial_sides) + [fixed[v] for v in
                                      range(n_units, len(vertex_weights))]
        result = fm_bipartition(graph, initial_sides=init,
                                target_fraction=fraction,
                                tolerance=tolerance, seed=seed,
                                lookahead=lookahead)
    elif n_units > _MULTILEVEL_THRESHOLD:
        result = multilevel_bipartition(graph, target_fraction=fraction,
                                        tolerance=tolerance, seed=seed,
                                        lookahead=lookahead)
    else:
        result = fm_bipartition(graph, target_fraction=fraction,
                                tolerance=tolerance, seed=seed,
                                lookahead=lookahead)
    lo: List[Cell] = []
    hi: List[Cell] = []
    for vi, unit in enumerate(units):
        (lo if result.sides[vi] == 0 else hi).extend(unit)
    return lo, hi


def standard_grid_dims(design: Design,
                       total_cuts: Optional[int] = None) -> Tuple[int, int]:
    """The bin grid resolution the Partitioner would finish at.

    Used by flows that do not run the Partitioner (e.g. the SPR
    baseline) so that routing and cut metrics are computed on the same
    image resolution as a TPS run of the same design.
    """
    n_movable = max(2, len(design.netlist.movable_cells()))
    if total_cuts is None:
        total_cuts = max(2, math.ceil(math.log2(n_movable * 2.0)))
    nx = ny = 1
    for _ in range(total_cuts):
        if design.die.width / nx >= design.die.height / ny:
            nx *= 2
        else:
            ny *= 2
    return nx, ny


class Partitioner:
    """Recursive bisection placement over a ``Design``.

    Invoke ``run_to(target_status)`` to advance placement; each cut
    doubles the region grid along its longer axis, re-distributes every
    region's cells by min-cut, snaps positions to region centers, and
    refines the design's bin image to match.
    """

    def __init__(self, design: Design, tolerance: float = 0.1,
                 lookahead: bool = True, seed: int = 0,
                 total_cuts: Optional[int] = None,
                 cluster_first_cuts: int = 0,
                 cluster_size: int = 4,
                 state: Optional[dict] = None) -> None:
        self.design = design
        self.tolerance = tolerance
        self.lookahead = lookahead
        self.seed = seed
        #: during the first N cuts, tightly-connected cells move as
        #: clusters (the §4.1 "clustering" placement algorithm)
        self.cluster_first_cuts = cluster_first_cuts
        self.cluster_size = cluster_size
        self.regions = RegionGrid(design.die)
        if state is not None:
            # Resume path: re-derive region geometry and adopt the
            # serialized membership without touching cell positions
            # (seeding would teleport everything to the die center).
            self.load_state_dict(state)
            return
        self.regions.seed(design.netlist)
        self.cut_number = 0
        n_movable = max(2, len(design.netlist.movable_cells()))
        if total_cuts is None:
            # Refine until bins hold less than one cell on average
            # ("eventually, each bin could contain one cell"), so the
            # final legalization step barely moves anything.
            total_cuts = max(2, math.ceil(math.log2(n_movable * 2.0)))
        self.total_cuts = total_cuts
        self._sync_image()

    # -- status -----------------------------------------------------------

    @property
    def status(self) -> int:
        """Placement progress 0..100, from bin (region) refinement."""
        return min(100, round(100.0 * self.cut_number / self.total_cuts))

    @property
    def done(self) -> bool:
        return self.cut_number >= self.total_cuts

    # -- main entry points --------------------------------------------------

    def run_to(self, target_status: int) -> int:
        """Cut until status reaches ``target_status`` (or placement done).

        Returns the achieved status, per the paper's contract: "attempt
        to bring the design into a state with status number as close as
        possible to the target".
        """
        while self.status < target_status and not self.done:
            self.cut()
        return self.status

    def cut(self) -> None:
        """One partitioning cut across every region."""
        if self.done:
            return
        self.sync()
        axis = self._next_axis()
        self.regions.split(axis)
        cluster_this_cut = self.cut_number < self.cluster_first_cuts
        for lo, hi in self._sibling_pairs(axis):
            cells = sorted(lo.cells, key=lambda c: c.name)
            lo.cells = set()
            for c in cells:
                self.regions._owner.pop(c.name, None)
            groups = None
            if cluster_this_cut and len(cells) > self.cluster_size:
                from repro.placement.clustering import cluster_cells
                groups = cluster_cells(cells,
                                       max_cluster_cells=self.cluster_size)
            side_lo, side_hi = bipartition_cells(
                self.design, cells, lo.rect, hi.rect, axis,
                seed=self.seed + 7919 * self.cut_number + lo.ix * 31 + lo.iy,
                lookahead=self.lookahead, tolerance=self.tolerance,
                groups=groups,
            )
            for c in side_lo:
                self.regions.assign(self.design.netlist, c, lo)
            for c in side_hi:
                self.regions.assign(self.design.netlist, c, hi)
        self.cut_number += 1
        self._sync_image()

    # -- persistence --------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable progress state (geometry is re-derived on load).

        Region *membership* must be recorded explicitly: synthesis
        transforms place new cells at arbitrary positions between cuts,
        so a cell's region is not derivable from where it sits.  Cells
        deleted since the last :meth:`sync` are filtered out — they
        would be dropped by the next sync anyway and may no longer
        exist in the netlist a restore rebuilds.
        """
        netlist = self.design.netlist
        return {
            "cut_number": self.cut_number,
            "total_cuts": self.total_cuts,
            "membership": [
                [r.ix, r.iy,
                 sorted(c.name for c in r.cells
                        if c.netlist is netlist and c.is_movable)]
                for r in self.regions.regions()
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto a fresh region grid.

        The split sequence is deterministic in the die shape and cut
        count, so geometry is replayed rather than stored; cells keep
        their current (snapshot-restored) positions.
        """
        self.cut_number = state["cut_number"]
        self.total_cuts = state["total_cuts"]
        self.regions = RegionGrid(self.design.die)
        for _ in range(self.cut_number):
            self.regions.split(self._next_axis())
        netlist = self.design.netlist
        for ix, iy, names in state["membership"]:
            region = self.regions.region(ix, iy)
            for name in names:
                if not netlist.has_cell(name):
                    continue  # deleted since the snapshot's last sync
                cell = netlist.cell(name)
                region.cells.add(cell)
                self.regions._owner[name] = region

    # -- helpers ------------------------------------------------------------

    def _next_axis(self) -> str:
        rw = self.design.die.width / self.regions.nx
        rh = self.design.die.height / self.regions.ny
        return "x" if rw >= rh else "y"

    def _sibling_pairs(self, axis: str) -> List[Tuple[Region, Region]]:
        pairs = []
        if axis == "x":
            for ix in range(0, self.regions.nx, 2):
                for iy in range(self.regions.ny):
                    pairs.append((self.regions.region(ix, iy),
                                  self.regions.region(ix + 1, iy)))
        else:
            for ix in range(self.regions.nx):
                for iy in range(0, self.regions.ny, 2):
                    pairs.append((self.regions.region(ix, iy),
                                  self.regions.region(ix, iy + 1)))
        return pairs

    def _sync_image(self) -> None:
        """Align the design's bin image and status with the regions."""
        self.design.grid.resize(self.regions.nx, self.regions.ny)
        bin_rect = self.design.grid.bin(0, 0).rect
        self.design.steiner.set_bin_side(
            (bin_rect.width + bin_rect.height) / 2.0)
        self.design.status = self.status

    def sync(self) -> None:
        """Adopt stray cells and drop removed ones.

        Synthesis transforms create and delete cells between cuts; new
        movable cells are adopted into the region containing their
        position (or the least-full region when unplaced).
        """
        netlist = self.design.netlist
        live = {c.name for c in netlist.movable_cells()}
        for region in self.regions.regions():
            dead = [c for c in region.cells if c.name not in live
                    or c.netlist is not netlist or not c.is_movable]
            for c in dead:
                self.regions.forget(c)
        for cell in netlist.movable_cells():
            if self.regions.region_of(cell) is None:
                self._adopt(cell)

    def _adopt(self, cell: Cell) -> None:
        if cell.position is not None:
            target = self._region_at(cell.position)
        else:
            target = min(self.regions.regions(),
                         key=lambda r: r.cell_area())
        # Keep the cell's exact position if it has one (transforms pick
        # positions deliberately); just track region membership.
        pos = cell.position
        self.regions.assign(self.design.netlist, cell,
                            target)
        if pos is not None:
            self.design.netlist.move_cell(cell, pos)

    def _region_at(self, point: Point) -> Region:
        die = self.design.die
        p = die.clamp(point)
        ix = min(self.regions.nx - 1,
                 int((p.x - die.xlo) / (die.width / self.regions.nx)))
        iy = min(self.regions.ny - 1,
                 int((p.y - die.ylo) / (die.height / self.regions.ny)))
        return self.regions.region(ix, iy)
