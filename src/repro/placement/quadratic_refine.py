"""Quadratic refinement within regions (§4.1 lists "quadratic" among
the placement algorithms deployed within TPS).

Mid-flow, each region holds a handful of co-located cells.  This
transform re-solves the quadratic wirelength minimisation *inside* a
region — cells outside act as fixed anchors — and keeps the solution
if it shortens the weighted wirelength of the touched nets.  Unlike the
stand-alone GORDIAN baseline this is analyzer-coupled and local: a
refinement transform like any other, freely mixable into scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.design import Design
from repro.geometry import Point
from repro.netlist.cell import Cell
from repro import _profile as profile


class QuadraticRefine:
    """Per-region quadratic placement refinement."""

    name = "quadratic_refine"

    def __init__(self, min_cells: int = 3, max_cells: int = 40) -> None:
        self.min_cells = min_cells
        self.max_cells = max_cells

    def run(self, design: Design) -> int:
        """Refine every bin's cell group; returns accepted regions."""
        accepted = 0
        for b in design.grid.bins():
            cells = sorted((c for c in b.cells if c.is_movable),
                           key=lambda c: c.name)
            if not (self.min_cells <= len(cells) <= self.max_cells):
                continue
            if self._refine_group(design, cells, b):
                accepted += 1
        return accepted

    # -- internals -------------------------------------------------------

    def _local_wl(self, design: Design, cells: List[Cell]) -> float:
        seen = set()
        total = 0.0
        for cell in cells:
            for pin in cell.pins():
                net = pin.net
                if net is None or net.name in seen:
                    continue
                seen.add(net.name)
                total += net.weight * design.steiner.length(net)
        return total

    def _refine_group(self, design: Design, cells: List[Cell],
                      b) -> bool:
        if design.core == "array" and design.core_image is not None:
            from repro.core.quad import assemble_dense
            laplacian, bx, by = assemble_dense(design, cells, b.rect)
            return self._try_solution(design, cells, b, laplacian, bx, by)
        _p0 = profile.begin()
        index = {id(c): i for i, c in enumerate(cells)}
        n = len(cells)
        laplacian = np.full((n, n), 0.0)
        diag = np.full(n, 1e-6)
        bx = np.zeros(n)
        by = np.zeros(n)
        center = b.rect.center
        bx += 1e-6 * center.x
        by += 1e-6 * center.y

        seen = set()
        for cell in cells:
            for pin in cell.pins():
                net = pin.net
                if net is None or net.name in seen or net.weight <= 0:
                    continue
                seen.add(net.name)
                ends = []
                for p in net.pins():
                    i = index.get(id(p.cell))
                    if i is not None:
                        ends.append((i, None))
                    elif p.position is not None:
                        ends.append((None, p.position))
                k = len(ends)
                if k < 2 or k > 10:
                    continue
                w = net.weight / (k - 1)
                for a in range(k):
                    for c in range(a + 1, k):
                        ia, pa = ends[a]
                        ic, pc = ends[c]
                        if ia is not None and ic is not None:
                            diag[ia] += w
                            diag[ic] += w
                            laplacian[ia][ic] -= w
                            laplacian[ic][ia] -= w
                        elif ia is not None:
                            diag[ia] += w
                            bx[ia] += w * pc.x
                            by[ia] += w * pc.y
                        elif ic is not None:
                            diag[ic] += w
                            bx[ic] += w * pa.x
                            by[ic] += w * pa.y
        np.fill_diagonal(laplacian, diag)
        profile.end("quad.dense", _p0)
        return self._try_solution(design, cells, b, laplacian, bx, by)

    def _try_solution(self, design: Design, cells: List[Cell], b,
                      laplacian: np.ndarray, bx: np.ndarray,
                      by: np.ndarray) -> bool:
        try:
            xs = np.linalg.solve(laplacian, bx)
            ys = np.linalg.solve(laplacian, by)
        except np.linalg.LinAlgError:
            return False

        netlist = design.netlist
        old = [c.require_position() for c in cells]
        before = self._local_wl(design, cells)
        # keep strictly inside the bin: its upper boundary belongs to
        # the neighbouring bin in the image's indexing
        margin = min(0.25, b.rect.width / 8.0, b.rect.height / 8.0)
        interior = b.rect.expanded(-margin)
        for cell, x, y in zip(cells, xs, ys):
            target = interior.clamp(Point(float(x), float(y)))
            netlist.move_cell(cell, target)
        if self._local_wl(design, cells) < before - 1e-9:
            return True
        for cell, p in zip(cells, old):
            netlist.move_cell(cell, p)
        return False
