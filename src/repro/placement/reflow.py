"""The Reflow placement transform.

Strict bipartitioning "traps" objects: early decisions fence logic into
geometric areas it cannot escape.  Reflow deploys sliding windows that
roam around the chip between partitioning steps — each window merges
two adjacent regions (crossing an *earlier* cut line) and re-partitions
the union, letting logic flow back.  Windows start off large (early,
when regions are large) and progress to small as the grid refines.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.design import Design
from repro.placement.partitioner import Partitioner, bipartition_cells
from repro.placement.regions import Region


class Reflow:
    """Sliding-window re-partitioning over a Partitioner's regions."""

    def __init__(self, partitioner: Partitioner,
                 tolerance: float = 0.1, lookahead: bool = True) -> None:
        self.partitioner = partitioner
        self.tolerance = tolerance
        self.lookahead = lookahead
        self._pass_count = 0

    @property
    def design(self) -> Design:
        return self.partitioner.design

    @property
    def pass_count(self) -> int:
        """Completed passes; feeds the per-window seeds, so resumed
        runs restore it to keep the seed sequence aligned."""
        return self._pass_count

    @pass_count.setter
    def pass_count(self, value: int) -> None:
        self._pass_count = value

    def run(self) -> int:
        """One full reflow pass (both axes, both window offsets).

        Returns the number of cells that changed region.
        """
        self.partitioner.sync()
        moved = 0
        regions = self.partitioner.regions
        for axis in ("x", "y"):
            for offset in (1, 0):
                for lo, hi in self._window_pairs(axis, offset):
                    moved += self._reflow_window(lo, hi, axis)
        self._pass_count += 1
        return moved

    # -- internals ----------------------------------------------------

    def _window_pairs(self, axis: str,
                      offset: int) -> List[Tuple[Region, Region]]:
        """Adjacent region pairs; offset 1 crosses older cut lines."""
        regions = self.partitioner.regions
        pairs = []
        if axis == "x":
            for ix in range(offset, regions.nx - 1, 2):
                for iy in range(regions.ny):
                    pairs.append((regions.region(ix, iy),
                                  regions.region(ix + 1, iy)))
        else:
            for ix in range(regions.nx):
                for iy in range(offset, regions.ny - 1, 2):
                    pairs.append((regions.region(ix, iy),
                                  regions.region(ix, iy + 1)))
        return pairs

    def _reflow_window(self, lo: Region, hi: Region, axis: str) -> int:
        """Merge two regions, re-partition, count membership changes."""
        cells = (sorted(lo.cells, key=lambda c: c.name)
                 + sorted(hi.cells, key=lambda c: c.name))
        if len(cells) < 2:
            return 0
        before = {c.name: (self.partitioner.regions.region_of(c))
                  for c in cells}
        initial = [0 if before[c.name] is lo else 1 for c in cells]
        side_lo, side_hi = bipartition_cells(
            self.design, cells, lo.rect, hi.rect, axis,
            seed=(self.partitioner.seed + 104729 * self._pass_count
                  + lo.ix * 131 + lo.iy * 7),
            lookahead=self.lookahead, tolerance=self.tolerance,
            initial_sides=initial,
        )
        moved = 0
        netlist = self.design.netlist
        for c in side_lo:
            if before[c.name] is not lo:
                moved += 1
            self.partitioner.regions.assign(netlist, c, lo)
        for c in side_hi:
            if before[c.name] is not hi:
                moved += 1
            self.partitioner.regions.assign(netlist, c, hi)
        return moved
