"""Placement transforms (section 4.1 of the paper).

The placement *function* is decomposed into transforms, each
addressing one phase of the problem:

* ``Partitioner`` — recursive min-cut bisection with terminal
  projection; reports the flow's cut status 0..100;
* ``Reflow`` — sliding windows that let logic flow back across cut
  lines the strict bipartitioner froze;
* ``DetailedPlaceOpt`` — greedy windowed swap/permutation improvement;
* ``QuadraticPlacer`` — GORDIAN-style analytic placement (the SPR
  baseline's stand-alone placer);
* ``legalize_rows`` — final row/site legalization;
* ``CircuitRelocation`` — min-cost-flow bin-to-bin space creation
  (section 4.6).
"""

from repro.placement.partitioner import Partitioner
from repro.placement.reflow import Reflow
from repro.placement.detailed import DetailedPlaceOpt
from repro.placement.quadratic import QuadraticPlacer
from repro.placement.legalize import legalize_rows
from repro.placement.relocation import CircuitRelocation
from repro.placement.clustering import cluster_cells
from repro.placement.quadratic_refine import QuadraticRefine

__all__ = [
    "Partitioner",
    "Reflow",
    "DetailedPlaceOpt",
    "QuadraticPlacer",
    "legalize_rows",
    "CircuitRelocation",
    "cluster_cells",
    "QuadraticRefine",
]
