"""Detailed placement optimization (algorithm *DetailedPlaceOpt*).

A small window (approximately large enough for ~20 objects) slides
across the chip; within each window every pair swap and small-subset
permutation of positions is tried, the best move is scored — weighted
wire length, optionally timing — accepted if it improves, and rejected
otherwise.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, List, Sequence, Set

from repro.design import Design
from repro.geometry import Point
from repro.netlist.cell import Cell


class DetailedPlaceOpt:
    """Greedy windowed swap/permutation improvement.

    ``timing_weight`` > 0 adds a worst-slack term to the score (the
    paper's "scoring function includes timing, noise and area
    objectives"); the incremental timing engine makes per-move slack
    queries affordable.
    """

    def __init__(self, design: Design, window_cells: int = 20,
                 permutation_size: int = 4, timing_weight: float = 0.0,
                 legal_mode: bool = False, seed: int = 0) -> None:
        self.design = design
        self.window_cells = window_cells
        self.permutation_size = min(permutation_size, 6)
        self.timing_weight = timing_weight
        #: Only exchange positions among equal-width cells, so a legal
        #: placement stays legal (used after row legalization).
        self.legal_mode = legal_mode
        self.rng = random.Random(seed)

    # -- scoring --------------------------------------------------------

    def _local_wl(self, cells: Sequence[Cell]) -> float:
        """Weighted Steiner length of all nets touching ``cells``."""
        seen: Set[str] = set()
        total = 0.0
        for cell in cells:
            for pin in cell.pins():
                net = pin.net
                if net is None or net.name in seen:
                    continue
                seen.add(net.name)
                total += net.weight * self.design.steiner.length(net)
        return total

    def _score(self, cells: Sequence[Cell]) -> float:
        score = self._local_wl(cells)
        if self.timing_weight > 0:
            slack = self.design.timing.worst_slack()
            if slack < float("inf"):
                score += self.timing_weight * max(0.0, -slack)
        return score

    # -- move application -------------------------------------------------

    def _try_positions(self, cells: List[Cell],
                       positions: List[Point]) -> bool:
        """Tentatively place ``cells`` at ``positions``; keep if better."""
        old = [c.require_position() for c in cells]
        before = self._score(cells)
        netlist = self.design.netlist
        for c, p in zip(cells, positions):
            netlist.move_cell(c, p)
        if self._fits(cells) and self._score(cells) < before - 1e-9:
            return True
        for c, p in zip(cells, old):
            netlist.move_cell(c, p)
        return False

    def _fits(self, cells: Sequence[Cell]) -> bool:
        """No bin holding one of ``cells`` may be overfilled."""
        grid = self.design.grid
        bins = {grid.bin_of(c) for c in cells}
        return all(b is None or not b.overfilled for b in bins)

    # -- window generation -------------------------------------------------

    def _windows(self) -> List[List[Cell]]:
        """Slide over the bin grid, grouping ~window_cells objects."""
        grid = self.design.grid
        windows: List[List[Cell]] = []
        current: List[Cell] = []
        for b in grid.bins():
            movable = sorted((c for c in b.cells if c.is_movable),
                             key=lambda c: c.name)
            current.extend(movable)
            if len(current) >= self.window_cells:
                windows.append(current)
                current = []
        if len(current) >= 2:
            windows.append(current)
        return windows

    # -- main entry ---------------------------------------------------------

    def run(self) -> int:
        """One full sweep; returns the number of accepted moves."""
        accepted = 0
        for window in self._windows():
            accepted += self._optimize_window(window)
        return accepted

    def _optimize_window(self, window: List[Cell]) -> int:
        accepted = 0
        # Pairwise swaps: "try swapping with each of the other objects".
        for i in range(len(window)):
            for j in range(i + 1, len(window)):
                a, b = window[i], window[j]
                if self.legal_mode and a.size.width != b.size.width:
                    continue
                pa, pb = a.require_position(), b.require_position()
                if pa == pb:
                    continue
                if self._try_positions([a, b], [pb, pa]):
                    accepted += 1
        # "pick several objects, and try all permutations of reordering".
        pool = window
        if self.legal_mode:
            # permute within the most common width class only
            by_width: Dict[float, List[Cell]] = {}
            for c in window:
                by_width.setdefault(c.size.width, []).append(c)
            pool = max(by_width.values(), key=len)
        if len(pool) >= 3:
            k = min(self.permutation_size, len(pool))
            chosen = self.rng.sample(pool, k)
            original = [c.require_position() for c in chosen]
            best_perm = None
            before = self._score(chosen)
            for perm in itertools.permutations(range(k)):
                if list(perm) == list(range(k)):
                    continue
                netlist = self.design.netlist
                for c, idx in zip(chosen, perm):
                    netlist.move_cell(c, original[idx])
                if self._fits(chosen):
                    score = self._score(chosen)
                    if score < before - 1e-9:
                        before = score
                        best_perm = perm
                for c, p in zip(chosen, original):
                    netlist.move_cell(c, p)
            if best_perm is not None:
                netlist = self.design.netlist
                for c, idx in zip(chosen, best_perm):
                    netlist.move_cell(c, original[idx])
                accepted += 1
        return accepted
