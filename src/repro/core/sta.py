"""Array kernel for the incremental STA frontier sweep.

The object-graph engine (:mod:`repro.timing.engine`) flushes its dirty
sets with a levelized heap, recomputing one pin at a time.  Because
every timing arc goes from a strictly lower to a strictly higher level
(arrivals) — and the reverse for requireds — that heap order is
equivalent to an ascending (resp. descending) level-by-level sweep in
which each dirty pin is processed exactly once.  This kernel runs that
sweep over index arrays: the frontier at each level is an ``int`` array
and the node equations are vectorized gathers/segment-reductions.

Bit-equivalence contract (pinned by ``tests/core``):

* every float op replicates the object path's operand values and
  operation order (numpy float64 elementwise ops are IEEE-identical
  to the scalar ops they batch);
* segment max/min use ``reduceat`` — order-insensitive, so they equal
  the object path's ``max()``/``min()`` over the same values;
* net electrical views are shared with the engine's ``_net_elec``
  cache and analyzed for exactly the nets the object path would
  touch (including the finite-required gating of ``gate_delay``), so
  Steiner/analyze counters stay identical;
* damping, dirty-set growth, and the ``arrival_recomputes`` /
  ``arrival_changes`` / ``required_recomputes`` counters match the
  object path by construction;
* the engine's value dicts are updated for every changed pin, so all
  point queries (``slack``, ``arrival`` …) read identical state.

Attributes the object graph mutates *without* events — ``cell.gain``,
``cell.size`` (virtual resizes bypass the timing listener) — are
gathered live per flush for frontier cells only, which is both correct
(the object path reads them live at recompute) and O(frontier).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.library.types import TAU
from repro.timing.engine import _EPS, INF, DelayMode
from repro.timing.graph import TimingGraph

# arrival node kinds
_A_IN = 0      # input pin: wire arc from its net's driver
_A_PORT = 1    # output pin of a primary-input port
_A_CELL = 2    # output pin with fanin cell arcs
_A_ZERO = 3    # output pin with no fanin cell arcs

# required node kinds
_R_CAP = 0     # register D: setup check against the capture clock
_R_PORT = 1    # primary-output port input pin
_R_COMB = 2    # input pin with fanout cell arcs
_R_NONE = 3    # input pin with no fanout cell arcs
_R_OUT = 4     # output pin: back through net arcs


def _csr_ranges(start: np.ndarray, idx: np.ndarray):
    """Flat gather indices + per-row counts for CSR rows ``idx``."""
    cnt = start[idx + 1] - start[idx]
    total = int(cnt.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), cnt
    off = np.cumsum(cnt) - cnt
    flat = (np.arange(total, dtype=np.int64)
            - np.repeat(off, cnt) + np.repeat(start[idx], cnt))
    return flat, cnt


def _seg_starts(cnt: np.ndarray) -> np.ndarray:
    """reduceat segment offsets for per-row counts (all rows > 0)."""
    out = np.cumsum(cnt)
    out[1:] = out[:-1]
    out[0] = 0
    return out


class _TimingImage:
    """Frozen index arrays for one timing-graph generation.

    Built whenever the engine re-levelizes (structural edits null the
    graph); value arrays are carried over from the engine's dicts so a
    rebuilt image continues exactly where the previous one stopped.
    """

    def __init__(self, engine, graph: TimingGraph) -> None:
        self.graph = graph
        nl = engine.netlist
        pins = list(graph.pins())
        n = len(pins)
        self.n = n
        self.pins = pins
        self.pidx: Dict[int, int] = {id(p): i for i, p in enumerate(pins)}
        self.fname = [p.full_name for p in pins]
        self.level = np.fromiter(
            (graph.level_of(p) for p in pins), dtype=np.int64, count=n)
        self.max_level = int(self.level.max()) if n else 0

        cells = nl.cells()
        self.cells = cells
        cidx = {id(c): i for i, c in enumerate(cells)}
        self.cidx = cidx

        # per-cell size-derived scalars; size mutations always flow
        # through the evented resize_cell API (the same contract the
        # CoreImage occupancy arrays rely on), so these stay current
        # via note_resize.  Gains are NOT cached: transforms assign
        # cell.gain directly, so kernels gather it live per frontier.
        ncells = len(cells)
        self.c_par = np.zeros(ncells)
        self.c_le = np.zeros(ncells)
        self.c_intr = np.zeros(ncells)
        self.c_drive = np.zeros(ncells)
        for ci, c in enumerate(cells):
            t = c.size.gate_type
            self.c_par[ci] = t.parasitic
            self.c_le[ci] = t.logical_effort
            self.c_intr[ci] = c.size.intrinsic_delay
            self.c_drive[ci] = c.size.drive_resistance

        nets = nl.nets()
        self.nets = nets
        nidx = {id(nt): j for j, nt in enumerate(nets)}
        self.owner = np.zeros(n, dtype=np.int64)
        self.net_of = np.full(n, -1, dtype=np.int64)
        self.driver_of = np.full(n, -1, dtype=np.int64)
        self.df = np.zeros(n)
        self.akind = np.zeros(n, dtype=np.int8)
        self.rkind = np.zeros(n, dtype=np.int8)
        self.ck_of = np.full(n, -1, dtype=np.int64)
        self.pin_clock_seq = np.zeros(n, dtype=bool)

        fi_cell: List[List[int]] = [[] for _ in range(n)]
        fo_cell: List[List[int]] = [[] for _ in range(n)]
        ao: List[List[int]] = [[] for _ in range(n)]
        ai: List[List[int]] = [[] for _ in range(n)]
        for i, pin in enumerate(pins):
            for src, kind in graph.fanin_arcs(pin):
                s = self.pidx[id(src)]
                ai[i].append(s)
                if kind == "cell":
                    fi_cell[i].append(s)
            for dst, kind in graph.fanout_arcs(pin):
                d = self.pidx[id(dst)]
                ao[i].append(d)
                if kind == "cell":
                    fo_cell[i].append(d)

        cap: List[List[int]] = [[] for _ in range(n)]
        for i, pin in enumerate(pins):
            cell = pin.cell
            self.owner[i] = cidx[id(cell)]
            self.df[i] = pin.spec.delay_factor
            if pin.net is not None:
                self.net_of[i] = nidx[id(pin.net)]
                driver = pin.net.driver()
                if driver is not None:
                    self.driver_of[i] = self.pidx[id(driver)]
            if pin.is_output:
                if cell.is_port:
                    self.akind[i] = _A_PORT
                elif fi_cell[i]:
                    self.akind[i] = _A_CELL
                else:
                    self.akind[i] = _A_ZERO
                self.rkind[i] = _R_OUT
            else:
                self.akind[i] = _A_IN
                if (cell.is_sequential and not pin.is_clock
                        and not pin.is_scan):
                    self.rkind[i] = _R_CAP
                    try:
                        self.ck_of[i] = self.pidx[id(cell.pin("CK"))]
                    except KeyError:
                        pass
                elif cell.is_port:
                    self.rkind[i] = _R_PORT
                elif fo_cell[i]:
                    self.rkind[i] = _R_COMB
                else:
                    self.rkind[i] = _R_NONE
            if pin.is_clock and cell.is_sequential:
                self.pin_clock_seq[i] = True
                cap[i] = [self.pidx[id(d)] for d in cell.input_pins()
                          if not d.is_clock]

        def _csr(rows: List[List[int]]):
            start = np.zeros(n + 1, dtype=np.int64)
            for i, row in enumerate(rows):
                start[i + 1] = start[i] + len(row)
            data = np.fromiter(
                (v for row in rows for v in row), dtype=np.int64,
                count=int(start[-1]))
            return start, data

        self.fi_start, self.fi_src = _csr(fi_cell)
        self.fo_start, self.fo_dst = _csr(fo_cell)
        self.ao_start, self.ao_dst = _csr(ao)
        self.ai_start, self.ai_src = _csr(ai)
        self.cap_start, self.cap_pin = _csr(cap)

        # net sink spans (input pins in net pin-list order) + shared
        # electrical scatter targets
        nnets = len(nets)
        ns_start = np.zeros(nnets + 1, dtype=np.int64)
        ns_pin: List[int] = []
        for j, net in enumerate(nets):
            for p in net._pins:
                if p.is_input:
                    ns_pin.append(self.pidx[id(p)])
            ns_start[j + 1] = len(ns_pin)
        self.ns_start = ns_start
        self.ns_pin = np.asarray(ns_pin, dtype=np.int64)
        self.net_valid = np.zeros(nnets, dtype=bool)
        self.ncap = np.zeros(nnets)
        self.wdel = np.zeros(n)
        self.elec_seen: List[Optional[object]] = [None] * nnets
        self.nidx = nidx

        # endpoints, in the exact order engine.endpoints() yields them
        ep: List[int] = []
        for cell in cells:
            if cell.is_sequential:
                try:
                    ep.append(self.pidx[id(cell.pin("D"))])
                except KeyError:
                    pass
            elif cell.is_port:
                ep.extend(self.pidx[id(p)] for p in cell.input_pins())
        self.ep = np.asarray(ep, dtype=np.int64)

        # value arrays, carried from the engine's (authoritative) dicts
        self.arr_l = np.zeros(n)
        self.arr_e = np.zeros(n)
        self.req = np.zeros(n)
        self.has_arr = np.zeros(n, dtype=bool)
        self.has_req = np.zeros(n, dtype=bool)
        arr, arrm, reqd = engine._arrival, engine._arrival_min, engine._required
        for i, pin in enumerate(pins):
            v = arr.get(pin)
            if v is not None:
                self.arr_l[i] = v
                self.arr_e[i] = arrm[pin]
                self.has_arr[i] = True
            r = reqd.get(pin)
            if r is not None:
                self.req[i] = r
                self.has_req[i] = True

    def note_resize(self, cell) -> None:
        """Refresh the cached size-derived scalars of one cell."""
        ci = self.cidx.get(id(cell))
        if ci is None:
            return
        t = cell.size.gate_type
        self.c_par[ci] = t.parasitic
        self.c_le[ci] = t.logical_effort
        self.c_intr[ci] = cell.size.intrinsic_delay
        self.c_drive[ci] = cell.size.drive_resistance


class ArrayStaKernel:
    """Levelized array sweep replacing the engine's per-pin heap."""

    def __init__(self) -> None:
        self._image: Optional[_TimingImage] = None
        self._stats = {"sweeps": 0, "image_builds": 0,
                       "frontier_pins": 0, "levels_swept": 0}

    def stats(self) -> Dict[str, int]:
        return dict(self._stats)

    def drop(self) -> None:
        """Forget the image (value barrier: ``invalidate_all``)."""
        self._image = None

    def net_touched(self, net) -> None:
        """A net's electrical view was invalidated by the engine."""
        im = self._image
        if im is not None:
            j = im.nidx.get(id(net))
            if j is not None:
                im.net_valid[j] = False

    def cell_resized(self, cell) -> None:
        """A cell's size changed (engine ``on_cell_resized``)."""
        if self._image is not None:
            self._image.note_resize(cell)

    def ready(self, engine) -> bool:
        im = self._image
        return im is not None and im.graph is engine._graph

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------

    def flush(self, engine, graph: TimingGraph) -> None:
        im = self._image
        if im is None or im.graph is not graph:
            im = self._image = _TimingImage(engine, graph)
            self._stats["image_builds"] += 1
        self._stats["sweeps"] += 1
        req_extra = self._sweep_arrivals(engine, im)
        self._sweep_requireds(engine, im, req_extra)

    def _seed(self, im: _TimingImage, pins) -> np.ndarray:
        return np.fromiter((im.pidx[id(p)] for p in pins),
                           dtype=np.int64, count=len(pins))

    @staticmethod
    def _bucket(buckets, levels: np.ndarray, idx: np.ndarray) -> None:
        order = np.argsort(levels, kind="stable")
        sidx = idx[order]
        ulv, starts = np.unique(levels[order], return_index=True)
        for lv, piece in zip(ulv.tolist(),
                             np.split(sidx, starts[1:])):
            if buckets[lv] is None:
                buckets[lv] = []
            buckets[lv].append(piece)

    def _sweep_arrivals(self, engine, im: _TimingImage) -> np.ndarray:
        req_extra = np.zeros(im.n, dtype=bool)
        if not engine._dirty_arr:
            return req_extra
        stats = engine._stats
        nlev = im.max_level + 1
        in_d = np.zeros(im.n, dtype=bool)
        idx = self._seed(im, engine._dirty_arr)
        in_d[idx] = True
        buckets: List[Optional[List[np.ndarray]]] = [None] * nlev
        self._bucket(buckets, im.level[idx], idx)
        ch_idx: List[np.ndarray] = []
        ch_l: List[np.ndarray] = []
        ch_e: List[np.ndarray] = []

        for lv in range(nlev):
            chunks = buckets[lv]
            if not chunks:
                continue
            f = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            f = f[in_d[f]]
            if f.size == 0:
                continue
            in_d[f] = False
            self._stats["levels_swept"] += 1
            self._stats["frontier_pins"] += int(f.size)
            stats["arrival_recomputes"] += int(f.size)
            new_l, new_e = self._arrival_values(engine, im, f)
            keep = (im.has_arr[f]
                    & (np.abs(new_l - im.arr_l[f]) <= _EPS)
                    & (np.abs(new_e - im.arr_e[f]) <= _EPS))
            ch = f[~keep]
            if ch.size == 0:
                continue
            stats["arrival_changes"] += int(ch.size)
            vl = new_l[~keep]
            ve = new_e[~keep]
            im.arr_l[ch] = vl
            im.arr_e[ch] = ve
            im.has_arr[ch] = True
            ch_idx.append(ch)
            ch_l.append(vl)
            ch_e.append(ve)
            flat, _cnt = _csr_ranges(im.ao_start, ch)
            if flat.size:
                dsts = np.unique(im.ao_dst[flat])
                dsts = dsts[~in_d[dsts]]
                if dsts.size:
                    in_d[dsts] = True
                    self._bucket(buckets, im.level[dsts], dsts)
            cm = im.pin_clock_seq[ch]
            if cm.any():
                flat, _cnt = _csr_ranges(im.cap_start, ch[cm])
                if flat.size:
                    req_extra[im.cap_pin[flat]] = True

        arr, arrm = engine._arrival, engine._arrival_min
        pins = im.pins
        for chunk, vl, ve in zip(ch_idx, ch_l, ch_e):
            for i, late, early in zip(chunk.tolist(), vl.tolist(),
                                      ve.tolist()):
                p = pins[i]
                arr[p] = late
                arrm[p] = early
        engine._dirty_arr.clear()
        return req_extra

    def _sweep_requireds(self, engine, im: _TimingImage,
                         req_extra: np.ndarray) -> None:
        if engine._dirty_req:
            idx = self._seed(im, engine._dirty_req)
            req_extra[idx] = True
        if not req_extra.any():
            engine._dirty_req.clear()
            return
        stats = engine._stats
        nlev = im.max_level + 1
        in_d = req_extra
        idx = np.nonzero(in_d)[0]
        buckets: List[Optional[List[np.ndarray]]] = [None] * nlev
        self._bucket(buckets, im.level[idx], idx)
        ch_idx: List[np.ndarray] = []
        ch_v: List[np.ndarray] = []

        for lv in range(nlev - 1, -1, -1):
            chunks = buckets[lv]
            if not chunks:
                continue
            f = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            f = f[in_d[f]]
            if f.size == 0:
                continue
            in_d[f] = False
            self._stats["levels_swept"] += 1
            self._stats["frontier_pins"] += int(f.size)
            stats["required_recomputes"] += int(f.size)
            new = self._required_values(engine, im, f)
            old = im.req[f]
            with np.errstate(invalid="ignore"):
                keep = (im.has_req[f]
                        & ((np.isinf(new) & np.isinf(old) & (new == old))
                           | (np.abs(new - old) <= _EPS)))
            ch = f[~keep]
            if ch.size == 0:
                continue
            v = new[~keep]
            im.req[ch] = v
            im.has_req[ch] = True
            ch_idx.append(ch)
            ch_v.append(v)
            flat, _cnt = _csr_ranges(im.ai_start, ch)
            if flat.size:
                srcs = np.unique(im.ai_src[flat])
                srcs = srcs[~in_d[srcs]]
                if srcs.size:
                    in_d[srcs] = True
                    self._bucket(buckets, im.level[srcs], srcs)

        reqd = engine._required
        pins = im.pins
        for chunk, vv in zip(ch_idx, ch_v):
            for i, value in zip(chunk.tolist(), vv.tolist()):
                reqd[pins[i]] = value
        engine._dirty_req.clear()

    # ------------------------------------------------------------------
    # Node equations (vectorized twins of _compute_arrival/_required)
    # ------------------------------------------------------------------

    def _ensure_nets(self, engine, im: _TimingImage,
                     nets: np.ndarray) -> None:
        """Scatter electrical views for the nets a frontier touches.

        Shares the engine's ``_net_elec`` cache: a net analyzed here is
        analyzed exactly when (and only when) the object path would
        have called ``net_electrical`` for it, so Steiner/analyze
        counters and the cache's contents stay identical.
        """
        if nets.size == 0:
            return
        for j in np.unique(nets[~im.net_valid[nets]]).tolist():
            net = im.nets[j]
            elec = engine._net_elec.get(net.name)
            if elec is None:
                elec = engine.net_electrical(net)
            if im.elec_seen[j] is not elec:
                im.ncap[j] = elec.total_cap
                delays = elec.sink_wire_delay
                span = im.ns_pin[im.ns_start[j]:im.ns_start[j + 1]]
                if delays:
                    for k in span:
                        im.wdel[k] = delays.get(im.fname[k], 0.0)
                else:  # lumped models (WLM) carry no per-sink delay
                    im.wdel[span] = 0.0
                im.elec_seen[j] = elec
            im.net_valid[j] = True

    def _gain_delay(self, engine, im: _TimingImage,
                    owners: np.ndarray) -> np.ndarray:
        """Per-element gate delay under GAIN mode.

        Gains are gathered live per unique frontier cell — transforms
        assign ``cell.gain`` directly, with no event — exactly as the
        object path reads them at recompute time.  The size-derived
        effort terms come from the image's resize-maintained cache.
        """
        u, inv = np.unique(owners, return_inverse=True)
        default = engine.default_gain
        cells = im.cells
        gains = np.fromiter(
            (default if cells[ci].gain is None else cells[ci].gain
             for ci in u.tolist()),
            dtype=float, count=u.size)
        vals = TAU * (im.c_par[u] + im.c_le[u] * gains)
        return vals[inv]

    @staticmethod
    def _load_parts(im: _TimingImage, owners: np.ndarray):
        """Intrinsic/drive terms for LOAD-mode gate delay (cached per
        cell, refreshed by resize events)."""
        return im.c_intr[owners], im.c_drive[owners]

    def _arrival_values(self, engine, im: _TimingImage, f: np.ndarray):
        kinds = im.akind[f]
        new_l = np.zeros(f.size)
        new_e = np.zeros(f.size)
        ef = engine.early_factor
        load_mode = engine.mode is DelayMode.LOAD

        m = kinds == _A_IN
        if m.any():
            fi = f[m]
            drv = im.driver_of[fi]
            has = drv >= 0
            self._ensure_nets(engine, im, im.net_of[fi[has]])
            drv_c = np.where(has, drv, 0)
            raw = im.wdel[fi]
            vl = np.where(im.has_arr[drv_c], im.arr_l[drv_c], 0.0)
            ve = np.where(im.has_arr[drv_c], im.arr_e[drv_c], 0.0)
            new_l[m] = np.where(has, vl + raw * 1.0, 0.0)
            new_e[m] = np.where(has, ve + raw * ef, 0.0)

        m = kinds == _A_PORT
        if m.any():
            fi = f[m]
            base = np.fromiter(
                (engine.constraints.input_arrival(
                    im.cells[im.owner[i]].name) for i in fi.tolist()),
                dtype=float, count=fi.size)
            out_l = base.copy()
            out_e = base.copy()
            if load_mode:
                nets = im.net_of[fi]
                sel = nets >= 0
                if sel.any():
                    self._ensure_nets(engine, im, nets[sel])
                    load = im.ncap[nets[sel]]
                    pd = engine.port_drive_resistance
                    out_l[sel] = base[sel] + pd * load * 1.0
                    out_e[sel] = base[sel] + pd * load * ef
            new_l[m] = out_l
            new_e[m] = out_e

        m = kinds == _A_CELL
        if m.any():
            fi = f[m]
            owners = im.owner[fi]
            if load_mode:
                nets = im.net_of[fi]
                sel = nets >= 0
                if sel.any():
                    self._ensure_nets(engine, im, nets[sel])
                load = np.zeros(fi.size)
                load[sel] = im.ncap[nets[sel]]
                intr, drive = self._load_parts(im, owners)
                delay = intr + drive * load
            else:
                delay = self._gain_delay(engine, im, owners)
            flat, cnt = _csr_ranges(im.fi_start, fi)
            srcs = im.fi_src[flat]
            starts = _seg_starts(cnt)
            src_val_l = np.where(im.has_arr[srcs], im.arr_l[srcs], 0.0)
            src_val_e = np.where(im.has_arr[srcs], im.arr_e[srcs], 0.0)
            dfl = im.df[srcs]
            dl = np.repeat(delay * 1.0, cnt)
            de = np.repeat(delay * ef, cnt)
            new_l[m] = np.maximum.reduceat(src_val_l + dl * dfl, starts)
            new_e[m] = np.minimum.reduceat(src_val_e + de * dfl, starts)

        # _A_ZERO pins stay 0.0
        return new_l, new_e

    def _required_values(self, engine, im: _TimingImage,
                         f: np.ndarray) -> np.ndarray:
        kinds = im.rkind[f]
        new = np.full(f.size, INF)
        load_mode = engine.mode is DelayMode.LOAD

        m = kinds == _R_CAP
        if m.any():
            fi = f[m]
            ck = im.ck_of[fi]
            ck_c = np.where(ck >= 0, ck, 0)
            clk = np.where((ck >= 0) & im.has_arr[ck_c],
                           im.arr_l[ck_c], 0.0)
            new[m] = (engine.constraints.cycle_time + clk
                      - engine.constraints.setup_time)

        m = kinds == _R_PORT
        if m.any():
            fi = f[m]
            new[m] = np.fromiter(
                (engine.constraints.output_required(
                    im.cells[im.owner[i]].name) for i in fi.tolist()),
                dtype=float, count=fi.size)

        m = kinds == _R_COMB
        if m.any():
            fi = f[m]
            flat, cnt = _csr_ranges(im.fo_start, fi)
            dsts = im.fo_dst[flat]
            starts = _seg_starts(cnt)
            rq = np.where(im.has_req[dsts], im.req[dsts], INF)
            fin = rq != INF
            if load_mode:
                dnets = im.net_of[dsts]
                sel = fin & (dnets >= 0)
                if sel.any():
                    # gate_delay runs only for finite-required arcs in
                    # the object path; gate net analysis identically
                    self._ensure_nets(engine, im, dnets[sel])
                load = np.zeros(dsts.size)
                load[sel] = im.ncap[dnets[sel]]
                intr, drive = self._load_parts(im, im.owner[dsts])
                delay = intr + drive * load
            else:
                delay = self._gain_delay(engine, im, im.owner[dsts])
            dfp = np.repeat(im.df[fi], cnt)
            term = np.where(fin, rq - delay * dfp, INF)
            new[m] = np.minimum.reduceat(term, starts)

        m = kinds == _R_OUT
        if m.any():
            fi = f[m]
            nets = im.net_of[fi]
            has = nets >= 0
            if has.any():
                self._ensure_nets(engine, im, nets[has])
            nets_c = np.where(has, nets, 0)
            scnt = np.where(
                has, im.ns_start[nets_c + 1] - im.ns_start[nets_c], 0)
            sel = scnt > 0
            if sel.any():
                flat, cnt = _csr_ranges(im.ns_start, nets_c[sel])
                sinks = im.ns_pin[flat]
                starts = _seg_starts(cnt)
                rq = np.where(im.has_req[sinks], im.req[sinks], INF)
                term = np.where(rq != INF, rq - im.wdel[sinks], INF)
                out = np.full(fi.size, INF)
                out[sel] = np.minimum.reduceat(term, starts)
                new[m] = out

        # _R_NONE pins stay INF
        return new

    # ------------------------------------------------------------------
    # Vectorized endpoint queries
    # ------------------------------------------------------------------

    def _endpoint_slacks(self, im: _TimingImage) -> np.ndarray:
        ep = im.ep
        req = np.where(im.has_req[ep], im.req[ep], INF)
        arr = np.where(im.has_arr[ep], im.arr_l[ep], 0.0)
        return req - arr

    def worst_slack(self, engine) -> float:
        im = self._image
        if im.ep.size == 0:
            return INF
        s = self._endpoint_slacks(im)
        finite = s[s < INF]
        return float(finite.min()) if finite.size else INF

    def total_negative_slack(self, engine) -> float:
        im = self._image
        if im.ep.size == 0:
            return 0.0
        total = 0.0
        for v in self._endpoint_slacks(im).tolist():
            if v < INF:
                total += min(0.0, v)
        return total
