"""``repro.core``: the structure-of-arrays compute core.

The object graph (``repro.netlist``) stays the mutable source of
truth; this package maintains contiguous, id-indexed numpy views of it
— cells, pins, nets (CSR pin spans), timing arcs, and bin occupancy —
kept in sync through the ordinary :class:`NetlistListener` event bus.
The three hottest kernels (quadratic-placement system assembly,
incremental STA frontier sweeps, bin occupancy rebuilds) run over
these arrays when a design is built with ``core="array"``.

Equivalence contract: every array kernel replicates the exact
floating-point *operation order* of its object-graph twin, so results
— reports, placements, and incremental-work counters — are
bit-identical under both cores.  ``tests/core`` holds the
differential harness that pins this.
"""

from repro.core.image import CoreImage

__all__ = ["CoreImage"]
