"""Array kernel for quadratic-placement system assembly.

The object-graph placer (:mod:`repro.placement.quadratic`) walks nets
pin by pin, appending clique/star spring contributions to the diagonal,
the right-hand sides, and a COO triplet list.  Floating-point addition
is not associative, so the array kernel cannot simply accumulate per
net in any order: it must replay the *same contribution order*.

The trick: every contribution is emitted into a flat record stream
tagged ``(net_rank, minor)`` where ``minor`` encodes the pair/end slot
within the net.  Contributions are produced batched (one vectorized
pass per net degree and pair slot), then a stable lexsort restores the
object path's net-major emission order, and a single ``np.add.at`` —
which applies repeated indices sequentially, exactly like ``+=`` in a
loop — reproduces the accumulation bit for bit.  COO duplicate
summation in scipy is deterministic for identical triplet order, so
the sorted off-diagonal stream matches too.

Live-gathered state (per the CoreImage contract): net weights (the
netweight transform writes ``net.weight`` directly) and the movable
set (``cell.fixed`` is written directly by checkpoint restore paths).
Positions come from the image arrays, which every ``move_cell`` event
updates in place.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
from scipy.sparse import coo_matrix, csr_matrix

from repro import _profile as profile


def _pairs(k: int) -> List[Tuple[int, int]]:
    return [(a, b) for a in range(k) for b in range(a + 1, k)]


def _csr_ranges(start: np.ndarray, idx: np.ndarray):
    """Flat gather indices + per-row counts for CSR rows ``idx``."""
    cnt = start[idx + 1] - start[idx]
    total = int(cnt.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), cnt
    off = np.cumsum(cnt) - cnt
    flat = (np.arange(total, dtype=np.int64)
            - np.repeat(off, cnt) + np.repeat(start[idx], cnt))
    return flat, cnt


class _Streams:
    """Contribution records, restored to emission order on finalize."""

    def __init__(self) -> None:
        self.diag: List[List[np.ndarray]] = [[], [], [], []]
        self.rhs: List[List[np.ndarray]] = [[], [], [], [], []]
        self.off: List[List[np.ndarray]] = [[], [], [], [], []]

    @staticmethod
    def _emit(stream: List[List[np.ndarray]], *cols) -> None:
        for slot, col in zip(stream, cols):
            slot.append(col)

    def emit_diag(self, rank, minor, idx, val) -> None:
        self._emit(self.diag, rank, minor, idx, val)

    def emit_rhs(self, rank, minor, idx, vx, vy) -> None:
        self._emit(self.rhs, rank, minor, idx, vx, vy)

    def emit_off(self, rank, minor, i, j, val) -> None:
        self._emit(self.off, rank, minor, i, j, val)

    @staticmethod
    def _finalize(stream: List[List[np.ndarray]], dtypes):
        if not stream[0]:
            return [np.zeros(0, dtype=dt) for dt in dtypes]
        arrs = [np.concatenate(col) for col in stream]
        order = np.lexsort((arrs[1], arrs[0]))
        return [a[order] for a in arrs[2:]]

    def apply(self, diag: np.ndarray, bx: np.ndarray, by: np.ndarray):
        """Accumulate diag/rhs in emission order; return off-diag."""
        d_idx, d_val = self._finalize(self.diag, (np.int64, float))
        np.add.at(diag, d_idx, d_val)
        r_idx, r_vx, r_vy = self._finalize(
            self.rhs, (np.int64, float, float))
        np.add.at(bx, r_idx, r_vx)
        np.add.at(by, r_idx, r_vy)
        return self._finalize(self.off, (np.int64, np.int64, float))


def _emit_clique(streams: _Streams, ranks: np.ndarray, w: np.ndarray,
                 em: np.ndarray, ex: np.ndarray, ey: np.ndarray,
                 k: int) -> None:
    """Contributions of one degree-``k`` clique batch.

    ``em``/``ex``/``ey`` are (N, k): the movable index (or -1) and the
    fixed position of each net end.  Minor keys pack the pair slot and
    the within-pair sub-order (movable i before movable j).
    """
    i64 = np.int64
    for s, (a, b) in enumerate(_pairs(k)):
        ia = em[:, a]
        ib = em[:, b]
        am = ia >= 0
        bm = ib >= 0
        mm = am & bm
        first = am | bm
        if first.any():
            streams.emit_diag(
                ranks[first],
                np.full(int(first.sum()), 4 * s, dtype=i64),
                np.where(am, ia, ib)[first], w[first])
        if mm.any():
            streams.emit_diag(
                ranks[mm], np.full(int(mm.sum()), 4 * s + 1, dtype=i64),
                ib[mm], w[mm])
            streams.emit_off(
                ranks[mm], np.full(int(mm.sum()), 4 * s, dtype=i64),
                ia[mm], ib[mm], -w[mm])
            streams.emit_off(
                ranks[mm], np.full(int(mm.sum()), 4 * s + 1, dtype=i64),
                ib[mm], ia[mm], -w[mm])
        onem = first & ~mm
        if onem.any():
            mf = am & ~bm
            idx = np.where(mf, ia, ib)[onem]
            px = np.where(mf, ex[:, b], ex[:, a])[onem]
            py = np.where(mf, ey[:, b], ey[:, a])[onem]
            streams.emit_rhs(
                ranks[onem],
                np.full(int(onem.sum()), 4 * s, dtype=i64),
                idx, w[onem] * px, w[onem] * py)


def assemble_system(design, movable):
    """Array twin of ``QuadraticPlacer._solve``'s system assembly.

    Returns ``(laplacian_csr, bx, by)`` bit-identical to the object
    path's, for the same movable-cell list.
    """
    from repro.placement.quadratic import _ANCHOR_WEIGHT, _CLIQUE_LIMIT

    _p0 = profile.begin()
    im = design.core_image.sync()
    n = len(movable)
    center = design.die.center
    nnets = len(im.nets)

    mov = np.full(len(im.cells), -1, dtype=np.int64)
    for r, c in enumerate(movable):
        mov[im.cell_index[id(c)]] = r
    weights = np.fromiter((nt.weight for nt in im.nets), dtype=float,
                          count=nnets)

    pc = im.pin_cell.astype(np.int64)[im.net_pin]
    end_mov = mov[pc]
    keep = (end_mov >= 0) | im.cell_placed[pc]
    counts_all = np.diff(im.net_pin_start)
    flat_net = np.repeat(np.arange(nnets, dtype=np.int64), counts_all)
    kcnt = np.bincount(flat_net[keep], minlength=nnets)
    e_mov = end_mov[keep]
    e_x = im.cell_x[pc[keep]]
    e_y = im.cell_y[pc[keep]]
    kstart = np.zeros(nnets + 1, dtype=np.int64)
    np.cumsum(kcnt, out=kstart[1:])
    live = (weights > 0) & (kcnt >= 2)

    diag = np.full(n, _ANCHOR_WEIGHT)
    bx = np.zeros(n)
    by = np.zeros(n)
    bx += _ANCHOR_WEIGHT * center.x
    by += _ANCHOR_WEIGHT * center.y

    streams = _Streams()
    for k in range(2, _CLIQUE_LIMIT + 1):
        g = np.flatnonzero(live & (kcnt == k))
        if g.size == 0:
            continue
        cols = kstart[g][:, None] + np.arange(k, dtype=np.int64)[None, :]
        _emit_clique(streams, g, weights[g] / (k - 1),
                     e_mov[cols], e_x[cols], e_y[cols], k)

    stars = np.flatnonzero(live & (kcnt > _CLIQUE_LIMIT))
    for j in stars.tolist():
        s0 = kstart[j]
        kk = int(kcnt[j])
        movs = e_mov[s0:s0 + kk]
        fmask = movs < 0
        nf = int(fmask.sum())
        if nf:
            # Python-order mean, matching the object path's sum()
            cx = sum(e_x[s0:s0 + kk][fmask].tolist()) / nf
            cy = sum(e_y[s0:s0 + kk][fmask].tolist()) / nf
        else:
            cx, cy = center.x, center.y
        w = weights[j] / kk
        epos = np.flatnonzero(~fmask)
        if epos.size:
            rank = np.full(epos.size, j, dtype=np.int64)
            idx = movs[epos]
            streams.emit_diag(rank, 4 * epos, idx,
                              np.full(epos.size, w))
            streams.emit_rhs(rank, 4 * epos, idx,
                             np.full(epos.size, w * cx),
                             np.full(epos.size, w * cy))

    rows, cols_, vals = streams.apply(diag, bx, by)
    ar = np.arange(n, dtype=np.int64)
    laplacian = csr_matrix(coo_matrix(
        (np.concatenate([vals, diag]),
         (np.concatenate([rows, ar]), np.concatenate([cols_, ar]))),
        shape=(n, n)))
    profile.end("quad.assemble", _p0)
    return laplacian, bx, by


def assemble_dense(design, cells, rect):
    """Array twin of ``QuadraticRefine._refine_group``'s assembly.

    ``cells`` is the sorted movable group, ``rect`` the bin rectangle.
    Returns ``(laplacian, bx, by)`` with the diagonal filled in,
    bit-identical to the object path's dense system.
    """
    _p0 = profile.begin()
    im = design.core_image.sync()
    n = len(cells)
    center = rect.center

    gcells = np.fromiter((im.cell_index[id(c)] for c in cells),
                         dtype=np.int64, count=n)
    gmap = np.full(len(im.cells), -1, dtype=np.int64)
    gmap[gcells] = np.arange(n, dtype=np.int64)

    # candidate nets in first-seen order over the group's pins
    flat, _cnt = _csr_ranges(im.cell_pin_start, gcells)
    pnets = im.pin_net.astype(np.int64)[flat]
    pnets = pnets[pnets >= 0]
    _u, first_pos = np.unique(pnets, return_index=True)
    cand = pnets[np.sort(first_pos)]
    wts = np.fromiter((im.nets[j].weight for j in cand.tolist()),
                      dtype=float, count=cand.size)
    sel = wts > 0
    cand = cand[sel]
    wts = wts[sel]

    diag = np.full(n, 1e-6)
    bx = np.zeros(n)
    by = np.zeros(n)
    bx += 1e-6 * center.x
    by += 1e-6 * center.y
    laplacian = np.full((n, n), 0.0)

    if cand.size:
        nflat, ncnt = _csr_ranges(im.net_pin_start, cand)
        pc = im.pin_cell.astype(np.int64)[im.net_pin[nflat]]
        end_mov = gmap[pc]
        keep = (end_mov >= 0) | im.cell_placed[pc]
        rank_flat = np.repeat(np.arange(cand.size, dtype=np.int64), ncnt)
        kcnt = np.bincount(rank_flat[keep], minlength=cand.size)
        e_mov = end_mov[keep]
        e_x = im.cell_x[pc[keep]]
        e_y = im.cell_y[pc[keep]]
        kstart = np.zeros(cand.size + 1, dtype=np.int64)
        np.cumsum(kcnt, out=kstart[1:])

        streams = _Streams()
        for k in range(2, 11):
            g = np.flatnonzero(kcnt == k)
            if g.size == 0:
                continue
            cols = (kstart[g][:, None]
                    + np.arange(k, dtype=np.int64)[None, :])
            _emit_clique(streams, g, wts[g] / (k - 1),
                         e_mov[cols], e_x[cols], e_y[cols], k)
        rows, cols_, vals = streams.apply(diag, bx, by)
        np.add.at(laplacian.reshape(-1), rows * n + cols_, vals)

    np.fill_diagonal(laplacian, diag)
    profile.end("quad.dense", _p0)
    return laplacian, bx, by
