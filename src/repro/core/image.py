"""The structure-of-arrays design image.

A :class:`CoreImage` mirrors a :class:`~repro.netlist.netlist.Netlist`
into contiguous numpy arrays indexed by dense integer ids:

* **cells** — position (x, y), placed/fixed flags, area, width, and a
  library-size id into a compact size table;
* **pins** — owner cell, net membership, direction/clock/scan flags,
  and the spec's delay factor, grouped per cell in ``cell.pins()``
  order (CSR spans);
* **nets** — CSR pin spans in ``net._pins`` order, plus the driver
  pin and a sink sub-span, so hyperedge traversals become gathers.

Id-map invariants (pinned by ``tests/core/test_image_properties``):

* ``cells[i]``/``pins[i]``/``nets[i]`` hold the live objects and
  ``cell_index[id(obj)] == i`` (same for pins/nets) — ids are dense,
  0-based, and follow netlist insertion order;
* pin CSR spans partition the pin set: every pin appears in exactly
  one cell span, and ``net_pin`` lists every connected pin exactly
  once, in net pin-list order;
* geometry arrays carry exactly the object values: positions and
  sizes are updated in place from netlist events (the image is a
  physical view, so *virtual* resizes arrive too), and any structural
  event (cell/net add/remove, connect/disconnect) marks the image
  dirty for a lazy full rebuild at the next ``sync()``.

The object graph stays authoritative: per-cell annotations that
mutate without events (``gain``, ``tags``, ``fixed``, net weights)
are *gathered live* by the kernels that need them, never cached here.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.geometry import Point
from repro.netlist.cell import Cell, Pin
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist, NetlistListener


class CoreImage(NetlistListener):
    """Array mirror of a netlist, synchronized via the event bus."""

    #: positions/occupancy are physical state: receive virtual resizes
    is_physical_view = True

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        #: bumped on every structural rebuild; consumers that cache
        #: derived indexing (e.g. the timing image) key on this
        self.epoch = 0
        self._dirty = True
        self._stats = {
            "rebuilds": 0,
            "structural_events": 0,
            "moves_applied": 0,
            "resizes_applied": 0,
            "cells": 0,
            "pins": 0,
            "nets": 0,
        }

        # -- cell arrays (valid after sync()) --
        self.cells: List[Cell] = []
        self.cell_index: Dict[int, int] = {}
        self.cell_x = np.zeros(0)
        self.cell_y = np.zeros(0)
        self.cell_placed = np.zeros(0, dtype=bool)
        self.cell_fixed = np.zeros(0, dtype=bool)
        self.cell_area = np.zeros(0)
        self.cell_width = np.zeros(0)
        self.cell_seq = np.zeros(0, dtype=bool)
        self.cell_port = np.zeros(0, dtype=bool)
        self.cell_lib = np.zeros(0, dtype=np.int32)
        self.lib_sizes: List = []

        # -- pin arrays --
        self.pins: List[Pin] = []
        self.pin_index: Dict[int, int] = {}
        self.pin_cell = np.zeros(0, dtype=np.int32)
        self.pin_net = np.zeros(0, dtype=np.int32)
        self.pin_out = np.zeros(0, dtype=bool)
        self.pin_clock = np.zeros(0, dtype=bool)
        self.pin_scan = np.zeros(0, dtype=bool)
        self.pin_delay_factor = np.zeros(0)
        self.cell_pin_start = np.zeros(1, dtype=np.int64)

        # -- net arrays --
        self.nets: List[Net] = []
        self.net_index: Dict[int, int] = {}
        self.net_pin_start = np.zeros(1, dtype=np.int64)
        self.net_pin = np.zeros(0, dtype=np.int32)
        self.net_driver = np.zeros(0, dtype=np.int32)

        netlist.add_listener(self)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------

    @property
    def dirty(self) -> bool:
        return self._dirty

    def sync(self) -> "CoreImage":
        """Rebuild the arrays if a structural event invalidated them."""
        if self._dirty:
            self._rebuild()
        return self

    def stats(self) -> Dict[str, int]:
        """Monotonic sync-work counters (the ``core.*`` namespace)."""
        return dict(self._stats)

    def _rebuild(self) -> None:
        nl = self.netlist
        cells = nl.cells()
        ncells = len(cells)
        self.cells = cells
        self.cell_index = {id(c): i for i, c in enumerate(cells)}

        self.cell_x = np.zeros(ncells)
        self.cell_y = np.zeros(ncells)
        self.cell_placed = np.zeros(ncells, dtype=bool)
        self.cell_fixed = np.zeros(ncells, dtype=bool)
        self.cell_area = np.zeros(ncells)
        self.cell_width = np.zeros(ncells)
        self.cell_seq = np.zeros(ncells, dtype=bool)
        self.cell_port = np.zeros(ncells, dtype=bool)
        self.cell_lib = np.zeros(ncells, dtype=np.int32)
        self.lib_sizes = []
        lib_ids: Dict[int, int] = {}

        pins: List[Pin] = []
        cell_pin_start = np.zeros(ncells + 1, dtype=np.int64)
        for i, cell in enumerate(cells):
            pos = cell.position
            if pos is not None:
                self.cell_x[i] = pos.x
                self.cell_y[i] = pos.y
                self.cell_placed[i] = True
            self.cell_fixed[i] = cell.fixed
            self.cell_area[i] = cell.area
            self.cell_width[i] = cell.size.width
            self.cell_seq[i] = cell.is_sequential
            self.cell_port[i] = cell.is_port
            self.cell_lib[i] = self._lib_id(cell.size, lib_ids)
            pins.extend(cell.pins())
            cell_pin_start[i + 1] = len(pins)
        self.cell_pin_start = cell_pin_start

        npins = len(pins)
        self.pins = pins
        self.pin_index = {id(p): k for k, p in enumerate(pins)}
        self.pin_cell = np.zeros(npins, dtype=np.int32)
        self.pin_net = np.full(npins, -1, dtype=np.int32)
        self.pin_out = np.zeros(npins, dtype=bool)
        self.pin_clock = np.zeros(npins, dtype=bool)
        self.pin_scan = np.zeros(npins, dtype=bool)
        self.pin_delay_factor = np.zeros(npins)

        nets = nl.nets()
        self.nets = nets
        self.net_index = {id(n): j for j, n in enumerate(nets)}
        self.net_driver = np.full(len(nets), -1, dtype=np.int32)
        net_pin_start = np.zeros(len(nets) + 1, dtype=np.int64)
        net_pin: List[int] = []
        for j, net in enumerate(nets):
            for p in net._pins:
                net_pin.append(self.pin_index[id(p)])
            net_pin_start[j + 1] = len(net_pin)
            driver = net.driver()
            if driver is not None:
                self.net_driver[j] = self.pin_index[id(driver)]
        self.net_pin_start = net_pin_start
        self.net_pin = np.asarray(net_pin, dtype=np.int32)

        for i, cell in enumerate(cells):
            for k in range(cell_pin_start[i], cell_pin_start[i + 1]):
                pin = pins[k]
                self.pin_cell[k] = i
                self.pin_out[k] = pin.is_output
                self.pin_clock[k] = pin.is_clock
                self.pin_scan[k] = pin.is_scan
                self.pin_delay_factor[k] = pin.spec.delay_factor
                if pin.net is not None:
                    self.pin_net[k] = self.net_index[id(pin.net)]

        self._dirty = False
        self.epoch += 1
        self._stats["rebuilds"] += 1
        self._stats["cells"] = ncells
        self._stats["pins"] = npins
        self._stats["nets"] = len(nets)

    def _lib_id(self, size, lib_ids: Dict[int, int]) -> int:
        lid = lib_ids.get(id(size))
        if lid is None:
            lid = len(self.lib_sizes)
            lib_ids[id(size)] = lid
            self.lib_sizes.append(size)
        return lid

    # ------------------------------------------------------------------
    # Netlist events
    # ------------------------------------------------------------------

    def _structural(self) -> None:
        self._dirty = True
        self._stats["structural_events"] += 1

    def on_cell_added(self, cell: Cell) -> None:
        self._structural()

    def on_cell_removed(self, cell: Cell) -> None:
        self._structural()

    def on_net_added(self, net: Net) -> None:
        self._structural()

    def on_net_removed(self, net: Net) -> None:
        self._structural()

    def on_connect(self, pin: Pin, net: Net) -> None:
        self._structural()

    def on_disconnect(self, pin: Pin, net: Net) -> None:
        self._structural()

    def on_cell_moved(self, cell: Cell, old_position) -> None:
        self._stats["moves_applied"] += 1
        if self._dirty:
            return
        i = self.cell_index.get(id(cell))
        if i is None:  # pragma: no cover - structural event must precede
            self._dirty = True
            return
        pos = cell.position
        if pos is None:
            self.cell_placed[i] = False
            self.cell_x[i] = 0.0
            self.cell_y[i] = 0.0
        else:
            self.cell_placed[i] = True
            self.cell_x[i] = pos.x
            self.cell_y[i] = pos.y

    def on_cell_resized(self, cell: Cell, old_size) -> None:
        self._stats["resizes_applied"] += 1
        if self._dirty:
            return
        i = self.cell_index.get(id(cell))
        if i is None:  # pragma: no cover - structural event must precede
            self._dirty = True
            return
        self.cell_area[i] = cell.area
        self.cell_width[i] = cell.size.width
        lib_ids = {id(s): k for k, s in enumerate(self.lib_sizes)}
        self.cell_lib[i] = self._lib_id(cell.size, lib_ids)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def positions_delta(self, base_x: np.ndarray, base_y: np.ndarray,
                        base_placed: np.ndarray) -> np.ndarray:
        """Indices of cells whose position differs from a baseline.

        The delta-application hook used by checkpoint/snapshot diffing:
        given baseline arrays captured at the same epoch, one
        vectorized comparison replaces a per-cell dict walk.
        """
        moved = (self.cell_placed != base_placed) | (
            self.cell_placed & (
                (self.cell_x != base_x) | (self.cell_y != base_y)))
        return np.nonzero(moved)[0]

    def to_netlist(self, library=None) -> Netlist:
        """Reconstruct a netlist from the arrays (round-trip check).

        Structure, geometry, sizes, and connectivity come from the
        arrays/size-table; annotation fields the arrays deliberately
        do not own (gain, tags, weights, the unique-name counter) are
        carried from the live objects, per the synchronization
        contract above.
        """
        from repro.netlist.serialize import (
            peek_name_counter,
            set_name_counter,
        )

        self.sync()
        out = Netlist(self.netlist.name)
        for i, cell in enumerate(self.cells):
            pos = (Point(float(self.cell_x[i]), float(self.cell_y[i]))
                   if self.cell_placed[i] else None)
            size = self.lib_sizes[self.cell_lib[i]]
            if bool(self.cell_port[i]):
                # recreate through the port constructors so the
                # synthesized port gate types stay canonical
                s, e = self.cell_pin_start[i], self.cell_pin_start[i + 1]
                if s < e and self.pin_out[s]:
                    new = out.add_input_port(cell.name, position=pos)
                else:
                    new = out.add_output_port(cell.name, position=pos)
            else:
                new = out.add_cell(cell.name, size, position=pos,
                                   fixed=bool(self.cell_fixed[i]))
            new.fixed = bool(self.cell_fixed[i])
            new.gain = cell.gain
            new.tags = set(cell.tags)
        for j, net in enumerate(self.nets):
            new_net = out.add_net(net.name, weight=net.weight,
                                  is_clock=net.is_clock,
                                  is_scan=net.is_scan)
            new_net.base_weight = net.base_weight
            s, e = self.net_pin_start[j], self.net_pin_start[j + 1]
            for k in self.net_pin[s:e]:
                pin = self.pins[k]
                cell_name = self.cells[self.pin_cell[k]].name
                out.connect(out.cell(cell_name).pin(pin.name), new_net)
        set_name_counter(out, peek_name_counter(self.netlist))
        return out

    def __repr__(self) -> str:
        state = "dirty" if self._dirty else "epoch %d" % self.epoch
        return "<CoreImage %d cells / %d pins / %d nets (%s)>" % (
            self._stats["cells"], self._stats["pins"],
            self._stats["nets"], state)
