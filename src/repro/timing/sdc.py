"""SDC-lite: the constraint-file subset real flows feed a timer.

Supported commands (one per line, ``#`` comments)::

    create_clock -period 2000 [-name core]
    set_input_delay 120 [get_ports pi3]
    set_input_delay 80 [all_inputs]
    set_output_delay 150 [get_ports po1]
    set_output_delay 100 [all_outputs]
    set_clock_uncertainty 25

Delays are in ps, matching the rest of the system.  ``set_output_delay
D`` means the data must arrive D before the cycle edge, i.e. the
required time is ``period - D``.  ``set_clock_uncertainty`` is folded
into the setup margin.
"""

from __future__ import annotations

import re
from typing import List, Optional, TextIO

from repro.timing.constraints import TimingConstraints

_PORT_REF = re.compile(r"\[\s*get_ports\s+([^\]\s]+)\s*\]")
_ALL_INPUTS = re.compile(r"\[\s*all_inputs\s*\]")
_ALL_OUTPUTS = re.compile(r"\[\s*all_outputs\s*\]")


class SdcError(ValueError):
    """Raised for malformed or unsupported SDC input."""


def read_sdc(stream: TextIO) -> TimingConstraints:
    """Parse an SDC-lite file into :class:`TimingConstraints`."""
    period: Optional[float] = None
    uncertainty = 0.0
    default_input: Optional[float] = None
    default_output_delay: Optional[float] = None
    input_arrivals = {}
    output_delays = {}

    for lineno, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        command = tokens[0]
        if command == "create_clock":
            period = _flag_value(line, "-period", lineno)
        elif command == "set_input_delay":
            value = _leading_value(tokens, lineno)
            port = _PORT_REF.search(line)
            if port:
                input_arrivals[port.group(1)] = value
            elif _ALL_INPUTS.search(line):
                default_input = value
            else:
                raise SdcError("line %d: set_input_delay needs "
                               "[get_ports ...] or [all_inputs]" % lineno)
        elif command == "set_output_delay":
            value = _leading_value(tokens, lineno)
            port = _PORT_REF.search(line)
            if port:
                output_delays[port.group(1)] = value
            elif _ALL_OUTPUTS.search(line):
                default_output_delay = value
            else:
                raise SdcError("line %d: set_output_delay needs "
                               "[get_ports ...] or [all_outputs]" % lineno)
        elif command == "set_clock_uncertainty":
            uncertainty = _leading_value(tokens, lineno)
        else:
            raise SdcError("line %d: unsupported command %r"
                           % (lineno, command))

    if period is None:
        raise SdcError("no create_clock -period found")

    constraints = TimingConstraints(
        cycle_time=period,
        default_input_arrival=default_input or 0.0,
        default_output_required=(period - default_output_delay
                                 if default_output_delay is not None
                                 else None),
        setup_time=TimingConstraints.__dataclass_fields__[
            "setup_time"].default + uncertainty,
        input_arrivals=dict(input_arrivals),
        output_requireds={p: period - d
                          for p, d in output_delays.items()},
    )
    return constraints


def write_sdc(constraints: TimingConstraints, stream: TextIO,
              clock_name: str = "core") -> None:
    """Write constraints back out as SDC-lite."""
    stream.write("# repro SDC-lite\n")
    stream.write("create_clock -period %g -name %s\n"
                 % (constraints.cycle_time, clock_name))
    if constraints.default_input_arrival:
        stream.write("set_input_delay %g [all_inputs]\n"
                     % constraints.default_input_arrival)
    for port, value in sorted(constraints.input_arrivals.items()):
        stream.write("set_input_delay %g [get_ports %s]\n"
                     % (value, port))
    if constraints.default_output_required is not None:
        stream.write("set_output_delay %g [all_outputs]\n"
                     % (constraints.cycle_time
                        - constraints.default_output_required))
    for port, req in sorted(constraints.output_requireds.items()):
        stream.write("set_output_delay %g [get_ports %s]\n"
                     % (constraints.cycle_time - req, port))


def _flag_value(line: str, flag: str, lineno: int) -> float:
    tokens = line.split()
    for i, token in enumerate(tokens):
        if token == flag and i + 1 < len(tokens):
            try:
                return float(tokens[i + 1])
            except ValueError:
                raise SdcError("line %d: bad value for %s"
                               % (lineno, flag))
    raise SdcError("line %d: missing %s" % (lineno, flag))


def _leading_value(tokens: List[str], lineno: int) -> float:
    if len(tokens) < 2:
        raise SdcError("line %d: missing delay value" % lineno)
    try:
        return float(tokens[1])
    except ValueError:
        raise SdcError("line %d: bad delay value %r"
                       % (lineno, tokens[1]))
