"""Timing constraints: the sign-off contract for a design."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class TimingConstraints:
    """Cycle time and boundary conditions, all in ps.

    ``input_arrival``/``output_required`` may be overridden per port
    name; unlisted ports use the defaults.  ``setup_time`` applies to
    every register D pin.
    """

    cycle_time: float
    default_input_arrival: float = 0.0
    default_output_required: Optional[float] = None
    setup_time: float = 4.0
    hold_time: float = 2.0
    input_arrivals: Dict[str, float] = field(default_factory=dict)
    output_requireds: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cycle_time <= 0:
            raise ValueError("cycle time must be positive")

    def input_arrival(self, port_name: str) -> float:
        return self.input_arrivals.get(port_name,
                                       self.default_input_arrival)

    def output_required(self, port_name: str) -> float:
        if port_name in self.output_requireds:
            return self.output_requireds[port_name]
        if self.default_output_required is not None:
            return self.default_output_required
        return self.cycle_time
