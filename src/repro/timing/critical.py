"""Critical region extraction.

Several transforms (circuit migration, net weighting, sizing) begin
with ``CR = obtain_critical_region(design)``: the sub-netlist whose
slack is within a margin of the worst.  Clock pins are excluded — the
common clock path does not constitute a data-path criticality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.netlist.cell import Cell, Pin
from repro.netlist.net import Net
from repro.timing.engine import INF, TimingEngine


@dataclass
class CriticalRegion:
    """Pins/nets/cells whose slack falls at or below ``threshold``."""

    threshold: float
    pins: List[Pin] = field(default_factory=list)
    nets: List[Net] = field(default_factory=list)
    cells: List[Cell] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.pins

    def net_names(self) -> Set[str]:
        return {n.name for n in self.nets}

    def cell_names(self) -> Set[str]:
        return {c.name for c in self.cells}


def obtain_critical_region(engine: TimingEngine,
                           slack_margin: float = 0.0,
                           absolute_threshold: float = None) -> CriticalRegion:
    """Extract the critical region from the timing engine.

    By default the threshold is ``worst_slack + slack_margin``; passing
    ``absolute_threshold`` selects everything with slack at or below
    that value instead (e.g. 0.0 for "all failing paths").
    """
    if absolute_threshold is not None:
        threshold = absolute_threshold
    else:
        worst = engine.worst_slack()
        if worst == INF:
            return CriticalRegion(threshold=INF)
        threshold = worst + slack_margin

    region = CriticalRegion(threshold=threshold)
    seen_nets: Set[str] = set()
    seen_cells: Set[str] = set()
    eps = 1e-9
    for cell in engine.netlist.cells():
        for pin in cell.pins():
            if pin.is_clock:
                continue
            slack = engine.slack(pin)
            if slack == INF or slack > threshold + eps:
                continue
            region.pins.append(pin)
            if pin.net is not None and pin.net.name not in seen_nets:
                seen_nets.add(pin.net.name)
                region.nets.append(pin.net)
            if not cell.is_port and cell.name not in seen_cells:
                seen_cells.add(cell.name)
                region.cells.append(cell)
    return region
