"""The incremental timing engine.

Arrival times propagate forward from launch points (primary inputs,
register CK->Q), required times backward from capture points (register
D pins, primary outputs).  Netlist events dirty exactly the pins whose
values can change; ``_flush`` re-propagates in level order and *stops*
wherever a recomputed value is unchanged — the paper's "recalculations
only happen in regions affected by netlist or placement changes".
"""

from __future__ import annotations

import enum
import heapq
import itertools
import math
from typing import Dict, List, Optional, Set, Tuple

from repro.library.types import TAU, GateSize
from repro.netlist.cell import Cell, Pin
from repro import _profile as profile
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist, NetlistListener
from repro.timing.constraints import TimingConstraints
from repro.timing.graph import TimingGraph
from repro.wirelength.models import NetElectrical, WireModel

_EPS = 1e-9
INF = float("inf")


class DelayMode(enum.Enum):
    """Gate delay model in force (section 4.4 / 5 of the paper)."""

    #: Load-independent: ``d = tau * (p + g * assigned_gain)``.
    GAIN = "gain"
    #: Load-based: ``d = p*tau + R_drive * C_load`` from actual sizes.
    LOAD = "load"


class TimingEngine(NetlistListener):
    """Incremental STA over a netlist, coupled to a wire model."""

    def __init__(self, netlist: Netlist, wire_model: WireModel,
                 constraints: TimingConstraints,
                 mode: DelayMode = DelayMode.LOAD,
                 default_gain: float = 3.0,
                 port_drive_resistance: float = 0.5,
                 kernel: str = "object") -> None:
        self.netlist = netlist
        self.wire_model = wire_model
        self.constraints = constraints
        self.mode = mode
        self.default_gain = default_gain
        #: Output resistance of the board/partition driver behind each
        #: primary input (kOhm); keeps port-driven nets from being
        #: timing-free.
        self.port_drive_resistance = port_drive_resistance

        #: Early-corner scaling of gate delays for min-arrival (hold)
        #: analysis: fast process + favourable conditions.
        self.early_factor = 0.7

        self._graph: Optional[TimingGraph] = None
        self._arrival: Dict[Pin, float] = {}
        self._arrival_min: Dict[Pin, float] = {}
        self._required: Dict[Pin, float] = {}
        self._dirty_arr: Set[Pin] = set()
        self._dirty_req: Set[Pin] = set()
        self._net_elec: Dict[str, NetElectrical] = {}
        self._counter = itertools.count()

        self._stats = {
            "arrival_recomputes": 0,
            "arrival_changes": 0,
            "required_recomputes": 0,
            "levelizations": 0,
            "flushes": 0,
        }

        #: Flush kernel: "object" walks the graph pin by pin, "array"
        #: sweeps levelized index arrays (repro.core.sta).  Both
        #: produce bit-identical values and counters.
        self.kernel = kernel
        self._akernel = None
        if kernel == "array":
            from repro.core.sta import ArrayStaKernel
            self._akernel = ArrayStaKernel()
        elif kernel != "object":
            raise ValueError("unknown timing kernel %r" % (kernel,))

        netlist.add_listener(self)
        self._mark_all_dirty()

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """A copy of the engine's incremental-work counters.

        * ``arrival_recomputes`` — pins whose (late and early) arrival
          times were recomputed during flushes; the honest unit of
          forward-propagation work.
        * ``arrival_changes`` — the subset of recomputes whose value
          actually moved past tolerance, forcing fanout to go dirty;
          recomputes minus changes is damping won by the dirty-set cut.
        * ``required_recomputes`` — pins whose required time was
          recomputed during backward propagation.
        * ``levelizations`` — full topological re-levelizations of the
          timing graph (structural edits invalidate the graph).
        * ``flushes`` — dirty-set flushes, i.e. how many times a
          timing query actually found pending work.

        All counters are monotonic within a process and deterministic
        for a fixed seed and schedule; ``repro.obs`` spans report their
        per-invocation deltas.
        """
        return dict(self._stats)

    def reset_stats(self) -> None:
        """Zero every counter (the engine's caches are untouched)."""
        for key in self._stats:
            self._stats[key] = 0

    def arrival(self, pin: Pin) -> float:
        """Latest arrival time at ``pin`` (ps)."""
        self._flush()
        return self._arrival.get(pin, 0.0)

    def arrival_min(self, pin: Pin) -> float:
        """Earliest arrival time at ``pin`` (ps; early corner)."""
        self._flush()
        return self._arrival_min.get(pin, 0.0)

    def hold_slack(self, pin: Pin) -> float:
        """Hold slack at a register D pin (ps; +inf elsewhere).

        The earliest next-state data edge must not race through before
        the capture clock's hold window closes:
        ``arr_min(D) - (arr(CK) + t_hold)``.
        """
        cell = pin.cell
        if not (cell.is_sequential and pin.is_input
                and not pin.is_clock and not pin.is_scan):
            return INF
        self._flush()
        try:
            ck = cell.pin("CK")
        except KeyError:
            return INF
        return (self._arrival_min.get(pin, 0.0)
                - self._arrival.get(ck, 0.0)
                - self.constraints.hold_time)

    def worst_hold_slack(self) -> float:
        """Worst hold slack over register D pins (ps)."""
        self._flush()
        slacks = [self.hold_slack(p) for p in self.endpoints()]
        finite = [s for s in slacks if s < INF]
        return min(finite) if finite else INF

    def required(self, pin: Pin) -> float:
        """Earliest required time at ``pin`` (ps; +inf if unconstrained)."""
        self._flush()
        return self._required.get(pin, INF)

    def slack(self, pin: Pin) -> float:
        """``required - arrival`` at ``pin``."""
        self._flush()
        return self._required.get(pin, INF) - self._arrival.get(pin, 0.0)

    def endpoints(self) -> List[Pin]:
        """All capture points: register D pins and primary output pins."""
        out = []
        for cell in self.netlist.cells():
            if cell.is_sequential:
                try:
                    out.append(cell.pin("D"))
                except KeyError:
                    pass
            elif cell.is_port:
                out.extend(cell.input_pins())
        return out

    def worst_slack(self) -> float:
        """Worst (most negative) endpoint slack (ps)."""
        self._flush()
        ak = self._akernel
        if ak is not None and ak.ready(self):
            return ak.worst_slack(self)
        slacks = [self.slack(p) for p in self.endpoints()]
        finite = [s for s in slacks if s < INF]
        return min(finite) if finite else INF

    def total_negative_slack(self) -> float:
        """Sum of negative endpoint slacks (ps, <= 0)."""
        self._flush()
        ak = self._akernel
        if ak is not None and ak.ready(self):
            return ak.total_negative_slack(self)
        return sum(min(0.0, self.slack(p)) for p in self.endpoints()
                   if self.slack(p) < INF)

    def endpoint_slacks(self) -> Dict[str, float]:
        self._flush()
        return {p.full_name: self.slack(p) for p in self.endpoints()}

    def net_electrical(self, net: Net) -> NetElectrical:
        """The (cached) electrical view of a net."""
        elec = self._net_elec.get(net.name)
        if elec is None:
            elec = self.wire_model.analyze(net)
            self._net_elec[net.name] = elec
        return elec

    def net_slack(self, net: Net) -> float:
        """Worst slack over the net's pins (ignoring clock pins)."""
        self._flush()
        pins = [p for p in net.pins() if not p.is_clock]
        if not pins:
            return INF
        return min(self.slack(p) for p in pins)

    def invalidate_all(self) -> None:
        """Discard every cached timing value and electrical view.

        The next query re-times the whole design from the current
        netlist state.  Use after out-of-band changes the event bus
        did not carry — constraint swaps (SDC reload), virtual-resize
        staleness barriers, or a design state restored from disk.
        """
        self._mark_all_dirty()

    def set_mode(self, mode: DelayMode) -> None:
        """Switch delay model; dirties every pin (a global re-time)."""
        if mode is self.mode:
            return
        self.mode = mode
        self._mark_all_dirty()

    def set_wire_model(self, wire_model: WireModel) -> None:
        """Swap the net-delay calculator (e.g. WLM -> Steiner).

        The paper registers wire models as net-delay calculators in the
        incremental engine; swapping re-times the whole design.
        """
        self.wire_model = wire_model
        self._mark_all_dirty()

    def gate_delay(self, cell: Cell, out_pin: Pin) -> float:
        """Delay through ``cell`` to ``out_pin`` under the current mode."""
        if self.mode is DelayMode.GAIN:
            gain = cell.gain if cell.gain is not None else self.default_gain
            t = cell.gate_type
            return TAU * (t.parasitic + t.logical_effort * gain)
        load = 0.0
        if out_pin.net is not None:
            load = self.net_electrical(out_pin.net).total_cap
        return cell.size.delay(load)

    # ------------------------------------------------------------------
    # Dirty management (netlist events)
    # ------------------------------------------------------------------

    def _mark_all_dirty(self) -> None:
        self._graph = None
        self._net_elec.clear()
        # Drop the cached values too, not just the dirty marks: the
        # flush damping keeps an old value when the recomputed one is
        # within tolerance, so surviving caches would make the global
        # re-time depend on flush history.  A barrier must leave the
        # engine bit-identical to a freshly restored process.
        self._arrival.clear()
        self._arrival_min.clear()
        self._required.clear()
        self._dirty_arr = set()
        self._dirty_req = set()
        if self._akernel is not None:
            self._akernel.drop()
        for cell in self.netlist.cells():
            for pin in cell.pins():
                self._dirty_arr.add(pin)
                self._dirty_req.add(pin)

    def _touch_net(self, net: Net) -> None:
        """A net's wire or load changed: dirty the affected frontier."""
        self._net_elec.pop(net.name, None)
        if self._akernel is not None:
            self._akernel.net_touched(net)
        driver = net.driver()
        if driver is not None:
            # driver's output arrival (gate delay sees new load) and
            # its required (wire delays to sinks changed) ...
            self._dirty_arr.add(driver)
            self._dirty_req.add(driver)
            # ... and the driving cell's input requireds (gate delay
            # changed even if the output's required did not).
            for p in driver.cell.input_pins():
                self._dirty_req.add(p)
        for sink in net.sinks():
            self._dirty_arr.add(sink)

    def _touch_cell_nets(self, cell: Cell) -> None:
        for pin in cell.pins():
            if pin.net is not None:
                self._touch_net(pin.net)

    def on_cell_moved(self, cell: Cell, old_position) -> None:
        self._touch_cell_nets(cell)

    def on_cell_resized(self, cell: Cell, old_size: GateSize) -> None:
        # Input caps changed -> upstream nets see new loads; drive
        # changed -> this cell's own arcs change.
        if self._akernel is not None:
            self._akernel.cell_resized(cell)
        self._touch_cell_nets(cell)
        for p in cell.output_pins():
            self._dirty_arr.add(p)
        for p in cell.input_pins():
            self._dirty_req.add(p)

    def on_connect(self, pin: Pin, net: Net) -> None:
        self._graph = None
        self._touch_net(net)
        self._dirty_arr.add(pin)
        self._dirty_req.add(pin)

    def on_disconnect(self, pin: Pin, net: Net) -> None:
        self._graph = None
        self._touch_net(net)
        self._dirty_arr.add(pin)
        self._dirty_req.add(pin)

    def on_cell_added(self, cell: Cell) -> None:
        self._graph = None
        for pin in cell.pins():
            self._dirty_arr.add(pin)
            self._dirty_req.add(pin)

    def on_cell_removed(self, cell: Cell) -> None:
        self._graph = None
        for pin in cell.pins():
            self._arrival.pop(pin, None)
            self._arrival_min.pop(pin, None)
            self._required.pop(pin, None)
            self._dirty_arr.discard(pin)
            self._dirty_req.discard(pin)

    def on_net_removed(self, net: Net) -> None:
        self._graph = None
        self._net_elec.pop(net.name, None)

    def on_net_added(self, net: Net) -> None:
        self._graph = None

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------

    def graph(self) -> TimingGraph:
        if self._graph is None:
            self._graph = TimingGraph(self.netlist)
            self._stats["levelizations"] += 1
        return self._graph

    def _flush(self) -> None:
        if not self._dirty_arr and not self._dirty_req:
            return
        self._stats["flushes"] += 1
        graph = self.graph()
        # one sta.sweep = one non-trivial flush, whichever core runs it
        _p0 = profile.begin()
        if self._akernel is not None:
            self._akernel.flush(self, graph)
        else:
            self._flush_arrivals(graph)
            self._flush_requireds(graph)
        profile.end("sta.sweep", _p0)

    def _flush_arrivals(self, graph: TimingGraph) -> None:
        heap: List[Tuple[int, int, Pin]] = [
            (graph.level_of(p), next(self._counter), p)
            for p in self._dirty_arr
        ]
        heapq.heapify(heap)
        while heap:
            _lvl, _n, pin = heapq.heappop(heap)
            if pin not in self._dirty_arr:
                continue
            self._dirty_arr.discard(pin)
            new = self._compute_arrival(pin)
            new_min = self._compute_arrival(pin, early=True)
            self._stats["arrival_recomputes"] += 1
            old = self._arrival.get(pin)
            old_min = self._arrival_min.get(pin)
            if (old is not None and abs(new - old) <= _EPS
                    and old_min is not None
                    and abs(new_min - old_min) <= _EPS):
                continue
            self._stats["arrival_changes"] += 1
            self._arrival[pin] = new
            self._arrival_min[pin] = new_min
            for dst, _kind in graph.fanout_arcs(pin):
                if dst not in self._dirty_arr:
                    self._dirty_arr.add(dst)
                    heapq.heappush(
                        heap, (graph.level_of(dst), next(self._counter), dst))
            # Capture dependency: register D required reads arr(CK).
            if pin.is_clock and pin.cell.is_sequential:
                for d in pin.cell.input_pins():
                    if not d.is_clock:
                        self._dirty_req.add(d)

    def _flush_requireds(self, graph: TimingGraph) -> None:
        heap: List[Tuple[int, int, Pin]] = [
            (-graph.level_of(p), next(self._counter), p)
            for p in self._dirty_req
        ]
        heapq.heapify(heap)
        while heap:
            _lvl, _n, pin = heapq.heappop(heap)
            if pin not in self._dirty_req:
                continue
            self._dirty_req.discard(pin)
            new = self._compute_required(pin)
            self._stats["required_recomputes"] += 1
            old = self._required.get(pin)
            if old is not None and (
                (math.isinf(new) and math.isinf(old) and new == old)
                or abs(new - old) <= _EPS
            ):
                continue
            self._required[pin] = new
            for src, _kind in graph.fanin_arcs(pin):
                if src not in self._dirty_req:
                    self._dirty_req.add(src)
                    heapq.heappush(
                        heap, (-graph.level_of(src), next(self._counter), src))

    # -- node equations --------------------------------------------------

    def _compute_arrival(self, pin: Pin, early: bool = False) -> float:
        """Latest (or, with ``early``, earliest-corner) arrival."""
        values = self._arrival_min if early else self._arrival
        scale = self.early_factor if early else 1.0
        pick = min if early else max
        cell = pin.cell
        if pin.is_output:
            if cell.is_port:
                arrival = self.constraints.input_arrival(cell.name)
                if pin.net is not None and self.mode is DelayMode.LOAD:
                    load = self.net_electrical(pin.net).total_cap
                    arrival += (self.port_drive_resistance * load
                                * scale)
                return arrival
            arcs = self.graph().fanin_arcs(pin)
            cell_arcs = [(src, k) for src, k in arcs if k == "cell"]
            if not cell_arcs:
                return 0.0
            delay = self.gate_delay(cell, pin) * scale
            return pick(
                values.get(src, 0.0) + delay * src.spec.delay_factor
                for src, _ in cell_arcs
            )
        # input pin: wire arc from its net's driver
        net = pin.net
        if net is None:
            return 0.0
        driver = net.driver()
        if driver is None:
            return 0.0
        wire = self.net_electrical(net).delay_to(pin.full_name) * scale
        return values.get(driver, 0.0) + wire

    def _compute_required(self, pin: Pin) -> float:
        cell = pin.cell
        if pin.is_input:
            if cell.is_sequential and not pin.is_clock and not pin.is_scan:
                # Capture endpoint: setup check against the capture
                # clock edge one cycle later.
                try:
                    ck = cell.pin("CK")
                    clk_arr = self._arrival.get(ck, 0.0)
                except KeyError:
                    clk_arr = 0.0
                return (self.constraints.cycle_time + clk_arr
                        - self.constraints.setup_time)
            if cell.is_port:
                return self.constraints.output_required(cell.name)
            arcs = self.graph().fanout_arcs(pin)
            cell_arcs = [(dst, k) for dst, k in arcs if k == "cell"]
            if not cell_arcs:
                return INF
            best = INF
            for dst, _k in cell_arcs:
                req = self._required.get(dst, INF)
                if req == INF:
                    continue
                best = min(best, req - self.gate_delay(cell, dst)
                           * pin.spec.delay_factor)
            return best
        # output pin: back through net arcs
        net = pin.net
        if net is None:
            return INF
        elec = self.net_electrical(net)
        best = INF
        for sink in net.sinks():
            req = self._required.get(sink, INF)
            if req == INF:
                continue
            best = min(best, req - elec.delay_to(sink.full_name))
        return best
