"""The timing graph: pins as nodes, net and cell arcs as edges.

Arcs:

* **net arcs** — driver pin -> each sink pin, delay = wire delay;
* **cell arcs** — input pin -> output pin through combinational cells
  (and buffers / clock buffers), delay = gate delay;
* **sequential cells** contribute only a CK -> Q arc (clock-to-out);
  the D pin is a capture endpoint checked against the clock arrival.

The graph is a pure structural view rebuilt lazily after connectivity
edits; arrival/required values live in the engine, not here.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Tuple

from repro.netlist.cell import Cell, Pin
from repro.netlist.netlist import Netlist


class CombinationalLoopError(Exception):
    """Raised when the netlist contains a combinational cycle."""

    def __init__(self, pins: List[Pin]) -> None:
        self.pins = pins
        names = ", ".join(p.full_name for p in pins[:8])
        more = "" if len(pins) <= 8 else " (+%d more)" % (len(pins) - 8)
        super().__init__("combinational loop through: %s%s" % (names, more))


def cell_arcs(cell: Cell) -> List[Tuple[Pin, Pin]]:
    """The (input, output) timing arcs through one cell."""
    if cell.is_port:
        return []
    if cell.is_sequential:
        try:
            ck = cell.pin("CK")
            q = cell.pin("Q")
        except KeyError:
            return []
        return [(ck, q)]
    outs = cell.output_pins()
    return [(i, o) for i in cell.input_pins() for o in outs]


class TimingGraph:
    """Fanin/fanout arc maps plus a topological levelization."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        #: pin id -> list of (src_pin, kind); kind in {"net", "cell"}
        self.fanin: Dict[int, List[Tuple[Pin, str]]] = {}
        #: pin id -> list of (dst_pin, kind)
        self.fanout: Dict[int, List[Tuple[Pin, str]]] = {}
        self.level: Dict[int, int] = {}
        self._pins: Dict[int, Pin] = {}
        self._build()

    # -- construction --------------------------------------------------

    def _register(self, pin: Pin) -> None:
        pid = id(pin)
        if pid not in self._pins:
            self._pins[pid] = pin
            self.fanin[pid] = []
            self.fanout[pid] = []

    def _add_arc(self, src: Pin, dst: Pin, kind: str) -> None:
        self._register(src)
        self._register(dst)
        self.fanin[id(dst)].append((src, kind))
        self.fanout[id(src)].append((dst, kind))

    def _build(self) -> None:
        for cell in self.netlist.cells():
            for pin in cell.pins():
                self._register(pin)
            for src, dst in cell_arcs(cell):
                self._add_arc(src, dst, "cell")
        for net in self.netlist.nets():
            driver = net.driver()
            if driver is None:
                continue
            for sink in net.sinks():
                self._add_arc(driver, sink, "net")
        self._levelize()

    def _levelize(self) -> None:
        """Longest-path levels via Kahn; detects combinational loops."""
        indeg = {pid: len(arcs) for pid, arcs in self.fanin.items()}
        queue = deque(pid for pid, d in indeg.items() if d == 0)
        self.level = {pid: 0 for pid in queue}
        done = 0
        while queue:
            pid = queue.popleft()
            done += 1
            lvl = self.level[pid]
            for dst, _kind in self.fanout[pid]:
                did = id(dst)
                if self.level.get(did, -1) < lvl + 1:
                    self.level[did] = lvl + 1
                indeg[did] -= 1
                if indeg[did] == 0:
                    queue.append(did)
        if done != len(self._pins):
            stuck = [self._pins[pid] for pid, d in indeg.items() if d > 0]
            raise CombinationalLoopError(stuck)

    # -- queries ---------------------------------------------------------

    def pins(self) -> Iterable[Pin]:
        return self._pins.values()

    def level_of(self, pin: Pin) -> int:
        return self.level.get(id(pin), 0)

    def fanin_arcs(self, pin: Pin) -> List[Tuple[Pin, str]]:
        return self.fanin.get(id(pin), [])

    def fanout_arcs(self, pin: Pin) -> List[Tuple[Pin, str]]:
        return self.fanout.get(id(pin), [])

    @property
    def num_pins(self) -> int:
        return len(self._pins)

    @property
    def num_arcs(self) -> int:
        return sum(len(a) for a in self.fanin.values())

    def max_level(self) -> int:
        return max(self.level.values(), default=0)
