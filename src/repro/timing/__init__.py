"""Incremental static timing analysis.

"All timing calculations in TPS are fully incremental and
recalculations only happen in regions affected by netlist or placement
changes."  The engine subscribes to netlist events, keeps per-pin
arrival/required times, and lazily re-propagates only from dirtied pins
— stopping as soon as recomputed values stop changing.

Two delay modes mirror the paper's flow (section 4.4/5):

* ``gain`` — load-independent gain-based delay, ``d = tau*(p + g*h)``
  with ``h`` the *assigned* gain (used before/early in placement);
* ``load`` — load-based delay from actual sizes and Steiner wire loads
  (used once discretization has happened).
"""

from repro.timing.constraints import TimingConstraints
from repro.timing.graph import CombinationalLoopError, TimingGraph
from repro.timing.engine import DelayMode, TimingEngine
from repro.timing.critical import CriticalRegion, obtain_critical_region

__all__ = [
    "TimingConstraints",
    "TimingGraph",
    "CombinationalLoopError",
    "DelayMode",
    "TimingEngine",
    "CriticalRegion",
    "obtain_critical_region",
]
