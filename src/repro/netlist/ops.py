"""Netlist editing operations used by the synthesis transforms.

Every operation goes through the ``Netlist`` mutation API so that
subscribed incremental analyzers see each elementary change.  All
operations return the objects they created, and each has an inverse (or
is its own inverse) so transforms can implement try/score/reject.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry import Point
from repro.library import Library
from repro.netlist.cell import Cell, Pin
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist


def clone_cell(netlist: Netlist, cell: Cell, sink_pins: Sequence[Pin],
               position: Optional[Point] = None) -> Cell:
    """Clone ``cell`` and move ``sink_pins`` of its output net to the clone.

    The clone shares all input nets with the original; a new output net
    is created, driven by the clone, and the given sinks are
    re-connected to it.  Used by the cloning transform to split heavy
    fanout or to pull logic toward a distant sink cluster.
    """
    out = cell.output_pin()
    if out.net is None:
        raise ValueError("cannot clone %s: output is unconnected" % cell.name)
    original_net = out.net
    sink_set = set(id(p) for p in sink_pins)
    for p in sink_pins:
        if p.net is not original_net:
            raise ValueError(
                "sink %s is not on %s's output net" % (p.full_name, cell.name))
    clone = netlist.add_cell(
        netlist.unique_name(cell.name + "_cln"), cell.size,
        position=position if position is not None else cell.position,
    )
    clone.gain = cell.gain
    for pin in cell.input_pins():
        if pin.net is not None:
            netlist.connect(clone.pin(pin.name), pin.net)
    new_net = netlist.add_net(
        netlist.unique_name(original_net.name + "_cln"),
        weight=original_net.weight,
        is_clock=original_net.is_clock, is_scan=original_net.is_scan,
    )
    netlist.connect(clone.output_pin(), new_net)
    for p in list(original_net.sinks()):
        if id(p) in sink_set:
            netlist.connect(p, new_net)
    return clone


def unclone_cell(netlist: Netlist, clone: Cell, original: Cell) -> None:
    """Undo ``clone_cell``: fold the clone's sinks back and delete it."""
    clone_net = clone.output_pin().net
    original_net = original.output_pin().net
    if clone_net is None or original_net is None:
        raise ValueError("unclone requires both outputs connected")
    for p in list(clone_net.sinks()):
        netlist.connect(p, original_net)
    netlist.remove_cell(clone)
    netlist.remove_net(clone_net)


def insert_buffer(netlist: Netlist, library: Library, net: Net,
                  sink_pins: Sequence[Pin],
                  position: Optional[Point] = None,
                  buffer_x: float = 2.0) -> Cell:
    """Insert a BUF driving ``sink_pins``, leaving other sinks on ``net``.

    The buffer's input joins ``net``; a fresh net carries its output to
    the selected sinks.  Used to shield a critical driver from
    off-path load or to repeat a long wire.
    """
    if net.driver() is None:
        raise ValueError("cannot buffer undriven net %s" % net.name)
    for p in sink_pins:
        if p.net is not net:
            raise ValueError("pin %s is not on net %s" % (p.full_name, net.name))
        if p.is_output:
            raise ValueError("cannot buffer the driver pin %s" % p.full_name)
    size = min(library.sizes("BUF"), key=lambda s: abs(s.x - buffer_x))
    buf = netlist.add_cell(
        netlist.unique_name(net.name + "_buf"), size, position=position)
    netlist.connect(buf.pin("A"), net)
    buffered = netlist.add_net(
        netlist.unique_name(net.name + "_bufd"), weight=net.weight,
        is_clock=net.is_clock, is_scan=net.is_scan,
    )
    netlist.connect(buf.pin("Z"), buffered)
    for p in list(sink_pins):
        netlist.connect(p, buffered)
    return buf


def remove_buffer(netlist: Netlist, buffer_cell: Cell) -> None:
    """Undo ``insert_buffer``: reattach buffered sinks to the source net."""
    if buffer_cell.type_name not in ("BUF", "CLKBUF"):
        raise ValueError("%s is not a buffer" % buffer_cell.name)
    source = buffer_cell.pin("A").net
    buffered = buffer_cell.output_pin().net
    if source is None or buffered is None:
        raise ValueError("buffer %s is not fully connected" % buffer_cell.name)
    for p in list(buffered.sinks()):
        netlist.connect(p, source)
    netlist.remove_cell(buffer_cell)
    netlist.remove_net(buffered)


def swap_pins(netlist: Netlist, cell: Cell, pin_a: str, pin_b: str) -> None:
    """Exchange the nets on two input pins of ``cell``.

    Callers must ensure the pins are functionally interchangeable
    (same library swap group); this operation is its own inverse.
    """
    a, b = cell.pin(pin_a), cell.pin(pin_b)
    spec_a = cell.gate_type.pin(pin_a)
    spec_b = cell.gate_type.pin(pin_b)
    if (spec_a.swap_group is None or spec_a.swap_group != spec_b.swap_group):
        raise ValueError(
            "pins %s and %s of %s are not swappable"
            % (pin_a, pin_b, cell.type_name))
    net_a, net_b = a.net, b.net
    netlist.disconnect(a)
    netlist.disconnect(b)
    if net_b is not None:
        netlist.connect(a, net_b)
    if net_a is not None:
        netlist.connect(b, net_a)


#: Decomposition rules: type -> (front stage type, front input pins,
#: back stage type, back free pin).  front output feeds the back gate's
#: first listed pin.
_DECOMPOSE_RULES: Dict[str, Tuple[str, List[str], str, List[str]]] = {
    "NAND3": ("AND2", ["A", "B"], "NAND2", ["C"]),
    "NOR3": ("OR2", ["A", "B"], "NOR2", ["C"]),
    "NAND4": ("AND2", ["A", "B"], "NAND3", ["C", "D"]),
    "AND2": ("NAND2", ["A", "B"], "INV", []),
    "OR2": ("NOR2", ["A", "B"], "INV", []),
}


def can_decompose(cell: Cell) -> bool:
    """True if ``decompose_cell`` has a rule for this cell's type."""
    return cell.type_name in _DECOMPOSE_RULES


def decompose_cell(netlist: Netlist, library: Library,
                   cell: Cell) -> Tuple[Cell, Cell]:
    """Re-decompose a complex gate into a two-stage equivalent.

    Returns ``(front, back)``.  The back stage replaces ``cell`` on its
    output net.  This is the re-decomposition move a congestion
    transform can use instead of physically moving cells.
    """
    rule = _DECOMPOSE_RULES.get(cell.type_name)
    if rule is None:
        raise ValueError("no decomposition rule for %s" % cell.type_name)
    front_type, front_pins, back_type, back_extra = rule
    out_net = cell.output_pin().net
    input_nets = {p.name: p.net for p in cell.input_pins()}

    front = netlist.add_cell(
        netlist.unique_name(cell.name + "_fr"),
        library.smallest(front_type), position=cell.position)
    back = netlist.add_cell(
        netlist.unique_name(cell.name + "_bk"),
        library.smallest(back_type), position=cell.position)
    mid = netlist.add_net(netlist.unique_name(cell.name + "_mid"))

    for lib_pin, src_pin in zip(front.gate_type.input_pins, front_pins):
        if input_nets.get(src_pin) is not None:
            netlist.connect(front.pin(lib_pin.name), input_nets[src_pin])
    netlist.connect(front.output_pin(), mid)

    back_inputs = back.gate_type.input_pins
    netlist.connect(back.pin(back_inputs[0].name), mid)
    for lib_pin, src_pin in zip(back_inputs[1:], back_extra):
        if input_nets.get(src_pin) is not None:
            netlist.connect(back.pin(lib_pin.name), input_nets[src_pin])

    netlist.remove_cell(cell)
    if out_net is not None:
        netlist.connect(back.output_pin(), out_net)
    return front, back
