"""Cells (gate instances) and their instance pins."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

from repro.geometry import Point, Rect
from repro.library.types import GateKind, GateSize, PinDirection, PinSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netlist.net import Net
    from repro.netlist.netlist import Netlist


class Pin:
    """An instance pin: a library pin materialised on a particular cell."""

    __slots__ = ("cell", "spec", "net")

    def __init__(self, cell: "Cell", spec: PinSpec) -> None:
        self.cell = cell
        self.spec = spec
        self.net: Optional["Net"] = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def full_name(self) -> str:
        return "%s/%s" % (self.cell.name, self.spec.name)

    @property
    def direction(self) -> PinDirection:
        return self.spec.direction

    @property
    def is_output(self) -> bool:
        return self.spec.direction is PinDirection.OUTPUT

    @property
    def is_input(self) -> bool:
        return self.spec.direction is PinDirection.INPUT

    @property
    def is_clock(self) -> bool:
        return self.spec.is_clock

    @property
    def is_scan(self) -> bool:
        return self.spec.is_scan

    @property
    def position(self) -> Optional[Point]:
        """Pin position; cells are small so pins sit at the cell origin."""
        return self.cell.position

    def input_cap(self) -> float:
        """Capacitance presented by this pin to its net (fF).

        Output pins present no load; input pin capacitance scales with
        the cell's current size.
        """
        if self.is_output:
            return 0.0
        return self.cell.size.input_cap(self.spec.name)

    def __repr__(self) -> str:
        return "<Pin %s>" % self.full_name


class Cell:
    """A placed (or not-yet-placed) instance of a library gate size.

    Electrical state: ``size`` (the current drive strength) and
    ``gain`` (the target electrical effort in gain-based mode — the
    paper's "sizeless cells, only a gain value is assigned").
    Physical state: ``position`` (cell origin in tracks) and ``fixed``.
    """

    __slots__ = (
        "name", "size", "position", "fixed", "gain",
        "_pins", "netlist", "tags",
    )

    def __init__(self, name: str, size: GateSize,
                 position: Optional[Point] = None,
                 fixed: bool = False) -> None:
        self.name = name
        self.size = size
        self.position = position
        self.fixed = fixed
        #: Target gain (electrical effort) in gain-based delay mode.
        self.gain: Optional[float] = None
        self.netlist: Optional["Netlist"] = None
        #: Free-form markers ("in_clock_tree", "scan_chain:3", ...).
        self.tags: set = set()
        self._pins: Dict[str, Pin] = {
            spec.name: Pin(self, spec) for spec in size.gate_type.pins
        }

    # -- structure ---------------------------------------------------

    @property
    def gate_type(self):
        return self.size.gate_type

    @property
    def type_name(self) -> str:
        return self.size.gate_type.name

    def pin(self, name: str) -> Pin:
        try:
            return self._pins[name]
        except KeyError:
            raise KeyError("cell %s has no pin %r" % (self.name, name))

    def pins(self) -> List[Pin]:
        return list(self._pins.values())

    def input_pins(self) -> List[Pin]:
        return [p for p in self._pins.values() if p.is_input]

    def output_pins(self) -> List[Pin]:
        return [p for p in self._pins.values() if p.is_output]

    def output_pin(self) -> Pin:
        outs = self.output_pins()
        if len(outs) != 1:
            raise ValueError("cell %s has %d output pins" % (self.name, len(outs)))
        return outs[0]

    # -- classification ----------------------------------------------

    @property
    def is_sequential(self) -> bool:
        return self.gate_type.kind is GateKind.SEQUENTIAL

    @property
    def is_port(self) -> bool:
        return self.gate_type.kind is GateKind.PORT

    @property
    def is_clock_buffer(self) -> bool:
        return self.gate_type.kind is GateKind.CLOCK_BUFFER

    @property
    def is_movable(self) -> bool:
        return not self.fixed

    # -- physical ----------------------------------------------------

    @property
    def area(self) -> float:
        return self.size.area

    @property
    def placed(self) -> bool:
        return self.position is not None

    def require_position(self) -> Point:
        if self.position is None:
            raise ValueError("cell %s is not placed" % self.name)
        return self.position

    def outline(self) -> Rect:
        """The cell's physical outline at its current position."""
        pos = self.require_position()
        return Rect(pos.x, pos.y, pos.x + self.size.width,
                    pos.y + self.size.height)

    def __repr__(self) -> str:
        where = (
            "@(%g,%g)" % (self.position.x, self.position.y)
            if self.position is not None else "unplaced"
        )
        return "<Cell %s %s %s>" % (self.name, self.size.name, where)
