"""Nets: the hyperedges of the netlist."""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.geometry import Point, Rect

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netlist.cell import Cell, Pin


class Net:
    """A net connecting one driver pin to zero or more sink pins.

    ``weight`` is the placement net weight manipulated by the
    ``LogicalEffortNetWeight`` transform and by the staged clock/scan
    masking protocol (a weight of 0 makes placement ignore the net).
    ``base_weight`` remembers the original value so masked weights can
    be restored.
    """

    __slots__ = ("name", "weight", "base_weight", "is_clock", "is_scan",
                 "_pins", "netlist")

    def __init__(self, name: str, weight: float = 1.0,
                 is_clock: bool = False, is_scan: bool = False) -> None:
        self.name = name
        self.weight = weight
        self.base_weight = weight
        self.is_clock = is_clock
        self.is_scan = is_scan
        self._pins: List["Pin"] = []
        self.netlist = None

    # -- connectivity ------------------------------------------------

    def pins(self) -> List["Pin"]:
        return list(self._pins)

    @property
    def degree(self) -> int:
        return len(self._pins)

    def driver(self) -> Optional["Pin"]:
        """The unique driving (output) pin, or ``None`` if undriven."""
        for p in self._pins:
            if p.is_output:
                return p
        return None

    def sinks(self) -> List["Pin"]:
        """All input pins on the net."""
        return [p for p in self._pins if p.is_input]

    def cells(self) -> List["Cell"]:
        """Distinct cells touching this net, in pin order."""
        seen = set()
        out = []
        for p in self._pins:
            if id(p.cell) not in seen:
                seen.add(id(p.cell))
                out.append(p.cell)
        return out

    # -- electrical --------------------------------------------------

    def pin_load(self) -> float:
        """Total sink pin capacitance on the net (fF), excluding wire."""
        return sum(p.input_cap() for p in self._pins if p.is_input)

    # -- physical ----------------------------------------------------

    def placed_points(self) -> List[Point]:
        """Positions of all placed pins on the net."""
        return [p.position for p in self._pins if p.position is not None]

    def bounding_box(self) -> Optional[Rect]:
        """Bounding box of placed pins, or ``None`` if fewer than one."""
        pts = self.placed_points()
        if not pts:
            return None
        return Rect.bounding(pts)

    def hpwl(self) -> float:
        """Half-perimeter wirelength over placed pins (tracks)."""
        box = self.bounding_box()
        if box is None:
            return 0.0
        return box.half_perimeter()

    def __repr__(self) -> str:
        return "<Net %s deg=%d w=%g>" % (self.name, self.degree, self.weight)
