"""The ``Netlist`` container and its change-event bus.

Both changes to positions of cells and changes to the netlist may
trigger incremental recalculations of timing and Steiner trees
(section 3).  Analyzers implement ``NetlistListener`` and register
with ``Netlist.add_listener``; every mutating operation on the netlist
notifies them, so nothing ever has to diff or poll the design.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.geometry import Point
from repro.library.types import GateSize
from repro.netlist.cell import Cell, Pin
from repro.netlist.net import Net
from repro.netlist.ports import input_port_type, output_port_type


class NetlistListener:
    """Interface for incremental analyzers subscribed to a netlist.

    Every hook is a no-op by default; analyzers override the events
    they care about.  ``old_position`` / ``old_size`` let a listener
    invalidate state keyed on the previous value.

    ``is_physical_view`` marks listeners that track the *physical*
    image (bin occupancy): they are the only ones notified of
    **virtual** resizes — the paper's virtual discretization gives the
    placer new cell shapes without updating timing analysis.
    """

    is_physical_view = False

    def on_cell_added(self, cell: Cell) -> None:
        pass

    def on_cell_removed(self, cell: Cell) -> None:
        pass

    def on_cell_moved(self, cell: Cell, old_position: Optional[Point]) -> None:
        pass

    def on_cell_resized(self, cell: Cell, old_size: GateSize) -> None:
        pass

    def on_net_added(self, net: Net) -> None:
        pass

    def on_net_removed(self, net: Net) -> None:
        pass

    def on_connect(self, pin: Pin, net: Net) -> None:
        pass

    def on_disconnect(self, pin: Pin, net: Net) -> None:
        pass


class Netlist:
    """A mutable gate-level netlist with placement data and event bus."""

    def __init__(self, name: str = "design") -> None:
        self.name = name
        self._cells: Dict[str, Cell] = {}
        self._nets: Dict[str, Net] = {}
        self._listeners: List[NetlistListener] = []
        self._name_counter = itertools.count()

    # -- listeners ---------------------------------------------------

    def add_listener(self, listener: NetlistListener) -> None:
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: NetlistListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _emit(self, hook: str, *args) -> None:
        for listener in self._listeners:
            getattr(listener, hook)(*args)

    # -- naming ------------------------------------------------------

    def unique_name(self, prefix: str) -> str:
        """A cell/net name not yet used in this netlist."""
        while True:
            candidate = "%s_%d" % (prefix, next(self._name_counter))
            if candidate not in self._cells and candidate not in self._nets:
                return candidate

    # -- cells -------------------------------------------------------

    def add_cell(self, name: str, size: GateSize,
                 position: Optional[Point] = None,
                 fixed: bool = False) -> Cell:
        if name in self._cells:
            raise ValueError("duplicate cell name %r" % name)
        cell = Cell(name, size, position=position, fixed=fixed)
        cell.netlist = self
        self._cells[name] = cell
        self._emit("on_cell_added", cell)
        return cell

    def remove_cell(self, cell: Cell) -> None:
        """Remove a cell, disconnecting all its pins first."""
        if self._cells.get(cell.name) is not cell:
            raise KeyError("cell %s is not in this netlist" % cell.name)
        for pin in cell.pins():
            if pin.net is not None:
                self.disconnect(pin)
        del self._cells[cell.name]
        cell.netlist = None
        self._emit("on_cell_removed", cell)

    def adopt_cell(self, cell: Cell) -> Cell:
        """Re-insert a previously removed cell *object* unchanged.

        Rollback support (``repro.guard``): restoring a checkpoint must
        bring back the identical ``Cell`` so pins referenced by
        snapshot connectivity records stay valid.  The cell must be
        detached (all pins floating).
        """
        if cell.name in self._cells:
            raise ValueError("duplicate cell name %r" % cell.name)
        for pin in cell.pins():
            if pin.net is not None:
                raise ValueError(
                    "cannot adopt %s: pin %s still connected"
                    % (cell.name, pin.full_name))
        cell.netlist = self
        self._cells[cell.name] = cell
        self._emit("on_cell_added", cell)
        return cell

    def cell(self, name: str) -> Cell:
        try:
            return self._cells[name]
        except KeyError:
            raise KeyError("no cell %r in netlist %s" % (name, self.name))

    def has_cell(self, name: str) -> bool:
        return name in self._cells

    def cells(self) -> List[Cell]:
        return list(self._cells.values())

    def movable_cells(self) -> List[Cell]:
        return [c for c in self._cells.values() if c.is_movable]

    def ports(self) -> List[Cell]:
        return [c for c in self._cells.values() if c.is_port]

    def logic_cells(self) -> List[Cell]:
        """All non-port cells (the paper's "icells")."""
        return [c for c in self._cells.values() if not c.is_port]

    def sequential_cells(self) -> List[Cell]:
        return [c for c in self._cells.values() if c.is_sequential]

    # -- ports -------------------------------------------------------

    def add_input_port(self, name: str, position: Optional[Point] = None) -> Cell:
        """Add a primary input (drives a net through its Z pin)."""
        size = GateSize(input_port_type(), 1.0, "PORT_FP", footprint_area=0.0)
        return self.add_cell(name, size, position=position, fixed=True)

    def add_output_port(self, name: str, position: Optional[Point] = None) -> Cell:
        """Add a primary output (sinks a net through its A pin)."""
        size = GateSize(output_port_type(), 1.0, "PORT_FP", footprint_area=0.0)
        return self.add_cell(name, size, position=position, fixed=True)

    # -- nets --------------------------------------------------------

    def add_net(self, name: str, weight: float = 1.0,
                is_clock: bool = False, is_scan: bool = False) -> Net:
        if name in self._nets:
            raise ValueError("duplicate net name %r" % name)
        net = Net(name, weight=weight, is_clock=is_clock, is_scan=is_scan)
        net.netlist = self
        self._nets[name] = net
        self._emit("on_net_added", net)
        return net

    def remove_net(self, net: Net) -> None:
        """Remove a net, disconnecting any remaining pins first."""
        if self._nets.get(net.name) is not net:
            raise KeyError("net %s is not in this netlist" % net.name)
        for pin in net.pins():
            self.disconnect(pin)
        del self._nets[net.name]
        net.netlist = None
        self._emit("on_net_removed", net)

    def adopt_net(self, net: Net) -> Net:
        """Re-insert a previously removed net *object* unchanged.

        Rollback counterpart of :meth:`adopt_cell`; the net must carry
        no pins (removal disconnected them).
        """
        if net.name in self._nets:
            raise ValueError("duplicate net name %r" % net.name)
        if net._pins:
            raise ValueError(
                "cannot adopt %s: %d pins still attached"
                % (net.name, len(net._pins)))
        net.netlist = self
        self._nets[net.name] = net
        self._emit("on_net_added", net)
        return net

    def net(self, name: str) -> Net:
        try:
            return self._nets[name]
        except KeyError:
            raise KeyError("no net %r in netlist %s" % (name, self.name))

    def has_net(self, name: str) -> bool:
        return name in self._nets

    def nets(self) -> List[Net]:
        return list(self._nets.values())

    # -- connectivity ------------------------------------------------

    def connect(self, pin: Pin, net: Net) -> None:
        """Attach ``pin`` to ``net`` (disconnecting it first if needed)."""
        if self._nets.get(net.name) is not net:
            raise KeyError("net %s is not in this netlist" % net.name)
        if pin.net is net:
            return
        if pin.net is not None:
            self.disconnect(pin)
        if pin.is_output and net.driver() is not None:
            raise ValueError(
                "net %s already driven by %s; cannot add driver %s"
                % (net.name, net.driver().full_name, pin.full_name)
            )
        net._pins.append(pin)
        pin.net = net
        self._emit("on_connect", pin, net)

    def disconnect(self, pin: Pin) -> None:
        """Detach ``pin`` from its net (no-op if already floating)."""
        net = pin.net
        if net is None:
            return
        net._pins.remove(pin)
        pin.net = None
        self._emit("on_disconnect", pin, net)

    # -- physical / electrical edits ----------------------------------

    def move_cell(self, cell: Cell, position: Optional[Point]) -> None:
        """Place or move a cell; fires ``on_cell_moved``."""
        if self._cells.get(cell.name) is not cell:
            raise KeyError("cell %s is not in this netlist" % cell.name)
        old = cell.position
        if old == position:
            return
        cell.position = position
        self._emit("on_cell_moved", cell, old)

    def resize_cell(self, cell: Cell, new_size: GateSize,
                    virtual: bool = False) -> None:
        """Swap a cell to another size of the *same gate type*.

        With ``virtual=True`` only physical-view listeners (the bin
        image) are notified: the placer sees the new width and height,
        but timing analysis is not updated — section 4.4's virtual
        discretization.  A later mode switch or actual resize
        resynchronises the analyzers.
        """
        if self._cells.get(cell.name) is not cell:
            raise KeyError("cell %s is not in this netlist" % cell.name)
        if new_size.gate_type.name != cell.gate_type.name:
            raise ValueError(
                "resize must stay within gate type (%s -> %s); use ops.remap"
                % (cell.type_name, new_size.gate_type.name)
            )
        if new_size == cell.size:
            return
        old = cell.size
        cell.size = new_size
        if virtual:
            for listener in self._listeners:
                if listener.is_physical_view:
                    listener.on_cell_resized(cell, old)
        else:
            self._emit("on_cell_resized", cell, old)

    # -- aggregate metrics --------------------------------------------

    @property
    def num_cells(self) -> int:
        return len(self._cells)

    @property
    def num_nets(self) -> int:
        return len(self._nets)

    def total_cell_area(self) -> float:
        """Total area of non-port cells (track^2)."""
        return sum(c.area for c in self._cells.values() if not c.is_port)

    def total_hpwl(self) -> float:
        """Total half-perimeter wirelength over all nets (tracks)."""
        return sum(n.hpwl() for n in self._nets.values())

    def check_consistency(self) -> None:
        """Validate pin<->net back-references; raise on corruption."""
        for net in self._nets.values():
            drivers = [p for p in net._pins if p.is_output]
            if len(drivers) > 1:
                raise AssertionError("net %s has %d drivers" % (net.name, len(drivers)))
            for pin in net._pins:
                if pin.net is not net:
                    raise AssertionError(
                        "pin %s back-reference broken" % pin.full_name)
                if self._cells.get(pin.cell.name) is not pin.cell:
                    raise AssertionError(
                        "pin %s belongs to a removed cell" % pin.full_name)
        for cell in self._cells.values():
            for pin in cell.pins():
                if pin.net is not None and self._nets.get(pin.net.name) is not pin.net:
                    raise AssertionError(
                        "pin %s connected to removed net" % pin.full_name)

    def __repr__(self) -> str:
        return "<Netlist %s: %d cells, %d nets>" % (
            self.name, len(self._cells), len(self._nets))
