"""Primary I/O ports, modelled as fixed single-pin cells.

A primary input drives its net, so its pin is an *output* from the
netlist's point of view; a primary output is a sink.  Modelling ports
as cells lets the partitioner, Steiner estimator and timing engine
treat them uniformly (terminal projection sees them "natively", as the
paper puts it).
"""

from __future__ import annotations

from functools import lru_cache

from repro.library.types import GateKind, GateType, PinDirection, PinSpec


@lru_cache(maxsize=None)
def input_port_type() -> GateType:
    """The gate type of a primary input port."""
    return GateType(
        "PORT_IN",
        GateKind.PORT,
        (PinSpec("Z", PinDirection.OUTPUT),),
        logical_effort=1.0,
        parasitic=0.0,
        area_factor=0.0,
        inverting=False,
    )


@lru_cache(maxsize=None)
def output_port_type() -> GateType:
    """The gate type of a primary output port."""
    return GateType(
        "PORT_OUT",
        GateKind.PORT,
        (PinSpec("A", PinDirection.INPUT),),
        logical_effort=1.0,
        parasitic=0.0,
        area_factor=0.0,
        inverting=False,
    )
