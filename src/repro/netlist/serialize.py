"""Netlist <-> plain-data state conversion (the persistence hooks).

``netlist_to_state`` flattens a live :class:`~repro.netlist.netlist.Netlist`
into JSON-serializable primitives; ``netlist_from_state`` rebuilds an
identical netlist against a :class:`~repro.library.Library`.  The
round trip is *exact* down to iteration order: cells and nets are
recorded in dictionary insertion order and net pin membership in pin
list order, so every traversal a transform can make (and every float
summation order those traversals imply) is reproduced bit-identically.
Gate sizes are stored as ``(type name, size multiple)`` and resolved
from the library ladder on load; primary I/O ports — whose sizes are
synthesized outside the library — are tagged and rebuilt through
``add_input_port`` / ``add_output_port``.

Used by :mod:`repro.persist.snapshot` for on-disk design checkpoints.
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.geometry import Point
from repro.library import Library
from repro.netlist.netlist import Netlist

#: Bump when the state layout changes incompatibly.
NETLIST_STATE_VERSION = 1


def peek_name_counter(netlist: Netlist) -> int:
    """The next value ``unique_name`` would draw, without consuming it.

    ``itertools.count`` cannot be inspected, so the next value is drawn
    and the counter re-seated at that value — externally a pure peek.
    """
    value = next(netlist._name_counter)
    netlist._name_counter = itertools.count(value)
    return value


def set_name_counter(netlist: Netlist, value: int) -> None:
    """Re-seat the unique-name counter (restore counterpart)."""
    netlist._name_counter = itertools.count(value)


def _port_kind(cell) -> Optional[str]:
    if not cell.is_port:
        return None
    return "in" if cell.output_pins() else "out"


def netlist_to_state(netlist: Netlist) -> dict:
    """Flatten a netlist into JSON-serializable primitives."""
    cells = []
    for cell in netlist.cells():
        record = {
            "name": cell.name,
            "type": cell.type_name,
            "x": cell.size.x,
            "position": (None if cell.position is None
                         else [cell.position.x, cell.position.y]),
            "fixed": cell.fixed,
            "gain": cell.gain,
            "tags": sorted(cell.tags),
        }
        port = _port_kind(cell)
        if port is not None:
            record["port"] = port
        cells.append(record)
    nets = []
    for net in netlist.nets():
        nets.append({
            "name": net.name,
            "weight": net.weight,
            "base_weight": net.base_weight,
            "clock": net.is_clock,
            "scan": net.is_scan,
            "pins": [[p.cell.name, p.name] for p in net.pins()],
        })
    return {
        "version": NETLIST_STATE_VERSION,
        "name": netlist.name,
        "name_counter": peek_name_counter(netlist),
        "cells": cells,
        "nets": nets,
    }


def populate_netlist(netlist: Netlist, state: dict,
                     library: Library) -> None:
    """Fill an *empty* netlist from a state record, in recorded order."""
    if state.get("version") != NETLIST_STATE_VERSION:
        raise ValueError("unsupported netlist state version %r"
                         % state.get("version"))
    for rec in state["cells"]:
        position = (None if rec["position"] is None
                    else Point(rec["position"][0], rec["position"][1]))
        port = rec.get("port")
        if port == "in":
            cell = netlist.add_input_port(rec["name"], position=position)
        elif port == "out":
            cell = netlist.add_output_port(rec["name"], position=position)
        else:
            size = library.size(rec["type"], rec["x"])
            cell = netlist.add_cell(rec["name"], size, position=position,
                                    fixed=rec["fixed"])
        cell.fixed = rec["fixed"]
        cell.gain = rec["gain"]
        cell.tags = set(rec["tags"])
    for rec in state["nets"]:
        net = netlist.add_net(rec["name"], weight=rec["weight"],
                              is_clock=rec["clock"], is_scan=rec["scan"])
        net.base_weight = rec["base_weight"]
        for cell_name, pin_name in rec["pins"]:
            netlist.connect(netlist.cell(cell_name).pin(pin_name), net)
    set_name_counter(netlist, state["name_counter"])


def netlist_from_state(state: dict, library: Library) -> Netlist:
    """Rebuild a netlist from ``netlist_to_state`` output."""
    netlist = Netlist(state["name"])
    populate_netlist(netlist, state, library)
    return netlist


def netlists_equal(a: Netlist, b: Netlist) -> bool:
    """Structural equality of two live netlists, order included.

    Two netlists are equal when they would serialize identically:
    same cells (name, size, position, fixed, gain, tags, port kind)
    and same nets (scalars + pin membership) in the same iteration
    order, with the same name-counter position.  This is a stricter
    check than signature equality — it also covers fields the state
    signature deliberately omits (iteration order, name counter) —
    and a cheaper-to-diagnose one: the round-trip property test
    compares the two state dicts directly on failure.
    """
    return netlist_to_state(a) == netlist_to_state(b)
