"""Gate-level netlist data model.

TPS gives every transform a *unified view* of the synthesis and
placement design space: boolean (connectivity), electrical (sizes,
gains) and physical (positions) data live on one ``Netlist`` object.
Incremental analyzers (timing, Steiner trees, congestion) subscribe to
the netlist's change events instead of polling, which is what makes
"recalculations only happen in regions affected by netlist or placement
changes" possible.
"""

from repro.netlist.cell import Cell, Pin
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist, NetlistListener
from repro.netlist.ports import input_port_type, output_port_type
from repro.netlist.serialize import netlist_from_state, netlist_to_state
from repro.netlist import ops

__all__ = [
    "Cell",
    "Pin",
    "Net",
    "Netlist",
    "NetlistListener",
    "input_port_type",
    "output_port_type",
    "netlist_from_state",
    "netlist_to_state",
    "ops",
]
