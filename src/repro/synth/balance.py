"""Tree balancing: the workhorse of technology-independent depth
optimization.

Each maximal AND tree (a cone of same-polarity AND nodes without
internal fanout to other functions) is collapsed into its leaf
literals and rebuilt as a balanced tree — pairing the two shallowest
operands first, Huffman-style on arrival levels.  Logic function is
preserved by construction; depth drops from O(n) chains to O(log n).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.synth.aig import Aig, Lit, lit_compl, lit_node, lit_not


def _reference_counts(aig: Aig) -> Dict[int, int]:
    refs: Dict[int, int] = {}
    for node in aig.nodes_topological():
        for fanin in aig.fanins(node):
            refs[lit_node(fanin)] = refs.get(lit_node(fanin), 0) + 1
    for _name, literal in aig.outputs:
        refs[lit_node(literal)] = refs.get(lit_node(literal), 0) + 1
    return refs


def _collect_leaves(aig: Aig, literal: Lit, refs: Dict[int, int],
                    leaves: List[Lit], root: bool = False) -> None:
    """Flatten an AND cone into its leaf literals.

    Complemented edges and multiply-referenced interior nodes are cone
    boundaries (sharing must be preserved).
    """
    node = lit_node(literal)
    if not root and (lit_compl(literal) or aig.is_input(node)
                     or node == 0 or refs.get(node, 0) > 1):
        leaves.append(literal)
        return
    if aig.is_input(node) or node == 0:
        leaves.append(literal)
        return
    a, b = aig.fanins(node)
    _collect_leaves(aig, a, refs, leaves)
    _collect_leaves(aig, b, refs, leaves)


def balance(aig: Aig) -> Aig:
    """Return a depth-balanced, functionally identical copy of ``aig``."""
    out = Aig()
    mapping: Dict[int, Lit] = {0: 0}
    for i, name in enumerate(aig.inputs, start=1):
        mapping[i] = out.add_input(name)

    refs = _reference_counts(aig)
    levels: Dict[int, int] = {}

    # Only cone *roots* need rebuilding: outputs, shared nodes, and
    # nodes consumed through a complemented edge.  Interior nodes of a
    # cone are reconstructed implicitly by the flatten/rebuild.
    roots = {lit_node(l) for _n, l in aig.outputs}
    for node in aig.nodes_topological():
        for fanin in aig.fanins(node):
            if lit_compl(fanin) or refs.get(lit_node(fanin), 0) > 1:
                roots.add(lit_node(fanin))

    def mapped(literal: Lit) -> Lit:
        base = mapping[lit_node(literal)]
        return lit_not(base) if lit_compl(literal) else base

    def out_level(literal: Lit) -> int:
        return levels.get(lit_node(literal), 0)

    for node in aig.nodes_topological():
        if node not in roots:
            continue
        leaves: List[Lit] = []
        _collect_leaves(aig, 2 * node, refs, leaves, root=True)
        heap: List[Tuple[int, int, Lit]] = []
        for i, leaf in enumerate(leaves):
            m = mapped(leaf)
            heapq.heappush(heap, (out_level(m), i, m))
        counter = len(leaves)
        while len(heap) > 1:
            l1, _i1, x = heapq.heappop(heap)
            l2, _i2, y = heapq.heappop(heap)
            z = out.add_and(x, y)
            levels.setdefault(lit_node(z), max(l1, l2) + 1)
            heapq.heappush(heap, (out_level(z), counter, z))
            counter += 1
        mapping[node] = heap[0][2] if heap else 1

    for name, literal in aig.outputs:
        out.add_output(name, mapped(literal))
    return out
