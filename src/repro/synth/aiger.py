"""ASCII AIGER ('aag') reading and writing.

The standard interchange format for And-Inverter Graphs (Biere's AIGER,
combinational subset: no latches).  Literal numbering matches our
internal convention directly (2*var + complement).
"""

from __future__ import annotations

from typing import Dict, List, TextIO

from repro.synth.aig import Aig, Lit, lit_node


def write_aag(aig: Aig, stream: TextIO) -> None:
    """Write the AIG in ASCII AIGER format with a symbol table."""
    # Compact node numbering: inputs 1..I, ands I+1..I+A
    remap: Dict[int, int] = {0: 0}
    for i in range(1, aig.num_inputs + 1):
        remap[i] = i
    and_nodes = aig.nodes_topological()
    for k, node in enumerate(and_nodes, start=aig.num_inputs + 1):
        remap[node] = k

    def remap_lit(literal: Lit) -> int:
        return 2 * remap[lit_node(literal)] + (literal & 1)

    m = aig.num_inputs + len(and_nodes)
    stream.write("aag %d %d 0 %d %d\n" % (m, aig.num_inputs,
                                          len(aig.outputs),
                                          len(and_nodes)))
    for i in range(1, aig.num_inputs + 1):
        stream.write("%d\n" % (2 * i))
    for _name, literal in aig.outputs:
        stream.write("%d\n" % remap_lit(literal))
    for node in and_nodes:
        a, b = aig.fanins(node)
        stream.write("%d %d %d\n" % (2 * remap[node],
                                     remap_lit(a), remap_lit(b)))
    for i, name in enumerate(aig.inputs):
        stream.write("i%d %s\n" % (i, name))
    for i, (name, _l) in enumerate(aig.outputs):
        stream.write("o%d %s\n" % (i, name))


def read_aag(stream: TextIO) -> Aig:
    """Parse an ASCII AIGER file (combinational: L must be 0)."""
    header = stream.readline().split()
    if len(header) != 6 or header[0] != "aag":
        raise ValueError("not an ASCII AIGER (aag) file")
    m, i, l, o, a = (int(x) for x in header[1:])
    if l != 0:
        raise ValueError("latches are not supported (L=%d)" % l)

    input_lits: List[int] = []
    for _ in range(i):
        input_lits.append(int(stream.readline()))
    output_lits: List[int] = []
    for _ in range(o):
        output_lits.append(int(stream.readline()))
    and_rows: List[List[int]] = []
    for _ in range(a):
        and_rows.append([int(x) for x in stream.readline().split()])

    input_names = {k: "i%d" % k for k in range(i)}
    output_names = {k: "o%d" % k for k in range(o)}
    for raw in stream:
        line = raw.strip()
        if not line or line == "c":
            break
        if line[0] in "io" and " " in line:
            kind, name = line[0], line.split(" ", 1)[1]
            idx = int(line[1:line.index(" ")])
            if kind == "i":
                input_names[idx] = name
            else:
                output_names[idx] = name

    aig = Aig()
    lit_map: Dict[int, Lit] = {0: 0, 1: 1}
    for k, file_lit in enumerate(input_lits):
        if file_lit % 2 or file_lit == 0:
            raise ValueError("invalid input literal %d" % file_lit)
        ours = aig.add_input(input_names[k])
        lit_map[file_lit] = ours
        lit_map[file_lit + 1] = ours ^ 1

    def resolve(file_lit: int) -> Lit:
        try:
            return lit_map[file_lit]
        except KeyError:
            raise ValueError("literal %d used before definition"
                             % file_lit)

    for row in and_rows:
        if len(row) != 3:
            raise ValueError("malformed AND row %r" % row)
        lhs, r0, r1 = row
        ours = aig.add_and(resolve(r0), resolve(r1))
        lit_map[lhs] = ours
        lit_map[lhs + 1] = ours ^ 1

    for k, file_lit in enumerate(output_lits):
        aig.add_output(output_names[k], resolve(file_lit))
    return aig
