"""Synthesis front-end: the stages *before* TPS takes over.

"In our system, technology independent optimization, technology
mapping and the early part of the timing optimization stage ... employ
a gain-based (load-independent) delay model" (section 5).  This
package provides that front-end:

* :mod:`repro.synth.aig` — And-Inverter Graph with structural hashing,
  the technology-independent representation;
* :mod:`repro.synth.balance` — depth reduction by tree balancing
  (technology-independent optimization);
* :mod:`repro.synth.mapper` — cut-based dynamic-programming technology
  mapping onto the standard-cell library, minimising gain-model delay
  or area;
* :mod:`repro.synth.flow` — the ``synthesize`` pipeline gluing them
  together and emitting a mapped :class:`~repro.netlist.Netlist`.
"""

from repro.synth.aig import Aig, Lit
from repro.synth.balance import balance
from repro.synth.mapper import MapperOptions, technology_map
from repro.synth.flow import synthesize

__all__ = [
    "Aig",
    "Lit",
    "balance",
    "MapperOptions",
    "technology_map",
    "synthesize",
]
