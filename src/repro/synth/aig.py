"""And-Inverter Graphs with structural hashing.

The technology-independent subject graph: two-input AND nodes plus
edge complement bits.  Literals are ``2*node + complement`` (the AIGER
convention); node 0 is the constant FALSE, so literal 1 is TRUE.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

#: A literal: 2*node_id + complement_bit.
Lit = int

FALSE: Lit = 0
TRUE: Lit = 1


def lit(node: int, complemented: bool = False) -> Lit:
    return 2 * node + (1 if complemented else 0)


def lit_node(literal: Lit) -> int:
    return literal >> 1

def lit_compl(literal: Lit) -> bool:
    return bool(literal & 1)


def lit_not(literal: Lit) -> Lit:
    return literal ^ 1


class Aig:
    """A combinational AIG.

    Node 0 is the constant; nodes ``1..num_inputs`` are the primary
    inputs; the rest are AND nodes created through :meth:`add_and`
    (with structural hashing and constant/idempotence simplification).
    """

    def __init__(self) -> None:
        self._inputs: List[str] = []
        #: fanins of AND nodes: node -> (lit0, lit1); inputs/const absent
        self._ands: Dict[int, Tuple[Lit, Lit]] = {}
        self._strash: Dict[Tuple[Lit, Lit], int] = {}
        self._outputs: List[Tuple[str, Lit]] = []
        self._next_node = 1

    # -- construction ---------------------------------------------------

    def add_input(self, name: str) -> Lit:
        """Create a primary input; returns its (positive) literal."""
        if any(n == name for n in self._inputs):
            raise ValueError("duplicate input %r" % name)
        node = self._next_node
        self._next_node += 1
        self._inputs.append(name)
        self._input_nodes = None  # lazy cache invalidation
        return lit(node)

    def add_and(self, a: Lit, b: Lit) -> Lit:
        """AND of two literals with simplification and strashing."""
        self._check(a)
        self._check(b)
        if a > b:
            a, b = b, a
        if a == FALSE or b == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE:
            return a
        if a == b:
            return a
        if a == lit_not(b):
            return FALSE
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = self._next_node
            self._next_node += 1
            self._ands[node] = key
            self._strash[key] = node
        return lit(node)

    def add_or(self, a: Lit, b: Lit) -> Lit:
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_xor(self, a: Lit, b: Lit) -> Lit:
        return self.add_or(self.add_and(a, lit_not(b)),
                           self.add_and(lit_not(a), b))

    def add_mux(self, sel: Lit, d1: Lit, d0: Lit) -> Lit:
        return self.add_or(self.add_and(sel, d1),
                           self.add_and(lit_not(sel), d0))

    def add_output(self, name: str, literal: Lit) -> None:
        self._check(literal)
        if any(n == name for n, _l in self._outputs):
            raise ValueError("duplicate output %r" % name)
        self._outputs.append((name, literal))

    def _check(self, literal: Lit) -> None:
        node = lit_node(literal)
        if node >= self._next_node or node < 0:
            raise ValueError("literal %d references unknown node" % literal)

    # -- structure --------------------------------------------------------

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    @property
    def num_ands(self) -> int:
        return len(self._ands)

    @property
    def inputs(self) -> List[str]:
        return list(self._inputs)

    @property
    def outputs(self) -> List[Tuple[str, Lit]]:
        return list(self._outputs)

    def is_input(self, node: int) -> bool:
        return 1 <= node <= len(self._inputs)

    def input_name(self, node: int) -> str:
        return self._inputs[node - 1]

    def fanins(self, node: int) -> Tuple[Lit, Lit]:
        return self._ands[node]

    def nodes_topological(self) -> List[int]:
        """AND nodes in creation (= topological) order."""
        return sorted(self._ands)

    def levels(self) -> Dict[int, int]:
        """Logic depth of every node (inputs and constant at 0)."""
        level: Dict[int, int] = {0: 0}
        for i in range(1, len(self._inputs) + 1):
            level[i] = 0
        for node in self.nodes_topological():
            a, b = self._ands[node]
            level[node] = 1 + max(level[lit_node(a)], level[lit_node(b)])
        return level

    def depth(self) -> int:
        level = self.levels()
        return max((level[lit_node(l)] for _n, l in self._outputs),
                   default=0)

    # -- simulation ---------------------------------------------------------

    def simulate(self, vectors: Dict[str, int],
                 width: int = 64) -> Dict[str, int]:
        """Bit-parallel simulation: ``width``-bit words per signal."""
        mask = (1 << width) - 1
        value: Dict[int, int] = {0: 0}
        for i, name in enumerate(self._inputs, start=1):
            value[i] = vectors.get(name, 0) & mask
        for node in self.nodes_topological():
            a, b = self._ands[node]
            va = value[lit_node(a)] ^ (mask if lit_compl(a) else 0)
            vb = value[lit_node(b)] ^ (mask if lit_compl(b) else 0)
            value[node] = va & vb
        out = {}
        for name, literal in self._outputs:
            v = value[lit_node(literal)]
            out[name] = (v ^ (mask if lit_compl(literal) else 0)) & mask
        return out

    def random_simulation(self, seed: int = 0,
                          width: int = 64) -> Dict[str, int]:
        """Outputs under one random input vector word."""
        rng = random.Random(seed)
        vectors = {name: rng.getrandbits(width) for name in self._inputs}
        return self.simulate(vectors, width=width)

    def __repr__(self) -> str:
        return "<Aig %d inputs, %d ands, %d outputs, depth %d>" % (
            self.num_inputs, self.num_ands, len(self._outputs),
            self.depth())
