"""The synthesis pipeline feeding TPS.

``synthesize`` = structural hashing (implicit in the AIG) → tree
balancing → technology mapping — the "technology independent
optimization, technology mapping" stages of section 5, all under the
gain-based delay model (the mapper's delay costs are gain-model
delays).  The result is a mapped netlist ready for ``make_design`` +
``TPSScenario``.
"""

from __future__ import annotations

from typing import Optional

from repro.library import Library
from repro.netlist import Netlist
from repro.synth.aig import Aig
from repro.synth.balance import balance
from repro.synth.mapper import MapperOptions, technology_map


def synthesize(aig: Aig, library: Library,
               options: Optional[MapperOptions] = None,
               name: str = "synth",
               balance_passes: int = 1) -> Netlist:
    """Technology-independent optimization + mapping.

    Returns a mapped, simulation-equivalent netlist.  ``balance_passes``
    controls how many balancing rounds run before mapping (one is
    usually enough; balancing is idempotent on balanced trees).
    """
    current = aig
    for _ in range(max(0, balance_passes)):
        current = balance(current)
    return technology_map(current, library, options=options, name=name)


def evaluate_netlist(netlist: Netlist, vectors: dict,
                     width: int = 64) -> dict:
    """Bit-parallel functional simulation of a mapped netlist.

    ``vectors`` maps primary input names to ``width``-bit words;
    returns output port name -> word.  Used to check mapper
    equivalence against the source AIG.
    """
    from repro.synth.mapper import _GATE_FUNCS

    mask = (1 << width) - 1
    values = {}
    for port in netlist.ports():
        if port.output_pins():
            net = port.pin("Z").net
            if net is not None:
                values[net.name] = vectors.get(port.name, 0) & mask

    # topological evaluation over logic cells
    remaining = [c for c in netlist.logic_cells()]
    guard = len(remaining) + 1
    while remaining and guard > 0:
        guard -= 1
        progressed = []
        for cell in remaining:
            in_nets = [p.net for p in cell.input_pins()]
            if any(n is None or n.name not in values for n in in_nets):
                continue
            func = _GATE_FUNCS.get(cell.type_name)
            if func is None:
                raise ValueError("cannot simulate %s" % cell.type_name)
            args = [values[n.name] for n in in_nets]
            out = func(*args) & mask
            out_net = cell.output_pin().net
            if out_net is not None:
                values[out_net.name] = out
            progressed.append(cell)
        if not progressed:
            raise ValueError("netlist is not acyclic or has floating "
                             "inputs")
        remaining = [c for c in remaining if c not in progressed]

    result = {}
    for port in netlist.ports():
        if port.input_pins():
            net = port.pin("A").net
            result[port.name] = values.get(net.name, 0) if net else 0
    return result
