"""Cut-based technology mapping onto the standard-cell library.

Classic DAG covering: enumerate k-feasible cuts per AIG node, compute
each cut's truth table, match it against the (permuted) functions of
the library gates, and run a dynamic program over (node, phase) —
every node can be realised in positive or negative polarity, with
inverters bridging phases — minimising gain-model delay (or area
flow).  The winning cover is emitted as a mapped
:class:`~repro.netlist.Netlist`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.library import Library
from repro.library.types import TAU
from repro.netlist import Netlist
from repro.synth.aig import Aig, lit_compl, lit_node

#: Maximum cut size (= widest library gate input count).
_K = 4
#: Cuts kept per node (pruned by leaf count then discovery order).
_CUTS_PER_NODE = 8
#: Variable patterns for 4-input truth tables (16 bits).
_VARS = (0xAAAA, 0xCCCC, 0xF0F0, 0xFF00)
_MASK = 0xFFFF

#: Boolean function of each mappable gate type, over its input pins in
#: library pin order.  Bitwise operators work on truth-table words.
_GATE_FUNCS = {
    "INV": lambda a: ~a,
    "BUF": lambda a: a,
    "NAND2": lambda a, b: ~(a & b),
    "NAND3": lambda a, b, c: ~(a & b & c),
    "NAND4": lambda a, b, c, d: ~(a & b & c & d),
    "NOR2": lambda a, b: ~(a | b),
    "NOR3": lambda a, b, c: ~(a | b | c),
    "AND2": lambda a, b: a & b,
    "OR2": lambda a, b: a | b,
    "AOI21": lambda a, b, c: ~((a & b) | c),
    "OAI21": lambda a, b, c: ~((a | b) & c),
    "XOR2": lambda a, b: a ^ b,
    "XNOR2": lambda a, b: ~(a ^ b),
    "MUX2": lambda d0, d1, s: (s & d1) | (~s & d0),
}


@dataclass
class MapperOptions:
    """Mapping objective and the gain used for the delay model."""

    mode: str = "delay"  # "delay" | "area"
    gain: float = 4.0

    def __post_init__(self) -> None:
        if self.mode not in ("delay", "area"):
            raise ValueError("mode must be 'delay' or 'area'")


@dataclass
class _Match:
    """One way to realise a (node, phase): a gate over cut leaves.

    ``leaf_phases[i]`` is the polarity pin i reads its leaf in (1
    means through an inverter-realised negative phase).
    """

    gate_type: str
    #: leaf node ids, in gate pin order
    leaf_order: Tuple[int, ...]
    leaf_phases: Tuple[int, ...] = ()
    cost: float = 0.0


class _PatternLibrary:
    """(num_inputs, table) -> [(type, pin permutation, compl mask)].

    Patterns enumerate input complementations too, so functions like
    ``a & ~b`` match ``AND2`` with pin B in negative phase.
    """

    def __init__(self, library: Library, gain: float) -> None:
        self.patterns: Dict[Tuple[int, int],
                            List[Tuple[str, Tuple[int, ...], int]]] = {}
        self.gate_delay: Dict[str, float] = {}
        self.gate_area: Dict[str, float] = {}
        for type_name, func in _GATE_FUNCS.items():
            if not library.has_type(type_name):
                continue
            gate = library.type(type_name)
            n = gate.num_inputs
            self.gate_delay[type_name] = TAU * (
                gate.parasitic + gate.logical_effort * gain)
            self.gate_area[type_name] = library.smallest(type_name).area
            for perm in itertools.permutations(range(n)):
                for compl in range(1 << n):
                    # gate pin i reads leaf variable perm[i], possibly
                    # complemented
                    args = []
                    for i in range(n):
                        v = _VARS[perm[i]]
                        if (compl >> i) & 1:
                            v = ~v
                        args.append(v)
                    table = func(*args) & _table_mask(n)
                    key = (n, table)
                    entry = (type_name, perm, compl)
                    bucket = self.patterns.setdefault(key, [])
                    if entry not in bucket:
                        bucket.append(entry)

    def matches(self, n: int, table: int):
        return self.patterns.get((n, table & _table_mask(n)), [])


def _table_mask(n: int) -> int:
    return (1 << (1 << n)) - 1 if n < 4 else _MASK


def _enumerate_cuts(aig: Aig) -> Dict[int, List[Tuple[int, ...]]]:
    """K-feasible cuts per node (leaf node-id tuples, sorted)."""
    cuts: Dict[int, List[Tuple[int, ...]]] = {0: [(0,)]}
    for i in range(1, aig.num_inputs + 1):
        cuts[i] = [(i,)]
    for node in aig.nodes_topological():
        a, b = aig.fanins(node)
        na, nb = lit_node(a), lit_node(b)
        merged: List[Tuple[int, ...]] = [(node,)]
        seen = {(node,)}
        for ca in cuts[na]:
            for cb in cuts[nb]:
                union = tuple(sorted(set(ca) | set(cb)))
                if len(union) > _K or union in seen:
                    continue
                # prune dominated cuts (supersets of existing ones)
                if any(set(c) <= set(union) for c in merged
                       if c != (node,)):
                    continue
                seen.add(union)
                merged.append(union)
                if len(merged) >= _CUTS_PER_NODE:
                    break
            if len(merged) >= _CUTS_PER_NODE:
                break
        cuts[node] = merged
    return cuts


def _cut_table(aig: Aig, node: int, leaves: Sequence[int]) -> Optional[int]:
    """Truth table of ``node`` over ``leaves`` (positive polarity)."""
    values: Dict[int, int] = {0: 0}
    for i, leaf in enumerate(leaves):
        values[leaf] = _VARS[i]

    def eval_node(n: int) -> Optional[int]:
        if n in values:
            return values[n]
        if aig.is_input(n):
            return None  # leaf set does not cover the cone
        a, b = aig.fanins(n)
        va = eval_node(lit_node(a))
        vb = eval_node(lit_node(b))
        if va is None or vb is None:
            return None
        if lit_compl(a):
            va = ~va
        if lit_compl(b):
            vb = ~vb
        values[n] = va & vb & _MASK
        return values[n]

    result = eval_node(node)
    return None if result is None else result & _MASK


def technology_map(aig: Aig, library: Library,
                   options: Optional[MapperOptions] = None,
                   name: str = "mapped") -> Netlist:
    """Cover ``aig`` with library gates; returns the mapped netlist."""
    options = options or MapperOptions()
    patterns = _PatternLibrary(library, options.gain)
    cuts = _enumerate_cuts(aig)
    inv_cost = (patterns.gate_delay["INV"] if options.mode == "delay"
                else patterns.gate_area["INV"])

    INF = float("inf")
    # DP state: (node, phase) -> (cost, _Match or "inv" marker)
    cost: Dict[Tuple[int, int], float] = {}
    choice: Dict[Tuple[int, int], object] = {}

    def state_cost(node: int, phase: int) -> float:
        return cost.get((node, phase), INF)

    for i in range(0, aig.num_inputs + 1):
        cost[(i, 0)] = 0.0
        choice[(i, 0)] = "leaf"
        cost[(i, 1)] = inv_cost
        choice[(i, 1)] = "inv"

    for node in aig.nodes_topological():
        best: Dict[int, Tuple[float, _Match]] = {}
        for cut in cuts[node]:
            if cut == (node,):
                continue
            table = _cut_table(aig, node, cut)
            if table is None:
                continue
            n = len(cut)
            for phase, want in ((0, table), (1, ~table & _MASK)):
                for type_name, perm, compl in patterns.matches(n, want):
                    leaf_order = tuple(cut[perm[i]] for i in range(n))
                    leaf_phases = tuple((compl >> i) & 1
                                        for i in range(n))
                    leaf_costs = [state_cost(l, ph) for l, ph
                                  in zip(leaf_order, leaf_phases)]
                    if any(c == INF for c in leaf_costs):
                        continue
                    if options.mode == "delay":
                        total = (max(leaf_costs, default=0.0)
                                 + patterns.gate_delay[type_name])
                    else:
                        total = (patterns.gate_area[type_name]
                                 + sum(leaf_costs))
                    if total < best.get(phase, (INF, None))[0]:
                        best[phase] = (total, _Match(
                            type_name, leaf_order, leaf_phases))
        for phase in (0, 1):
            if phase in best:
                cost[(node, phase)] = best[phase][0]
                choice[(node, phase)] = best[phase][1]
        # inverter bridges: realise the missing phase from the other
        for phase in (0, 1):
            alt = state_cost(node, 1 - phase) + inv_cost
            if alt < state_cost(node, phase):
                cost[(node, phase)] = alt
                choice[(node, phase)] = "inv"
        if state_cost(node, 0) == INF and state_cost(node, 1) == INF:
            raise ValueError(
                "node %d has no match in the pattern library" % node)

    return _emit(aig, library, choice, name)


def _emit(aig: Aig, library: Library, choice: Dict, name: str) -> Netlist:
    """Materialise the chosen cover as a netlist."""
    netlist = Netlist(name)
    nets: Dict[Tuple[int, int], object] = {}

    for input_name in aig.inputs:
        port = netlist.add_input_port(input_name)
        net = netlist.add_net(netlist.unique_name("n_" + input_name))
        netlist.connect(port.pin("Z"), net)

    input_ids = {i + 1: input_name
                 for i, input_name in enumerate(aig.inputs)}

    def realise(node: int, phase: int):
        key = (node, phase)
        if key in nets:
            return nets[key]
        picked = choice.get(key)
        if picked == "leaf":
            net = netlist.cell(input_ids[node]).pin("Z").net
        elif picked == "inv":
            source = realise(node, 1 - phase)
            inv = netlist.add_cell(
                netlist.unique_name("m%d_inv" % node),
                library.smallest("INV"))
            netlist.connect(inv.pin("A"), source)
            net = netlist.add_net(netlist.unique_name("w%d_%d"
                                                      % (node, phase)))
            netlist.connect(inv.pin("Z"), net)
        elif isinstance(picked, _Match):
            gate = netlist.add_cell(
                netlist.unique_name("m%d_%s" % (node,
                                                picked.gate_type.lower())),
                library.smallest(picked.gate_type))
            phases = picked.leaf_phases or (0,) * len(picked.leaf_order)
            for pin_spec, leaf, leaf_phase in zip(
                    gate.gate_type.input_pins, picked.leaf_order,
                    phases):
                netlist.connect(gate.pin(pin_spec.name),
                                realise(leaf, leaf_phase))
            net = netlist.add_net(netlist.unique_name("w%d_%d"
                                                      % (node, phase)))
            netlist.connect(gate.output_pin(), net)
        else:
            raise ValueError("no realisation for node %d phase %d"
                             % (node, phase))
        nets[key] = net
        return net

    for out_name, literal in aig.outputs:
        node = lit_node(literal)
        phase = 1 if lit_compl(literal) else 0
        if node == 0:
            raise ValueError("constant outputs are not supported "
                             "by the mapper (output %r)" % out_name)
        net = realise(node, phase)
        port = netlist.add_output_port(out_name)
        netlist.connect(port.pin("A"), net)
    return netlist
