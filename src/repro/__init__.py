"""repro — Transformational Placement and Synthesis (TPS).

A full reproduction of Donath et al., "Transformational Placement and
Synthesis" (DATE 2000): logic synthesis and placement integrated into
one converging transformational flow over a shared design space, with
incremental timing, wirelength, congestion, noise and power analyzers.

Quickstart::

    from repro import (default_library, build_des_design,
                       TPSScenario, SPRFlow)

    library = default_library()
    design = build_des_design("Des5", library, scale=0.2)
    report = TPSScenario(design).run()
    print(report.table_row())

Main entry points:

* :class:`repro.design.Design` — netlist + die + analyzers bundle;
* :class:`repro.scenario.TPSScenario` — the paper's Figure 5 flow;
* :class:`repro.scenario.SPRFlow` — the synthesis/place/resynthesize
  baseline of Table 1;
* :mod:`repro.workloads` — synthetic processor-partition generators
  (Des1..Des5 presets);
* :mod:`repro.transforms` — the individual placement+synthesis
  transforms, usable stand-alone.
"""

from repro.design import Design
from repro.geometry import Point, Rect
from repro.guard import (
    DesignCheckpoint,
    FaultInjector,
    FaultKind,
    GuardConfig,
    GuardedRunner,
    InvariantSuite,
)
from repro.library import Library, analyze_library, default_library
from repro.netlist import Netlist
from repro.obs import CutTimeline, Span, Tracer, TraceWriter, read_trace
from repro.persist import FlowPersist, PersistConfig, RunDir
from repro.scenario import FlowReport, SPRConfig, SPRFlow, TPSConfig, TPSScenario
from repro.synth import Aig, MapperOptions, synthesize
from repro.timing import DelayMode, TimingConstraints, TimingEngine
from repro.workloads import (
    build_des_design,
    des_params,
    make_design,
    processor_partition,
    random_logic,
)

__version__ = "1.0.0"

__all__ = [
    "Design",
    "DesignCheckpoint",
    "FaultInjector",
    "FaultKind",
    "GuardConfig",
    "GuardedRunner",
    "InvariantSuite",
    "Point",
    "Rect",
    "Library",
    "analyze_library",
    "default_library",
    "Netlist",
    "CutTimeline",
    "Span",
    "Tracer",
    "TraceWriter",
    "read_trace",
    "FlowPersist",
    "PersistConfig",
    "RunDir",
    "FlowReport",
    "SPRConfig",
    "SPRFlow",
    "TPSConfig",
    "TPSScenario",
    "DelayMode",
    "TimingConstraints",
    "TimingEngine",
    "build_des_design",
    "des_params",
    "make_design",
    "processor_partition",
    "random_logic",
    "Aig",
    "MapperOptions",
    "synthesize",
    "__version__",
]
