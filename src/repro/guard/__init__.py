"""Guarded transform execution: checkpoints, rollback, quarantine.

The paper's single converging flow interleaves ~15 transform kinds over
one shared design space; an exception or state corruption in any of
them would otherwise abort the whole flow with the ``Design``
half-mutated.  This package makes every transform invocation a
transaction:

* :class:`DesignCheckpoint` — snapshot/restore of the mutable design
  space (positions, sizes, netlist topology deltas, bin occupancy,
  timing invalidation);
* :class:`InvariantSuite` — pluggable post-run consistency checks
  (netlist back-references, dangling pins, bin occupancy conservation,
  timing-graph/netlist sync);
* :class:`GuardedRunner` — exception isolation, wall-clock budgets,
  invariant verification, rollback-on-failure and quarantine after K
  consecutive failures, with per-transform health accounting;
* :class:`FaultInjector` — a deterministic (seeded) chaos harness that
  injects exceptions, slowdowns, and state corruption into chosen
  transforms so the guarded flows can be tested under failure.
"""

from repro.guard.errors import (
    BudgetExceeded,
    FaultInjected,
    GuardError,
    InvariantViolation,
    RestoreMismatch,
    TransformError,
)
from repro.guard.checkpoint import (
    DesignCheckpoint,
    payload_signature,
    state_signature,
)
from repro.guard.invariants import (
    Invariant,
    InvariantSuite,
    default_invariants,
)
from repro.guard.faults import (
    IO_KINDS,
    FaultInjector,
    FaultKind,
    FaultSpec,
    IoFaultSpec,
)
from repro.guard.runner import (
    GuardConfig,
    GuardedRunner,
    TransformHealth,
)

__all__ = [
    "BudgetExceeded",
    "DesignCheckpoint",
    "FaultInjected",
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "GuardConfig",
    "GuardError",
    "GuardedRunner",
    "IO_KINDS",
    "Invariant",
    "InvariantSuite",
    "InvariantViolation",
    "IoFaultSpec",
    "RestoreMismatch",
    "TransformError",
    "TransformHealth",
    "default_invariants",
    "payload_signature",
    "state_signature",
]
