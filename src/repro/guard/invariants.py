"""Pluggable design-space invariants (the extended ``Design.check()``).

Each :class:`Invariant` inspects one aspect of the shared design space
and returns ``None`` when it holds or a human-readable violation
message.  :class:`InvariantSuite` bundles them; the
:class:`~repro.guard.runner.GuardedRunner` runs the suite after every
transform, and ``Design.check()`` delegates to the default suite so the
seed flows validate the same conditions in-flow that the tests do.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.design import Design


class Invariant:
    """One named consistency condition over a design."""

    name = "invariant"

    def check(self, design: "Design") -> Optional[str]:
        """``None`` if the invariant holds, else a violation message."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return "<Invariant %s>" % self.name


class FunctionInvariant(Invariant):
    """Adapt a plain callable into an invariant."""

    def __init__(self, name: str,
                 fn: Callable[["Design"], Optional[str]]) -> None:
        self.name = name
        self._fn = fn

    def check(self, design: "Design") -> Optional[str]:
        return self._fn(design)


class NetlistConsistency(Invariant):
    """Pin<->net back-references and single-driver discipline hold."""

    name = "netlist_consistency"

    def check(self, design: "Design") -> Optional[str]:
        try:
            design.netlist.check_consistency()
        except AssertionError as exc:
            return str(exc)
        return None


class NoDanglingPins(Invariant):
    """Every connected pin belongs to a live cell on a live net, and
    every net that still has sinks has a driver to feed them."""

    name = "no_dangling_pins"

    def check(self, design: "Design") -> Optional[str]:
        nl = design.netlist
        for net in nl.nets():
            if net.degree == 0:
                continue
            for pin in net.pins():
                if pin.cell.netlist is not nl:
                    return ("net %s carries pin %s of a detached cell"
                            % (net.name, pin.full_name))
            if net.sinks() and net.driver() is None:
                return ("net %s has %d sinks but no driver"
                        % (net.name, len(net.sinks())))
        return None


class BinOccupancyConservation(Invariant):
    """Bin bookkeeping matches cell positions, and the total area
    tracked by the image equals the total area of placed cells."""

    name = "bin_occupancy"

    def check(self, design: "Design") -> Optional[str]:
        try:
            design.grid.check_occupancy()
        except AssertionError as exc:
            return str(exc)
        tracked = sum(b.area_used for b in design.grid.bins())
        placed = sum(c.area for c in design.netlist.cells() if c.placed)
        if not math.isclose(tracked, placed, abs_tol=1e-5,
                            rel_tol=1e-9):
            return ("grid tracks %.3f track^2 but placed cells total "
                    "%.3f" % (tracked, placed))
        return None


class TimingNetlistSync(Invariant):
    """The timing engine is bound to this netlist and its levelized
    graph (when built) covers exactly the netlist's current pins."""

    name = "timing_sync"

    def check(self, design: "Design") -> Optional[str]:
        engine = design.timing
        if engine.netlist is not design.netlist:
            return "timing engine bound to a different netlist"
        graph = engine._graph
        if graph is None:
            return None  # lazily rebuilt on next query: trivially synced
        graph_pins = set(id(p) for p in graph.pins())
        netlist_pins = set(id(p) for c in design.netlist.cells()
                           for p in c.pins())
        if graph_pins != netlist_pins:
            return ("timing graph has %d pins, netlist has %d "
                    "(stale levelization)"
                    % (len(graph_pins), len(netlist_pins)))
        return None


class InvariantSuite:
    """An ordered bundle of invariants checked as one unit."""

    def __init__(self, invariants: Optional[Sequence[Invariant]] = None
                 ) -> None:
        self.invariants: List[Invariant] = list(
            default_invariants() if invariants is None else invariants)

    def add(self, invariant: Invariant) -> "InvariantSuite":
        self.invariants.append(invariant)
        return self

    def violations(self, design: "Design") -> List[str]:
        """All violation messages, tagged with the invariant name."""
        out = []
        for inv in self.invariants:
            try:
                message = inv.check(design)
            except Exception as exc:  # a crashed check is a violation
                message = "check crashed: %s: %s" % (
                    type(exc).__name__, exc)
            if message is not None:
                out.append("%s: %s" % (inv.name, message))
        return out

    def first_violation(self, design: "Design"
                        ) -> Optional[tuple]:
        """The first failing ``(invariant_name, message)``, or None."""
        for inv in self.invariants:
            try:
                message = inv.check(design)
            except Exception as exc:
                message = "check crashed: %s: %s" % (
                    type(exc).__name__, exc)
            if message is not None:
                return inv.name, message
        return None

    def verify(self, design: "Design") -> None:
        """Raise ``AssertionError`` on the first violation (if any)."""
        found = self.first_violation(design)
        if found is not None:
            raise AssertionError("%s: %s" % found)


def default_invariants() -> List[Invariant]:
    """The standard suite: what ``Design.check()`` validates."""
    return [
        NetlistConsistency(),
        NoDanglingPins(),
        BinOccupancyConservation(),
        TimingNetlistSync(),
    ]
