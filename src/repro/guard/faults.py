"""Deterministic fault injection for chaos-testing the guarded flows.

A :class:`FaultInjector` is armed with :class:`FaultSpec` records —
either explicitly (``inject("cloning", FaultKind.EXCEPTION,
invocation=2)``) or randomly but reproducibly from a seed
(``FaultInjector(seed=7, rate=0.05)``).  The
:class:`~repro.guard.runner.GuardedRunner` gives it two hook points per
guarded invocation:

* :meth:`before` — may raise :class:`FaultInjected` (simulated crash)
  or sleep past the transform budget (simulated hang/slowdown);
* :meth:`after` — may corrupt design state *bypassing* the netlist
  event bus (stale bin bookkeeping, teleported cells, dropped
  connections), which only the invariant suite can notice.

Everything is derived from the seed and the (transform, invocation)
sequence, so a chaos run is exactly repeatable.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.guard.errors import FaultInjected

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.design import Design


class FaultKind(enum.Enum):
    """The failure modes the chaos harness can simulate."""

    #: raise from inside the transform (crash)
    EXCEPTION = "exception"
    #: sleep past the wall-clock budget (hang/slowdown)
    SLOWDOWN = "slowdown"
    #: teleport a cell without firing netlist events (stale image)
    CORRUPT_POSITION = "corrupt-position"
    #: scribble on bin ``area_used`` directly (broken conservation)
    CORRUPT_OCCUPANCY = "corrupt-occupancy"
    #: detach a random sink pin through the API (dangling topology)
    CORRUPT_CONNECTIVITY = "corrupt-connectivity"
    #: simulate the process being killed mid-transform: raises
    #: ``KeyboardInterrupt``, which (as a ``BaseException``) escapes
    #: the guard's exception isolation exactly like a real SIGINT /
    #: OOM kill would — the run dies with a write-ahead journal entry
    #: open and must be recovered by ``--resume``
    PROCESS_KILL = "process-kill"
    #: storage faults, fired by the ``repro.persist.io`` shim (not
    #: the transform hooks): the filesystem refuses with ENOSPC
    DISK_FULL = "disk-full"
    #: a transient EIO — the I/O shim's retry loop should survive it
    IO_ERROR = "io-error"
    #: the write lands but its fsync fails: never reached the platter
    FSYNC_FAIL = "fsync-fail"
    #: only a prefix of the payload reaches the file (crash mid-write)
    TORN_WRITE = "torn-write"
    #: the write "succeeds" but one bit on disk silently flips —
    #: detectable only by CRC / gzip checksum / signature verify
    BIT_FLIP = "bit-flip"


#: kinds fired at the storage boundary by ``repro.persist.io``;
#: the transform-level hooks never draw or fire these
IO_KINDS = (FaultKind.DISK_FULL, FaultKind.IO_ERROR,
            FaultKind.FSYNC_FAIL, FaultKind.TORN_WRITE,
            FaultKind.BIT_FLIP)

#: kinds that fire before the transform body runs
_BEFORE_KINDS = (FaultKind.EXCEPTION, FaultKind.SLOWDOWN,
                 FaultKind.PROCESS_KILL)


@dataclass
class FaultSpec:
    """One scheduled fault: which transform, which invocation, what."""

    transform: str
    kind: FaultKind
    #: 0-based invocation index of the transform this fault fires on
    invocation: int = 0
    #: extra seconds to sleep for SLOWDOWN (defaults to 1.5x budget,
    #: decided by the runner's budget at fire time)
    sleep_seconds: Optional[float] = None
    fired: bool = field(default=False, compare=False)

    def __str__(self) -> str:
        return "%s@%s#%d" % (self.kind.value, self.transform,
                             self.invocation)


@dataclass
class IoFaultSpec:
    """One scheduled storage fault at the ``repro.persist.io`` seam.

    Fires on the ``at``-th (0-based) shim operation whose name
    matches ``op`` (None = any) and whose path contains
    ``path_contains`` (None = any path).  ``count`` fires the fault
    on that many consecutive matches — a DISK_FULL with a large
    ``count`` models a partition that stays full, exhausting the
    retry budget.
    """

    kind: FaultKind
    op: Optional[str] = None
    path_contains: Optional[str] = None
    at: int = 0
    count: int = 1
    seen: int = field(default=0, compare=False)
    fires: int = field(default=0, compare=False)

    def matches(self, op: str, path: str) -> bool:
        """Does this shim operation fall in the spec's scope?"""
        if self.op is not None and op != self.op:
            return False
        if (self.path_contains is not None
                and self.path_contains not in path):
            return False
        return True

    def __str__(self) -> str:
        return "%s@io:%s#%d" % (self.kind.value, self.op or "*",
                                self.at)


class FaultInjector:
    """Seeded, repeatable fault scheduler for guarded invocations."""

    def __init__(self, seed: int = 0, rate: float = 0.0,
                 kinds: Optional[List[FaultKind]] = None,
                 io_rate: float = 0.0,
                 io_kinds: Optional[List[FaultKind]] = None) -> None:
        self.seed = seed
        #: probability that any given invocation is faulted (random
        #: mode; explicit ``inject`` specs fire regardless)
        self.rate = rate
        #: PROCESS_KILL terminates the run and the IO kinds fire at
        #: the storage boundary, so random transform mode never draws
        #: them — schedule IO faults via ``inject_io`` / ``io_rate``
        self.kinds = (list(kinds) if kinds else
                      [k for k in FaultKind
                       if k is not FaultKind.PROCESS_KILL
                       and k not in IO_KINDS])
        #: probability that any given storage operation is faulted
        #: (consulted by :meth:`io_hook` once per shim op)
        self.io_rate = io_rate
        #: the storage kinds random io mode draws from: transient-ish
        #: by default — DISK_FULL stays explicit, it ends the run
        self.io_kinds = (list(io_kinds) if io_kinds else
                         [FaultKind.IO_ERROR, FaultKind.FSYNC_FAIL])
        self._rng = random.Random(seed)
        #: separate stream so arming io chaos does not perturb the
        #: transform-fault schedule of an existing seed
        self._io_rng = random.Random((seed << 1) ^ 0x5EED)
        self._specs: List[FaultSpec] = []
        self._io_specs: List[IoFaultSpec] = []
        self._fired: List[FaultSpec] = []
        self._io_ops = 0

    # -- scheduling ----------------------------------------------------

    def inject(self, transform: str, kind: FaultKind,
               invocation: int = 0,
               sleep_seconds: Optional[float] = None) -> FaultSpec:
        """Schedule one explicit fault; returns the spec."""
        spec = FaultSpec(transform, kind, invocation, sleep_seconds)
        self._specs.append(spec)
        return spec

    def inject_io(self, kind: FaultKind, op: Optional[str] = None,
                  path_contains: Optional[str] = None, at: int = 0,
                  count: int = 1) -> IoFaultSpec:
        """Schedule one storage fault at the I/O shim; returns it."""
        spec = IoFaultSpec(kind, op=op, path_contains=path_contains,
                           at=at, count=count)
        self._io_specs.append(spec)
        return spec

    def fired(self) -> List[FaultSpec]:
        """Every fault that actually fired, in firing order."""
        return list(self._fired)

    # -- the storage seam ----------------------------------------------

    def io_hook(self, op: str, path: str) -> Optional[FaultKind]:
        """The ``repro.persist.io`` fault hook: one consult per op.

        Explicit :meth:`inject_io` specs are checked first (each
        keeps its own match counter, so ``at``/``count`` windows are
        deterministic); with none due, random io mode draws once from
        the dedicated io RNG.  Either way the decision depends only
        on the seed and the operation sequence, so a storage-chaos
        run replays exactly.
        """
        self._io_ops += 1
        for spec in self._io_specs:
            if not spec.matches(op, path):
                continue
            index = spec.seen
            spec.seen += 1
            if index < spec.at or spec.fires >= spec.count:
                continue
            spec.fires += 1
            self._fired.append(FaultSpec("io:%s" % op, spec.kind,
                                         self._io_ops - 1, fired=True))
            return spec.kind
        if self.io_rate > 0.0:
            draw = self._io_rng.random()
            kind = self._io_rng.choice(self.io_kinds)
            if draw < self.io_rate:
                self._fired.append(FaultSpec("io:%s" % op, kind,
                                             self._io_ops - 1,
                                             fired=True))
                return kind
        return None

    def has_io_chaos(self) -> bool:
        """Is any storage-fault plan loaded (random or explicit)?"""
        return bool(self.io_rate or self._io_specs)

    def arm_io(self) -> None:
        """Install :meth:`io_hook` as the process-wide shim hook."""
        from repro.persist import io as persist_io
        persist_io.set_fault_hook(self.io_hook)

    def disarm_io(self) -> None:
        """Remove the shim hook (pair with :meth:`arm_io`)."""
        from repro.persist import io as persist_io
        persist_io.clear_fault_hook()

    # -- persistence ---------------------------------------------------

    def state_dict(self) -> dict:
        """Everything a resumed process needs to continue the chaos
        schedule exactly where this one left it (JSON-serializable)."""
        version, internal, gauss = self._rng.getstate()
        io_version, io_internal, io_gauss = self._io_rng.getstate()
        return {
            "rng": [version, list(internal), gauss],
            "io_rng": [io_version, list(io_internal), io_gauss],
            "io_ops": self._io_ops,
            "io_specs": [
                {"kind": s.kind.value, "op": s.op,
                 "path_contains": s.path_contains, "at": s.at,
                 "count": s.count, "seen": s.seen, "fires": s.fires}
                for s in self._io_specs
            ],
            "specs": [
                {"transform": s.transform, "kind": s.kind.value,
                 "invocation": s.invocation,
                 "sleep_seconds": s.sleep_seconds, "fired": s.fired}
                for s in self._specs
            ],
            "fired": [
                {"transform": s.transform, "kind": s.kind.value,
                 "invocation": s.invocation}
                for s in self._fired
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        version, internal, gauss = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss))
        if "io_rng" in state:  # pre-storage-chaos states lack these
            io_version, io_internal, io_gauss = state["io_rng"]
            self._io_rng.setstate((io_version, tuple(io_internal),
                                   io_gauss))
        self._io_ops = state.get("io_ops", 0)
        self._io_specs = [
            IoFaultSpec(FaultKind(rec["kind"]), op=rec["op"],
                        path_contains=rec["path_contains"],
                        at=rec["at"], count=rec.get("count", 1),
                        seen=rec.get("seen", 0),
                        fires=rec.get("fires", 0))
            for rec in state.get("io_specs", [])
        ]
        self._specs = [
            FaultSpec(rec["transform"], FaultKind(rec["kind"]),
                      rec["invocation"], rec["sleep_seconds"],
                      fired=rec["fired"])
            for rec in state["specs"]
        ]
        self._fired = [
            FaultSpec(rec["transform"], FaultKind(rec["kind"]),
                      rec["invocation"], fired=True)
            for rec in state["fired"]
        ]

    def _match(self, transform: str, invocation: int,
               before: bool) -> Optional[FaultSpec]:
        for spec in self._specs:
            if (not spec.fired and spec.transform == transform
                    and spec.invocation == invocation
                    and (spec.kind in _BEFORE_KINDS) == before):
                return spec
        return None

    def _roll(self, before: bool) -> Optional[FaultKind]:
        """Random-mode draw: one rng call per hook, every hook."""
        draw = self._rng.random()
        kind = self._rng.choice(self.kinds)
        if self.rate <= 0.0 or draw >= self.rate:
            return None
        if (kind in _BEFORE_KINDS) != before:
            return None
        return kind

    # -- runner hook points --------------------------------------------

    def before(self, transform: str, invocation: int,
               design: "Design", budget: Optional[float]) -> None:
        """Fire crash/slowdown faults ahead of the transform body."""
        spec = self._match(transform, invocation, before=True)
        kind = spec.kind if spec else self._roll(before=True)
        if kind is None:
            return
        if spec:
            spec.fired = True
            self._fired.append(spec)
        else:
            self._fired.append(
                FaultSpec(transform, kind, invocation, fired=True))
        if kind is FaultKind.SLOWDOWN:
            sleep = (spec.sleep_seconds if spec and spec.sleep_seconds
                     is not None else None)
            if sleep is None:
                sleep = 1.5 * budget if budget else 0.05
            time.sleep(sleep)
            return
        if kind is FaultKind.PROCESS_KILL:
            raise KeyboardInterrupt(
                "injected process kill in %s (invocation %s)"
                % (transform, invocation))
        raise FaultInjected(transform, invocation)

    def after(self, transform: str, invocation: int,
              design: "Design") -> None:
        """Fire state-corruption faults after the transform body."""
        spec = self._match(transform, invocation, before=False)
        kind = spec.kind if spec else self._roll(before=False)
        if kind is None:
            return
        if spec:
            spec.fired = True
            self._fired.append(spec)
        else:
            self._fired.append(
                FaultSpec(transform, kind, invocation, fired=True))
        self._corrupt(design, kind)

    # -- corruption payloads -------------------------------------------

    def _corrupt(self, design: "Design", kind: FaultKind) -> None:
        if kind is FaultKind.CORRUPT_POSITION:
            self._corrupt_position(design)
        elif kind is FaultKind.CORRUPT_OCCUPANCY:
            self._corrupt_occupancy(design)
        elif kind is FaultKind.CORRUPT_CONNECTIVITY:
            self._corrupt_connectivity(design)
        else:  # pragma: no cover - scheduling keeps kinds separated
            raise ValueError("%s is not a corruption" % kind)

    def _corrupt_position(self, design: "Design") -> None:
        """Move a placed cell by assigning ``position`` directly: the
        bin image and Steiner cache never hear about it."""
        from repro.geometry import Point
        cells = sorted(
            (c for c in design.netlist.movable_cells() if c.placed),
            key=lambda c: c.name)
        if not cells:
            return
        victim = self._rng.choice(cells)
        die = design.die
        victim.position = Point(
            die.xlo + self._rng.random() * die.width,
            die.ylo + self._rng.random() * die.height)

    def _corrupt_occupancy(self, design: "Design") -> None:
        """Scribble on one bin's ``area_used`` bookkeeping."""
        bins = list(design.grid.bins())
        victim = self._rng.choice(bins)
        victim.area_used += 10.0 + self._rng.random() * 100.0

    def _corrupt_connectivity(self, design: "Design") -> None:
        """Detach a random multi-sink net's driver pin: the net keeps
        its sinks but loses its source (a dangling topology)."""
        nets = sorted(
            (n for n in design.netlist.nets()
             if n.driver() is not None and len(n.sinks()) >= 1
             and not n.is_clock and not n.is_scan),
            key=lambda n: n.name)
        if not nets:
            return
        victim = self._rng.choice(nets)
        design.netlist.disconnect(victim.driver())

    def __repr__(self) -> str:
        return ("<FaultInjector seed=%d rate=%g specs=%d fired=%d>"
                % (self.seed, self.rate, len(self._specs),
                   len(self._fired)))
