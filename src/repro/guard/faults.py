"""Deterministic fault injection for chaos-testing the guarded flows.

A :class:`FaultInjector` is armed with :class:`FaultSpec` records —
either explicitly (``inject("cloning", FaultKind.EXCEPTION,
invocation=2)``) or randomly but reproducibly from a seed
(``FaultInjector(seed=7, rate=0.05)``).  The
:class:`~repro.guard.runner.GuardedRunner` gives it two hook points per
guarded invocation:

* :meth:`before` — may raise :class:`FaultInjected` (simulated crash)
  or sleep past the transform budget (simulated hang/slowdown);
* :meth:`after` — may corrupt design state *bypassing* the netlist
  event bus (stale bin bookkeeping, teleported cells, dropped
  connections), which only the invariant suite can notice.

Everything is derived from the seed and the (transform, invocation)
sequence, so a chaos run is exactly repeatable.
"""

from __future__ import annotations

import enum
import random
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.guard.errors import FaultInjected

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.design import Design


class FaultKind(enum.Enum):
    """The failure modes the chaos harness can simulate."""

    #: raise from inside the transform (crash)
    EXCEPTION = "exception"
    #: sleep past the wall-clock budget (hang/slowdown)
    SLOWDOWN = "slowdown"
    #: teleport a cell without firing netlist events (stale image)
    CORRUPT_POSITION = "corrupt-position"
    #: scribble on bin ``area_used`` directly (broken conservation)
    CORRUPT_OCCUPANCY = "corrupt-occupancy"
    #: detach a random sink pin through the API (dangling topology)
    CORRUPT_CONNECTIVITY = "corrupt-connectivity"
    #: simulate the process being killed mid-transform: raises
    #: ``KeyboardInterrupt``, which (as a ``BaseException``) escapes
    #: the guard's exception isolation exactly like a real SIGINT /
    #: OOM kill would — the run dies with a write-ahead journal entry
    #: open and must be recovered by ``--resume``
    PROCESS_KILL = "process-kill"


#: kinds that fire before the transform body runs
_BEFORE_KINDS = (FaultKind.EXCEPTION, FaultKind.SLOWDOWN,
                 FaultKind.PROCESS_KILL)


@dataclass
class FaultSpec:
    """One scheduled fault: which transform, which invocation, what."""

    transform: str
    kind: FaultKind
    #: 0-based invocation index of the transform this fault fires on
    invocation: int = 0
    #: extra seconds to sleep for SLOWDOWN (defaults to 1.5x budget,
    #: decided by the runner's budget at fire time)
    sleep_seconds: Optional[float] = None
    fired: bool = field(default=False, compare=False)

    def __str__(self) -> str:
        return "%s@%s#%d" % (self.kind.value, self.transform,
                             self.invocation)


class FaultInjector:
    """Seeded, repeatable fault scheduler for guarded invocations."""

    def __init__(self, seed: int = 0, rate: float = 0.0,
                 kinds: Optional[List[FaultKind]] = None) -> None:
        self.seed = seed
        #: probability that any given invocation is faulted (random
        #: mode; explicit ``inject`` specs fire regardless)
        self.rate = rate
        #: PROCESS_KILL terminates the run, so random mode never draws
        #: it by default — schedule it explicitly with ``inject``
        self.kinds = (list(kinds) if kinds else
                      [k for k in FaultKind
                       if k is not FaultKind.PROCESS_KILL])
        self._rng = random.Random(seed)
        self._specs: List[FaultSpec] = []
        self._fired: List[FaultSpec] = []

    # -- scheduling ----------------------------------------------------

    def inject(self, transform: str, kind: FaultKind,
               invocation: int = 0,
               sleep_seconds: Optional[float] = None) -> FaultSpec:
        """Schedule one explicit fault; returns the spec."""
        spec = FaultSpec(transform, kind, invocation, sleep_seconds)
        self._specs.append(spec)
        return spec

    def fired(self) -> List[FaultSpec]:
        """Every fault that actually fired, in firing order."""
        return list(self._fired)

    # -- persistence ---------------------------------------------------

    def state_dict(self) -> dict:
        """Everything a resumed process needs to continue the chaos
        schedule exactly where this one left it (JSON-serializable)."""
        version, internal, gauss = self._rng.getstate()
        return {
            "rng": [version, list(internal), gauss],
            "specs": [
                {"transform": s.transform, "kind": s.kind.value,
                 "invocation": s.invocation,
                 "sleep_seconds": s.sleep_seconds, "fired": s.fired}
                for s in self._specs
            ],
            "fired": [
                {"transform": s.transform, "kind": s.kind.value,
                 "invocation": s.invocation}
                for s in self._fired
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        version, internal, gauss = state["rng"]
        self._rng.setstate((version, tuple(internal), gauss))
        self._specs = [
            FaultSpec(rec["transform"], FaultKind(rec["kind"]),
                      rec["invocation"], rec["sleep_seconds"],
                      fired=rec["fired"])
            for rec in state["specs"]
        ]
        self._fired = [
            FaultSpec(rec["transform"], FaultKind(rec["kind"]),
                      rec["invocation"], fired=True)
            for rec in state["fired"]
        ]

    def _match(self, transform: str, invocation: int,
               before: bool) -> Optional[FaultSpec]:
        for spec in self._specs:
            if (not spec.fired and spec.transform == transform
                    and spec.invocation == invocation
                    and (spec.kind in _BEFORE_KINDS) == before):
                return spec
        return None

    def _roll(self, before: bool) -> Optional[FaultKind]:
        """Random-mode draw: one rng call per hook, every hook."""
        draw = self._rng.random()
        kind = self._rng.choice(self.kinds)
        if self.rate <= 0.0 or draw >= self.rate:
            return None
        if (kind in _BEFORE_KINDS) != before:
            return None
        return kind

    # -- runner hook points --------------------------------------------

    def before(self, transform: str, invocation: int,
               design: "Design", budget: Optional[float]) -> None:
        """Fire crash/slowdown faults ahead of the transform body."""
        spec = self._match(transform, invocation, before=True)
        kind = spec.kind if spec else self._roll(before=True)
        if kind is None:
            return
        if spec:
            spec.fired = True
            self._fired.append(spec)
        else:
            self._fired.append(
                FaultSpec(transform, kind, invocation, fired=True))
        if kind is FaultKind.SLOWDOWN:
            sleep = (spec.sleep_seconds if spec and spec.sleep_seconds
                     is not None else None)
            if sleep is None:
                sleep = 1.5 * budget if budget else 0.05
            time.sleep(sleep)
            return
        if kind is FaultKind.PROCESS_KILL:
            raise KeyboardInterrupt(
                "injected process kill in %s (invocation %s)"
                % (transform, invocation))
        raise FaultInjected(transform, invocation)

    def after(self, transform: str, invocation: int,
              design: "Design") -> None:
        """Fire state-corruption faults after the transform body."""
        spec = self._match(transform, invocation, before=False)
        kind = spec.kind if spec else self._roll(before=False)
        if kind is None:
            return
        if spec:
            spec.fired = True
            self._fired.append(spec)
        else:
            self._fired.append(
                FaultSpec(transform, kind, invocation, fired=True))
        self._corrupt(design, kind)

    # -- corruption payloads -------------------------------------------

    def _corrupt(self, design: "Design", kind: FaultKind) -> None:
        if kind is FaultKind.CORRUPT_POSITION:
            self._corrupt_position(design)
        elif kind is FaultKind.CORRUPT_OCCUPANCY:
            self._corrupt_occupancy(design)
        elif kind is FaultKind.CORRUPT_CONNECTIVITY:
            self._corrupt_connectivity(design)
        else:  # pragma: no cover - scheduling keeps kinds separated
            raise ValueError("%s is not a corruption" % kind)

    def _corrupt_position(self, design: "Design") -> None:
        """Move a placed cell by assigning ``position`` directly: the
        bin image and Steiner cache never hear about it."""
        from repro.geometry import Point
        cells = sorted(
            (c for c in design.netlist.movable_cells() if c.placed),
            key=lambda c: c.name)
        if not cells:
            return
        victim = self._rng.choice(cells)
        die = design.die
        victim.position = Point(
            die.xlo + self._rng.random() * die.width,
            die.ylo + self._rng.random() * die.height)

    def _corrupt_occupancy(self, design: "Design") -> None:
        """Scribble on one bin's ``area_used`` bookkeeping."""
        bins = list(design.grid.bins())
        victim = self._rng.choice(bins)
        victim.area_used += 10.0 + self._rng.random() * 100.0

    def _corrupt_connectivity(self, design: "Design") -> None:
        """Detach a random multi-sink net's driver pin: the net keeps
        its sinks but loses its source (a dangling topology)."""
        nets = sorted(
            (n for n in design.netlist.nets()
             if n.driver() is not None and len(n.sinks()) >= 1
             and not n.is_clock and not n.is_scan),
            key=lambda n: n.name)
        if not nets:
            return
        victim = self._rng.choice(nets)
        design.netlist.disconnect(victim.driver())

    def __repr__(self) -> str:
        return ("<FaultInjector seed=%d rate=%g specs=%d fired=%d>"
                % (self.seed, self.rate, len(self._specs),
                   len(self._fired)))
