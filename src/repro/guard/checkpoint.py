"""Atomic snapshot/restore of the mutable TPS design space.

A :class:`DesignCheckpoint` captures everything a transform can change
about a :class:`~repro.design.Design` — cell positions and sizes,
netlist topology deltas (cells/pins/nets added or removed by cloning,
buffering, decomposition, or cleanup), per-net placement weights, the
bin-grid resolution, the timing mode/wire model, and the design RNG —
and can restore it all atomically.

Restore replays every difference through the ``Netlist`` mutation API,
so the subscribed incremental analyzers (bin grid, Steiner cache,
timing engine) receive ordinary change events and re-invalidate exactly
the affected state; nothing is rebuilt unless bin bookkeeping itself
was corrupted, in which case the grid is re-derived from cell
positions.

``state_signature`` hashes the restorable state; the chaos tests use it
to assert a rollback is bit-identical to the checkpoint.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from repro.design import Design
from repro.netlist.cell import Cell
from repro.netlist.net import Net


class _CellState:
    """Frozen per-cell restore record."""

    __slots__ = ("cell", "size", "position", "fixed", "gain", "tags")

    def __init__(self, cell: Cell) -> None:
        self.cell = cell
        self.size = cell.size
        self.position = cell.position
        self.fixed = cell.fixed
        self.gain = cell.gain
        self.tags = frozenset(cell.tags)


class _NetState:
    """Frozen per-net restore record (scalars + exact pin membership)."""

    __slots__ = ("net", "weight", "base_weight", "is_clock", "is_scan",
                 "pins", "pin_ids")

    def __init__(self, net: Net) -> None:
        self.net = net
        self.weight = net.weight
        self.base_weight = net.base_weight
        self.is_clock = net.is_clock
        self.is_scan = net.is_scan
        self.pins = tuple(net.pins())
        self.pin_ids = frozenset(id(p) for p in self.pins)


class DesignCheckpoint:
    """One restorable snapshot of a design's mutable state."""

    def __init__(self, design: Design) -> None:
        self.design = design
        nl = design.netlist
        self._cells: Dict[str, _CellState] = {
            c.name: _CellState(c) for c in nl.cells()}
        self._nets: Dict[str, _NetState] = {
            n.name: _NetState(n) for n in nl.nets()}
        self._grid_dims: Tuple[int, int] = (design.grid.nx, design.grid.ny)
        self._timing_mode = design.timing.mode
        self._wire_model = design.timing.wire_model
        self._default_gain = design.timing.default_gain
        self._status = design.status
        self._rng_state = design.rng.getstate()
        self.signature = state_signature(design)

    # -- restore -------------------------------------------------------

    def restore(self) -> None:
        """Roll the design back to this checkpoint."""
        design = self.design
        nl = design.netlist

        # 1. drop topology created after the checkpoint (removal
        #    disconnects pins, so analyzers see each elementary change)
        for cell in nl.cells():
            state = self._cells.get(cell.name)
            if state is None or state.cell is not cell:
                nl.remove_cell(cell)
        for net in nl.nets():
            state = self._nets.get(net.name)
            if state is None or state.net is not net:
                nl.remove_net(net)

        # 2. re-adopt topology removed after the checkpoint: the same
        #    objects return, so pins referenced by the snapshot's
        #    connectivity records stay valid
        for name, state in self._cells.items():
            if not nl.has_cell(name):
                nl.adopt_cell(state.cell)
        for name, state in self._nets.items():
            if not nl.has_net(name):
                nl.adopt_net(state.net)

        # 3. per-cell physical/electrical scalars
        for state in self._cells.values():
            cell = state.cell
            if cell.size != state.size:
                nl.resize_cell(cell, state.size)
            if cell.position != state.position:
                nl.move_cell(cell, state.position)
            cell.fixed = state.fixed
            cell.gain = state.gain
            cell.tags = set(state.tags)

        # 4. connectivity: first detach every pin a net should not
        #    carry (including stray drivers), then re-attach the
        #    snapshot membership; ``connect`` migrates pins off any
        #    interim net automatically
        for state in self._nets.values():
            for pin in state.net.pins():
                if id(pin) not in state.pin_ids:
                    nl.disconnect(pin)
        for state in self._nets.values():
            for pin in state.pins:
                if pin.net is not state.net:
                    nl.connect(pin, state.net)
            net = state.net
            net.weight = state.weight
            net.base_weight = state.base_weight
            net.is_clock = state.is_clock
            net.is_scan = state.is_scan

        # 5. bin image: restore resolution, then verify occupancy; a
        #    direct corruption of bin bookkeeping (no netlist event
        #    fired) is repaired by re-deriving the grid from positions
        if (design.grid.nx, design.grid.ny) != self._grid_dims:
            design.grid.resize(*self._grid_dims)
        else:
            try:
                design.grid.check_occupancy()
            except AssertionError:
                design.grid.resize(*self._grid_dims)

        # 6. analyzers and flow-level scalars
        timing = design.timing
        if timing.mode is not self._timing_mode:
            timing.set_mode(self._timing_mode)
        if timing.wire_model is not self._wire_model:
            timing.set_wire_model(self._wire_model)
        timing.default_gain = self._default_gain
        design.status = self._status
        design.rng.setstate(self._rng_state)

    def verify(self) -> Optional[str]:
        """None if the design matches this checkpoint, else a message."""
        current = state_signature(self.design)
        if current != self.signature:
            return ("state signature %s != checkpoint %s"
                    % (current[:12], self.signature[:12]))
        return None

    @staticmethod
    def state_signature(design: Design) -> str:
        """Alias of the module-level :func:`state_signature`.

        On-disk snapshots (:mod:`repro.persist`) verify their reload
        through this same digest, so disk round trips and in-memory
        rollbacks share one definition of "bit-identical".
        """
        return state_signature(design)


def state_signature(design: Design) -> str:
    """Deterministic digest of a design's restorable state.

    Covers exactly what :class:`DesignCheckpoint` restores; two designs
    with equal signatures are bit-identical as far as any transform can
    observe.  ``repr`` keeps float identity exact.
    """
    h = hashlib.sha256()

    def put(*parts) -> None:
        h.update("|".join(repr(p) for p in parts).encode())
        h.update(b";")

    nl = design.netlist
    for cell in sorted(nl.cells(), key=lambda c: c.name):
        pos = (None if cell.position is None
               else (cell.position.x, cell.position.y))
        put("cell", cell.name, cell.size.gate_type.name, cell.size.name,
            pos, cell.fixed, cell.gain, sorted(cell.tags))
    for net in sorted(nl.nets(), key=lambda n: n.name):
        put("net", net.name, net.weight, net.base_weight,
            net.is_clock, net.is_scan,
            sorted(p.full_name for p in net.pins()))
    put("grid", design.grid.nx, design.grid.ny)
    put("mode", design.timing.mode.value, design.timing.default_gain)
    put("status", design.status)
    return h.hexdigest()


def payload_signature(state: dict) -> str:
    """:func:`state_signature` computed from a snapshot's plain data.

    ``state`` is the ``"design"`` payload of an on-disk snapshot
    (:func:`repro.persist.snapshot.design_state`).  The digest is
    defined to be *identical* to what :func:`state_signature` would
    return for the design that payload rebuilds, without constructing
    one — so a delta-snapshot chain can be verified cheaply at
    application time, before any netlist is built.  Every hashed part
    mirrors the live-object formula above: JSON round-trips preserve
    float/int/bool/None identity, positions are re-tupled, gate size
    names re-derive from ``(type, x)`` the same way
    ``GateSize.name`` does, and tags/pin names are sorted.
    """
    h = hashlib.sha256()

    def put(*parts) -> None:
        h.update("|".join(repr(p) for p in parts).encode())
        h.update(b";")

    netlist = state["netlist"]
    for rec in sorted(netlist["cells"], key=lambda r: r["name"]):
        pos = (None if rec["position"] is None
               else (rec["position"][0], rec["position"][1]))
        put("cell", rec["name"], rec["type"],
            "%s_X%g" % (rec["type"], rec["x"]),
            pos, rec["fixed"], rec["gain"], sorted(rec["tags"]))
    for rec in sorted(netlist["nets"], key=lambda r: r["name"]):
        put("net", rec["name"], rec["weight"], rec["base_weight"],
            rec["clock"], rec["scan"],
            sorted("%s/%s" % (cell, pin) for cell, pin in rec["pins"]))
    put("grid", state["grid"][0], state["grid"][1])
    put("mode", state["timing"]["mode"], state["timing"]["default_gain"])
    put("status", state["status"])
    return h.hexdigest()
