"""Transactional execution of transforms with rollback and quarantine.

``GuardedRunner.call(name, fn)`` makes one transform invocation a
transaction over the shared design space:

1. checkpoint the design (:class:`DesignCheckpoint`);
2. run ``fn`` under exception isolation and a wall-clock budget;
3. verify the post-state with the :class:`InvariantSuite`;
4. on any failure — exception, budget overrun, invariant violation —
   restore the checkpoint (optionally verifying the restored state is
   signature-identical), record a structured
   :class:`~repro.guard.errors.GuardError`, and return ``None``;
5. after ``quarantine_after`` *consecutive* failures of the same
   transform, quarantine it: later calls are skipped outright, so a
   persistently broken transform cannot stall the converging flow.

Per-transform :class:`TransformHealth` counters (runs, failures,
rollbacks, quarantine, time in transform vs. time in the guard itself)
feed the flow report, satisfying the "degrade gracefully and tell me
about it" contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TypeVar

from repro.design import Design
from repro.guard.checkpoint import DesignCheckpoint
from repro.guard.errors import (
    BudgetExceeded,
    GuardError,
    InvariantViolation,
    RestoreMismatch,
    TransformError,
)
from repro.guard.faults import FaultInjector
from repro.guard.invariants import InvariantSuite

T = TypeVar("T")


@dataclass
class GuardConfig:
    """Knobs of the guarded runner."""

    #: wall-clock budget per transform invocation (None = unlimited).
    #: Python cannot preempt a running transform, so overruns are
    #: detected post-hoc and the result discarded via rollback.
    budget_seconds: Optional[float] = 30.0
    #: quarantine a transform after this many *consecutive* failures
    quarantine_after: int = 3
    #: retry a *transient* failure (crash, budget overrun) this many
    #: times after rollback before it counts as a real failure and a
    #: quarantine strike.  0 = fail immediately (the PR-1 behavior).
    retries: int = 0
    #: base of the exponential backoff between retry attempts
    retry_backoff_seconds: float = 0.05
    #: run the invariant suite after every invocation
    check_invariants: bool = True
    #: after a rollback, verify the restored state is
    #: signature-identical to the checkpoint (raises RestoreMismatch
    #: if the guard itself failed — that is never swallowed)
    verify_restore: bool = True
    #: keep at most this many structured errors per transform
    max_errors_kept: int = 20

    def to_state(self) -> dict:
        return {
            "budget_seconds": self.budget_seconds,
            "quarantine_after": self.quarantine_after,
            "retries": self.retries,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "check_invariants": self.check_invariants,
            "verify_restore": self.verify_restore,
            "max_errors_kept": self.max_errors_kept,
        }

    @classmethod
    def from_state(cls, state: dict) -> "GuardConfig":
        return cls(**state)


@dataclass
class TransformHealth:
    """Per-transform accounting of guarded execution."""

    name: str
    runs: int = 0
    failures: int = 0
    rollbacks: int = 0
    #: invocations skipped because the transform was quarantined
    skipped: int = 0
    consecutive_failures: int = 0
    quarantined: bool = False
    #: wall-clock seconds spent inside transform bodies
    seconds: float = 0.0
    #: wall-clock seconds spent in the guard itself (checkpointing,
    #: invariant checks, rollback) — the measurable guard overhead
    guard_seconds: float = 0.0
    failures_by_kind: Dict[str, int] = field(default_factory=dict)
    errors: List[GuardError] = field(default_factory=list)

    @property
    def successes(self) -> int:
        return self.runs - self.failures

    def to_state(self) -> dict:
        """JSON-serializable counters (structured errors are process-
        local and not carried across; their kind counts are)."""
        return {
            "name": self.name,
            "runs": self.runs,
            "failures": self.failures,
            "rollbacks": self.rollbacks,
            "skipped": self.skipped,
            "consecutive_failures": self.consecutive_failures,
            "quarantined": self.quarantined,
            "seconds": self.seconds,
            "guard_seconds": self.guard_seconds,
            "failures_by_kind": dict(self.failures_by_kind),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TransformHealth":
        health = cls(state["name"])
        for key in ("runs", "failures", "rollbacks", "skipped",
                    "consecutive_failures", "quarantined", "seconds",
                    "guard_seconds"):
            setattr(health, key, state[key])
        health.failures_by_kind = dict(state["failures_by_kind"])
        return health

    def summary(self) -> str:
        flags = []
        if self.quarantined:
            flags.append("QUARANTINED")
        if self.failures:
            kinds = ",".join("%s=%d" % kv for kv in
                             sorted(self.failures_by_kind.items()))
            flags.append(kinds)
        return ("%s: %d ok / %d failed / %d rolled back / %d skipped "
                "(%.2fs run, %.2fs guard)%s"
                % (self.name, self.successes, self.failures,
                   self.rollbacks, self.skipped, self.seconds,
                   self.guard_seconds,
                   " [" + "; ".join(flags) + "]" if flags else ""))


class GuardedRunner:
    """Run transform invocations as checkpointed transactions."""

    def __init__(self, design: Design,
                 config: Optional[GuardConfig] = None,
                 invariants: Optional[InvariantSuite] = None,
                 injector: Optional[FaultInjector] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.design = design
        self.config = config or GuardConfig()
        self.invariants = invariants or InvariantSuite()
        self.injector = injector
        self.log = log
        self.health: Dict[str, TransformHealth] = {}
        self._invocations: Dict[str, int] = {}
        #: write-ahead journal hooks (``repro.persist.FlowPersist``):
        #: ``transform_start(name, invocation)``,
        #: ``transform_end(name, invocation, ok, kind=None)``,
        #: ``quarantined(name)``.  None = no journaling.
        self.recorder = None
        #: restore the design from the latest *on-disk* snapshot; set
        #: by persist-enabled scenarios to arm :meth:`call_substrate`
        self.disk_restore: Optional[Callable[[], None]] = None
        self._checkpoints = 0

    # -- execution -----------------------------------------------------

    def call(self, name: str, fn: Callable[[], T]) -> Optional[T]:
        """Run ``fn`` transactionally as transform ``name``.

        Returns ``fn``'s result, or ``None`` if the invocation failed
        (the design is then back at its pre-call state) or the
        transform is quarantined.  Transient failures are retried up to
        ``config.retries`` times (rollback, exponential backoff, run
        again) before counting as a failure and a quarantine strike.
        """
        health = self.health.setdefault(name, TransformHealth(name))
        if health.quarantined:
            health.skipped += 1
            return None
        invocation = self._invocations.get(name, 0)
        self._invocations[name] = invocation + 1
        cfg = self.config
        if self.recorder is not None:
            self.recorder.transform_start(name, invocation)

        health.runs += 1
        attempts = 1 + max(0, cfg.retries)
        failure: Optional[GuardError] = None
        for attempt in range(attempts):
            result, failure = self._attempt(name, invocation, health, fn)
            if failure is None:
                health.consecutive_failures = 0
                if self.recorder is not None:
                    self.recorder.transform_end(name, invocation, True)
                return result
            if not (failure.transient and attempt + 1 < attempts):
                break
            if cfg.retry_backoff_seconds > 0:
                time.sleep(cfg.retry_backoff_seconds * (2 ** attempt))
            self._say("retrying %s (attempt %d of %d) after %s"
                      % (name, attempt + 2, attempts, failure.kind))

        # -- retries exhausted: record, maybe quarantine ---------------
        health.failures += 1
        health.consecutive_failures += 1
        if self.recorder is not None:
            self.recorder.transform_end(name, invocation, False,
                                        kind=failure.kind)
        if health.consecutive_failures >= cfg.quarantine_after:
            health.quarantined = True
            if self.recorder is not None:
                self.recorder.quarantined(name)
            self._say("%s quarantined after %d consecutive failures"
                      % (name, health.consecutive_failures))
        self._say(str(failure))
        return None

    def _attempt(self, name: str, invocation: int,
                 health: TransformHealth, fn: Callable[[], T]):
        """One checkpointed try of ``fn``: (result, None) or
        (None, failure) with the design rolled back."""
        cfg = self.config
        guard_t0 = time.perf_counter()
        checkpoint = DesignCheckpoint(self.design)
        self._checkpoints += 1
        health.guard_seconds += time.perf_counter() - guard_t0

        run_t0 = time.perf_counter()
        failure: Optional[GuardError] = None
        result: Optional[T] = None
        try:
            if self.injector is not None:
                self.injector.before(name, invocation, self.design,
                                     cfg.budget_seconds)
            result = fn()
            if self.injector is not None:
                self.injector.after(name, invocation, self.design)
            elapsed = time.perf_counter() - run_t0
            if (cfg.budget_seconds is not None
                    and elapsed > cfg.budget_seconds):
                raise BudgetExceeded(name, elapsed, cfg.budget_seconds)
            if cfg.check_invariants:
                check_t0 = time.perf_counter()
                found = self.invariants.first_violation(self.design)
                health.guard_seconds += time.perf_counter() - check_t0
                if found is not None:
                    raise InvariantViolation(name, found[0], found[1],
                                             elapsed)
        except GuardError as err:
            failure = err
        except Exception as exc:
            failure = TransformError(name, exc,
                                     time.perf_counter() - run_t0)

        if failure is None:
            health.seconds += time.perf_counter() - run_t0
            return result, None

        # -- roll back this attempt ------------------------------------
        health.seconds += failure.seconds
        health.failures_by_kind[failure.kind] = (
            health.failures_by_kind.get(failure.kind, 0) + 1)
        if len(health.errors) < cfg.max_errors_kept:
            health.errors.append(failure)

        roll_t0 = time.perf_counter()
        checkpoint.restore()
        health.rollbacks += 1
        if cfg.verify_restore:
            mismatch = checkpoint.verify()
            if mismatch is not None:
                # the guard itself is broken: never swallow this
                raise RestoreMismatch(name, mismatch)
        health.guard_seconds += time.perf_counter() - roll_t0
        return None, failure

    def call_substrate(self, name: str, fn: Callable[[], T]) -> Optional[T]:
        """Run an unrollbackable *substrate* operation guarded by the
        on-disk snapshot.

        The partitioner and legalizer re-derive global structures
        (region geometry, row assignment) that the in-memory diff
        checkpoint cannot capture mid-operation, so :meth:`call` cannot
        guard them.  When :attr:`disk_restore` is armed (persist mode),
        a failure here restores the design from the latest on-disk
        snapshot instead and the operation is retried; after the retry
        budget the failure propagates — the run aborts with a coherent,
        resumable design rather than a half-partitioned one.  Without
        ``disk_restore`` the operation runs unguarded, exactly as
        before this layer existed.
        """
        if self.disk_restore is None:
            return fn()
        health = self.health.setdefault(name, TransformHealth(name))
        invocation = self._invocations.get(name, 0)
        self._invocations[name] = invocation + 1
        cfg = self.config
        if self.recorder is not None:
            self.recorder.transform_start(name, invocation)

        health.runs += 1
        attempts = 1 + max(0, cfg.retries)
        failure: Optional[GuardError] = None
        for attempt in range(attempts):
            run_t0 = time.perf_counter()
            failure = None
            result: Optional[T] = None
            try:
                if self.injector is not None:
                    self.injector.before(name, invocation, self.design,
                                         cfg.budget_seconds)
                result = fn()
                if self.injector is not None:
                    self.injector.after(name, invocation, self.design)
                if cfg.check_invariants:
                    found = self.invariants.first_violation(self.design)
                    if found is not None:
                        raise InvariantViolation(
                            name, found[0], found[1],
                            time.perf_counter() - run_t0)
            except GuardError as err:
                failure = err
            except Exception as exc:
                failure = TransformError(name, exc,
                                         time.perf_counter() - run_t0)
            if failure is None:
                health.seconds += time.perf_counter() - run_t0
                health.consecutive_failures = 0
                if self.recorder is not None:
                    self.recorder.transform_end(name, invocation, True)
                return result

            health.seconds += failure.seconds
            health.failures_by_kind[failure.kind] = (
                health.failures_by_kind.get(failure.kind, 0) + 1)
            if len(health.errors) < cfg.max_errors_kept:
                health.errors.append(failure)
            roll_t0 = time.perf_counter()
            self.disk_restore()
            health.rollbacks += 1
            health.guard_seconds += time.perf_counter() - roll_t0
            self._say("%s failed (%s); design restored from disk "
                      "snapshot" % (name, failure.kind))
            if attempt + 1 < attempts and cfg.retry_backoff_seconds > 0:
                time.sleep(cfg.retry_backoff_seconds * (2 ** attempt))

        health.failures += 1
        health.consecutive_failures += 1
        if self.recorder is not None:
            self.recorder.transform_end(name, invocation, False,
                                        kind=failure.kind)
        raise failure

    # -- cross-process state -------------------------------------------

    def force_quarantine(self, name: str) -> None:
        """Quarantine a transform without running it (resume path:
        the persistent quarantine list carries across processes)."""
        health = self.health.setdefault(name, TransformHealth(name))
        if not health.quarantined:
            health.quarantined = True
            self._say("%s quarantined from a previous process" % name)

    def state_dict(self) -> dict:
        """JSON-serializable runner state for on-disk snapshots."""
        return {
            "health": [h.to_state()
                       for _, h in sorted(self.health.items())],
            "invocations": dict(self._invocations),
        }

    def load_state_dict(self, state: dict) -> None:
        self.health = {rec["name"]: TransformHealth.from_state(rec)
                       for rec in state["health"]}
        self._invocations = dict(state["invocations"])

    # -- reporting -----------------------------------------------------

    @property
    def total_failures(self) -> int:
        return sum(h.failures for h in self.health.values())

    @property
    def total_rollbacks(self) -> int:
        return sum(h.rollbacks for h in self.health.values())

    @property
    def quarantined(self) -> List[str]:
        return sorted(name for name, h in self.health.items()
                      if h.quarantined)

    @property
    def guard_seconds(self) -> float:
        """Total wall-clock spent in the guard machinery itself."""
        return sum(h.guard_seconds for h in self.health.values())

    def counters(self) -> Dict[str, int]:
        """Guard activity for ``repro.obs``: in-memory checkpoints
        taken, failures, rollbacks, quarantined transforms."""
        return {
            "checkpoints": self._checkpoints,
            "failures": self.total_failures,
            "rollbacks": self.total_rollbacks,
            "quarantined": len(self.quarantined),
        }

    def health_lines(self) -> List[str]:
        """One summary line per guarded transform, name-sorted."""
        return [self.health[name].summary()
                for name in sorted(self.health)]

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log("guard: %s" % message)

    def __repr__(self) -> str:
        return ("<GuardedRunner %d transforms, %d failures, "
                "%d rollbacks, %d quarantined>"
                % (len(self.health), self.total_failures,
                   self.total_rollbacks, len(self.quarantined)))
