"""Transactional execution of transforms with rollback and quarantine.

``GuardedRunner.call(name, fn)`` makes one transform invocation a
transaction over the shared design space:

1. checkpoint the design (:class:`DesignCheckpoint`);
2. run ``fn`` under exception isolation and a wall-clock budget;
3. verify the post-state with the :class:`InvariantSuite`;
4. on any failure — exception, budget overrun, invariant violation —
   restore the checkpoint (optionally verifying the restored state is
   signature-identical), record a structured
   :class:`~repro.guard.errors.GuardError`, and return ``None``;
5. after ``quarantine_after`` *consecutive* failures of the same
   transform, quarantine it: later calls are skipped outright, so a
   persistently broken transform cannot stall the converging flow.

Per-transform :class:`TransformHealth` counters (runs, failures,
rollbacks, quarantine, time in transform vs. time in the guard itself)
feed the flow report, satisfying the "degrade gracefully and tell me
about it" contract.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TypeVar

from repro.design import Design
from repro.guard.checkpoint import DesignCheckpoint
from repro.guard.errors import (
    BudgetExceeded,
    GuardError,
    InvariantViolation,
    RestoreMismatch,
    TransformError,
)
from repro.guard.faults import FaultInjector
from repro.guard.invariants import InvariantSuite

T = TypeVar("T")


@dataclass
class GuardConfig:
    """Knobs of the guarded runner."""

    #: wall-clock budget per transform invocation (None = unlimited).
    #: Python cannot preempt a running transform, so overruns are
    #: detected post-hoc and the result discarded via rollback.
    budget_seconds: Optional[float] = 30.0
    #: quarantine a transform after this many *consecutive* failures
    quarantine_after: int = 3
    #: run the invariant suite after every invocation
    check_invariants: bool = True
    #: after a rollback, verify the restored state is
    #: signature-identical to the checkpoint (raises RestoreMismatch
    #: if the guard itself failed — that is never swallowed)
    verify_restore: bool = True
    #: keep at most this many structured errors per transform
    max_errors_kept: int = 20


@dataclass
class TransformHealth:
    """Per-transform accounting of guarded execution."""

    name: str
    runs: int = 0
    failures: int = 0
    rollbacks: int = 0
    #: invocations skipped because the transform was quarantined
    skipped: int = 0
    consecutive_failures: int = 0
    quarantined: bool = False
    #: wall-clock seconds spent inside transform bodies
    seconds: float = 0.0
    #: wall-clock seconds spent in the guard itself (checkpointing,
    #: invariant checks, rollback) — the measurable guard overhead
    guard_seconds: float = 0.0
    failures_by_kind: Dict[str, int] = field(default_factory=dict)
    errors: List[GuardError] = field(default_factory=list)

    @property
    def successes(self) -> int:
        return self.runs - self.failures

    def summary(self) -> str:
        flags = []
        if self.quarantined:
            flags.append("QUARANTINED")
        if self.failures:
            kinds = ",".join("%s=%d" % kv for kv in
                             sorted(self.failures_by_kind.items()))
            flags.append(kinds)
        return ("%s: %d ok / %d failed / %d rolled back / %d skipped "
                "(%.2fs run, %.2fs guard)%s"
                % (self.name, self.successes, self.failures,
                   self.rollbacks, self.skipped, self.seconds,
                   self.guard_seconds,
                   " [" + "; ".join(flags) + "]" if flags else ""))


class GuardedRunner:
    """Run transform invocations as checkpointed transactions."""

    def __init__(self, design: Design,
                 config: Optional[GuardConfig] = None,
                 invariants: Optional[InvariantSuite] = None,
                 injector: Optional[FaultInjector] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        self.design = design
        self.config = config or GuardConfig()
        self.invariants = invariants or InvariantSuite()
        self.injector = injector
        self.log = log
        self.health: Dict[str, TransformHealth] = {}
        self._invocations: Dict[str, int] = {}

    # -- execution -----------------------------------------------------

    def call(self, name: str, fn: Callable[[], T]) -> Optional[T]:
        """Run ``fn`` transactionally as transform ``name``.

        Returns ``fn``'s result, or ``None`` if the invocation failed
        (the design is then back at its pre-call state) or the
        transform is quarantined.
        """
        health = self.health.setdefault(name, TransformHealth(name))
        if health.quarantined:
            health.skipped += 1
            return None
        invocation = self._invocations.get(name, 0)
        self._invocations[name] = invocation + 1
        cfg = self.config

        guard_t0 = time.perf_counter()
        checkpoint = DesignCheckpoint(self.design)
        health.guard_seconds += time.perf_counter() - guard_t0

        run_t0 = time.perf_counter()
        failure: Optional[GuardError] = None
        result: Optional[T] = None
        try:
            if self.injector is not None:
                self.injector.before(name, invocation, self.design,
                                     cfg.budget_seconds)
            result = fn()
            if self.injector is not None:
                self.injector.after(name, invocation, self.design)
            elapsed = time.perf_counter() - run_t0
            if (cfg.budget_seconds is not None
                    and elapsed > cfg.budget_seconds):
                raise BudgetExceeded(name, elapsed, cfg.budget_seconds)
            if cfg.check_invariants:
                check_t0 = time.perf_counter()
                found = self.invariants.first_violation(self.design)
                health.guard_seconds += time.perf_counter() - check_t0
                if found is not None:
                    raise InvariantViolation(name, found[0], found[1],
                                             elapsed)
        except GuardError as err:
            failure = err
        except Exception as exc:
            failure = TransformError(name, exc,
                                     time.perf_counter() - run_t0)

        health.runs += 1
        if failure is None:
            health.seconds += time.perf_counter() - run_t0
            health.consecutive_failures = 0
            return result

        # -- failure path: roll back, record, maybe quarantine ---------
        health.seconds += failure.seconds
        health.failures += 1
        health.consecutive_failures += 1
        health.failures_by_kind[failure.kind] = (
            health.failures_by_kind.get(failure.kind, 0) + 1)
        if len(health.errors) < cfg.max_errors_kept:
            health.errors.append(failure)

        roll_t0 = time.perf_counter()
        checkpoint.restore()
        health.rollbacks += 1
        if cfg.verify_restore:
            mismatch = checkpoint.verify()
            if mismatch is not None:
                # the guard itself is broken: never swallow this
                raise RestoreMismatch(name, mismatch)
        health.guard_seconds += time.perf_counter() - roll_t0

        if health.consecutive_failures >= cfg.quarantine_after:
            health.quarantined = True
            self._say("%s quarantined after %d consecutive failures"
                      % (name, health.consecutive_failures))
        self._say(str(failure))
        return None

    # -- reporting -----------------------------------------------------

    @property
    def total_failures(self) -> int:
        return sum(h.failures for h in self.health.values())

    @property
    def total_rollbacks(self) -> int:
        return sum(h.rollbacks for h in self.health.values())

    @property
    def quarantined(self) -> List[str]:
        return sorted(name for name, h in self.health.items()
                      if h.quarantined)

    @property
    def guard_seconds(self) -> float:
        """Total wall-clock spent in the guard machinery itself."""
        return sum(h.guard_seconds for h in self.health.values())

    def health_lines(self) -> List[str]:
        """One summary line per guarded transform, name-sorted."""
        return [self.health[name].summary()
                for name in sorted(self.health)]

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log("guard: %s" % message)

    def __repr__(self) -> str:
        return ("<GuardedRunner %d transforms, %d failures, "
                "%d rollbacks, %d quarantined>"
                % (len(self.health), self.total_failures,
                   self.total_rollbacks, len(self.quarantined)))
