"""Structured error taxonomy for guarded transform execution.

Every failure the :class:`~repro.guard.runner.GuardedRunner` can
observe is recorded as one of these, so flow reports can aggregate
failures by class instead of by free-form message.
"""

from __future__ import annotations

from typing import Optional


class GuardError(Exception):
    """Base class for guard failures; carries the transform name."""

    #: short classification used in health stats ("error", ...)
    kind = "error"
    #: transient failures (crashes, overruns) may succeed if simply
    #: retried after rollback; invariant violations and restore
    #: mismatches will not, and are never retried
    transient = False

    def __init__(self, transform: str, message: str,
                 seconds: float = 0.0) -> None:
        self.transform = transform
        self.message = message
        #: wall-clock seconds the guarded invocation took before failing
        self.seconds = seconds
        super().__init__("%s[%s]: %s" % (self.kind, transform, message))


class TransformError(GuardError):
    """A transform raised an (unexpected) exception."""

    kind = "exception"
    transient = True

    def __init__(self, transform: str, cause: BaseException,
                 seconds: float = 0.0) -> None:
        self.cause = cause
        super().__init__(
            transform, "%s: %s" % (type(cause).__name__, cause), seconds)


class InvariantViolation(GuardError):
    """A post-run invariant check failed: the design space is corrupt."""

    kind = "invariant"

    def __init__(self, transform: str, invariant: str, message: str,
                 seconds: float = 0.0) -> None:
        self.invariant = invariant
        super().__init__(
            transform, "%s: %s" % (invariant, message), seconds)


class BudgetExceeded(GuardError):
    """A transform overran its wall-clock budget."""

    kind = "budget"
    transient = True

    def __init__(self, transform: str, seconds: float,
                 budget: float) -> None:
        self.budget = budget
        super().__init__(
            transform,
            "took %.3fs (budget %.3fs)" % (seconds, budget), seconds)


class RestoreMismatch(GuardError):
    """A rollback did not reproduce the checkpointed state exactly."""

    kind = "restore"


class FaultInjected(Exception):
    """Raised by the fault injector to simulate a transform crash.

    Deliberately *not* a :class:`GuardError`: to the runner it must be
    indistinguishable from a genuine transform exception.
    """

    def __init__(self, transform: str,
                 invocation: Optional[int] = None) -> None:
        self.transform = transform
        self.invocation = invocation
        super().__init__(
            "injected fault in %s (invocation %s)"
            % (transform, invocation))
