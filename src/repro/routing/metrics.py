"""Wirability metrics: horizontal/vertical wires cut (Table 1).

The paper measures wirability "in terms of the horizontal and vertical
wires cut", reporting peak and average.  A vertical gridline cuts the
*horizontal* wires that cross it; a horizontal gridline cuts the
vertical wires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.routing.router import GlobalRouter


@dataclass
class CutMetrics:
    """Peak/average wires cut per gridline, by direction."""

    horizontal_peak: float
    horizontal_avg: float
    vertical_peak: float
    vertical_avg: float
    horizontal_per_line: List[float]
    vertical_per_line: List[float]

    def row(self) -> str:
        """Table-1 style "pk/avg" cells."""
        return "%d/%d  %d/%d" % (
            round(self.horizontal_peak), round(self.horizontal_avg),
            round(self.vertical_peak), round(self.vertical_avg))


def cut_metrics(router: GlobalRouter) -> CutMetrics:
    """Compute wires-cut statistics from a routed design."""
    # horizontal wires cross vertical gridlines: one line per x boundary
    h_lines: List[float] = []
    for ix in range(router.nx - 1):
        total = sum(router.usage(("h", ix, iy))
                    for iy in range(router.ny))
        h_lines.append(total)
    v_lines: List[float] = []
    for iy in range(router.ny - 1):
        total = sum(router.usage(("v", ix, iy))
                    for ix in range(router.nx))
        v_lines.append(total)

    def peak_avg(lines: List[float]):
        if not lines:
            return 0.0, 0.0
        return max(lines), sum(lines) / len(lines)

    hp, ha = peak_avg(h_lines)
    vp, va = peak_avg(v_lines)
    return CutMetrics(horizontal_peak=hp, horizontal_avg=ha,
                      vertical_peak=vp, vertical_avg=va,
                      horizontal_per_line=h_lines,
                      vertical_per_line=v_lines)
