"""Global routing substrate.

The paper validates wirability after TPS ("we could route all chip
partitions") and reports horizontal/vertical wires cut (Table 1); the
wire-load histogram of Figure 2 compares Steiner estimates against the
final routing.  This package provides the routing stand-in: a
bin-grid global router initialized from the Steiner topology with
congestion-aware rip-up-and-reroute, plus the cut metrics.
"""

from repro.routing.router import GlobalRouter, NetRoute, RoutingResult
from repro.routing.metrics import CutMetrics, cut_metrics

__all__ = [
    "GlobalRouter",
    "NetRoute",
    "RoutingResult",
    "CutMetrics",
    "cut_metrics",
]
