"""Bin-grid global router.

Nets are routed edge-by-edge over their Steiner topology ("this
Steiner tree is also being used to initialize the global router",
section 3): each tree edge becomes an L-shaped path between bins, with
the bend chosen by congestion.  Edges crossing overflowed boundaries
are ripped up and re-routed with a congestion-penalised Dijkstra.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.design import Design
from repro.geometry import Point
from repro.netlist.net import Net

#: A boundary crossing: ("h", ix, iy) is the boundary between bins
#: (ix, iy) and (ix+1, iy) — crossed by horizontally running wire.
Crossing = Tuple[str, int, int]


@dataclass
class NetRoute:
    """The global route of one net."""

    net_name: str
    crossings: List[Crossing] = field(default_factory=list)
    routed_length: float = 0.0
    steiner_length: float = 0.0

    @property
    def detour(self) -> float:
        return self.routed_length - self.steiner_length


@dataclass
class RoutingResult:
    """Outcome of a full-chip global route."""

    routes: Dict[str, NetRoute]
    total_overflow: float
    iterations: int

    @property
    def routable(self) -> bool:
        return self.total_overflow <= 0.0

    def total_routed_length(self) -> float:
        return sum(r.routed_length for r in self.routes.values())


class GlobalRouter:
    """Congestion-aware global routing over a design's bin grid."""

    def __init__(self, design: Design, overflow_penalty: float = 8.0,
                 max_iterations: int = 3) -> None:
        self.design = design
        self.overflow_penalty = overflow_penalty
        self.max_iterations = max_iterations
        grid = design.grid
        self.nx, self.ny = grid.nx, grid.ny
        self._usage: Dict[Crossing, float] = {}
        self._cap: Dict[Crossing, float] = {}
        for ix in range(self.nx - 1):
            for iy in range(self.ny):
                a, b = grid.bin(ix, iy), grid.bin(ix + 1, iy)
                self._cap[("h", ix, iy)] = min(a.wire_capacity_h,
                                               b.wire_capacity_h)
        for ix in range(self.nx):
            for iy in range(self.ny - 1):
                a, b = grid.bin(ix, iy), grid.bin(ix, iy + 1)
                self._cap[("v", ix, iy)] = min(a.wire_capacity_v,
                                               b.wire_capacity_v)
        self.bin_w = design.die.width / self.nx
        self.bin_h = design.die.height / self.ny

    # -- public API -----------------------------------------------------

    def route(self, nets: Optional[Sequence[Net]] = None) -> RoutingResult:
        """Route all (or the given) nets; rip-up/re-route overflow."""
        if nets is None:
            nets = [n for n in self.design.netlist.nets() if n.degree >= 2]
        routes: Dict[str, NetRoute] = {}
        for net in nets:
            routes[net.name] = self._route_net(net, maze=False)
        iterations = 1
        for _ in range(self.max_iterations - 1):
            victims = [n for n in nets
                       if self._is_overflowed(routes[n.name])]
            if not victims:
                break
            for net in victims:
                self._unroute(routes[net.name])
                routes[net.name] = self._route_net(net, maze=True)
            iterations += 1
        self._publish_bin_usage()
        return RoutingResult(routes=routes,
                             total_overflow=self.total_overflow(),
                             iterations=iterations)

    def usage(self, crossing: Crossing) -> float:
        return self._usage.get(crossing, 0.0)

    def capacity(self, crossing: Crossing) -> float:
        return self._cap.get(crossing, 0.0)

    def total_overflow(self) -> float:
        return sum(max(0.0, u - self._cap.get(c, 0.0))
                   for c, u in self._usage.items())

    # -- per-net routing ---------------------------------------------------

    def _route_net(self, net: Net, maze: bool) -> NetRoute:
        route = NetRoute(net.name)
        tree = self.design.steiner.tree(net)
        route.steiner_length = self.design.steiner.length(net)
        pins = net.placed_points()
        if len(pins) < 2 or len(tree.points) < 2:
            return route
        length = 0.0
        for i, j in tree.edges:
            a = self._bin_index(tree.points[i])
            b = self._bin_index(tree.points[j])
            if maze:
                path = self._maze_path(a, b)
            else:
                path = self._l_path(a, b)
            length += self._commit_path(route, path)
        # residual in-bin wiring: pin to its bin center
        for p in pins:
            bx, by = self._bin_index(p)
            center = self.design.grid.bin(bx, by).center
            length += p.manhattan_to(center)
        route.routed_length = length
        return route

    def _unroute(self, route: NetRoute) -> None:
        for c in route.crossings:
            self._usage[c] = self._usage.get(c, 0.0) - 1.0
        route.crossings = []

    def _commit_path(self, route: NetRoute,
                     path: List[Tuple[int, int]]) -> float:
        """Add usage along a bin path; returns its wire length."""
        length = 0.0
        for (x1, y1), (x2, y2) in zip(path, path[1:]):
            if x2 == x1 + 1:
                c: Crossing = ("h", x1, y1)
                length += self.bin_w
            elif x2 == x1 - 1:
                c = ("h", x2, y1)
                length += self.bin_w
            elif y2 == y1 + 1:
                c = ("v", x1, y1)
                length += self.bin_h
            else:
                c = ("v", x1, y2)
                length += self.bin_h
            self._usage[c] = self._usage.get(c, 0.0) + 1.0
            route.crossings.append(c)
        return length

    # -- path generation -------------------------------------------------------

    def _bin_index(self, point: Point) -> Tuple[int, int]:
        return self.design.grid.index_at(point)

    def _l_path(self, a: Tuple[int, int],
                b: Tuple[int, int]) -> List[Tuple[int, int]]:
        """The less-congested of the two L-shaped routes a->b."""
        first = self._l_points(a, b, horizontal_first=True)
        second = self._l_points(a, b, horizontal_first=False)
        if first == second:
            return first
        return min((first, second), key=self._path_congestion)

    def _l_points(self, a: Tuple[int, int], b: Tuple[int, int],
                  horizontal_first: bool) -> List[Tuple[int, int]]:
        (ax, ay), (bx, by) = a, b
        path = [a]
        x, y = ax, ay
        def walk_x():
            nonlocal x
            while x != bx:
                x += 1 if bx > x else -1
                path.append((x, y))
        def walk_y():
            nonlocal y
            while y != by:
                y += 1 if by > y else -1
                path.append((x, y))
        if horizontal_first:
            walk_x()
            walk_y()
        else:
            walk_y()
            walk_x()
        return path

    def _path_congestion(self, path: List[Tuple[int, int]]) -> float:
        worst = 0.0
        for (x1, y1), (x2, y2) in zip(path, path[1:]):
            if x2 != x1:
                c: Crossing = ("h", min(x1, x2), y1)
            else:
                c = ("v", x1, min(y1, y2))
            cap = self._cap.get(c, 1.0)
            use = self._usage.get(c, 0.0)
            ratio = (use + 1.0) / cap if cap > 0 else float("inf")
            worst = max(worst, ratio)
        return worst

    def _maze_path(self, a: Tuple[int, int],
                   b: Tuple[int, int]) -> List[Tuple[int, int]]:
        """Congestion-penalised Dijkstra over the bin graph."""
        if a == b:
            return [a]
        dist: Dict[Tuple[int, int], float] = {a: 0.0}
        prev: Dict[Tuple[int, int], Tuple[int, int]] = {}
        heap: List[Tuple[float, Tuple[int, int]]] = [(0.0, a)]
        while heap:
            d, node = heapq.heappop(heap)
            if node == b:
                break
            if d > dist.get(node, float("inf")):
                continue
            x, y = node
            for nxt, c, base in (
                ((x + 1, y), ("h", x, y), self.bin_w),
                ((x - 1, y), ("h", x - 1, y), self.bin_w),
                ((x, y + 1), ("v", x, y), self.bin_h),
                ((x, y - 1), ("v", x, y - 1), self.bin_h),
            ):
                if not (0 <= nxt[0] < self.nx and 0 <= nxt[1] < self.ny):
                    continue
                cap = self._cap.get(c, 0.0)
                use = self._usage.get(c, 0.0)
                over = max(0.0, use + 1.0 - cap)
                cost = base * (1.0 + self.overflow_penalty * over)
                nd = d + cost
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    prev[nxt] = node
                    heapq.heappush(heap, (nd, nxt))
        if b not in prev and a != b:
            return self._l_points(a, b, horizontal_first=True)
        path = [b]
        while path[-1] != a:
            path.append(prev[path[-1]])
        path.reverse()
        return path

    def _is_overflowed(self, route: NetRoute) -> bool:
        return any(self._usage.get(c, 0.0) > self._cap.get(c, 0.0)
                   for c in route.crossings)

    # -- publication ----------------------------------------------------------

    def _publish_bin_usage(self) -> None:
        """Write per-bin wire usage back into the placement image."""
        grid = self.design.grid
        grid.reset_wire_usage()
        for (kind, ix, iy), use in self._usage.items():
            if kind == "h":
                for bx in (ix, ix + 1):
                    grid.bin(bx, iy).wire_used_h += use / 2.0
            else:
                for by in (iy, iy + 1):
                    grid.bin(ix, by).wire_used_v += use / 2.0
