"""Leaf implementation of the kernel profiler (no repro imports).

The hot kernel modules (:mod:`repro.image.grid`,
:mod:`repro.wirelength.steiner`, :mod:`repro.timing.engine`,
:mod:`repro.core.quad`, the quadratic placers) sit *below* the
observability package in the import graph — ``repro.obs`` pulls in the
persistence and guard layers, which pull in ``repro.design``, which
pulls in those very modules.  Importing ``repro.obs.profile`` from a
kernel would therefore be circular.  The accumulator lives here, in a
module with zero intra-package imports, and :mod:`repro.obs.profile`
re-exports it as the public face; both names share one process-global
table.  See :mod:`repro.obs.profile` for the API and kernel-key
documentation.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict

#: counter-key prefix under which kernel timings are registered; every
#: key below it is wall-clock and excluded from span comparisons
PROFILE_PREFIX = "profile."

_enabled = True
#: kernel key → [calls, seconds] (seconds stay float internally; the
#: registry sees integer microseconds)
_acc: Dict[str, list] = {}


def enable(on: bool = True) -> None:
    """Globally switch the hooks on or off (on by default)."""
    global _enabled
    _enabled = on


def enabled() -> bool:
    """Whether kernel timing is currently armed."""
    return _enabled


def begin() -> float:
    """Start one kernel timing; pass the result to :func:`end`."""
    if not _enabled:
        return 0.0
    return perf_counter()


def end(key: str, t0: float) -> None:
    """Close one kernel timing opened by :func:`begin`."""
    if not _enabled:
        return
    dt = perf_counter() - t0
    slot = _acc.get(key)
    if slot is None:
        _acc[key] = [1, dt]
    else:
        slot[0] += 1
        slot[1] += dt


def counters() -> Dict[str, int]:
    """The accumulated table as integer counters.

    ``<kernel>.calls`` is the invocation count, ``<kernel>.us`` the
    cumulative wall time in integer microseconds — both monotonically
    increasing, so :class:`~repro.obs.tracer.CounterRegistry` deltas
    attribute kernel work to individual spans.
    """
    flat: Dict[str, int] = {}
    for key, (calls, seconds) in _acc.items():
        flat[key + ".calls"] = calls
        flat[key + ".us"] = int(seconds * 1e6)
    return flat


def seconds_by_kernel() -> Dict[str, float]:
    """Cumulative seconds per kernel (report/benchmark view)."""
    return {key: slot[1] for key, slot in _acc.items()}


def reset() -> None:
    """Zero the accumulator (benchmarks and tests)."""
    _acc.clear()
