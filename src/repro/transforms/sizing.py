"""Gate sizing (section 4.4): gain assignment, discretization,
timing/area sizing, and post-route in-footprint sizing.

Before placement, gates are *sizeless*: each carries only a gain.
During placement, **discretization** derives a physical size from the
gain and the (increasingly accurate) load.  While the timing mode is
gain-based the discretization is *virtual* — the placer sees the new
width/height but timing does not re-propagate (gain delays are
load-independent), exactly the cheap path of algorithm PlacementDisc.
Switching the engine to LOAD mode is the "link cells" moment.
"""

from __future__ import annotations

from typing import List, Optional

from repro.design import Design
from repro.timing.critical import obtain_critical_region
from repro.timing.engine import DelayMode, INF
from repro.transforms.base import TimingProbe, Transform, TransformResult


class GateSizing:
    """The sizing tool-kit; the scenario invokes individual phases."""

    def __init__(self, default_gain: float = 3.0,
                 area_slack_margin_fraction: float = 0.25) -> None:
        self.default_gain = default_gain
        self.area_slack_margin_fraction = area_slack_margin_fraction

    # -- gain phase ------------------------------------------------------

    def assign_gains(self, design: Design,
                     gain: Optional[float] = None) -> int:
        """Give every sizable cell a target gain (pre-placement)."""
        g = gain if gain is not None else self.default_gain
        count = 0
        for cell in design.netlist.logic_cells():
            if cell.is_port:
                continue
            cell.gain = g
            count += 1
        design.timing.default_gain = g
        return count

    # -- discretization ----------------------------------------------------

    def discretize(self, design: Design,
                   virtual: Optional[bool] = None) -> TransformResult:
        """Derive sizes from gain and current load for every cell.

        While the timer is gain-based this is the paper's *virtual*
        discretization: only the physical image learns the new cell
        shapes; timing analysis is not updated (no incremental
        recomputation fires).  Pass ``virtual`` explicitly to override;
        by default it follows the timing mode.
        """
        if virtual is None:
            virtual = design.timing.mode is DelayMode.GAIN
        result = TransformResult("discretize")
        library = design.library
        for cell in design.netlist.logic_cells():
            if cell.is_port or not library.has_type(cell.type_name):
                continue
            out_pins = cell.output_pins()
            if len(out_pins) != 1 or out_pins[0].net is None:
                continue
            load = design.timing.net_electrical(out_pins[0].net).total_cap
            gain = cell.gain if cell.gain is not None else self.default_gain
            target_cin = load / max(gain, 0.1)
            new_size = library.discretize(cell.type_name, target_cin)
            if new_size.area > cell.area:
                # growth must fit the placement image: fall back to the
                # largest size the cell's bin can absorb.
                bin_ = design.grid.bin_of(cell)
                if bin_ is not None:
                    headroom = bin_.free_area
                    ladder = [s for s in library.sizes(cell.type_name)
                              if s.area - cell.area <= headroom]
                    if ladder:
                        new_size = min(
                            ladder,
                            key=lambda s: abs(s.input_cap() - target_cin))
                    else:
                        new_size = cell.size
            if new_size != cell.size:
                design.netlist.resize_cell(cell, new_size,
                                           virtual=virtual)
                result.accepted += 1
            else:
                result.rejected += 1
        return result

    def link_cells(self, design: Design) -> TransformResult:
        """Final (actual) discretization + switch to load-based timing.

        The mode switch re-times the whole design, absorbing any sizes
        the timer had not seen because they were virtual.
        """
        # switch first so the final sizes are chosen against fresh
        # (actual) loads rather than the virtual-era estimates
        design.timing.set_mode(DelayMode.LOAD)
        result = self.discretize(design, virtual=False)
        result.name = "discretize_and_link"
        return result

    # -- incremental timing-driven sizing -----------------------------------

    def gate_sizing_for_speed(self, design: Design,
                              max_cells: int = 200) -> TransformResult:
        """Upsize critical cells one step each where timing improves."""
        result = TransformResult("gate_sizing_for_speed")
        region = obtain_critical_region(
            design.timing,
            slack_margin=0.05 * design.constraints.cycle_time)
        library = design.library
        candidates = [c for c in region.cells
                      if not c.is_port and library.has_type(c.type_name)]
        candidates.sort(key=lambda c: design.timing.slack(
            c.output_pins()[0]) if c.output_pins() else INF)
        for cell in candidates[:max_cells]:
            ladder = library.sizes(cell.type_name)
            idx = self._ladder_index(ladder, cell.size)
            if idx is None or idx + 1 >= len(ladder):
                continue
            bigger = ladder[idx + 1]
            bin_ = design.grid.bin_of(cell)
            if bin_ is not None and not bin_.can_fit(
                    bigger.area - cell.area):
                result.rejected += 1
                continue
            probe = TimingProbe(design)
            design.netlist.resize_cell(cell, bigger)
            if probe.improved():
                result.accepted += 1
            else:
                design.netlist.resize_cell(cell, ladder[idx])
                result.rejected += 1
        return result

    def gate_sizing_for_area(self, design: Design,
                             max_cells: int = 400) -> TransformResult:
        """Downsize comfortably non-critical cells (area recovery)."""
        result = TransformResult("gate_sizing_for_area")
        margin = (self.area_slack_margin_fraction
                  * design.constraints.cycle_time)
        worst = design.timing.worst_slack()
        if worst == INF:
            worst = 0.0
        # "non-critical" is relative to the current worst path: a cell
        # comfortably above it may shed drive even while the design as
        # a whole still fails timing.
        floor = worst + margin
        library = design.library
        recovered = 0.0
        count = 0
        for cell in design.netlist.logic_cells():
            if count >= max_cells:
                break
            if cell.is_port or not library.has_type(cell.type_name):
                continue
            outs = cell.output_pins()
            if not outs:
                continue
            slack = min((design.timing.slack(p) for p in outs),
                        default=INF)
            if slack == INF or slack < floor:
                continue
            ladder = library.sizes(cell.type_name)
            idx = self._ladder_index(ladder, cell.size)
            if idx is None or idx == 0:
                continue
            count += 1
            smaller = ladder[idx - 1]
            probe = TimingProbe(design)
            old_area = cell.area
            design.netlist.resize_cell(cell, smaller)
            still_safe = min((design.timing.slack(p) for p in outs),
                             default=INF) >= worst + margin / 2.0
            if probe.not_degraded(tolerance=1e-6) and still_safe:
                result.accepted += 1
                recovered += old_area - cell.area
            else:
                design.netlist.resize_cell(cell, ladder[idx])
                result.rejected += 1
        result.detail["area_recovered"] = recovered
        return result

    # -- post-route --------------------------------------------------------

    def in_footprint_sizing(self, design: Design) -> TransformResult:
        """Post-route sizing restricted to footprint siblings.

        Compensates estimated-vs-routed wire length mismatch without
        disturbing placement or routing: only sizes sharing the cell's
        physical outline are considered.
        """
        result = TransformResult("in_footprint_sizing")
        library = design.library
        region = obtain_critical_region(
            design.timing,
            slack_margin=0.05 * design.constraints.cycle_time)
        for cell in region.cells:
            if cell.is_port or not library.has_type(cell.type_name):
                continue
            siblings = [s for s in library.footprint_siblings(cell.size)
                        if s.x > cell.size.x]
            improved = False
            for sib in sorted(siblings, key=lambda s: s.x):
                probe = TimingProbe(design)
                old = cell.size
                design.netlist.resize_cell(cell, sib)
                if probe.improved():
                    improved = True
                    break
                design.netlist.resize_cell(cell, old)
            if improved:
                result.accepted += 1
            else:
                result.rejected += 1
        return result

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _ladder_index(ladder: List, size) -> Optional[int]:
        for i, s in enumerate(ladder):
            if s.x == size.x:
                return i
        return None
