"""Clock tree and scan chain net length optimization (section 4.5).

The staging protocol of algorithm *Clock and Scan Net Optimization*:

* **status 10** — clock and scan net weights drop to 0 (placement lets
  data flow dominate register locations), clock buffers shrink to
  minimum, registers grow a size to *reserve space* for the buffers
  that will appear next to them;
* **status 30** — weights and sizes are restored (freeing space in the
  register bins), and clock optimization inserts clock buffers into
  that space: registers are clustered geometrically, one buffer per
  cluster at its centroid, wired from the clock root;
* **status 80** — scan weights are restored and the chain is reordered
  by register location (nearest-neighbour tour + 2-opt), reconnecting
  SI pins to minimize total scan net length.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.design import Design
from repro.geometry import Point
from repro.library.types import GateSize
from repro.netlist.cell import Cell
from repro.netlist.net import Net
from repro.placement.relocation import CircuitRelocation
from repro.transforms.base import Transform, TransformResult


class ClockScanOptimizer:
    """Owns the clock/scan staging protocol across the whole flow."""

    def __init__(self, regs_per_buffer: int = 8,
                 branch_factor: int = 4,
                 clkbuf_x: float = 4.0) -> None:
        self.regs_per_buffer = regs_per_buffer
        self.branch_factor = branch_factor
        self.clkbuf_x = clkbuf_x
        self.masked = False
        self.clock_done = False
        self.scan_done = False
        self._saved_sizes: Dict[str, GateSize] = {}

    # -- persistence -------------------------------------------------------

    def state_dict(self) -> dict:
        """Serializable staging state; saved sizes keep their insertion
        order (``_restore_sizes`` iterates it)."""
        return {
            "masked": self.masked,
            "clock_done": self.clock_done,
            "scan_done": self.scan_done,
            "saved_sizes": [[name, size.gate_type.name, size.x]
                            for name, size in self._saved_sizes.items()],
        }

    def load_state_dict(self, state: dict, library) -> None:
        self.masked = state["masked"]
        self.clock_done = state["clock_done"]
        self.scan_done = state["scan_done"]
        self._saved_sizes = {
            name: library.size(type_name, x)
            for name, type_name, x in state["saved_sizes"]
        }

    # -- scenario hook -----------------------------------------------------

    def apply_for_status(self, design: Design, status: int) -> List[str]:
        """Fire the stages whose status thresholds were crossed."""
        fired = []
        if status >= 10 and not self.masked:
            self.mask(design)
            fired.append("mask")
        if status >= 30 and not self.clock_done:
            self.restore_clock(design)
            self.clock_optimization(design)
            fired.append("clock")
        if status >= 80 and not self.scan_done:
            self.restore_scan(design)
            self.scan_optimization(design)
            fired.append("scan")
        return fired

    # -- stage 10: masking ----------------------------------------------------

    def mask(self, design: Design) -> None:
        """Zero clock/scan weights; shrink clock buffers, grow registers."""
        for net in design.netlist.nets():
            if net.is_clock or net.is_scan:
                net.weight = 0.0
        library = design.library
        for cell in design.netlist.cells():
            if cell.is_clock_buffer and library.has_type(cell.type_name):
                self._saved_sizes[cell.name] = cell.size
                design.netlist.resize_cell(
                    cell, library.smallest(cell.type_name))
            elif cell.is_sequential and library.has_type(cell.type_name):
                ladder = library.sizes(cell.type_name)
                idx = next((i for i, s in enumerate(ladder)
                            if s.x == cell.size.x), None)
                if idx is not None and idx + 1 < len(ladder):
                    self._saved_sizes[cell.name] = cell.size
                    design.netlist.resize_cell(cell, ladder[idx + 1])
        self.masked = True

    # -- stage 30: clock ---------------------------------------------------------

    def restore_clock(self, design: Design) -> None:
        for net in design.netlist.nets():
            if net.is_clock:
                net.weight = net.base_weight
        self._restore_sizes(design)

    def clock_optimization(self, design: Design) -> TransformResult:
        """Build a recursive buffered clock tree over the registers.

        Registers cluster geometrically (one leaf buffer per cluster at
        the cluster centroid, in the space freed by the register-size
        restore); buffer levels repeat upward until the root net drives
        only a handful of buffers, keeping every clock net short — that
        is what bounds insertion delay and skew.
        """
        result = TransformResult("clock_optimization")
        netlist = design.netlist
        root = self._clock_root(design)
        if root is None:
            return result
        regs = [c for c in netlist.sequential_cells()
                if c.placed and self._on_net(c, root)]
        if not regs:
            return result
        buf_size = min(design.library.sizes("CLKBUF"),
                       key=lambda s: abs(s.x - self.clkbuf_x))

        level_cells: List[Cell] = list(regs)
        level = 0
        while len(level_cells) > self.branch_factor:
            per_buffer = (self.regs_per_buffer if level == 0
                          else self.branch_factor)
            clusters = _geometric_clusters(level_cells, per_buffer)
            if len(clusters) <= 1 and level > 0:
                break
            next_level: List[Cell] = []
            for i, cluster in enumerate(clusters):
                cx = sum(c.require_position().x
                         for c in cluster) / len(cluster)
                cy = sum(c.require_position().y
                         for c in cluster) / len(cluster)
                where = design.die.clamp(Point(cx, cy))
                target_bin = design.grid.bin_at(where)
                if not target_bin.can_fit(buf_size.area):
                    CircuitRelocation(design).make_space(
                        target_bin, buf_size.area)
                buf = netlist.add_cell(
                    netlist.unique_name("clkbuf_l%d_%d" % (level, i)),
                    buf_size, position=where)
                leaf = netlist.add_net(
                    netlist.unique_name("clk_l%d_%d" % (level, i)),
                    is_clock=True)
                netlist.connect(buf.pin("Z"), leaf)
                for cell in cluster:
                    pin = ("CK" if level == 0 and not cell.is_clock_buffer
                           else "A")
                    netlist.connect(cell.pin(pin), leaf)
                next_level.append(buf)
                result.accepted += 1
            level_cells = next_level
            level += 1
        # Top of the tree: a single root driver near the centroid of the
        # remaining buffers, so the net from the clock port is two-pin
        # (its wire delay shifts insertion delay, not skew).
        tops = [c for c in level_cells
                if c.is_clock_buffer and c.pin("A").net is None]
        if len(tops) > 1:
            cx = sum(c.require_position().x for c in tops) / len(tops)
            cy = sum(c.require_position().y for c in tops) / len(tops)
            where = design.die.clamp(Point(cx, cy))
            driver = netlist.add_cell(
                netlist.unique_name("clkbuf_root"), buf_size,
                position=where)
            trunk = netlist.add_net(netlist.unique_name("clk_trunk"),
                                    is_clock=True)
            netlist.connect(driver.pin("Z"), trunk)
            for buf in tops:
                netlist.connect(buf.pin("A"), trunk)
            netlist.connect(driver.pin("A"), root)
            result.accepted += 1
        elif tops:
            netlist.connect(tops[0].pin("A"), root)
        elif level == 0 and level_cells:
            # Degenerate: very few registers; drive them from the root.
            pass
        self.clock_done = True
        result.detail["levels"] = float(level)
        return result

    # -- stage 80: scan -------------------------------------------------------------

    def restore_scan(self, design: Design) -> None:
        for net in design.netlist.nets():
            if net.is_scan:
                net.weight = net.base_weight

    def scan_optimization(self, design: Design) -> TransformResult:
        """Reorder every scan chain by register location."""
        result = TransformResult("scan_optimization")
        netlist = design.netlist
        heads = self._scan_heads(design)
        all_scan_regs = [c for c in netlist.sequential_cells()
                         if c.placed and self._has_connected_si(c)]
        before_total = 0.0
        after_total = 0.0
        for head_net in heads:
            regs = _chain_order(head_net, all_scan_regs)
            if len(regs) < 2:
                continue
            tail_pin = self._chain_tail(regs)
            before_total += _tour_length(design, head_net, regs,
                                         tail_pin)
            start = self._net_anchor(head_net)
            order = _nearest_neighbor_tour(regs, start)
            order = _two_opt(order, start)
            # Reconnect: head net -> SI of first; Q of k -> SI of k+1.
            netlist.connect(order[0].pin("SI"), head_net)
            for prev, cur in zip(order, order[1:]):
                qn = prev.pin("Q").net
                if qn is None:
                    qn = netlist.add_net(netlist.unique_name("scan_q"))
                    netlist.connect(prev.pin("Q"), qn)
                netlist.connect(cur.pin("SI"), qn)
            if tail_pin is not None:
                last_q = order[-1].pin("Q").net
                if last_q is not None:
                    netlist.connect(tail_pin, last_q)
            after_total += _tour_length(design, head_net, order,
                                        tail_pin)
            result.accepted += 1
        result.detail["length_before"] = before_total
        result.detail["length_after"] = after_total
        self.scan_done = True
        return result

    @staticmethod
    def _scan_heads(design: Design) -> List[Net]:
        """Chain head nets: scan nets driven by input ports."""
        return [net for net in design.netlist.nets()
                if net.is_scan and net.driver() is not None
                and net.driver().cell.is_port]

    @staticmethod
    def _chain_tail(regs: List[Cell]):
        """The scan-out port pin hanging off a chain's last register."""
        last_q = regs[-1].pin("Q").net
        if last_q is None:
            return None
        for pin in last_q.sinks():
            if pin.cell.is_port:
                return pin
        return None

    # -- helpers -------------------------------------------------------------------

    def _restore_sizes(self, design: Design) -> None:
        for name, size in self._saved_sizes.items():
            if design.netlist.has_cell(name):
                design.netlist.resize_cell(design.netlist.cell(name), size)
        self._saved_sizes.clear()

    @staticmethod
    def _clock_root(design: Design) -> Optional[Net]:
        for net in design.netlist.nets():
            if net.is_clock and net.driver() is not None \
                    and net.driver().cell.is_port:
                return net
        for net in design.netlist.nets():
            if net.is_clock:
                return net
        return None

    @staticmethod
    def _on_net(cell: Cell, net: Net) -> bool:
        try:
            return cell.pin("CK").net is net
        except KeyError:
            return False

    @staticmethod
    def _has_connected_si(cell: Cell) -> bool:
        try:
            return cell.pin("SI").net is not None
        except KeyError:
            return False

    @staticmethod
    def _net_anchor(net: Net) -> Point:
        driver = net.driver()
        if driver is not None and driver.position is not None:
            return driver.position
        pts = net.placed_points()
        return pts[0] if pts else Point(0, 0)


# -- tour utilities -----------------------------------------------------------


def _tour_length(design: Design, head: Net, regs: Sequence[Cell],
                 tail_pin) -> float:
    """Total scan hop length for the current chain order (tracks)."""
    total = 0.0
    anchor = ClockScanOptimizer._net_anchor(head)
    # reconstruct order by following SI connections
    order = _chain_order(head, regs)
    prev = anchor
    for reg in order:
        pos = reg.require_position()
        total += prev.manhattan_to(pos)
        prev = pos
    if tail_pin is not None and tail_pin.position is not None and order:
        total += prev.manhattan_to(tail_pin.position)
    return total


def _chain_order(head: Net, regs: Sequence[Cell]) -> List[Cell]:
    reg_set = {id(c): c for c in regs}
    order: List[Cell] = []
    net = head
    visited = set()
    while net is not None and net.name not in visited:
        visited.add(net.name)
        next_net = None
        for pin in net.sinks():
            if pin.is_scan and id(pin.cell) in reg_set:
                order.append(pin.cell)
                next_net = pin.cell.pin("Q").net
                break
        net = next_net
    return order


def _nearest_neighbor_tour(regs: Sequence[Cell],
                           start: Point) -> List[Cell]:
    remaining = list(regs)
    order: List[Cell] = []
    here = start
    while remaining:
        best = min(remaining,
                   key=lambda c: here.manhattan_to(c.require_position()))
        remaining.remove(best)
        order.append(best)
        here = best.require_position()
    return order


def _two_opt(order: List[Cell], start: Point,
             max_passes: int = 3) -> List[Cell]:
    """Classic 2-opt improvement on the open scan tour."""
    def pos(i: int) -> Point:
        return start if i < 0 else order[i].require_position()

    n = len(order)
    for _ in range(max_passes):
        improved = False
        for i in range(-1, n - 2):
            for j in range(i + 2, n):
                a, b = pos(i), pos(i + 1)
                c = pos(j)
                if j == n - 1:
                    # reversing the tail: the chain simply ends at b
                    delta = a.manhattan_to(c) - a.manhattan_to(b)
                else:
                    d = pos(j + 1)
                    delta = (a.manhattan_to(c) + b.manhattan_to(d)
                             - a.manhattan_to(b) - c.manhattan_to(d))
                if delta < -1e-9:
                    order[i + 1:j + 1] = reversed(order[i + 1:j + 1])
                    improved = True
        if not improved:
            break
    return order


def _geometric_clusters(cells: Sequence[Cell],
                        max_size: int) -> List[List[Cell]]:
    """Recursive median split until every cluster fits ``max_size``."""
    def split(group: List[Cell]) -> List[List[Cell]]:
        if len(group) <= max_size:
            return [group]
        xs = [c.require_position().x for c in group]
        ys = [c.require_position().y for c in group]
        if max(xs) - min(xs) >= max(ys) - min(ys):
            group = sorted(group, key=lambda c: c.require_position().x)
        else:
            group = sorted(group, key=lambda c: c.require_position().y)
        mid = len(group) // 2
        return split(group[:mid]) + split(group[mid:])

    return split(list(cells))
