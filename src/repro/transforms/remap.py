"""Local remapping for timing (the "remapping" of section 4.6).

Complex stacked gates are slow for their latest-arriving input.  This
transform re-decomposes a critical complex gate (NAND3/NAND4/AND2/...)
into a two-stage equivalent arranged so the *late* signal enters the
final stage: the early signals pre-compute through the front gate
while the critical one bypasses it.  Placement-aware like every TPS
transform — the new front gate is placed at the original location and
the change is kept only if the timing analyzer confirms it.
"""

from __future__ import annotations

from typing import Optional

from repro.design import Design
from repro.netlist import ops
from repro.netlist.cell import Cell
from repro.timing.critical import obtain_critical_region
from repro.transforms.base import TimingProbe, Transform, TransformResult

#: type -> (pin that should carry the latest signal after decomposition)
#: (the decomposition rules put the listed pin on the *back* stage)
_LATE_PIN = {
    "NAND3": "C",
    "NOR3": "C",
    "NAND4": "D",
}


class LocalRemap(Transform):
    """Re-decompose critical complex gates around their late input."""

    name = "local_remap"

    def __init__(self, max_cells: int = 30,
                 slack_margin_fraction: float = 0.08) -> None:
        self.max_cells = max_cells
        self.slack_margin_fraction = slack_margin_fraction

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        region = obtain_critical_region(
            design.timing,
            slack_margin=self.slack_margin_fraction
            * design.constraints.cycle_time)
        candidates = [c for c in region.cells
                      if c.type_name in _LATE_PIN and c.is_movable]
        for cell in candidates[:self.max_cells]:
            if self._try_remap(design, cell):
                result.accepted += 1
            else:
                result.rejected += 1
        return result

    def _try_remap(self, design: Design, cell: Cell) -> bool:
        """Rotate the late signal onto the bypass pin, then decompose."""
        engine = design.timing
        inputs = [p for p in cell.input_pins() if p.net is not None]
        if len(inputs) < cell.gate_type.num_inputs:
            return False
        late = max(inputs, key=lambda p: engine.arrival(p))
        bypass = _LATE_PIN[cell.type_name]
        probe = TimingProbe(design)

        # get the late signal onto the pin that stays on the back stage
        swapped: Optional[tuple] = None
        if late.name != bypass:
            spec_a = cell.gate_type.pin(late.name)
            spec_b = cell.gate_type.pin(bypass)
            if spec_a.swap_group is None \
                    or spec_a.swap_group != spec_b.swap_group:
                return False
            ops.swap_pins(design.netlist, cell, late.name, bypass)
            swapped = (late.name, bypass)

        net_map = {p.name: p.net for p in cell.pins()}
        front, back = ops.decompose_cell(design.netlist, design.library,
                                         cell)
        if probe.improved():
            return True
        # undo: rebuild the original gate and reconnect it
        design.netlist.remove_cell(front)
        mid = back.gate_type.input_pins[0]
        mid_net = back.pin(mid.name).net
        design.netlist.remove_cell(back)
        if mid_net is not None and mid_net.degree == 0:
            design.netlist.remove_net(mid_net)
        restored = design.netlist.add_cell(
            design.netlist.unique_name("rm_" + cell.name),
            cell.size, position=cell.position)
        restored.gain = cell.gain
        for pin_name, net in net_map.items():
            if net is not None and net.netlist is design.netlist:
                design.netlist.connect(restored.pin(pin_name), net)
        if swapped is not None:
            ops.swap_pins(design.netlist, restored, swapped[0],
                          swapped[1])
        return False
