"""Congestion relief: move cells *or* re-decompose the netlist.

Section 1's flagship example of a combined netlist/placement
transform: "A transform to eliminate wire congestion can do this both
by moving cells or re-decomposing a piece of the netlist."  For each
congestion hotspot bin this transform tries, in order:

1. **moving** non-critical cells out of the hotspot (via circuit
   relocation), which removes their pins' wiring demand;
2. **re-decomposing** a complex gate in the hotspot into a two-stage
   equivalent whose front stage can be placed outside the hotspot —
   splitting one multi-pin net crossing the congested area into two
   shorter nets.

Each action is scored against the analyzers: the congestion of the
hotspot must drop, and timing must not degrade.
"""

from __future__ import annotations

from typing import Set

from repro.design import Design
from repro.image.bins import Bin
from repro.netlist import ops
from repro.placement.relocation import CircuitRelocation
from repro.timing.critical import obtain_critical_region
from repro.transforms.base import TimingProbe, Transform, TransformResult


class CongestionRelief(Transform):
    """Reduce wiring demand in hotspot bins."""

    name = "congestion_relief"

    def __init__(self, hotspot_threshold: float = 1.0,
                 max_bins: int = 10,
                 slack_margin_fraction: float = 0.1) -> None:
        self.hotspot_threshold = hotspot_threshold
        self.max_bins = max_bins
        self.slack_margin_fraction = slack_margin_fraction

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        region = obtain_critical_region(
            design.timing,
            slack_margin=self.slack_margin_fraction
            * design.constraints.cycle_time)
        protect = region.cell_names()
        hotspots = sorted(
            (b for b in design.grid.bins()
             if b.congestion > self.hotspot_threshold),
            key=lambda b: -b.congestion)
        for bin_ in hotspots[:self.max_bins]:
            if self._relieve_by_moving(design, bin_, protect):
                result.accepted += 1
            elif self._relieve_by_decomposition(design, bin_, protect):
                result.accepted += 1
                result.detail["decompositions"] = (
                    result.detail.get("decompositions", 0) + 1)
            else:
                result.rejected += 1
        result.detail["hotspots"] = float(len(hotspots))
        return result

    # -- action 1: move cells out ------------------------------------------

    def _relieve_by_moving(self, design: Design, bin_: Bin,
                           protect: Set[str]) -> bool:
        """Push some non-critical area out of the hotspot."""
        movable_area = sum(c.area for c in bin_.cells
                           if c.is_movable and c.name not in protect)
        if movable_area <= 0:
            return False
        target_free = bin_.free_area + movable_area * 0.5
        probe = TimingProbe(design)
        reloc = CircuitRelocation(design)
        demand_before = self._pin_demand(bin_)
        ok = reloc.make_space(bin_, target_free, protect=protect)
        if ok and self._pin_demand(bin_) < demand_before \
                and probe.not_degraded(tolerance=1.0):
            return True
        reloc.undo()
        return False

    # -- action 2: re-decompose -------------------------------------------

    def _relieve_by_decomposition(self, design: Design, bin_: Bin,
                                  protect: Set[str]) -> bool:
        """Split a complex gate so its front stage leaves the hotspot."""
        candidates = sorted(
            (c for c in bin_.cells
             if c.is_movable and c.name not in protect
             and ops.can_decompose(c)),
            key=lambda c: -c.gate_type.num_inputs)
        grid = design.grid
        for cell in candidates[:4]:
            neighbors = [b for b in grid.neighbors(bin_)
                         if b.congestion < bin_.congestion
                         and b.can_fit(cell.area)]
            if not neighbors:
                continue
            quiet = min(neighbors, key=lambda b: b.congestion)
            probe = TimingProbe(design)
            front, back = ops.decompose_cell(design.netlist,
                                             design.library, cell)
            design.netlist.move_cell(front, quiet.center)
            if probe.not_degraded(tolerance=1.0):
                return True
            # no clean inverse for decomposition: fold the front stage
            # back into the hotspot so at least wiring is unchanged
            design.netlist.move_cell(front, back.require_position())
            return False
        return False

    @staticmethod
    def _pin_demand(bin_: Bin) -> int:
        """Connected pins inside the bin — a proxy for local wiring."""
        return sum(1 for c in bin_.cells for p in c.pins()
                   if p.net is not None)
