"""Power recovery: the power-analyzer-coupled transform.

"Other work involves extending algorithms to optimize metrics such as
noise, congestion, power and yield" (section 7).  This transform
couples to the :class:`~repro.analysis.PowerAnalyzer` exactly the way
the timing transforms couple to the timing engine: it walks the nets
by switching power, downsizes their drivers (less input capacitance
upstream, same wire), and keeps a change only if the power analyzer
reports a saving and the timing analyzer reports no worst-slack
degradation.
"""

from __future__ import annotations


from repro.analysis.power import PowerAnalyzer
from repro.design import Design
from repro.transforms.base import TimingProbe, Transform, TransformResult


class PowerRecovery(Transform):
    """Trade surplus drive for switching power."""

    name = "power_recovery"

    def __init__(self, max_nets: int = 100,
                 activity: float = 0.1) -> None:
        self.max_nets = max_nets
        self.activity = activity

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        analyzer = PowerAnalyzer(design, activity=self.activity)
        report = analyzer.analyze()
        saved = 0.0
        hungry = sorted(report.per_net.items(), key=lambda kv: -kv[1])
        library = design.library
        for net_name, _power in hungry[:self.max_nets]:
            if not design.netlist.has_net(net_name):
                continue
            net = design.netlist.net(net_name)
            if net.is_clock:
                continue  # the clock tree's sizing is its own problem
            saving = 0.0
            for pin in net.sinks():
                cell = pin.cell
                if cell.is_port or cell.is_sequential \
                        or not library.has_type(cell.type_name):
                    continue
                ladder = library.sizes(cell.type_name)
                idx = next((i for i, s in enumerate(ladder)
                            if s.x == cell.size.x), None)
                if idx is None or idx == 0:
                    continue
                before_power = analyzer.net_power(net)
                probe = TimingProbe(design)
                design.netlist.resize_cell(cell, ladder[idx - 1])
                # smaller sink -> less cap on this (hot) net
                after_power = analyzer.net_power(net)
                if after_power < before_power \
                        and probe.not_degraded(tolerance=1e-6):
                    saving += before_power - after_power
                else:
                    design.netlist.resize_cell(cell, ladder[idx])
            if saving > 0:
                result.accepted += 1
                saved += saving
            else:
                result.rejected += 1
        result.detail["power_saved_uw"] = saved
        return result
