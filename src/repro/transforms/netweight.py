"""Logical-effort based net weighting (section 4.3).

Net weights are updated *during each cut* as placement refines, scaled
both by how timing-critical a net is and by the logical effort of its
driving gate: complex gates (high effort, e.g. XOR) get heavier
weights so placement keeps their wires short, while inverters and
simple NANDs are allowed to drive longer wires — automating the
designer's rule of thumb.

Two modes per algorithm *LogicalEffortNetWeight*: ``ABSOLUTE``
recomputes weights from scratch each cut; ``INCREMENTAL`` blends with
the previous weight for a smoother trajectory.
"""

from __future__ import annotations

import enum

from repro.design import Design
from repro.netlist.net import Net
from repro.timing.critical import obtain_critical_region
from repro.timing.engine import INF
from repro.transforms.base import Transform, TransformResult


class WeightMode(enum.Enum):
    ABSOLUTE = "absolute"
    INCREMENTAL = "incremental"


class LogicalEffortNetWeight(Transform):
    """Per-cut net weight assignment for timing-driven partitioning."""

    name = "logical_effort_net_weight"

    def __init__(self, mode: WeightMode = WeightMode.INCREMENTAL,
                 slack_margin_fraction: float = 0.15,
                 max_boost: float = 8.0) -> None:
        self.mode = mode
        self.slack_margin_fraction = slack_margin_fraction
        self.max_boost = max_boost

    # -- weight model ----------------------------------------------------

    def compute_slack_weight(self, design: Design, net: Net) -> float:
        """Criticality in [0, 1]: how deep into the critical window."""
        slack = design.timing.net_slack(net)
        if slack == INF:
            return 0.0
        cycle = design.constraints.cycle_time
        window = self.slack_margin_fraction * cycle
        worst = design.timing.worst_slack()
        if worst == INF or window <= 0:
            return 0.0
        depth = (worst + window - slack) / window
        return min(1.0, max(0.0, depth))

    def effort_factor(self, design: Design, net: Net) -> float:
        """Driver's logical effort normalised to the library maximum."""
        driver = net.driver()
        if driver is None or driver.cell.is_port:
            return 0.5
        return design.library_analysis.normalized(driver.cell.type_name)

    def target_weight(self, design: Design, net: Net) -> float:
        """The absolute-mode weight of one net."""
        crit = self.compute_slack_weight(design, net)
        if crit <= 0.0:
            return net.base_weight
        effort = self.effort_factor(design, net)
        boost = 1.0 + (self.max_boost - 1.0) * crit * (0.5 + 0.5 * effort)
        return net.base_weight * boost

    # -- transform entry ---------------------------------------------------

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        cycle = design.constraints.cycle_time
        region = obtain_critical_region(
            design.timing,
            slack_margin=self.slack_margin_fraction * cycle)
        critical = region.net_names()
        changed = 0
        for net in design.netlist.nets():
            if net.is_clock or net.is_scan or net.weight <= 0.0:
                continue  # masked nets are owned by clock/scan staging
            if net.name in critical:
                new = self.target_weight(design, net)
                if self.mode is WeightMode.INCREMENTAL:
                    new = 0.5 * (net.weight + new)
            else:
                # decay back toward the base weight
                if self.mode is WeightMode.INCREMENTAL:
                    new = 0.5 * (net.weight + net.base_weight)
                else:
                    new = net.base_weight
            if abs(new - net.weight) > 1e-9:
                net.weight = new
                changed += 1
        result.accepted = changed
        result.detail["critical_nets"] = float(len(critical))
        return result
