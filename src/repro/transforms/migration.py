"""Circuit migration: strong moves (section 4.2, ref [8]).

Individual cell moves on a critical meander often cannot shorten it
(Figure 3) and single Steiner nodes cannot leave the trunk (Figure 4) —
but the *collective* motion of a connected group can.  A **strong
move** relocates an optimal set of circuits connected to a net (or a
group of nets) such that no proper subset achieves the improvement.

The transform builds candidate groups from the critical region —
starting from single critical nets, then merging across nets — and
tries joint translations of one bin step in each direction, accepting
a move only if the timing analyzer confirms an improvement and bin
capacities are respected.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.design import Design
from repro.geometry import Point
from repro.netlist.cell import Cell
from repro.timing.critical import obtain_critical_region
from repro.transforms.base import Transform, TransformResult


class CircuitMigration(Transform):
    """Joint relocation of critical cell groups."""

    name = "circuit_migration"

    def __init__(self, max_group_size: int = 6, max_groups: int = 60,
                 slack_margin_fraction: float = 0.08) -> None:
        self.max_group_size = max_group_size
        self.max_groups = max_groups
        self.slack_margin_fraction = slack_margin_fraction

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        groups = self._build_groups(design)
        steps = self._steps(design)
        for group in groups[:self.max_groups]:
            if self._try_group(design, group, steps):
                result.accepted += 1
            else:
                result.rejected += 1
        return result

    # -- group construction -------------------------------------------------

    def _build_groups(self, design: Design) -> List[List[Cell]]:
        """Candidate strong-move sets from the critical region.

        For every critical net: the movable critical cells on it; then
        one merged group per net including neighbours reached through
        other critical nets ("strong moves for a group of nets").
        """
        region = obtain_critical_region(
            design.timing,
            slack_margin=self.slack_margin_fraction
            * design.constraints.cycle_time)
        critical_cells = {c.name for c in region.cells if c.is_movable}
        groups: List[List[Cell]] = []
        seen: Set[FrozenSet[str]] = set()

        def push(cells: Sequence[Cell]) -> None:
            cells = [c for c in cells if c.is_movable and c.placed]
            if not cells or len(cells) > self.max_group_size:
                return
            key = frozenset(c.name for c in cells)
            if key in seen:
                return
            seen.add(key)
            groups.append(list(cells))

        nets = sorted(region.nets, key=lambda n: design.timing.net_slack(n))
        for net in nets:
            base = [c for c in net.cells()
                    if c.name in critical_cells and c.is_movable]
            if not base:
                continue
            push(base)
            # grow across adjacent critical nets
            grown = list(base)
            grown_names = {c.name for c in grown}
            for cell in base:
                for pin in cell.pins():
                    other = pin.net
                    if other is None or other is net:
                        continue
                    if other.name not in region.net_names():
                        continue
                    for c in other.cells():
                        if (c.name in critical_cells and c.is_movable
                                and c.name not in grown_names
                                and len(grown) < self.max_group_size):
                            grown.append(c)
                            grown_names.add(c.name)
            if len(grown) > len(base):
                push(grown)
        return groups

    # -- move trial -----------------------------------------------------------

    def _steps(self, design: Design) -> List[Tuple[float, float]]:
        bw = design.die.width / max(design.grid.nx, 1)
        bh = design.die.height / max(design.grid.ny, 1)
        return [(bw, 0.0), (-bw, 0.0), (0.0, bh), (0.0, -bh),
                (bw, bh), (-bw, -bh), (bw, -bh), (-bw, bh)]

    def _try_group(self, design: Design, group: List[Cell],
                   steps: Sequence[Tuple[float, float]]) -> bool:
        """Evaluate every step; commit the one with the best timing gain.

        A strong move is the *optimal* relocation of the set, so all
        candidate directions are scored before any is kept.
        """
        netlist = design.netlist
        original = [c.require_position() for c in group]
        base_worst = design.timing.worst_slack()
        base_tns = design.timing.total_negative_slack()
        best: Optional[Tuple[float, float, List[Point]]] = None
        for dx, dy in steps:
            targets = [design.die.clamp(p.translated(dx, dy))
                       for p in original]
            if all(t == p for t, p in zip(targets, original)):
                continue
            for cell, t in zip(group, targets):
                netlist.move_cell(cell, t)
            if self._bins_ok(design, group):
                gain = design.timing.worst_slack() - base_worst
                tns_gain = (design.timing.total_negative_slack()
                            - base_tns)
                if (gain > 1e-9 or (gain > -1e-9 and tns_gain > 1e-9)):
                    if best is None or (gain, tns_gain) > best[:2]:
                        best = (gain, tns_gain, targets)
            for cell, p in zip(group, original):
                netlist.move_cell(cell, p)
        if best is None:
            return False
        for cell, t in zip(group, best[2]):
            netlist.move_cell(cell, t)
        return True

    @staticmethod
    def _bins_ok(design: Design, group: Sequence[Cell]) -> bool:
        bins = {design.grid.bin_of(c) for c in group}
        return all(b is None or not b.overfilled for b in bins)
