"""Transform protocol and the accept/reject evaluator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.design import Design


@dataclass
class TransformResult:
    """Outcome of one transform invocation."""

    name: str
    accepted: int = 0
    rejected: int = 0
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def attempted(self) -> int:
        return self.accepted + self.rejected

    def __str__(self) -> str:
        detail = ""
        if self.detail:
            detail = "{%s}" % ", ".join(
                "%s: %s" % (key, self._fmt(self.detail[key]))
                for key in sorted(self.detail))
        return "%s: %d/%d accepted %s" % (
            self.name, self.accepted, self.attempted, detail)

    @staticmethod
    def _fmt(value) -> str:
        """Fixed-precision rendering: no raw float noise in the trace."""
        if isinstance(value, float):
            return "%d" % value if value == int(value) else "%.2f" % value
        return str(value)


class Transform:
    """Base class: a named, repeatable optimization step.

    Subclasses implement ``run(design)``; the scenario decides *when*
    to invoke each transform based on the placement status.
    """

    name = "transform"

    def run(self, design: Design) -> TransformResult:
        raise NotImplementedError


class TimingProbe:
    """Evaluator for try/score/accept: snapshots timing before a move.

    ``improved()`` compares (worst slack, TNS) lexicographically — a
    move must not hurt the worst path, and among equals should reduce
    total negative slack.  ``margin`` requires a minimum gain, used by
    transforms whose changes cost area.
    """

    def __init__(self, design: Design, margin: float = 0.0) -> None:
        self.design = design
        self.margin = margin
        self.worst_before = design.timing.worst_slack()
        self.tns_before = design.timing.total_negative_slack()

    def improved(self) -> bool:
        worst = self.design.timing.worst_slack()
        if worst > self.worst_before + max(self.margin, 1e-9):
            return True
        if worst < self.worst_before - 1e-9:
            return False
        return (self.design.timing.total_negative_slack()
                > self.tns_before + max(self.margin, 1e-9))

    def not_degraded(self, tolerance: float = 1e-9) -> bool:
        """True if the worst slack did not get worse."""
        worst = self.design.timing.worst_slack()
        return worst >= self.worst_before - tolerance
