"""Hold fixing: pad racing register-to-register paths.

With min/max timing available, hold violations (data racing through
before the capture window closes) are repaired the standard way:
delay buffers on the offending D inputs.  Each insertion is checked
against *both* analyses — the hold slack must improve and the setup
slack must stay non-degraded — the same dual-analyzer accept/reject
discipline as every other transform.
"""

from __future__ import annotations


from repro.design import Design
from repro.netlist import ops
from repro.netlist.cell import Pin
from repro.transforms.base import Transform, TransformResult


class HoldFix(Transform):
    """Insert delay buffers on hold-violating register inputs."""

    name = "hold_fix"

    def __init__(self, max_buffers_per_path: int = 4,
                 buffer_x: float = 1.0) -> None:
        self.max_buffers_per_path = max_buffers_per_path
        self.buffer_x = buffer_x

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        engine = design.timing
        victims = [p for p in engine.endpoints()
                   if engine.hold_slack(p) < 0]
        total_added = 0
        for pin in victims:
            added = self._fix_pin(design, pin)
            total_added += added
            if engine.hold_slack(pin) >= 0:
                result.accepted += 1
            else:
                result.rejected += 1
        result.detail["buffers_added"] = float(total_added)
        return result

    def _fix_pin(self, design: Design, pin: Pin) -> int:
        engine = design.timing
        added = 0
        for _ in range(self.max_buffers_per_path):
            if engine.hold_slack(pin) >= 0:
                break
            net = pin.net
            if net is None or net.driver() is None:
                break
            setup_before = engine.slack(pin)
            hold_before = engine.hold_slack(pin)
            where = pin.position if pin.position is not None else None
            buf = ops.insert_buffer(design.netlist, design.library,
                                    net, [pin], position=where,
                                    buffer_x=self.buffer_x)
            buf.gain = engine.default_gain
            if engine.hold_slack(pin) <= hold_before + 1e-9 or \
                    (setup_before >= 0 and engine.slack(pin) < 0):
                # no progress, or we broke setup: undo and stop
                ops.remove_buffer(design.netlist, buf)
                break
            added += 1
        return added
