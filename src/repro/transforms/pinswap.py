"""Pin swapping on functionally symmetric inputs.

Stacked CMOS inputs are not electrically identical: pins closer to the
output switch faster (their ``delay_factor`` is below 1).  On critical
cells, the transform permutes swappable inputs so the latest-arriving
signal lands on the fastest pin, accepting the permutation only if the
timing analyzer confirms the gain.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.design import Design
from repro.netlist import ops
from repro.netlist.cell import Cell
from repro.timing.critical import obtain_critical_region
from repro.transforms.base import TimingProbe, Transform, TransformResult


class PinSwapping(Transform):
    """Match arrival order to pin speed on critical cells."""

    name = "pin_swapping"

    def __init__(self, max_cells: int = 200,
                 slack_margin_fraction: float = 0.08) -> None:
        self.max_cells = max_cells
        self.slack_margin_fraction = slack_margin_fraction

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        region = obtain_critical_region(
            design.timing,
            slack_margin=self.slack_margin_fraction
            * design.constraints.cycle_time)
        for cell in region.cells[:self.max_cells]:
            if cell.is_port or cell.is_sequential:
                continue
            groups = cell.gate_type.swap_groups()
            if not groups:
                continue
            if self._optimize_cell(design, cell):
                result.accepted += 1
            else:
                result.rejected += 1
        return result

    # -- internals ------------------------------------------------------------

    def _optimize_cell(self, design: Design, cell: Cell) -> bool:
        """Apply the arrival-vs-speed matching permutation, keep if better."""
        swaps = self._desired_swaps(design, cell)
        if not swaps:
            return False
        probe = TimingProbe(design)
        for a, b in swaps:
            ops.swap_pins(design.netlist, cell, a, b)
        if probe.improved():
            return True
        for a, b in reversed(swaps):
            ops.swap_pins(design.netlist, cell, a, b)
        return False

    def _desired_swaps(self, design: Design,
                       cell: Cell) -> List[Tuple[str, str]]:
        """Pairwise swaps realising: latest arrival -> fastest pin."""
        swaps: List[Tuple[str, str]] = []
        for group in cell.gate_type.swap_groups().values():
            names = [spec.name for spec in group]
            arrivals = {n: design.timing.arrival(cell.pin(n))
                        for n in names}
            # target assignment: sort nets by arrival (latest first)
            # onto pins by delay_factor (fastest first)
            by_speed = sorted(names,
                              key=lambda n: cell.gate_type.pin(n).delay_factor)
            by_arrival = sorted(names, key=lambda n: -arrivals[n])
            # desired: pin by_speed[i] carries signal now on by_arrival[i]
            current = {n: n for n in names}  # pin -> pin whose net it has
            for target_pin, source_pin in zip(by_speed, by_arrival):
                holder = next(p for p, h in current.items()
                              if h == source_pin)
                if holder != target_pin:
                    swaps.append((holder, target_pin))
                    current[holder], current[target_pin] = \
                        current[target_pin], current[holder]
        return swaps
