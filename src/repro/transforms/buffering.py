"""Buffer insertion, placement-aware.

Two patterns from the electrical-correction repertoire:

* **shielding** — on a net with one late sink and off-path load, a
  buffer takes over the non-critical sinks so the driver sees less
  capacitance on the critical arc;
* **repeating** — a long two-point wire gets a repeater at its
  midpoint, halving the quadratic RC term.

Like cloning, the transform chooses positions from the placement image
and may invoke circuit relocation for space ("let its choice ... be
driven by how much space is available").
"""

from __future__ import annotations

from typing import Sequence

from repro.design import Design
from repro.geometry import Point
from repro.netlist import ops
from repro.netlist.net import Net
from repro.placement.relocation import CircuitRelocation
from repro.timing.critical import obtain_critical_region
from repro.transforms.base import TimingProbe, Transform, TransformResult


class BufferInsertion(Transform):
    """Insert shield/repeater buffers on critical nets."""

    name = "buffer_insertion"

    def __init__(self, max_nets: int = 40, buffer_x: float = 4.0,
                 slack_margin_fraction: float = 0.08,
                 relocate_for_space: bool = True) -> None:
        self.max_nets = max_nets
        self.buffer_x = buffer_x
        self.slack_margin_fraction = slack_margin_fraction
        self.relocate_for_space = relocate_for_space

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        region = obtain_critical_region(
            design.timing,
            slack_margin=self.slack_margin_fraction
            * design.constraints.cycle_time)
        protect = region.cell_names()
        nets = sorted(
            (n for n in region.nets if not n.is_clock and not n.is_scan),
            key=lambda n: design.timing.net_slack(n))
        for net in nets[:self.max_nets]:
            if (self._try_isolate(design, net, protect)
                    or self._try_shield(design, net, protect)
                    or self._try_repeater(design, net, protect)):
                result.accepted += 1
            else:
                result.rejected += 1
        return result

    # -- critical-sink isolation ---------------------------------------

    def _try_isolate(self, design: Design, net: Net,
                     protect: set) -> bool:
        """Give a distant critical sink its own buffered connection.

        On a multi-sink net whose most critical sink is far from the
        driver, the Steiner detour through the other sinks dominates
        the Elmore delay; a dedicated buffer at the midpoint turns the
        critical arc into a short point-to-point hop.
        """
        driver = net.driver()
        sinks = [p for p in net.sinks() if p.position is not None]
        if driver is None or driver.position is None or len(sinks) < 2:
            return False
        critical = min(sinks, key=lambda p: design.timing.slack(p))
        dist = driver.position.manhattan_to(critical.position)
        if not design.parasitics.is_long(dist):
            return False
        mid = Point((driver.position.x + critical.position.x) / 2.0,
                    (driver.position.y + critical.position.y) / 2.0)
        return self._insert(design, net, [critical], mid, protect)

    # -- shielding --------------------------------------------------------

    def _try_shield(self, design: Design, net: Net, protect: set) -> bool:
        sinks = [p for p in net.sinks() if p.position is not None]
        if len(sinks) < 3:
            return False
        slacks = {p.full_name: design.timing.slack(p) for p in sinks}
        ordered = sorted(sinks, key=lambda p: slacks[p.full_name])
        critical = ordered[0]
        shielded = ordered[len(ordered) // 2:]
        shielded = [p for p in shielded if p is not critical]
        if not shielded:
            return False
        cx = sum(p.position.x for p in shielded) / len(shielded)
        cy = sum(p.position.y for p in shielded) / len(shielded)
        return self._insert(design, net, shielded, Point(cx, cy), protect)

    # -- repeating ---------------------------------------------------------

    def _try_repeater(self, design: Design, net: Net,
                      protect: set) -> bool:
        driver = net.driver()
        sinks = [p for p in net.sinks() if p.position is not None]
        if driver is None or driver.position is None or len(sinks) != 1:
            return False
        sink = sinks[0]
        length = driver.position.manhattan_to(sink.position)
        if not design.parasitics.is_long(length):
            return False
        mid = Point((driver.position.x + sink.position.x) / 2.0,
                    (driver.position.y + sink.position.y) / 2.0)
        return self._insert(design, net, [sink], mid, protect)

    # -- shared ---------------------------------------------------------------

    def _insert(self, design: Design, net: Net, sink_pins: Sequence,
                where: Point, protect: set) -> bool:
        where = design.die.clamp(where)
        buf_size = min(design.library.sizes("BUF"),
                       key=lambda s: abs(s.x - self.buffer_x))
        target_bin = design.grid.bin_at(where)
        probe = TimingProbe(design, margin=1.0)
        reloc = None
        if not target_bin.can_fit(buf_size.area):
            if not self.relocate_for_space:
                return False
            reloc = CircuitRelocation(design)
            if not reloc.make_space(target_bin, buf_size.area,
                                    protect=protect):
                reloc.undo()
                return False
        buf = ops.insert_buffer(design.netlist, design.library, net,
                                list(sink_pins), position=where,
                                buffer_x=self.buffer_x)
        buf.gain = design.timing.default_gain
        if probe.improved():
            return True
        ops.remove_buffer(design.netlist, buf)
        if reloc is not None:
            reloc.undo()
        return False
