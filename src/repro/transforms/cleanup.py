"""Redundancy cleanup: remove buffers and clones that stopped paying.

Electrical corrections accepted at coarse placement may become
unnecessary once the placement refines (their wire detour shrank, or a
later move fixed the path another way).  This transform walks the
inserted buffers and clones and removes any whose removal does not
degrade timing — area recovery for the *netlist structure*, the dual
of downsizing.
"""

from __future__ import annotations


from repro.design import Design
from repro.netlist import ops
from repro.netlist.cell import Cell
from repro.transforms.base import TimingProbe, Transform, TransformResult


class RedundancyCleanup(Transform):
    """Drop no-longer-useful buffers and clones."""

    name = "redundancy_cleanup"

    def __init__(self, margin: float = 0.0) -> None:
        self.margin = margin

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        removed_area = 0.0
        for cell in list(design.netlist.cells()):
            if design.netlist._cells.get(cell.name) is not cell:
                continue  # removed as a side effect earlier this pass
            if cell.type_name == "BUF" and self._is_inserted_buffer(cell):
                area = cell.area
                if self._try_remove_buffer(design, cell):
                    result.accepted += 1
                    removed_area += area
                else:
                    result.rejected += 1
            elif "_cln" in cell.name:
                area = cell.area
                if self._try_remove_clone(design, cell):
                    result.accepted += 1
                    removed_area += area
                else:
                    result.rejected += 1
        result.detail["area_removed"] = removed_area
        return result

    @staticmethod
    def _is_inserted_buffer(cell: Cell) -> bool:
        # transform-inserted buffers carry generated names
        return "_buf" in cell.name or "_bufd" in cell.name

    def _try_remove_buffer(self, design: Design, buf: Cell) -> bool:
        a_net = buf.pin("A").net
        z_net = buf.output_pin().net
        if a_net is None or z_net is None:
            return False
        probe = TimingProbe(design)
        sinks = list(z_net.sinks())
        position = buf.position
        ops.remove_buffer(design.netlist, buf)
        if probe.not_degraded(tolerance=self.margin + 1e-9):
            return True
        # resurrect it exactly as it was
        new = ops.insert_buffer(design.netlist, design.library, a_net,
                                [p for p in sinks if p.net is a_net],
                                position=position, buffer_x=buf.size.x)
        design.netlist.resize_cell(new, buf.size)
        return False

    def _try_remove_clone(self, design: Design, clone: Cell) -> bool:
        out = clone.output_pin()
        if out.net is None:
            return False
        original = self._find_original(design, clone)
        if original is None:
            return False
        probe = TimingProbe(design)
        moved_sinks = list(out.net.sinks())
        position = clone.position
        ops.unclone_cell(design.netlist, clone, original)
        if probe.not_degraded(tolerance=self.margin + 1e-9):
            return True
        new = ops.clone_cell(design.netlist, original,
                             [p for p in moved_sinks], position=position)
        design.netlist.resize_cell(new, clone.size)
        return False

    @staticmethod
    def _find_original(design: Design, clone: Cell) -> Cell:
        """The cell this clone was copied from (same inputs + type)."""
        base_name = clone.name.split("_cln")[0]
        if design.netlist.has_cell(base_name):
            candidate = design.netlist.cell(base_name)
            if (candidate.type_name == clone.type_name
                    and candidate.output_pin().net is not None):
                return candidate
        return None
