"""Synthesis + placement transforms (sections 4.2 - 4.6).

Every transform follows the paper's contract: it queries the
incremental analyzers, makes a tentative design change, and the change
is kept only if the evaluator sees an improvement — "direct feedback
from the analyzer(s) is used in the synthesis optimizations".
"""

from repro.transforms.base import Transform, TransformResult, TimingProbe
from repro.transforms.netweight import LogicalEffortNetWeight, WeightMode
from repro.transforms.sizing import GateSizing
from repro.transforms.migration import CircuitMigration
from repro.transforms.cloning import Cloning
from repro.transforms.buffering import BufferInsertion
from repro.transforms.pinswap import PinSwapping
from repro.transforms.clock_scan import ClockScanOptimizer
from repro.transforms.cleanup import RedundancyCleanup
from repro.transforms.congestion import CongestionRelief
from repro.transforms.remap import LocalRemap
from repro.transforms.power import PowerRecovery
from repro.transforms.holdfix import HoldFix

__all__ = [
    "RedundancyCleanup",
    "CongestionRelief",
    "LocalRemap",
    "PowerRecovery",
    "HoldFix",
    "Transform",
    "TransformResult",
    "TimingProbe",
    "LogicalEffortNetWeight",
    "WeightMode",
    "GateSizing",
    "CircuitMigration",
    "Cloning",
    "BufferInsertion",
    "PinSwapping",
    "ClockScanOptimizer",
]
