"""Gate cloning with placement awareness (sections 4.6 / 5).

The clone transform duplicates a critical driver to split its fanout.
Being placement-aware it (a) splits the sinks geometrically, (b) puts
the clone at the centroid of the sinks it takes over, and (c) when the
target bin is full, calls circuit relocation to create space instead of
giving up — the paper's example of a combined netlist/placement
transform.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.design import Design
from repro.geometry import Point
from repro.netlist import ops
from repro.netlist.cell import Pin
from repro.netlist.net import Net
from repro.placement.relocation import CircuitRelocation
from repro.timing.critical import obtain_critical_region
from repro.transforms.base import TimingProbe, Transform, TransformResult


class Cloning(Transform):
    """Duplicate critical drivers to distribute load."""

    name = "cloning"

    def __init__(self, fanout_threshold: int = 4, max_nets: int = 40,
                 slack_margin_fraction: float = 0.08,
                 relocate_for_space: bool = True) -> None:
        self.fanout_threshold = fanout_threshold
        self.max_nets = max_nets
        self.slack_margin_fraction = slack_margin_fraction
        self.relocate_for_space = relocate_for_space

    def run(self, design: Design) -> TransformResult:
        result = TransformResult(self.name)
        region = obtain_critical_region(
            design.timing,
            slack_margin=self.slack_margin_fraction
            * design.constraints.cycle_time)
        protect = region.cell_names()
        nets = sorted(
            (n for n in region.nets
             if not n.is_clock and not n.is_scan
             and len(n.sinks()) >= self.fanout_threshold),
            key=lambda n: design.timing.net_slack(n))
        for net in nets[:self.max_nets]:
            if self._try_clone(design, net, protect):
                result.accepted += 1
            else:
                result.rejected += 1
        return result

    # -- internals ------------------------------------------------------------

    def _try_clone(self, design: Design, net: Net,
                   protect: set) -> bool:
        driver = net.driver()
        if driver is None or driver.cell.is_port:
            return False
        cell = driver.cell
        if not design.library.has_type(cell.type_name):
            return False
        split = self._split_sinks(net)
        if split is None:
            return False
        keep, move, centroid = split
        centroid = design.die.clamp(centroid)
        target_bin = design.grid.bin_at(centroid)
        probe = TimingProbe(design, margin=1.0)
        reloc = None
        if not target_bin.can_fit(cell.area):
            if not self.relocate_for_space:
                return False
            reloc = CircuitRelocation(design)
            if not reloc.make_space(target_bin, cell.area,
                                    protect=protect):
                reloc.undo()
                return False
        clone = ops.clone_cell(design.netlist, cell, move,
                               position=centroid)
        if probe.improved():
            return True
        ops.unclone_cell(design.netlist, clone, cell)
        if reloc is not None:
            reloc.undo()
        return False

    def _split_sinks(self, net: Net
                     ) -> Optional[Tuple[List[Pin], List[Pin], Point]]:
        """Split sinks geometrically about the driver.

        The half farther from the driver goes to the clone; returns
        (kept sinks, moved sinks, clone centroid).
        """
        driver = net.driver()
        placed = [p for p in net.sinks() if p.position is not None]
        if len(placed) < 2 or driver is None or driver.position is None:
            return None
        dp = driver.position
        ordered = sorted(placed,
                         key=lambda p: p.position.manhattan_to(dp))
        half = len(ordered) // 2
        keep, move = ordered[:half], ordered[half:]
        if not move:
            return None
        cx = sum(p.position.x for p in move) / len(move)
        cy = sum(p.position.y for p in move) / len(move)
        return keep, move, Point(cx, cy)
