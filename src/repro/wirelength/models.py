"""Net electrical models: lumped capacitance and distributed RC.

For short wires an Elmore [25] model with the wire treated as a lumped
capacitance is used; for longer wires, where the RC component is
significant, the distributed Elmore delay over the Steiner topology is
computed instead (the paper picks "an appropriate delay model" [19, 5]
for these).  ``WireModel.analyze`` is registered as the net-delay
calculator of the incremental timing engine.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.geometry import Point, manhattan
from repro.library.parasitics import WireParasitics
from repro.netlist.net import Net
from repro.wirelength.cache import SteinerCache
from repro.wirelength.steiner import SteinerTree


@dataclass
class NetElectrical:
    """The electrical view of one net.

    ``total_cap`` is the load seen by the driver (wire + sink pins, in
    fF); ``sink_wire_delay`` maps sink pin full names to the wire delay
    from driver to that sink (ps).
    """

    total_cap: float
    wire_length: float
    sink_wire_delay: Dict[str, float] = field(default_factory=dict)
    model: str = "lumped"

    def delay_to(self, pin_full_name: str) -> float:
        return self.sink_wire_delay.get(pin_full_name, 0.0)


class WireModel:
    """Computes ``NetElectrical`` for nets using cached Steiner trees.

    Clock nets are routed on wide upper-layer metal in practice, so
    they get their own (much lower resistance) parasitics.
    """

    def __init__(self, cache: SteinerCache,
                 parasitics: Optional[WireParasitics] = None,
                 clock_parasitics: Optional[WireParasitics] = None) -> None:
        self.cache = cache
        self.parasitics = parasitics or WireParasitics()
        if clock_parasitics is None:
            clock_parasitics = WireParasitics(
                cap_per_track=self.parasitics.cap_per_track,
                res_per_track=self.parasitics.res_per_track / 5.0,
                rc_threshold=self.parasitics.rc_threshold * 2.0,
            )
        self.clock_parasitics = clock_parasitics

    def parasitics_for(self, net: Net) -> WireParasitics:
        return self.clock_parasitics if net.is_clock else self.parasitics

    def analyze(self, net: Net) -> NetElectrical:
        """Electrical view of ``net`` under the current placement."""
        parasitics = self.parasitics_for(net)
        length = self.cache.length(net)
        pin_cap = net.pin_load()
        wire_cap = parasitics.wire_cap(length)
        total = pin_cap + wire_cap

        driver = net.driver()
        if (driver is None or driver.position is None
                or not parasitics.is_long(length)):
            # Short wire (or nothing to root the RC tree at): lumped
            # capacitance, no per-sink wire delay.
            return NetElectrical(total, length, model="lumped")

        tree = self.cache.tree(net)
        delays = self._elmore_delays(net, tree, driver.position,
                                     parasitics)
        return NetElectrical(total, length, sink_wire_delay=delays,
                             model="elmore")

    # -- Elmore over the Steiner topology --------------------------------

    def _elmore_delays(self, net: Net, tree: SteinerTree,
                       root_pos: Point,
                       parasitics: Optional[WireParasitics] = None,
                       ) -> Dict[str, float]:
        """Per-sink Elmore wire delay (ps) from the driver."""
        if parasitics is None:
            parasitics = self.parasitics
        if not tree.points:
            return {}
        index_of: Dict[Point, int] = {
            p: i for i, p in enumerate(tree.points)
        }
        root = index_of.get(root_pos)
        if root is None:
            return {}

        # Sink pin caps attach at their tree node.
        node_cap = [0.0] * len(tree.points)
        sink_node: Dict[str, int] = {}
        for pin in net.sinks():
            if pin.position is None:
                continue
            node = index_of.get(pin.position)
            if node is None:
                continue
            node_cap[node] += pin.input_cap()
            sink_node[pin.full_name] = node

        adj = tree.adjacency()
        # Root the tree: BFS order, parent pointers.
        parent = [-1] * len(tree.points)
        order: List[int] = []
        seen = {root}
        queue = deque([root])
        while queue:
            u = queue.popleft()
            order.append(u)
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    parent[v] = u
                    queue.append(v)

        # Downstream capacitance below each node (its pin caps + its
        # subtree's edge and pin caps).
        below = list(node_cap)
        for u in reversed(order):
            p = parent[u]
            if p >= 0:
                edge_len = manhattan(tree.points[p], tree.points[u])
                below[p] += below[u] + parasitics.wire_cap(edge_len)

        # Elmore: delay(v) = delay(parent) + R_e * (C_e/2 + below(v)).
        delay = [0.0] * len(tree.points)
        for u in order:
            p = parent[u]
            if p >= 0:
                edge_len = manhattan(tree.points[p], tree.points[u])
                r_e = parasitics.wire_res(edge_len)
                c_e = parasitics.wire_cap(edge_len)
                delay[u] = delay[p] + r_e * (c_e / 2.0 + below[u])

        return {name: delay[node] for name, node in sink_node.items()}
