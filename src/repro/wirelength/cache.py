"""Incremental Steiner tree cache.

"The Steiner tree gets dynamically re-calculated when gate positions
change as well as when new cells are created or old ones deleted"
(section 3).  The cache subscribes to netlist events and invalidates
only the nets touched by a change; trees are rebuilt lazily on the next
query.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.netlist.cell import Cell, Pin
from repro.netlist.net import Net
from repro.netlist.netlist import Netlist, NetlistListener
from repro.wirelength.rent import RentEstimator
from repro.wirelength.steiner import SteinerTree, build_steiner


class SteinerCache(NetlistListener):
    """Lazily maintained Steiner trees for every net of a netlist.

    ``bin_side`` plus a ``RentEstimator`` adds an intra-bin correction
    for pins whose positions coincide (they share a bin early in the
    flow); set ``bin_side`` to 0 to disable.
    """

    def __init__(self, netlist: Netlist,
                 rent: Optional[RentEstimator] = None) -> None:
        self.netlist = netlist
        self.rent = rent
        self.bin_side = 0.0
        self._trees: Dict[str, SteinerTree] = {}
        self._hits = 0
        self._misses = 0
        netlist.add_listener(self)

    # -- queries -------------------------------------------------------

    def tree(self, net: Net) -> SteinerTree:
        """The Steiner tree over the net's placed pins (cached)."""
        cached = self._trees.get(net.name)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        tree = build_steiner(net.placed_points())
        self._trees[net.name] = tree
        return tree

    def length(self, net: Net) -> float:
        """Estimated wire length of the net (tracks).

        Steiner length over distinct pin positions, plus the Rent-rule
        intra-bin correction for co-located pins when configured.
        """
        tree = self.tree(net)
        total = tree.length
        if self.rent is not None and self.bin_side > 0:
            colocated = len(net.placed_points()) - tree.num_terminals
            if colocated > 0:
                total += self.rent.intrabin_length(
                    self.bin_side, colocated + 1)
        return total

    def total_length(self) -> float:
        """Sum of estimated lengths over all nets."""
        return sum(self.length(n) for n in self.netlist.nets())

    @property
    def stats(self) -> Dict[str, int]:
        return {"hits": self._hits, "misses": self._misses,
                "cached": len(self._trees)}

    def set_bin_side(self, side: float) -> None:
        """Update the intra-bin Rent correction scale (on refinement).

        Invalidate everything: the correction applies per-net.
        """
        if side != self.bin_side:
            self.bin_side = side

    # -- invalidation (netlist events) ----------------------------------

    def invalidate_net(self, net: Net) -> None:
        self._trees.pop(net.name, None)

    def invalidate_all(self) -> None:
        self._trees.clear()

    def _invalidate_cell_nets(self, cell: Cell) -> None:
        for pin in cell.pins():
            if pin.net is not None:
                self._trees.pop(pin.net.name, None)

    def on_cell_moved(self, cell: Cell, old_position) -> None:
        self._invalidate_cell_nets(cell)

    def on_connect(self, pin: Pin, net: Net) -> None:
        self._trees.pop(net.name, None)

    def on_disconnect(self, pin: Pin, net: Net) -> None:
        self._trees.pop(net.name, None)

    def on_net_removed(self, net: Net) -> None:
        self._trees.pop(net.name, None)
