"""Rent-rule wirelength estimation (Donath [6, 7]).

Early in the flow many pins of a net share one bin (their positions
coincide at the bin granularity), so the Steiner length inside the bin
is zero.  The paper notes one may use approximate wire lengths from the
Rent rule for wires within bins; ``RentEstimator`` supplies that
correction: the expected intra-bin wire length given the bin dimension
and the number of co-located pins.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RentEstimator:
    """Donath-style average-length model.

    For a region of side ``w`` holding random logic with Rent exponent
    ``p``, the average point-to-point net length is ``alpha * w`` with
    ``alpha`` depending on ``p`` (Donath 1981 gives ~0.3-0.5 for
    0.5 <= p <= 0.75).  A net with ``k`` co-located pins contributes
    ``(k - 1)`` such segments.
    """

    rent_exponent: float = 0.6
    alpha_at_half: float = 0.3
    alpha_slope: float = 0.8

    @property
    def alpha(self) -> float:
        """Average segment length as a fraction of the region side."""
        return self.alpha_at_half + self.alpha_slope * (
            self.rent_exponent - 0.5)

    def intrabin_length(self, bin_side: float, pins_in_bin: int) -> float:
        """Expected wire length for ``pins_in_bin`` pins sharing a bin."""
        if pins_in_bin <= 1:
            return 0.0
        return self.alpha * bin_side * (pins_in_bin - 1)

    def average_net_length(self, region_side: float) -> float:
        """Expected two-pin net length in a region of the given side."""
        return self.alpha * region_side

    def total_length_estimate(self, num_cells: int, avg_degree: float,
                              region_side: float) -> float:
        """A-priori total wirelength estimate for a region of logic."""
        num_nets = num_cells * avg_degree / 2.0
        return num_nets * self.average_net_length(region_side)
