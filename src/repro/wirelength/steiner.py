"""Rectilinear Steiner tree construction.

Three estimators of increasing cost:

* ``prim_rmst`` — rectilinear minimum spanning tree (no Steiner
  points); a safe overestimate with a real topology, used for
  high-degree nets.
* median-trunk construction — optimal for 3 terminals.
* ``iterated_one_steiner`` — greedy 1-Steiner insertion over the Hanan
  grid; near-optimal for the small/medium nets that dominate timing.

``build_steiner`` dispatches on net degree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.geometry import Point, manhattan
from repro import _profile as profile

#: Degree above which we fall back to the plain RMST.
_ONE_STEINER_LIMIT = 12


@dataclass
class SteinerTree:
    """A rectilinear tree over ``points``; edges index into ``points``.

    Terminals always come first in ``points`` (in the order given to
    the builder); Steiner points follow.
    """

    points: List[Point]
    edges: List[Tuple[int, int]]
    num_terminals: int

    @property
    def length(self) -> float:
        """Total Manhattan length of the tree (tracks)."""
        return sum(
            manhattan(self.points[i], self.points[j]) for i, j in self.edges
        )

    def adjacency(self) -> Dict[int, List[int]]:
        adj: Dict[int, List[int]] = {i: [] for i in range(len(self.points))}
        for i, j in self.edges:
            adj[i].append(j)
            adj[j].append(i)
        return adj

    def validate(self) -> None:
        """Raise if the edge set is not a spanning tree."""
        n = len(self.points)
        if n == 0:
            return
        if len(self.edges) != n - 1:
            raise AssertionError(
                "tree over %d points has %d edges" % (n, len(self.edges)))
        seen = {0}
        frontier = [0]
        adj = self.adjacency()
        while frontier:
            u = frontier.pop()
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        if len(seen) != n:
            raise AssertionError("tree is disconnected")


def prim_rmst(points: Sequence[Point]) -> List[Tuple[int, int]]:
    """Edges of a minimum spanning tree under Manhattan distance.

    O(n^2) Prim — fine for net degrees seen in standard-cell designs.
    """
    n = len(points)
    if n <= 1:
        return []
    in_tree = [False] * n
    best_dist = [float("inf")] * n
    best_edge = [0] * n
    in_tree[0] = True
    for v in range(1, n):
        best_dist[v] = manhattan(points[0], points[v])
    edges: List[Tuple[int, int]] = []
    for _ in range(n - 1):
        u = -1
        u_dist = float("inf")
        for v in range(n):
            if not in_tree[v] and best_dist[v] < u_dist:
                u, u_dist = v, best_dist[v]
        in_tree[u] = True
        edges.append((best_edge[u], u))
        for v in range(n):
            if not in_tree[v]:
                d = manhattan(points[u], points[v])
                if d < best_dist[v]:
                    best_dist[v] = d
                    best_edge[v] = u
    return edges


def _mst_length(points: Sequence[Point]) -> float:
    return sum(
        manhattan(points[i], points[j]) for i, j in prim_rmst(points)
    )


def hanan_points(points: Sequence[Point]) -> List[Point]:
    """The Hanan grid of the terminals, minus the terminals themselves."""
    xs = sorted({p.x for p in points})
    ys = sorted({p.y for p in points})
    terminals = set(points)
    return [
        Point(x, y) for x in xs for y in ys if Point(x, y) not in terminals
    ]


def iterated_one_steiner(points: Sequence[Point],
                         max_added: int = 0) -> SteinerTree:
    """Greedy 1-Steiner: repeatedly add the best Hanan candidate.

    Each round adds the candidate Steiner point that shrinks the MST
    most; stops when no candidate helps (or ``max_added`` reached,
    default = number of terminals).
    """
    terminals = list(points)
    if max_added <= 0:
        max_added = len(terminals)
    current: List[Point] = list(terminals)
    base = _mst_length(current)
    added = 0
    while added < max_added:
        candidates = hanan_points(current)
        best_gain = 1e-9
        best_point = None
        for cand in candidates:
            trial = _mst_length(current + [cand])
            gain = base - trial
            if gain > best_gain:
                best_gain = gain
                best_point = cand
        if best_point is None:
            break
        current.append(best_point)
        base -= best_gain
        added += 1
    # Drop degree<=2 Steiner points? They are harmless for length; keep
    # the tree simple by pruning degree-1 Steiner points only.
    edges = prim_rmst(current)
    tree = SteinerTree(current, edges, num_terminals=len(terminals))
    return _prune_leaf_steiner(tree)


def _prune_leaf_steiner(tree: SteinerTree) -> SteinerTree:
    """Remove Steiner points that ended up as tree leaves."""
    while True:
        degree = [0] * len(tree.points)
        for i, j in tree.edges:
            degree[i] += 1
            degree[j] += 1
        victims = [
            i for i in range(tree.num_terminals, len(tree.points))
            if degree[i] <= 1
        ]
        if not victims:
            return tree
        keep = [i for i in range(len(tree.points)) if i not in set(victims)]
        remap = {old: new for new, old in enumerate(keep)}
        points = [tree.points[i] for i in keep]
        edges = [
            (remap[i], remap[j]) for i, j in tree.edges
            if i in remap and j in remap
        ]
        tree = SteinerTree(points, edges, tree.num_terminals)


def _median_trunk(points: Sequence[Point]) -> SteinerTree:
    """Optimal RSMT for exactly three terminals: the median point."""
    xs = sorted(p.x for p in points)
    ys = sorted(p.y for p in points)
    median = Point(xs[1], ys[1])
    pts = list(points)
    if median in pts:
        idx = pts.index(median)
        edges = [(idx, i) for i in range(3) if i != idx]
        return SteinerTree(pts, edges, num_terminals=3)
    pts.append(median)
    return SteinerTree(pts, [(3, 0), (3, 1), (3, 2)], num_terminals=3)


def build_steiner(points: Sequence[Point]) -> SteinerTree:
    """Construct a rectilinear Steiner tree over (deduplicated) points.

    Dispatch: <=2 terminals trivially, 3 via the median construction
    (optimal), up to ``_ONE_STEINER_LIMIT`` via iterated 1-Steiner,
    beyond that a plain RMST.
    """
    _p0 = profile.begin()
    unique: List[Point] = []
    seen = set()
    for p in points:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    n = len(unique)
    if n <= 2:
        edges = [(0, 1)] if n == 2 else []
        tree = SteinerTree(unique, edges, num_terminals=n)
    elif n == 3:
        tree = _median_trunk(unique)
    elif n <= _ONE_STEINER_LIMIT:
        tree = iterated_one_steiner(unique)
    else:
        tree = SteinerTree(unique, prim_rmst(unique), num_terminals=n)
    profile.end("steiner.build", _p0)
    return tree
