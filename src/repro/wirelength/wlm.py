"""Statistical wire load models (the synthesis-side estimate SPR uses).

"Synthesis typically operates on wire load models, and may predict the
critical paths incorrectly" (section 4.3).  A ``WireLoadModel``
estimates a net's capacitance from its fanout alone — no placement
knowledge, no per-sink wire delay — which is exactly the blind spot
the TPS flow removes.
"""

from __future__ import annotations

from typing import Optional

from repro.library.parasitics import WireParasitics
from repro.netlist.net import Net
from repro.wirelength.cache import SteinerCache
from repro.wirelength.models import NetElectrical, WireModel


class WireLoadModel(WireModel):
    """Fanout-based lumped wire capacitance, placement-blind."""

    def __init__(self, cache: SteinerCache,
                 parasitics: Optional[WireParasitics] = None,
                 base_cap: float = 2.0,
                 cap_per_fanout: float = 6.0) -> None:
        super().__init__(cache, parasitics)
        self.base_cap = base_cap
        self.cap_per_fanout = cap_per_fanout

    def analyze(self, net: Net) -> NetElectrical:
        fanout = len(net.sinks())
        wire_cap = (self.base_cap + self.cap_per_fanout * fanout
                    if fanout > 0 else 0.0)
        return NetElectrical(net.pin_load() + wire_cap, 0.0,
                             model="wlm")
