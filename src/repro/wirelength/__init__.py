"""Wire length calculation (section 3 of the paper).

Steiner trees are calculated from pin positions (exact or bin-derived)
and dynamically re-calculated when gate positions change or cells are
created/deleted.  Wire loads are lumped capacitances proportional to
Steiner length for short nets; longer nets get a distributed RC
(Elmore) model.  The calculators register with the incremental timing
engine as net-delay calculators.
"""

from repro.wirelength.steiner import (
    SteinerTree,
    build_steiner,
    hanan_points,
    iterated_one_steiner,
    prim_rmst,
)
from repro.wirelength.cache import SteinerCache
from repro.wirelength.rent import RentEstimator
from repro.wirelength.models import NetElectrical, WireModel

__all__ = [
    "SteinerTree",
    "build_steiner",
    "hanan_points",
    "iterated_one_steiner",
    "prim_rmst",
    "SteinerCache",
    "RentEstimator",
    "NetElectrical",
    "WireModel",
]
