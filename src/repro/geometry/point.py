"""Immutable 2-D points with Manhattan-distance helpers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Point:
    """A point in the placement plane, in track units."""

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, factor: float) -> "Point":
        """Return this point scaled about the origin."""
        return Point(self.x * factor, self.y * factor)

    def manhattan_to(self, other: "Point") -> float:
        """Manhattan (L1) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_to(self, other: "Point") -> float:
        """Euclidean (L2) distance to ``other``."""
        return ((self.x - other.x) ** 2 + (self.y - other.y) ** 2) ** 0.5

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> tuple:
        return (self.x, self.y)


def manhattan(a: Point, b: Point) -> float:
    """Manhattan distance between two points."""
    return a.manhattan_to(b)
