"""Planar geometry primitives used throughout TPS.

All coordinates are in routing *tracks* (a track is one wiring pitch);
areas are in track^2.  Distances are Manhattan unless stated otherwise.
"""

from repro.geometry.point import Point, manhattan
from repro.geometry.rect import Rect

__all__ = ["Point", "Rect", "manhattan"]
