"""Axis-aligned rectangles (placement regions, bins, blockages)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.geometry.point import Point


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned rectangle ``[xlo, xhi] x [ylo, yhi]``."""

    xlo: float
    ylo: float
    xhi: float
    yhi: float

    def __post_init__(self) -> None:
        if self.xhi < self.xlo or self.yhi < self.ylo:
            raise ValueError(
                "degenerate rect: (%r, %r, %r, %r)"
                % (self.xlo, self.ylo, self.xhi, self.yhi)
            )

    @property
    def width(self) -> float:
        return self.xhi - self.xlo

    @property
    def height(self) -> float:
        return self.yhi - self.ylo

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)

    def contains(self, point: Point) -> bool:
        """True if ``point`` lies inside or on the boundary."""
        return (
            self.xlo <= point.x <= self.xhi and self.ylo <= point.y <= self.yhi
        )

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside this rectangle."""
        return (
            self.xlo <= other.xlo
            and self.ylo <= other.ylo
            and self.xhi >= other.xhi
            and self.yhi >= other.yhi
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles share any area or boundary."""
        return not (
            self.xhi < other.xlo
            or other.xhi < self.xlo
            or self.yhi < other.ylo
            or other.yhi < self.ylo
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.xlo, other.xlo),
            max(self.ylo, other.ylo),
            min(self.xhi, other.xhi),
            min(self.yhi, other.yhi),
        )

    def union(self, other: "Rect") -> "Rect":
        """The bounding box of both rectangles."""
        return Rect(
            min(self.xlo, other.xlo),
            min(self.ylo, other.ylo),
            max(self.xhi, other.xhi),
            max(self.yhi, other.yhi),
        )

    def expanded(self, margin: float) -> "Rect":
        """Return a copy grown by ``margin`` on every side."""
        return Rect(
            self.xlo - margin,
            self.ylo - margin,
            self.xhi + margin,
            self.yhi + margin,
        )

    def clamp(self, point: Point) -> Point:
        """The closest point inside the rectangle to ``point``."""
        return Point(
            min(max(point.x, self.xlo), self.xhi),
            min(max(point.y, self.ylo), self.yhi),
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.xlo + dx, self.ylo + dy, self.xhi + dx, self.yhi + dy)

    @staticmethod
    def bounding(points: Iterable[Point]) -> "Rect":
        """Bounding box of a non-empty collection of points."""
        pts = list(points)
        if not pts:
            raise ValueError("bounding box of empty point set")
        return Rect(
            min(p.x for p in pts),
            min(p.y for p in pts),
            max(p.x for p in pts),
            max(p.y for p in pts),
        )

    def half_perimeter(self) -> float:
        """Half-perimeter (the HPWL contribution of this bbox)."""
        return self.width + self.height
