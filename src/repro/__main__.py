"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``tps``      — run the TPS scenario on a Des preset or a Verilog file
* ``spr``      — run the SPR baseline flow
* ``compare``  — run both flows on the same design (one Table 1 row)
* ``synth``    — technology-map an ASCII AIGER (.aag) file to Verilog
* ``info``     — print design statistics without running a flow
* ``trace-export`` — convert a run's ``trace.jsonl`` span stream to
  Chrome trace-event JSON (load in ``chrome://tracing`` / Perfetto)
* ``trace-report`` — roll a run's trace into the per-transform payoff
  table (invocations, wall seconds, ΔWNS/ΔTNS/Δwirelength and rates)
* ``trace-diff`` — classify drift between two runs' traces against
  configurable thresholds; exits 1 when a regression survives
* ``fleet-report`` — aggregate jobs, latency histograms and payoff
  tables across a serve state dir (the offline ``/metrics``)
* ``serve``    — long-running flow job server (worker pool, HTTP API,
  live ``/metrics``; see ``docs/operations.md``)
* ``worker``   — standalone worker agent: lease jobs from a shared
  state dir (no HTTP server required), heartbeat, run, settle — the
  unit of a multi-host fleet
* ``submit``   — submit a job to a running server, optionally waiting
  for its report
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import (
    FlowReport,
    SPRFlow,
    TPSScenario,
    build_des_design,
    default_library,
    make_design,
)
from repro.guard import FaultInjector, FaultKind, GuardConfig
from repro.netlist.verilog import read_verilog, write_placement, write_verilog
from repro.obs import CutTimeline, Tracer, TraceWriter, read_trace, write_chrome_trace
from repro.persist import (
    IO_EXIT_CODE,
    FlowPersist,
    IoFatalError,
    Journal,
    JournalError,
    PersistConfig,
    RunDir,
    RunDirError,
    SnapshotError,
    load_resume,
)
from repro.scenario.spr import SPRConfig
from repro.scenario.tps import TPSConfig
from repro.workloads.presets import DES_PRESETS


def _load_design(args, library):
    """A Design from a preset name or a structural Verilog file."""
    if args.design is None:
        raise SystemExit(
            "a design (Des1..Des5 preset or Verilog file) is required "
            "unless resuming with --run-dir DIR --resume")
    core = getattr(args, "core", "object")
    if args.design in DES_PRESETS:
        return build_des_design(args.design, library, scale=args.scale,
                                cycle_time=args.cycle, core=core)
    with open(args.design) as stream:
        netlist = read_verilog(stream, library)
    cycle = args.cycle if args.cycle else 1000.0
    design = make_design(netlist, library, cycle_time=cycle, core=core)
    if getattr(args, "sdc", None):
        from repro.timing.sdc import read_sdc
        with open(args.sdc) as stream:
            design.constraints = read_sdc(stream)
        design.timing.constraints = design.constraints
        design.timing.invalidate_all()
    return design


def _write_outputs(design, args) -> None:
    if getattr(args, "out_verilog", None):
        with open(args.out_verilog, "w") as stream:
            write_verilog(design.netlist, stream)
        print("wrote %s" % args.out_verilog)
    if getattr(args, "out_placement", None):
        with open(args.out_placement, "w") as stream:
            write_placement(design.netlist, stream)
        print("wrote %s" % args.out_placement)


def _print_report(report) -> None:
    print("%s finished in %.1f s" % (report.flow, report.cpu_seconds))
    print("  icells      %8d" % report.icells)
    print("  cell area   %8.0f track^2" % report.cell_area)
    print("  worst slack %8.1f ps (cycle %g)"
          % (report.worst_slack, report.cycle_time))
    print("  wirelength  %8.0f tracks" % report.wirelength)
    if report.cuts:
        print("  wires cut   %s" % report.cuts.row())
    print("  routable    %s" % report.routable)
    if report.health:
        print("  guard       %.2f s overhead, %d failures, "
              "%d rollbacks, %d quarantined"
              % (report.guard_seconds, report.total_failures,
                 report.total_rollbacks, len(report.quarantined)))
        for line in report.health_lines():
            print("    %s" % line)
    if report.run_dir:
        print("  run dir     %s%s"
              % (report.run_dir, " (resumed)" if report.resumed else ""))


def _tracer_setup(args, design, persist):
    """A Tracer from the --trace/--trace-file flags, or None.

    Durable runs (``--run-dir``) need no explicit tracer: the scenario
    streams spans to the run directory's ``trace.jsonl`` by itself.
    ``--trace-file`` redirects the stream to a chosen path; a bare
    ``--trace`` on a non-durable run records spans in memory only.
    """
    trace_file = getattr(args, "trace_file", None)
    if trace_file:
        resumed = persist.resumed if persist is not None else False
        return Tracer(design,
                      writer=TraceWriter(trace_file, resume=resumed))
    if persist is not None:
        return None  # scenario default: RUNDIR/trace.jsonl
    if getattr(args, "trace", False):
        return Tracer(design)
    return None


def _print_trace(args, report) -> None:
    """The --trace tail of a flow command: events, then the Figure-5
    style cut-status timeline aggregated from the run's spans."""
    if not getattr(args, "trace", False):
        return
    for line in report.trace_lines():
        print("   ", line)
    if report.spans:
        print()
        for line in report.timeline().lines():
            print("   ", line)


def _parse_io_fault(spec: str) -> dict:
    """``kind[:op[:pathsub]][@at]`` → :meth:`inject_io` kwargs.

    Examples: ``disk-full`` (first write anywhere), ``bit-flip:write``
    (first write), ``io-error:fsync:journal@3`` (the 4th fsync whose
    path mentions "journal").
    """
    fields = {"at": 0}
    if "@" in spec:
        spec, at = spec.rsplit("@", 1)
        fields["at"] = int(at)
    parts = spec.split(":")
    fields["kind"] = FaultKind(parts[0])
    if len(parts) > 1 and parts[1]:
        fields["op"] = parts[1]
    if len(parts) > 2 and parts[2]:
        fields["path_contains"] = parts[2]
    return fields


def _guard_setup(args):
    """(GuardConfig, FaultInjector) from the chaos CLI flags."""
    injector = None
    io_rate = getattr(args, "io_chaos_rate", 0.0) or 0.0
    io_faults = getattr(args, "io_fault", None) or []
    if (getattr(args, "chaos_seed", None) is not None
            or io_rate or io_faults):
        # default kinds: everything except process-kill, which only the
        # resume tests opt into explicitly
        transform_rate = (args.chaos_rate
                          if getattr(args, "chaos_seed", None)
                          is not None else 0.0)
        injector = FaultInjector(seed=args.chaos_seed or 0,
                                 rate=transform_rate,
                                 io_rate=io_rate)
        for fault in io_faults:
            injector.inject_io(**_parse_io_fault(fault))
    config = None
    if getattr(args, "guard", False) or injector is not None:
        # durable runs retry transient failures before striking
        retries = 2 if getattr(args, "run_dir", None) else 0
        config = GuardConfig(budget_seconds=args.guard_budget,
                             retries=retries)
    return config, injector


def _run_flow(scenario, injector):
    """Run a scenario with storage chaos armed; exit 5 on fatal I/O.

    A fatal storage failure (real ``ENOSPC``/``EROFS``, an exhausted
    retry budget, or an injected one) aborts the flow with
    :data:`~repro.persist.io.IO_EXIT_CODE`; the run directory is left
    at its last good milestone, so ``--resume`` continues the run
    bit-identically once the disk recovers.
    """
    if injector is not None and injector.has_io_chaos():
        injector.arm_io()
    try:
        return scenario.run()
    except IoFatalError as exc:
        print("fatal storage failure: %s" % exc, file=sys.stderr)
        print("the run directory holds the last good milestone; "
              "re-run with --resume once the disk recovers",
              file=sys.stderr)
        raise SystemExit(IO_EXIT_CODE)
    finally:
        if injector is not None:
            injector.disarm_io()


def _persist_create(args, flow, design, config, injector):
    """A FlowPersist over a freshly created run directory, or None."""
    if getattr(args, "run_dir", None) is None:
        return None
    pconfig = PersistConfig(snapshot_every=args.snapshot_every,
                            snapshot_mode=args.snapshot_mode,
                            full_every=args.full_every,
                            compact_every=args.compact_every,
                            die_at_status=args.die_at_status,
                            die_at_snapshot=args.die_at_snapshot)
    meta = {
        "flow": flow,
        "design": {"design": args.design, "scale": args.scale,
                   "cycle": args.cycle,
                   "sdc": getattr(args, "sdc", None),
                   "core": getattr(args, "core", "object")},
        "config": config.to_state(),
        # io-chaos flags are deliberately not recorded: a resumed
        # process runs against a disk presumed healthy again
        "chaos": ({"seed": args.chaos_seed, "rate": args.chaos_rate}
                  if getattr(args, "chaos_seed", None) is not None
                  else None),
        "persist": pconfig.to_state(),
    }
    rundir = RunDir.create(args.run_dir, meta)
    journal = Journal.create(rundir.journal_path)
    return FlowPersist(rundir, journal, pconfig, design)


def _cmd_resume(args, expected_flow) -> int:
    """Continue an interrupted durable run from its last snapshot."""
    if args.run_dir is None:
        print("--resume requires --run-dir DIR", file=sys.stderr)
        return 2
    library = default_library()
    try:
        run = load_resume(args.run_dir, library,
                          die_at_status=args.die_at_status,
                          die_at_snapshot=args.die_at_snapshot)
    except (RunDirError, JournalError, SnapshotError) as exc:
        print("cannot resume: %s" % exc, file=sys.stderr)
        return 1
    if run.flow != expected_flow:
        print("run dir %s holds a %s run, not %s"
              % (args.run_dir, run.flow, expected_flow), file=sys.stderr)
        return 2
    if run.truncated_lines:
        print("journal: dropped %d torn trailing line(s)"
              % run.truncated_lines)
    if run.completed:
        print("run in %s already completed; stored report:"
              % args.run_dir)
        print(json.dumps(run.rundir.read_report(), indent=2,
                         sort_keys=True))
        return 0
    if run.in_flight:
        print("in flight at previous death: %s"
              % ", ".join(run.in_flight))
    meta = run.meta
    design = run.design
    chaos = meta.get("chaos")
    injector = (FaultInjector(seed=chaos["seed"], rate=chaos["rate"])
                if chaos else None)
    tracer = _tracer_setup(args, design, run.persist)
    if run.flow == "TPS":
        scenario = TPSScenario(design,
                               config=TPSConfig.from_state(meta["config"]),
                               injector=injector, persist=run.persist,
                               resume_state=run.resume_state,
                               tracer=tracer)
    else:
        scenario = SPRFlow(design,
                           config=SPRConfig.from_state(meta["config"]),
                           injector=injector, persist=run.persist,
                           resume_state=run.resume_state, tracer=tracer)
    report = _run_flow(scenario, injector)
    _print_report(report)
    _print_trace(args, report)
    _write_outputs(design, args)
    return 0


def cmd_tps(args) -> int:
    if getattr(args, "resume", False):
        return _cmd_resume(args, "TPS")
    library = default_library()
    design = _load_design(args, library)
    guard, injector = _guard_setup(args)
    config = TPSConfig(guard=guard,
                       pin_swap_budget=args.pin_swap_budget)
    persist = _persist_create(args, "TPS", design, config, injector)
    scenario = TPSScenario(design, config=config, injector=injector,
                           persist=persist,
                           tracer=_tracer_setup(args, design, persist))
    report = _run_flow(scenario, injector)
    _print_report(report)
    if injector is not None:
        fired = injector.fired()
        print("  chaos       %d faults fired: %s"
              % (len(fired), ", ".join(str(f) for f in fired) or "-"))
    _print_trace(args, report)
    _write_outputs(design, args)
    return 0


def cmd_spr(args) -> int:
    if getattr(args, "resume", False):
        return _cmd_resume(args, "SPR")
    library = default_library()
    design = _load_design(args, library)
    guard, injector = _guard_setup(args)
    config = SPRConfig(guard=guard)
    persist = _persist_create(args, "SPR", design, config, injector)
    flow = SPRFlow(design, config=config, injector=injector,
                   persist=persist,
                   tracer=_tracer_setup(args, design, persist))
    report = _run_flow(flow, injector)
    _print_report(report)
    _print_trace(args, report)
    _write_outputs(design, args)
    return 0


def cmd_compare(args) -> int:
    library = default_library()
    d_spr = _load_design(args, library)
    spr = SPRFlow(d_spr).run()
    d_tps = _load_design(args, library)
    tps = TPSScenario(d_tps).run()
    for r in (spr, tps):
        _print_report(r)
    print("cycle time improvement: %.1f%%"
          % FlowReport.cycle_time_improvement(spr, tps))
    return 0


def cmd_synth(args) -> int:
    from repro.synth import MapperOptions, synthesize
    from repro.synth.aiger import read_aag
    library = default_library()
    with open(args.aag) as stream:
        aig = read_aag(stream)
    print("read %s" % aig)
    netlist = synthesize(aig, library,
                         MapperOptions(mode=args.mode))
    print("mapped: %d cells" % len(netlist.logic_cells()))
    with open(args.out, "w") as stream:
        write_verilog(netlist, stream)
    print("wrote %s" % args.out)
    return 0


def cmd_trace_export(args) -> int:
    """Convert a span stream to Chrome trace-event JSON."""
    from repro.obs.analyze import TraceNotFound, load_trace
    try:
        records = load_trace(args.source)
    except TraceNotFound as exc:
        print("%s (the run was not traced, or the path is wrong)"
              % exc, file=sys.stderr)
        return 2
    if not records:
        print("no valid span records in %s" % args.source,
              file=sys.stderr)
        return 1
    count = write_chrome_trace(records, args.out)
    print("wrote %s: %d events from %d spans"
          % (args.out, count, len(records)))
    if args.timeline:
        for line in CutTimeline.from_records(records).lines():
            print("   ", line)
    return 0


def cmd_trace_report(args) -> int:
    """Per-transform payoff table from a run's trace."""
    from repro.obs.analyze import (
        TraceNotFound, analyze_trace, load_trace, write_report)
    try:
        records = load_trace(args.source)
    except TraceNotFound as exc:
        print("%s (the run was not traced, or the path is wrong)"
              % exc, file=sys.stderr)
        return 2
    if not records:
        print("no valid span records in %s" % args.source,
              file=sys.stderr)
        return 1
    report = analyze_trace(records)
    for line in report.table():
        print(line)
    if args.out:
        write_report(report, args.out)
        print("wrote %s" % args.out)
    return 0


def cmd_trace_diff(args) -> int:
    """Classify drift between two runs' traces; exit 1 on regression."""
    from repro.obs.analyze import TraceNotFound, load_trace
    from repro.obs.diff import DiffConfig, diff_traces
    try:
        records_a = load_trace(args.baseline)
        records_b = load_trace(args.candidate)
    except TraceNotFound as exc:
        print("%s (the run was not traced, or the path is wrong)"
              % exc, file=sys.stderr)
        return 2
    config = DiffConfig()
    for spec in args.threshold or ():
        key, _, value = spec.partition("=")
        if not hasattr(config, key) or not value:
            print("unknown threshold %r (see repro.obs.diff.DiffConfig)"
                  % spec, file=sys.stderr)
            return 2
        kind = type(getattr(config, key))
        setattr(config, key, kind(float(value)))
    diff = diff_traces(records_a, records_b, config)
    for line in diff.lines():
        print(line)
    if args.out:
        with open(args.out, "w") as stream:
            json.dump(diff.to_json(), stream, indent=2)
            stream.write("\n")
        print("wrote %s" % args.out)
    return 1 if diff.verdict == "regression" else 0


def cmd_fleet_report(args) -> int:
    """Aggregate jobs, latency and payoff across a serve state dir."""
    from repro.serve.fleet import (
        fleet_lines, fleet_report, write_fleet_report)
    if not os.path.isdir(args.state_dir):
        print("no state dir at %s" % args.state_dir, file=sys.stderr)
        return 2
    report = fleet_report(args.state_dir)
    for line in fleet_lines(report):
        print(line)
    if args.out:
        write_fleet_report(report, args.out)
        print("wrote %s" % args.out)
    return 0


def cmd_serve(args) -> int:
    """Run the long-running flow job server (see docs/operations.md)."""
    import signal

    from repro.serve import FlowServer

    server = FlowServer(args.state_dir, host=args.host, port=args.port,
                        workers=args.workers,
                        max_attempts=args.max_attempts,
                        queue_cap=args.queue_cap,
                        lease_ttl=args.lease_ttl)

    def _signalled(signum, frame):
        print("\nsignal %d: shutting down (%s)"
              % (signum, "draining" if args.drain else "interrupting"))
        import threading
        threading.Thread(target=server.shutdown,
                         kwargs={"drain": args.drain},
                         daemon=True).start()

    signal.signal(signal.SIGINT, _signalled)
    signal.signal(signal.SIGTERM, _signalled)
    server.start()
    pending = server.store.in_state("queued")
    print("repro flow server listening on %s" % server.url)
    print("  state dir   %s" % args.state_dir)
    print("  workers     %d (max %d attempts per job)"
          % (args.workers, args.max_attempts))
    if pending:
        print("  recovered   %d pending job(s) from the journal: %s"
              % (len(pending), ", ".join(j.job_id for j in pending)))
    print("  endpoints   POST /jobs · GET /jobs[/<id>[/result]] · "
          "POST /jobs/<id>/cancel · GET /metrics · POST /drain · "
          "POST /shutdown")
    server.wait()
    print("server stopped; state journaled in %s" % args.state_dir)
    return 0


def cmd_worker(args) -> int:
    """Run one standalone worker agent against a shared state dir."""
    from repro.serve.agent import WorkerAgent, install_drain_signals

    agent = WorkerAgent(args.state_dir,
                        worker_id=args.worker_id,
                        queues=(set(args.queues.split(","))
                                if args.queues else None),
                        lease_ttl=args.lease_ttl,
                        max_attempts=args.max_attempts,
                        max_jobs=args.max_jobs)
    install_drain_signals(agent)
    print("repro worker %s leasing from %s"
          % (agent.worker_id, args.state_dir))
    print("  lease ttl   %.1fs (heartbeat every %.1fs)"
          % (agent.store.lease_ttl, agent.heartbeat.interval))
    if agent.queues:
        print("  queues      %s" % ", ".join(sorted(agent.queues)))
    code = agent.run_forever()
    print("worker %s drained after %d job(s)"
          % (agent.worker_id, agent.jobs_run))
    return code


def _submit_spec(args) -> dict:
    """A job spec from the submit command's flags (or --spec FILE)."""
    if args.spec:
        with open(args.spec) as stream:
            return json.load(stream)
    if args.design is None:
        raise SystemExit("submit needs a design (preset name or "
                         "Verilog file) or --spec FILE")
    if args.design in DES_PRESETS:
        design = {"kind": "preset", "name": args.design,
                  "scale": args.scale}
        if args.cycle:
            design["cycle"] = args.cycle
    else:
        design = {"kind": "verilog", "path": args.design}
        if args.cycle:
            design["cycle"] = args.cycle
        if args.sdc:
            design["sdc"] = args.sdc
    spec = {"flow": args.flow.upper(), "design": design}
    if args.seed is not None:
        spec["config"] = {"seed": args.seed}
    if args.chaos_seed is not None:
        spec["chaos"] = {"seed": args.chaos_seed,
                         "rate": args.chaos_rate}
    persist = {}
    if args.snapshot_mode:
        persist["snapshot_mode"] = args.snapshot_mode
    if args.snapshot_every is not None:
        persist["snapshot_every"] = args.snapshot_every
    if persist:
        spec["persist"] = persist
    if args.die_at_status is not None:
        spec["die_at_status"] = args.die_at_status
    if args.priority is not None:
        spec["priority"] = args.priority
    if args.queue is not None:
        spec["queue"] = args.queue
    if args.retries is not None:
        spec["retries"] = args.retries
    return spec


def cmd_submit(args) -> int:
    """Submit a job to a running flow server; optionally wait."""
    from repro.serve import client

    spec = _submit_spec(args)
    try:
        job_id = client.submit(args.server, spec)
    except client.ServiceError as exc:
        print("submit failed: %s" % exc, file=sys.stderr)
        return 1
    except OSError as exc:
        print("cannot reach %s: %s" % (args.server, exc),
              file=sys.stderr)
        return 1
    print("submitted %s" % job_id)
    if not args.wait:
        print("poll with: curl %s/jobs/%s" % (args.server, job_id))
        return 0
    try:
        status = client.wait(args.server, job_id,
                             timeout=args.timeout, poll=args.poll,
                             poll_cap=args.poll_cap)
    except TimeoutError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    print("job %s: %s (%d attempt(s), %d resume(s))"
          % (job_id, status["state"], status["attempts"],
             status["resumes"]))
    if status["state"] != "done":
        if status.get("error"):
            print("  error: %s" % status["error"], file=sys.stderr)
        return 1
    report = client.result(args.server, job_id)
    print(json.dumps(report, indent=2, sort_keys=True))
    return 0


def cmd_fsck(args) -> int:
    """Scrub (and with --repair heal) durable state on disk."""
    from repro.persist import fsck_path

    report = fsck_path(args.path, repair=args.repair)
    text = json.dumps(report, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as stream:
            stream.write(text + "\n")
    if not args.quiet:
        print(text)
    if report["clean"]:
        return 0
    # repair mode is "successful" when everything found was healed;
    # detect-only mode flags any finding
    return 0 if (args.repair and report["unrepaired"] == 0) else 1


def cmd_info(args) -> int:
    library = default_library()
    design = _load_design(args, library)
    nl = design.netlist
    print("design %s" % nl.name)
    print("  cells %d (%d logic, %d sequential, %d ports)"
          % (nl.num_cells, len(nl.logic_cells()),
             len(nl.sequential_cells()), len(nl.ports())))
    print("  nets %d" % nl.num_nets)
    print("  die %gx%g tracks, %d blockage(s)"
          % (design.die.width, design.die.height,
             len(design.blockages)))
    print("  gain-model worst slack %.1f ps at cycle %g"
          % (design.worst_slack(), design.constraints.cycle_time))
    return 0


def _add_design_args(parser) -> None:
    parser.add_argument("design", nargs="?", default=None,
                        help="Des1..Des5 preset or a Verilog file "
                             "(omit when resuming)")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="preset scale (default 0.2)")
    parser.add_argument("--cycle", type=float, default=None,
                        help="cycle time in ps (presets have defaults)")
    parser.add_argument("--sdc", default=None,
                        help="SDC-lite constraint file (Verilog "
                             "designs only)")
    parser.add_argument("--core", choices=("object", "array"),
                        default="array",
                        help="compute core for the hot kernels: the "
                             "object graph or the repro.core SoA "
                             "arrays (default array; results are "
                             "bit-identical)")
    parser.add_argument("--guard", action="store_true",
                        help="run transforms through the guarded "
                             "runner (checkpoint/rollback/quarantine)")
    parser.add_argument("--guard-budget", type=float, default=30.0,
                        help="per-transform wall-clock budget in "
                             "seconds (default 30)")
    parser.add_argument("--chaos-seed", type=int, default=None,
                        help="inject deterministic faults from this "
                             "seed (implies --guard)")
    parser.add_argument("--chaos-rate", type=float, default=0.05,
                        help="per-invocation fault probability for "
                             "--chaos-seed (default 0.05)")
    parser.add_argument("--io-chaos-rate", type=float, default=0.0,
                        help="per-operation storage-fault probability "
                             "at the persist I/O shim (transient "
                             "kinds; seeded by --chaos-seed, "
                             "default 0)")
    parser.add_argument("--io-fault", action="append", default=None,
                        metavar="KIND[:OP[:PATH]][@AT]",
                        help="inject one deterministic storage fault: "
                             "kind disk-full|io-error|fsync-fail|"
                             "torn-write|bit-flip, optionally pinned "
                             "to an op (write/fsync/replace/...), a "
                             "path substring, and the AT-th matching "
                             "operation (repeatable)")


def _add_trace_args(parser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="record per-transform spans and print the "
                             "flow trace + cut-status timeline")
    parser.add_argument("--trace-file", default=None,
                        help="stream spans to this jsonl file "
                             "(durable runs default to "
                             "RUNDIR/trace.jsonl; implies recording)")


def _add_persist_args(parser) -> None:
    parser.add_argument("--run-dir", default=None,
                        help="durable run directory: journal every "
                             "transform, snapshot at milestones, "
                             "resumable after a crash")
    parser.add_argument("--resume", action="store_true",
                        help="continue the run in --run-dir from its "
                             "last snapshot")
    parser.add_argument("--snapshot-every", type=int, default=10,
                        help="snapshot when cut status crosses a "
                             "multiple of this (default 10)")
    parser.add_argument("--snapshot-mode", choices=("full", "delta"),
                        default="full",
                        help="milestone snapshots: 'full' writes the "
                             "whole design each time, 'delta' writes "
                             "only what changed since the chain's "
                             "base full snapshot (default full)")
    parser.add_argument("--full-every", type=int, default=8,
                        help="in delta mode, start a new chain (full "
                             "snapshot) after this many deltas; 0 "
                             "keeps one chain (default 8)")
    parser.add_argument("--compact-every", type=int, default=0,
                        help="compact the journal once this many "
                             "records predate the chain-base "
                             "snapshot; 0 disables (default)")
    parser.add_argument("--die-at-status", type=int, default=None,
                        help="simulate a process kill (exit 17) right "
                             "after the first snapshot at or past this "
                             "status (resume smoke testing)")
    parser.add_argument("--die-at-snapshot", type=int, default=None,
                        help="simulate a process kill (exit 17) right "
                             "after the N-th milestone snapshot of "
                             "this process (crash-matrix testing)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Transformational Placement and Synthesis "
                    "(DATE 2000) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tps", help="run the TPS scenario")
    _add_design_args(p)
    _add_persist_args(p)
    _add_trace_args(p)
    p.add_argument("--pin-swap-budget", type=int, default=200,
                   help="critical cells the pin-swapping transform "
                        "may visit per invocation (default 200)")
    p.add_argument("--out-verilog")
    p.add_argument("--out-placement")
    p.set_defaults(func=cmd_tps)

    p = sub.add_parser("spr", help="run the SPR baseline")
    _add_design_args(p)
    _add_persist_args(p)
    _add_trace_args(p)
    p.add_argument("--out-verilog")
    p.add_argument("--out-placement")
    p.set_defaults(func=cmd_spr)

    p = sub.add_parser("trace-export",
                       help="convert trace.jsonl to Chrome trace JSON")
    p.add_argument("source",
                   help="a trace.jsonl file or a run directory")
    p.add_argument("-o", "--out", default="trace-chrome.json",
                   help="output file (default trace-chrome.json)")
    p.add_argument("--timeline", action="store_true",
                   help="also print the cut-status timeline table")
    p.set_defaults(func=cmd_trace_export)

    p = sub.add_parser("trace-report",
                       help="per-transform payoff table from a trace")
    p.add_argument("source",
                   help="a trace.jsonl file or a run directory")
    p.add_argument("-o", "--out", default=None,
                   help="also write the report as JSON to this file")
    p.set_defaults(func=cmd_trace_report)

    p = sub.add_parser("trace-diff",
                       help="classify drift between two runs' traces "
                            "(exit 1 on regression)")
    p.add_argument("baseline",
                   help="baseline trace.jsonl file or run directory")
    p.add_argument("candidate",
                   help="candidate trace.jsonl file or run directory")
    p.add_argument("-o", "--out", default=None,
                   help="also write the diff verdict as JSON")
    p.add_argument("-t", "--threshold", action="append", default=[],
                   metavar="KEY=VALUE",
                   help="override a DiffConfig threshold, e.g. "
                        "-t slow_ratio=3.0 (repeatable)")
    p.set_defaults(func=cmd_trace_diff)

    p = sub.add_parser("fleet-report",
                       help="aggregate jobs, latency histograms and "
                            "payoff across a serve state dir")
    p.add_argument("state_dir",
                   help="the fleet's state dir (jobs.jsonl + runs/)")
    p.add_argument("-o", "--out", default=None,
                   help="also write the rollup as JSON to this file")
    p.set_defaults(func=cmd_fleet_report)

    p = sub.add_parser("compare", help="SPR vs TPS on one design")
    _add_design_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("synth", help="map an .aag file to Verilog")
    p.add_argument("aag", help="ASCII AIGER input")
    p.add_argument("-o", "--out", default="mapped.v")
    p.add_argument("--mode", choices=("delay", "area"),
                   default="delay")
    p.set_defaults(func=cmd_synth)

    p = sub.add_parser("serve",
                       help="run the long-running flow job server")
    p.add_argument("--state-dir", required=True,
                   help="durable server state: job journal + one run "
                        "directory per job")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8137)
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes (default 2)")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="worker deaths before a job is failed "
                        "instead of resumed (default 3)")
    p.add_argument("--queue-cap", type=int, default=0,
                   help="queued jobs admitted before POST /jobs "
                        "returns 429 + Retry-After (0 = unlimited)")
    p.add_argument("--lease-ttl", type=float, default=None,
                   help="seconds a job lease survives without a "
                        "worker heartbeat (default 30)")
    p.add_argument("--drain", action="store_true",
                   help="on SIGINT/SIGTERM, let running jobs finish "
                        "instead of interrupting them")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("worker",
                       help="standalone worker agent on a shared "
                            "state dir (no HTTP server needed)")
    p.add_argument("--state-dir", required=True,
                   help="the fleet's shared state dir (same as the "
                        "server's --state-dir)")
    p.add_argument("--worker-id", default=None,
                   help="fleet-unique worker id (default "
                        "agent@<host>:<pid>)")
    p.add_argument("--queues", default=None,
                   help="comma-separated queue classes to lease from "
                        "(default: all)")
    p.add_argument("--lease-ttl", type=float, default=None,
                   help="seconds a lease survives without a "
                        "heartbeat (default 30; must match the "
                        "fleet's setting)")
    p.add_argument("--max-attempts", type=int, default=None,
                   help="default lease ceiling for jobs without "
                        "their own 'retries' budget")
    p.add_argument("--max-jobs", type=int, default=None,
                   help="exit after settling this many jobs "
                        "(default: run until signalled)")
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser("submit",
                       help="submit a job to a running flow server")
    p.add_argument("--server", default="http://127.0.0.1:8137",
                   help="server base URL "
                        "(default http://127.0.0.1:8137)")
    p.add_argument("flow", nargs="?", default="tps",
                   choices=("tps", "spr"),
                   help="flow to run (default tps)")
    p.add_argument("design", nargs="?", default=None,
                   help="Des1..Des5 preset or a Verilog file on the "
                        "server's filesystem")
    p.add_argument("--spec", default=None,
                   help="submit this JSON job-spec file instead of "
                        "building one from flags")
    p.add_argument("--scale", type=float, default=0.2)
    p.add_argument("--cycle", type=float, default=None)
    p.add_argument("--sdc", default=None)
    p.add_argument("--seed", type=int, default=None,
                   help="flow config seed")
    p.add_argument("--chaos-seed", type=int, default=None)
    p.add_argument("--chaos-rate", type=float, default=0.05)
    p.add_argument("--snapshot-mode", choices=("full", "delta"),
                   default=None)
    p.add_argument("--snapshot-every", type=int, default=None)
    p.add_argument("--die-at-status", type=int, default=None,
                   help="chaos-test the server: the first worker "
                        "exits 17 at this cut status and the job "
                        "must resume")
    p.add_argument("--priority", type=int, default=None,
                   help="scheduling priority (higher leases first)")
    p.add_argument("--queue", default=None,
                   help="queue class (workers filter on it)")
    p.add_argument("--retries", type=int, default=None,
                   help="transient-crash retry budget for this job")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job finishes and print its "
                        "report")
    p.add_argument("--timeout", type=float, default=600.0)
    p.add_argument("--poll", type=float, default=0.25,
                   help="initial poll interval; doubles up to "
                        "--poll-cap (default 0.25)")
    p.add_argument("--poll-cap", type=float, default=5.0,
                   help="poll interval ceiling for --wait "
                        "(default 5)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("fsck",
                       help="scrub a run directory or fleet state "
                            "dir: verify journals, snapshots, "
                            "fences; --repair quarantines what "
                            "cannot be verified")
    p.add_argument("path",
                   help="a run directory (--run-dir) or a fleet "
                        "state dir (--state-dir)")
    p.add_argument("--repair", action="store_true",
                   help="truncate torn journal tails, quarantine "
                        "corrupt milestones (resume falls back to "
                        "the previous good one), sweep temp debris")
    p.add_argument("-o", "--out", default=None,
                   help="also write the JSON report to this file")
    p.add_argument("-q", "--quiet", action="store_true",
                   help="suppress the report on stdout (exit code "
                        "still tells: 0 clean/healed, 1 findings)")
    p.set_defaults(func=cmd_fsck)

    p = sub.add_parser("info", help="design statistics only")
    _add_design_args(p)
    p.set_defaults(func=cmd_info)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
