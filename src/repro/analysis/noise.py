"""Coupling-noise analyzer.

A victim net picks up crosstalk proportional to how much of its length
runs through congested routing (more neighbours per track) and to how
weak its driver is.  The model is deliberately simple — the paper's
point is the *coupling of analyzers to transforms*, and this analyzer
exposes the same query surface as the timing engine: per-net noise,
worst noise, violations against a margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.design import Design
from repro.netlist.net import Net

#: Fraction of a neighbouring aggressor's swing coupled per unit of
#: congestion-weighted wire length (per track).
_COUPLING_PER_TRACK = 0.0015


@dataclass
class NoiseReport:
    """Noise figures for a design (normalised to the supply: 1.0 = a
    full-rail glitch)."""

    per_net: Dict[str, float] = field(default_factory=dict)
    margin: float = 0.35

    @property
    def worst(self) -> Tuple[str, float]:
        if not self.per_net:
            return ("", 0.0)
        name = max(self.per_net, key=self.per_net.get)
        return (name, self.per_net[name])

    def violations(self) -> List[str]:
        return [n for n, v in self.per_net.items() if v > self.margin]


class NoiseAnalyzer:
    """Estimates per-net coupled noise from congestion and drive."""

    def __init__(self, design: Design, margin: float = 0.35) -> None:
        self.design = design
        self.margin = margin

    def net_noise(self, net: Net) -> float:
        """Normalised noise amplitude on ``net``."""
        length = self.design.steiner.length(net)
        if length <= 0:
            return 0.0
        box = net.bounding_box()
        if box is None:
            return 0.0
        bins = self.design.grid.bins_in(box)
        if bins:
            congestion = sum(b.congestion for b in bins) / len(bins)
        else:
            congestion = 0.0
        exposure = _COUPLING_PER_TRACK * length * (0.5 + congestion)
        driver = net.driver()
        if driver is None or driver.cell.is_port:
            holding = 1.0
        else:
            # weak drivers hold their nets less firmly
            holding = 1.0 / (1.0 + driver.cell.size.x / 4.0)
        return min(1.0, exposure * holding)

    def analyze(self) -> NoiseReport:
        report = NoiseReport(margin=self.margin)
        for net in self.design.netlist.nets():
            if net.degree >= 2:
                report.per_net[net.name] = self.net_noise(net)
        return report
