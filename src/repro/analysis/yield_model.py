"""Yield / manufacturability analyzer (critical-area model).

The paper closes with "extending algorithms to optimize metrics such
as noise, congestion, power and yield"; this analyzer supplies the
yield side.  A Poisson defect model over critical area:

* **shorts** — a spot defect bridges two neighbouring wires; the
  critical area grows quadratically with local wire density, so it is
  dominated by congested bins;
* **opens** — a defect severs a wire; critical area is proportional to
  total wire length.

``Y = exp(-D0 * (CA_short + CA_open))`` with defect density ``D0``
(defects per million track^2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.design import Design


@dataclass
class YieldReport:
    """Critical areas (track^2) and the Poisson yield estimate."""

    short_critical_area: float
    open_critical_area: float
    yield_estimate: float
    worst_bins: List[Tuple[int, int, float]] = field(default_factory=list)

    @property
    def total_critical_area(self) -> float:
        return self.short_critical_area + self.open_critical_area


class YieldAnalyzer:
    """Estimates functional yield from the routed placement image.

    ``defect_density`` is D0 in defects per 1e6 track^2; ``defect_size``
    the characteristic spot size in tracks.
    """

    def __init__(self, design: Design, defect_density: float = 0.4,
                 defect_size: float = 1.0) -> None:
        self.design = design
        self.defect_density = defect_density
        self.defect_size = defect_size

    def bin_short_area(self, b) -> float:
        """Short critical area of one bin.

        With ``u`` used tracks in a span of ``cap`` available tracks,
        the expected number of adjacent wire pairs scales with u^2/cap;
        each pair contributes (defect_size x span) of critical area.
        """
        total = 0.0
        for used, cap, span in (
            (b.wire_used_h, b.wire_capacity_h, b.rect.width),
            (b.wire_used_v, b.wire_capacity_v, b.rect.height),
        ):
            if cap <= 0 or used <= 1:
                continue
            adjacent_pairs = used * used / cap
            total += adjacent_pairs * self.defect_size * span
        return total

    def analyze(self) -> YieldReport:
        short_ca = 0.0
        per_bin: List[Tuple[int, int, float]] = []
        for b in self.design.grid.bins():
            ca = self.bin_short_area(b)
            short_ca += ca
            if ca > 0:
                per_bin.append((b.ix, b.iy, ca))
        per_bin.sort(key=lambda t: -t[2])

        wirelength = self.design.total_wirelength()
        open_ca = wirelength * self.defect_size

        lam = self.defect_density * 1e-6 * (short_ca + open_ca)
        return YieldReport(
            short_critical_area=short_ca,
            open_critical_area=open_ca,
            yield_estimate=math.exp(-lam),
            worst_bins=per_bin[:10],
        )
