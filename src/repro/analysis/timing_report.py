"""Textual timing path reports (the sign-off view of the analyzer).

``report_timing`` walks the worst endpoints' critical paths backwards
through the timing graph and prints a per-stage breakdown — cell arc
delays, wire delays, Steiner lengths — the report a designer would ask
the incremental engine for after a flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.design import Design
from repro.netlist.cell import Pin
from repro.timing.engine import INF


@dataclass
class PathStage:
    """One arc of a reported path."""

    kind: str          # "cell" or "net"
    description: str   # cell name + size, or net name + length
    delay: float
    arrival: float


@dataclass
class TimingPath:
    """A reported critical path."""

    endpoint: str
    slack: float
    arrival: float
    required: float
    stages: List[PathStage] = field(default_factory=list)

    def format(self) -> str:
        lines = ["Endpoint %s  slack %.1f ps  (arrival %.1f, "
                 "required %.1f)"
                 % (self.endpoint, self.slack, self.arrival,
                    self.required)]
        for stage in self.stages:
            lines.append("  %-4s %-42s %+8.1f  @ %8.1f"
                         % (stage.kind, stage.description[:42],
                            stage.delay, stage.arrival))
        return "\n".join(lines)


def _worst_fanin(design: Design, pin: Pin) -> Optional[Tuple[Pin, str]]:
    """The fanin arc that sets ``pin``'s arrival."""
    engine = design.timing
    graph = engine.graph()
    best: Optional[Tuple[float, Pin, str]] = None
    for src, kind in graph.fanin_arcs(pin):
        if kind == "cell":
            delay = (engine.gate_delay(pin.cell, pin)
                     * src.spec.delay_factor)
        else:
            net = pin.net
            if net is None:
                continue
            delay = engine.net_electrical(net).delay_to(pin.full_name)
        arr = engine.arrival(src) + delay
        if best is None or arr > best[0]:
            best = (arr, src, kind)
    if best is None:
        return None
    return best[1], best[2]


def extract_path(design: Design, endpoint: Pin,
                 max_stages: int = 80) -> TimingPath:
    """The critical path into ``endpoint``, driver to endpoint order."""
    engine = design.timing
    path = TimingPath(
        endpoint=endpoint.full_name,
        slack=engine.slack(endpoint),
        arrival=engine.arrival(endpoint),
        required=engine.required(endpoint),
    )
    stages: List[PathStage] = []
    pin = endpoint
    for _ in range(max_stages):
        step = _worst_fanin(design, pin)
        if step is None:
            break
        src, kind = step
        if kind == "cell":
            delay = (engine.gate_delay(pin.cell, pin)
                     * src.spec.delay_factor)
            desc = "%s (%s) %s->%s" % (pin.cell.name,
                                       pin.cell.size.name,
                                       src.name, pin.name)
        else:
            net = pin.net
            delay = engine.net_electrical(net).delay_to(pin.full_name)
            desc = "net %s (len %.0f, deg %d)" % (
                net.name, design.steiner.length(net), net.degree)
        stages.append(PathStage(kind=kind, description=desc,
                                delay=delay,
                                arrival=engine.arrival(pin)))
        pin = src
    stages.reverse()
    path.stages = stages
    return path


def report_timing(design: Design, n_paths: int = 3,
                  max_stages: int = 80) -> str:
    """A formatted report of the ``n_paths`` worst endpoint paths."""
    engine = design.timing
    endpoints = [(engine.slack(p), p) for p in engine.endpoints()
                 if engine.slack(p) < INF]
    endpoints.sort(key=lambda t: t[0])
    blocks = ["Timing report: %d worst path(s) of %d endpoints "
              "(cycle %g ps, worst slack %.1f ps)"
              % (min(n_paths, len(endpoints)), len(endpoints),
                 design.constraints.cycle_time, engine.worst_slack())]
    for _slack, endpoint in endpoints[:n_paths]:
        blocks.append(extract_path(design, endpoint,
                                   max_stages=max_stages).format())
    return "\n\n".join(blocks)
